//! Plain-text tables and a minimal JSON emitter for panel results.
//!
//! The paper presents Figures 3/4 as plotted curves; this harness emits the
//! same series as aligned text tables (one row per utilization point, one
//! column per method) and as JSON for external plotting. JSON is written by
//! hand — the payload is trivial and the approved dependency set does not
//! include a JSON serializer.

use crate::figures::PanelResult;
use std::fmt::Write as _;

/// Render a panel as an aligned text table.
pub fn render_text(panel: &PanelResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", panel.label);
    let _ = write!(out, "{:>6}", "util");
    for s in &panel.series {
        let _ = write!(out, "{:>12}", s.method.label());
    }
    let _ = writeln!(out);
    let npoints = panel.series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..npoints {
        let u = panel.series[0].points[i].0;
        let _ = write!(out, "{u:>6.2}");
        for s in &panel.series {
            debug_assert_eq!(s.points[i].0, u);
            let _ = write!(out, "{:>12.3}", s.points[i].1);
        }
        let _ = writeln!(out);
    }
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Render a list of panels as a JSON document.
pub fn render_json(panels: &[PanelResult]) -> String {
    let mut out = String::from("{\n  \"panels\": [\n");
    for (pi, p) in panels.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"series\": [",
            json_escape(&p.label)
        );
        for (si, s) in p.series.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"method\": \"{}\", \"points\": [",
                json_escape(s.method.label())
            );
            for (i, (u, prob)) in s.points.iter().enumerate() {
                let _ = write!(out, "[{u}, {prob}]");
                if i + 1 < s.points.len() {
                    let _ = write!(out, ", ");
                }
            }
            let _ = write!(out, "]}}");
            if si + 1 < p.series.len() {
                let _ = write!(out, ", ");
            }
        }
        let _ = write!(out, "]}}");
        let _ = writeln!(out, "{}", if pi + 1 < panels.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::Method;
    use crate::figures::Series;

    fn sample() -> PanelResult {
        PanelResult {
            label: "test \"panel\"".into(),
            series: vec![
                Series {
                    method: Method::SppExact,
                    points: vec![(0.1, 1.0), (0.5, 0.75)],
                },
                Series {
                    method: Method::FcfsApp,
                    points: vec![(0.1, 0.9), (0.5, 0.5)],
                },
            ],
        }
    }

    #[test]
    fn text_table_is_aligned() {
        let t = render_text(&sample());
        assert!(t.contains("SPP/Exact"));
        assert!(t.contains("FCFS/App"));
        assert!(t.contains("0.750"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = render_json(&[sample()]);
        assert!(j.contains("\"panels\""));
        assert!(j.contains("\\\"panel\\\""));
        assert!(j.contains("[0.1, 1]") || j.contains("[0.1, 1.0]") || j.contains("[0.1, 1]"));
        // Balanced braces/brackets.
        let open = j.matches(['{', '[']).count();
        let close = j.matches(['}', ']']).count();
        assert_eq!(open, close);
    }
}

//! Heap-allocation counting for the zero-allocation discipline.
//!
//! Compiled only under the `alloc_stats` feature: installs a counting
//! wrapper around the system allocator as the crate's global allocator, so
//! benches and tests can assert *allocation budgets* — e.g. that a warm
//! seeded `analyze_with_loops_seeded` call stays within a handful of heap
//! allocations (see `tests/alloc_budget.rs`).
//!
//! The counter tallies `alloc` and `realloc` calls (a `realloc` that moves
//! is the same allocator round-trip as a fresh `alloc`); `dealloc` is free.
//! Counts are process-global and monotone — measure a region by
//! differencing [`alloc_count`] before and after, on a single thread, with
//! the worker pool quiescent.
//!
//! The feature is **off by default**. Counting costs an atomic increment on
//! every allocation, which perturbs the timing baselines, so
//! `BENCH_curves.json` / `BENCH_incremental.json` are always regenerated
//! without it; `perf_snapshot` additionally reports allocations per warm
//! analysis when the feature is on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// A [`System`]-backed allocator that counts `alloc` + `realloc` calls and
/// tracks live heap bytes.
pub struct CountingAlloc;

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        new_ptr
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (`alloc` + `realloc`) since process start.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap (allocated minus deallocated). The
/// soak tests difference this across eviction cycles to prove the service's
/// memory stays bounded by the session cap, not by tenant churn.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

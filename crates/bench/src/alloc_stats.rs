//! Heap-allocation counting for the zero-allocation discipline.
//!
//! Compiled only under the `alloc_stats` feature: installs a counting
//! wrapper around the system allocator as the crate's global allocator, so
//! benches and tests can assert *allocation budgets* — e.g. that a warm
//! seeded `analyze_with_loops_seeded` call stays within a handful of heap
//! allocations (see `tests/alloc_budget.rs`).
//!
//! The counter tallies `alloc` and `realloc` calls (a `realloc` that moves
//! is the same allocator round-trip as a fresh `alloc`); `dealloc` is free.
//! Counts are process-global and monotone — measure a region by
//! differencing [`alloc_count`] before and after, on a single thread, with
//! the worker pool quiescent.
//!
//! The feature is **off by default**. Counting costs an atomic increment on
//! every allocation, which perturbs the timing baselines, so
//! `BENCH_curves.json` / `BENCH_incremental.json` are always regenerated
//! without it; `perf_snapshot` additionally reports allocations per warm
//! analysis when the feature is on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts `alloc` + `realloc` calls.
pub struct CountingAlloc;

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (`alloc` + `realloc`) since process start.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

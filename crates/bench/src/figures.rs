//! Figure 3 / Figure 4 panel grids.
//!
//! * **Figure 3** — periodic arrivals (Eq. 25/26): a 3×2 grid of panels.
//!   Top to bottom the number of stages grows (1, 2, 4 — panels (a)/(d)
//!   have one stage, (c)/(f) the most); left to right the end-to-end
//!   deadline doubles. Methods: SPP/Exact, SPNP/App, FCFS/App, SPP/S&L.
//! * **Figure 4** — bursty arrivals (Eq. 27/28): deadlines are drawn from a
//!   gamma family; top to bottom the variance grows, left to right the mean
//!   doubles. Methods: SPP/Exact, SPNP/App, FCFS/App (SPP/S&L is periodic
//!   only, as in the paper).
//!
//! The exact panel constants (stage counts, deadline factors, means) are
//! not stated in the paper; the values here were chosen so the admission
//! curves sweep the full 0–1 range over the utilization axis, preserving
//! every comparative property the text reports (see DESIGN.md §5).

use crate::admission::{admission_probability, Method};
use rta_core::AnalysisConfig;
use rta_model::distributions::Dist;
use rta_model::jobshop::{ShopArrivals, ShopConfig};
use rta_model::SchedulerKind;

/// One panel of a figure: a base configuration whose `utilization` field is
/// swept.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Panel label, e.g. `"(a) stages=1, deadline=2x period"`.
    pub label: String,
    /// Base configuration (utilization is overwritten per point).
    pub base: ShopConfig,
    /// Methods to compare in this panel.
    pub methods: Vec<Method>,
}

/// One method's admission-probability curve.
#[derive(Clone, Debug)]
pub struct Series {
    /// The analysis method.
    pub method: Method,
    /// `(utilization, admission probability)` points.
    pub points: Vec<(f64, f64)>,
}

/// All series of one panel.
#[derive(Clone, Debug)]
pub struct PanelResult {
    /// Panel label.
    pub label: String,
    /// One series per method.
    pub series: Vec<Series>,
}

/// The default utilization sweep (x axis of both figures).
pub fn utilization_sweep() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

fn shop_base(stages: usize, arrivals: ShopArrivals) -> ShopConfig {
    ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler: SchedulerKind::Spp, // overwritten per method
        utilization: 0.0,              // overwritten per point
        arrivals,
        x_min: 0.2,
        ticks_per_unit: 1000,
    }
}

/// The six Figure 3 panels (periodic arrivals).
pub fn fig3_panels() -> Vec<Panel> {
    let methods = vec![
        Method::SppExact,
        Method::SpnpApp,
        Method::FcfsApp,
        Method::SppSL,
    ];
    let mut panels = Vec::new();
    // Column-major labels as in the paper: (a)(b)(c) = first deadline
    // column over growing stages, (d)(e)(f) = doubled deadlines.
    for (col, dbl) in [("", 1.0), ("doubled ", 2.0)] {
        for &stages in &[1usize, 2, 4] {
            let factor = dbl * stages as f64;
            panels.push(Panel {
                label: format!("fig3 stages={stages}, {col}deadline={factor}x period"),
                base: shop_base(
                    stages,
                    ShopArrivals::Periodic {
                        deadline_factor: factor,
                    },
                ),
                methods: methods.clone(),
            });
        }
    }
    panels
}

/// The six Figure 4 panels (bursty arrivals, gamma deadlines).
pub fn fig4_panels() -> Vec<Panel> {
    let methods = vec![Method::SppExact, Method::SpnpApp, Method::FcfsApp];
    let mut panels = Vec::new();
    for (mean_label, mean) in [("mean=4", 4.0f64), ("mean=8", 8.0)] {
        for (var_label, var_factor) in [("low var", 0.25), ("med var", 1.0), ("high var", 4.0)] {
            // Deadline = floor + gamma noise: half the mean is a
            // deterministic floor, the other half carries the swept
            // variance (see rta_model::distributions::Dist::ShiftedGamma).
            let noise_mean = mean / 2.0;
            let variance = var_factor * noise_mean * noise_mean;
            panels.push(Panel {
                label: format!("fig4 {mean_label} units, {var_label} (var={variance})"),
                base: shop_base(
                    2,
                    ShopArrivals::Bursty {
                        deadline: Dist::ShiftedGamma {
                            shift: mean / 2.0,
                            mean: noise_mean,
                            variance,
                        },
                    },
                ),
                methods: methods.clone(),
            });
        }
    }
    panels
}

/// Run one panel: estimate every method at every utilization point.
pub fn run_panel(
    panel: &Panel,
    utils: &[f64],
    sets: u32,
    master_seed: u64,
    threads: usize,
) -> PanelResult {
    let acfg = AnalysisConfig::default();
    let series = panel
        .methods
        .iter()
        .map(|&method| {
            let points = utils
                .iter()
                .map(|&u| {
                    let mut base = panel.base.clone();
                    base.utilization = u;
                    // Identical seeds per point across methods: the paper
                    // applies each method to the same generated sets.
                    let seed = master_seed ^ ((u * 1000.0) as u64);
                    (
                        u,
                        admission_probability(&base, method, sets, seed, threads, &acfg),
                    )
                })
                .collect();
            Series { method, points }
        })
        .collect();
    PanelResult {
        label: panel.label.clone(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_six_panels_each() {
        assert_eq!(fig3_panels().len(), 6);
        assert_eq!(fig4_panels().len(), 6);
        // Figure 4 never includes the periodic-only baseline.
        assert!(fig4_panels()
            .iter()
            .all(|p| !p.methods.contains(&Method::SppSL)));
        assert!(fig3_panels().iter().all(|p| p.methods.len() == 4));
    }

    #[test]
    fn sweep_covers_unit_interval() {
        let s = utilization_sweep();
        assert_eq!(s.len(), 9);
        assert!(s[0] > 0.0 && s[8] < 1.0);
    }

    #[test]
    fn single_point_panel_run() {
        // A smoke run at tiny sizes: all probabilities well-formed and the
        // exact method admits at least as often as the approximations on
        // the shared draws.
        let panel = &fig3_panels()[0];
        let r = run_panel(panel, &[0.3], 12, 42, 2);
        assert_eq!(r.series.len(), 4);
        let p = |m: Method| r.series.iter().find(|s| s.method == m).unwrap().points[0].1;
        for m in [
            Method::SppExact,
            Method::SpnpApp,
            Method::FcfsApp,
            Method::SppSL,
        ] {
            assert!((0.0..=1.0).contains(&p(m)));
        }
        assert!(p(Method::SppExact) >= p(Method::SpnpApp));
    }
}

//! The paper's Introduction, quantified: admission probability of bursty
//! workloads analyzed **directly** vs. first **transformed** into periodic
//! stand-ins via the classical minimum-inter-arrival ("sporadic envelope")
//! rule — transformation (i) of the paper's taxonomy.
//!
//! Workload: burst-train jobs (dense bursts, long trains) over a 2-stage
//! shop — the adversarial case for the transformation, whose stand-in
//! releases at the intra-burst rate forever.
//!
//! Usage: `cargo run -p rta-bench --release --bin transforms [-- --sets N]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rta_core::{analyze_exact_spp, AnalysisConfig};
use rta_curves::Time;
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, ProcessorId, SchedulerKind, SystemBuilder, TaskSystem};

/// Build one random burst-train system, optionally transformed.
fn system(seed: u64, load: f64, transform: bool, window: Time) -> TaskSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SystemBuilder::new();
    let procs: Vec<ProcessorId> = (0..4)
        .map(|i| b.add_processor(format!("P{}", i + 1), SchedulerKind::Spp))
        .collect();
    for k in 0..4 {
        let burst_len = rng.gen_range(2..4u32);
        let intra = Time(rng.gen_range(200..500));
        let train = Time(rng.gen_range(2_500..4_000));
        let pattern = ArrivalPattern::BurstTrain {
            burst_len,
            intra_gap: intra,
            train_period: train,
            offset: Time(rng.gen_range(0..200)),
        };
        let pattern = if transform {
            pattern.sporadic_envelope(window).unwrap_or(pattern)
        } else {
            pattern
        };
        // Execution sized against the *train* (long-run) rate.
        let per_instance = train.ticks() as f64 / burst_len as f64 * load / 2.0;
        let exec = Time((per_instance * rng.gen_range(0.5..1.5)) as i64).max(Time(1));
        let deadline = Time(rng.gen_range(600..1_800));
        let route = [procs[k % 2], procs[2 + (k % 2)]];
        b.add_job(
            format!("T{}", k + 1),
            deadline,
            pattern,
            route.iter().map(|p| (*p, exec)).collect(),
        );
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

fn main() {
    let sets: u64 = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--sets")
        .map(|w| w[1].parse().expect("--sets N"))
        .unwrap_or(300);

    let window = Time(6_000);
    let cfg = AnalysisConfig {
        arrival_window: Some(window),
        ..Default::default()
    };
    println!(
        "{:>6} {:>14} {:>18} {:>10}",
        "load", "direct admits", "transformed admits", "lost"
    );
    for load in [0.2, 0.4, 0.6, 0.8] {
        let mut direct = 0u64;
        let mut transformed = 0u64;
        for seed in 0..sets {
            let d = analyze_exact_spp(&system(seed, load, false, window), &cfg)
                .map(|r| r.all_schedulable())
                .unwrap_or(false);
            let t = analyze_exact_spp(&system(seed, load, true, window), &cfg)
                .map(|r| r.all_schedulable())
                .unwrap_or(false);
            // Conservativeness: the transformation never admits more.
            assert!(
                !t || d,
                "seed {seed}: transformation admitted, direct rejected"
            );
            direct += d as u64;
            transformed += t as u64;
        }
        println!(
            "{:>6.2} {:>14.3} {:>18.3} {:>9.1}%",
            load,
            direct as f64 / sets as f64,
            transformed as f64 / sets as f64,
            100.0 * (direct - transformed) as f64 / sets as f64,
        );
    }
    println!(
        "\n'lost' = job sets the classical periodic transformation rejects even\n\
         though the direct bursty analysis proves them schedulable."
    );
}

//! Performance snapshot of the WCDFP estimation engine
//! (`BENCH_wcdfp.json`).
//!
//! `cargo run -p rta-bench --release --bin wcdfp_snapshot` times the
//! verdict-only Monte-Carlo path and writes `BENCH_wcdfp.json` in the
//! working directory; `scripts/check.sh` gates it against the committed
//! baseline like the other suites.
//!
//! Two claims are asserted **in-binary** (the snapshot fails outright if
//! they regress, independent of the drift gate):
//!
//! * `wcdfp/verdict/5job_shop` — nanoseconds per draw in the verdict-only
//!   configuration (`sketches: false`, the admission path) on the same
//!   5-job bursty shop as `sim/batch/1000draws`, must stay ≤ 10 000 ns
//!   (≥ 10⁵ draws/sec), vs ~26 µs/draw for the result-materializing batch
//!   path. `wcdfp/run/1000draws` tracks the full streaming-statistics
//!   configuration (response sketches on) beside it.
//! * adaptive early termination beats fixed-N a-priori sizing: on an easy
//!   shop, `estimate_adaptive` to half-width 0.01 must use no more draws
//!   (and less wall time) than the `N = z²·¼/tol² = 9604` a fixed-budget
//!   run must commit to when the miss rate is unknown.

use rta_bench::harness::Bench;
use rta_core::wcdfp::Stopping;
use rta_model::distributions::Dist;
use rta_model::jobshop::{ShopArrivals, ShopConfig};
use rta_model::SchedulerKind;
use rta_sim::wcdfp::{estimate_adaptive, estimate_fixed, DrawModel, WcdfpConfig};

/// The `sim/batch/1000draws` shop, verbatim — so the verdict-only row is an
/// honest apples-to-apples comparison against the batch path.
fn batch_shop() -> ShopConfig {
    ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler: SchedulerKind::Spp,
        utilization: 0.7,
        arrivals: ShopArrivals::Bursty {
            deadline: Dist::Exponential { mean: 6.0 },
        },
        x_min: 0.25,
        ticks_per_unit: 100,
    }
}

/// A lightly-loaded shop whose miss probability is ~0: the adaptive run
/// should settle in its first round.
fn easy_shop() -> ShopConfig {
    ShopConfig {
        utilization: 0.3,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 8.0,
        },
        ..batch_shop()
    }
}

fn main() {
    let mut b = Bench::new();
    let cfg = WcdfpConfig::default();
    // The admission-path configuration: misses and intervals only, no
    // response sketches. This is the path the ≤ 10 µs/draw claim is about.
    let lean = WcdfpConfig {
        sketches: false,
        ..WcdfpConfig::default()
    };

    // Full streaming-statistics throughput (sketches on) on the batch shop.
    const DRAWS: u64 = 1000;
    let model = DrawModel::Shop(batch_shop());
    b.run("wcdfp/run/1000draws", || {
        estimate_fixed(&model, &cfg, DRAWS)
    });

    // Verdict-only throughput on the same shop.
    let run = b.run("wcdfp/verdict_run/1000draws", || {
        estimate_fixed(&model, &lean, DRAWS)
    });
    let per_draw = run.ns_per_iter / DRAWS as f64;
    b.record("wcdfp/verdict/5job_shop", DRAWS, per_draw);
    println!(
        "  -> {:.2} µs/draw verdict-only ({:.0} draws/sec)",
        per_draw / 1e3,
        1e9 / per_draw
    );
    assert!(
        per_draw <= 10_000.0,
        "verdict path too slow: {per_draw:.0} ns/draw (target ≤ 10000)"
    );

    // Adaptive early termination vs a-priori fixed sizing. With the miss
    // rate unknown, a fixed run targeting half-width 0.01 at 95% must
    // budget for p = ½: N = (1.96² · 0.25) / 0.01² = 9604 draws. The
    // adaptive run discovers p ≈ 0 and stops after its first round.
    const FIXED_N: u64 = 9604;
    let easy = DrawModel::Shop(easy_shop());
    let stop = Stopping {
        tolerance: 0.01,
        confidence: 0.95,
        threshold: None,
    };
    let adaptive_ns = b
        .run("wcdfp/adaptive/easy_tol01", || {
            estimate_adaptive(&easy, &lean, &stop, FIXED_N)
        })
        .ns_per_iter;
    let fixed_ns = b
        .run("wcdfp/fixed/easy_9604", || {
            estimate_fixed(&easy, &lean, FIXED_N)
        })
        .ns_per_iter;
    let rep = estimate_adaptive(&easy, &lean, &stop, FIXED_N);
    println!(
        "  -> adaptive converged={} after {} draws (fixed budget {FIXED_N}); \
         {:.2}x wall-time speedup",
        rep.converged,
        rep.draws,
        fixed_ns / adaptive_ns
    );
    assert!(rep.converged, "easy shop must converge within the budget");
    assert!(
        rep.draws <= FIXED_N,
        "adaptive used {} draws, more than the fixed budget {FIXED_N}",
        rep.draws
    );
    for e in &rep.estimates {
        assert!(
            e.half_width() <= stop.tolerance,
            "converged run violates the tolerance: {e:?}"
        );
    }
    assert!(
        adaptive_ns < fixed_ns,
        "adaptive ({adaptive_ns:.0} ns) must beat fixed-{FIXED_N} ({fixed_ns:.0} ns) \
         at equal CI width"
    );

    let json = b.to_json(&[
        ("suite", "BENCH_wcdfp"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    if cfg!(feature = "alloc_stats") {
        println!("\nalloc_stats build: not overwriting BENCH_wcdfp.json (timings perturbed)");
    } else {
        std::fs::write("BENCH_wcdfp.json", &json).expect("write BENCH_wcdfp.json");
        println!(
            "\nwrote BENCH_wcdfp.json ({} benchmarks)",
            b.results().len()
        );
    }
}

//! Reproduce Figure 4: admission probability vs. system utilization for
//! bursty (Eq. 27) arrivals with gamma-distributed deadlines, comparing
//! SPP/Exact, SPNP/App and FCFS/App over a variance × mean panel grid.
//!
//! Usage: `cargo run -p rta-bench --release --bin fig4 [-- --sets N] [--threads N] [--seed S] [--json PATH]`

use rta_bench::figures::{fig4_panels, run_panel, utilization_sweep};
use rta_bench::table::{render_json, render_text};

fn main() {
    let args = Args::parse();
    let utils = utilization_sweep();
    let panels = fig4_panels();
    let mut results = Vec::new();
    eprintln!(
        "fig4: {} panels × {} points × 3 methods × {} sets (threads={})",
        panels.len(),
        utils.len(),
        args.sets,
        args.threads
    );
    for (i, p) in panels.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let r = run_panel(p, &utils, args.sets, args.seed, args.threads);
        eprintln!(
            "panel {}/{} done in {:.1?}",
            i + 1,
            panels.len(),
            t0.elapsed()
        );
        print!("{}", render_text(&r));
        println!();
        results.push(r);
    }
    if let Some(path) = args.json {
        std::fs::write(&path, render_json(&results)).expect("write JSON");
        eprintln!("wrote {path}");
    }
}

struct Args {
    sets: u32,
    threads: usize,
    seed: u64,
    json: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            sets: 1000,
            threads: rta_bench::admission::default_threads(),
            seed: 20260707,
            json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut val = || it.next().expect("flag needs a value");
            match a.as_str() {
                "--sets" => args.sets = val().parse().expect("--sets N"),
                "--threads" => args.threads = val().parse().expect("--threads N"),
                "--seed" => args.seed = val().parse().expect("--seed S"),
                "--json" => args.json = Some(val()),
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}

//! Bench-regression gate for `scripts/check.sh`.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression_pct]
//! ```
//!
//! Compares two harness JSON dumps (see [`rta_bench::harness::Bench`]) and
//! exits non-zero if any benchmark present in both regressed by more than
//! `max_regression_pct` percent (default 25). Benchmarks only present on
//! one side are reported but never fail the gate, so adding or renaming
//! benchmarks does not require a baseline dance.

use std::process::ExitCode;

/// Extract `(name, ns_per_iter)` pairs from a harness JSON dump. The
/// harness writes one benchmark object per line, so a line-oriented scan is
/// exact for its own output (no serde in the offline dependency closure).
fn parse(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(ns) = field_str(line, "\"ns_per_iter\": ") else {
            continue;
        };
        let ns: f64 = ns
            .trim_end_matches(['}', ',', ' '])
            .parse()
            .unwrap_or(f64::NAN);
        if ns.is_finite() {
            out.push((name.to_string(), ns));
        }
    }
    out
}

/// The text after `key` up to the next `"` (for strings) or the rest of
/// the line (for numbers; caller trims trailing punctuation).
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(match rest.find('"') {
        Some(end) if key.ends_with('"') => &rest[..end],
        _ => rest,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [max_regression_pct]");
        return ExitCode::from(2);
    }
    let max_pct: f64 = match args.get(3) {
        None => 25.0,
        Some(s) => match s.parse() {
            Ok(p) => p,
            Err(_) => {
                eprintln!("bench_gate: max_regression_pct must be a number, got {s:?}");
                return ExitCode::from(2);
            }
        },
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(parse(&text)),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(&args[1]), read(&args[2])) else {
        return ExitCode::from(2);
    };

    let mut failures = 0u32;
    let mut compared = 0u32;
    for (name, base_ns) in &baseline {
        let Some((_, cur_ns)) = current.iter().find(|(n, _)| n == name) else {
            println!("  (gone)    {name}");
            continue;
        };
        compared += 1;
        let pct = 100.0 * (cur_ns - base_ns) / base_ns;
        if pct > max_pct {
            println!("  REGRESSED {name}: {base_ns:.0} ns -> {cur_ns:.0} ns ({pct:+.1}%)");
            failures += 1;
        } else {
            println!("  ok        {name}: {base_ns:.0} ns -> {cur_ns:.0} ns ({pct:+.1}%)");
        }
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("  (new)     {name}");
        }
    }
    if failures > 0 {
        eprintln!("bench_gate: {failures}/{compared} benchmarks regressed more than {max_pct}%");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {compared} benchmarks within {max_pct}% of baseline");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse;

    #[test]
    fn parses_harness_lines() {
        let json = "{\n  \"suite\": \"x\",\n  \"benchmarks\": [\n    {\"name\": \"a/b\", \"iters\": 3, \"ns_per_iter\": 125.5},\n    {\"name\": \"c\", \"iters\": 1, \"ns_per_iter\": 7.0}\n  ]\n}\n";
        let parsed = parse(json);
        assert_eq!(
            parsed,
            vec![("a/b".to_string(), 125.5), ("c".to_string(), 7.0)]
        );
    }
}

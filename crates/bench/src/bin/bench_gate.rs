//! Bench-regression gate for `scripts/check.sh`.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression_pct] [--skip <row>]…
//! bench_gate --pair <current.json> <row> <reference_row> [grace_pct]
//! bench_gate --ratio <baseline.json> <current.json> <row> <sibling_row> [grace_pct]
//! ```
//!
//! The two-file form compares two harness JSON dumps (see
//! [`rta_bench::harness::Bench`]) and exits non-zero if any benchmark
//! present in both regressed by more than `max_regression_pct` percent
//! (default 25); on failure it prints a per-row delta table, worst first,
//! so the damage is visible without diffing the dumps by hand. Benchmarks
//! only present on one side are reported but never fail the gate, so
//! adding or renaming benchmarks does not require a baseline dance.
//!
//! The `--pair` form enforces an intra-dump invariant: `row` must not be
//! slower than `reference_row` by more than `grace_pct` percent (default
//! 10, covering run-to-run noise). It gates the SoA kernel rows against
//! their retained AoS counterparts — layout parity is a standing claim of
//! the analysis pipeline, not just a point-in-time measurement.
//!
//! The `--ratio` form gates a noisy row by its **ratio to a stable sibling
//! row** across baseline → current: fail when
//! `cur[row]/cur[sibling] > base[row]/base[sibling] × (1 + grace/100)`
//! (default grace 25). Dividing by a sibling measured in the same dump
//! cancels machine-wide speed shifts (thermal state, contention), leaving
//! only the row's *relative* movement — the right gate for rows whose
//! absolute nanoseconds swing more than the regression budget. Rows gated
//! this way should be excluded from the absolute comparison with `--skip`.
//!
//! `--skip <row>` (repeatable, two-file form only) removes a row from the
//! absolute comparison on both sides; skipped rows are listed so the gate
//! output still accounts for every row in the dumps.

use std::process::ExitCode;

/// Extract `(name, ns_per_iter)` pairs from a harness JSON dump. The
/// harness writes one benchmark object per line, so a line-oriented scan is
/// exact for its own output (no serde in the offline dependency closure).
fn parse(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(ns) = field_str(line, "\"ns_per_iter\": ") else {
            continue;
        };
        let ns: f64 = ns
            .trim_end_matches(['}', ',', ' '])
            .parse()
            .unwrap_or(f64::NAN);
        if ns.is_finite() {
            out.push((name.to_string(), ns));
        }
    }
    out
}

/// The text after `key` up to the next `"` (for strings) or the rest of
/// the line (for numbers; caller trims trailing punctuation).
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(match rest.find('"') {
        Some(end) if key.ends_with('"') => &rest[..end],
        _ => rest,
    })
}

/// `--pair <current.json> <row> <reference_row> [grace_pct]`: fail when
/// `row` is more than `grace_pct` percent slower than `reference_row`.
fn pair_gate(args: &[String]) -> ExitCode {
    if args.len() < 3 {
        eprintln!("usage: bench_gate --pair <current.json> <row> <reference_row> [grace_pct]");
        return ExitCode::from(2);
    }
    let grace: f64 = match args.get(3) {
        None => 10.0,
        Some(s) => match s.parse() {
            Ok(p) => p,
            Err(_) => {
                eprintln!("bench_gate: grace_pct must be a number, got {s:?}");
                return ExitCode::from(2);
            }
        },
    };
    let rows = match std::fs::read_to_string(&args[0]) {
        Ok(text) => parse(&text),
        Err(e) => {
            eprintln!("bench_gate: cannot read {}: {e}", args[0]);
            return ExitCode::from(2);
        }
    };
    let find = |name: &str| rows.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns);
    let (Some(row_ns), Some(ref_ns)) = (find(&args[1]), find(&args[2])) else {
        eprintln!(
            "bench_gate: pair rows {:?} / {:?} not both present in {}",
            args[1], args[2], args[0]
        );
        return ExitCode::from(2);
    };
    let pct = 100.0 * (row_ns - ref_ns) / ref_ns;
    if row_ns > ref_ns * (1.0 + grace / 100.0) {
        eprintln!(
            "bench_gate: {} ({row_ns:.0} ns) is {pct:+.1}% vs {} ({ref_ns:.0} ns), \
             over the {grace}% grace",
            args[1], args[2]
        );
        return ExitCode::FAILURE;
    }
    println!(
        "  pair ok   {}: {row_ns:.0} ns vs {}: {ref_ns:.0} ns ({pct:+.1}%, grace {grace}%)",
        args[1], args[2]
    );
    ExitCode::SUCCESS
}

/// `--ratio <baseline.json> <current.json> <row> <sibling_row> [grace_pct]`:
/// fail when `row`'s ratio to `sibling_row` grew by more than `grace_pct`
/// percent between the dumps.
fn ratio_gate(args: &[String]) -> ExitCode {
    if args.len() < 4 {
        eprintln!(
            "usage: bench_gate --ratio <baseline.json> <current.json> <row> <sibling_row> \
             [grace_pct]"
        );
        return ExitCode::from(2);
    }
    let grace: f64 = match args.get(4) {
        None => 25.0,
        Some(s) => match s.parse() {
            Ok(p) => p,
            Err(_) => {
                eprintln!("bench_gate: grace_pct must be a number, got {s:?}");
                return ExitCode::from(2);
            }
        },
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(parse(&text)),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(&args[0]), read(&args[1])) else {
        return ExitCode::from(2);
    };
    let (row, sibling) = (&args[2], &args[3]);
    let find = |rows: &[(String, f64)], name: &str| {
        rows.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns)
    };
    let (Some(b_row), Some(b_sib), Some(c_row), Some(c_sib)) = (
        find(&baseline, row),
        find(&baseline, sibling),
        find(&current, row),
        find(&current, sibling),
    ) else {
        eprintln!(
            "bench_gate: rows {row:?} / {sibling:?} not present in both {} and {}",
            args[0], args[1]
        );
        return ExitCode::from(2);
    };
    let (base_ratio, cur_ratio) = (b_row / b_sib, c_row / c_sib);
    let pct = 100.0 * (cur_ratio - base_ratio) / base_ratio;
    if cur_ratio > base_ratio * (1.0 + grace / 100.0) {
        eprintln!(
            "bench_gate: {row} / {sibling} ratio regressed: {base_ratio:.3} -> {cur_ratio:.3} \
             ({pct:+.1}%, grace {grace}%)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "  ratio ok  {row} / {sibling}: {base_ratio:.3} -> {cur_ratio:.3} \
         ({pct:+.1}%, grace {grace}%)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--pair") {
        return pair_gate(&args[2..]);
    }
    if args.get(1).map(String::as_str) == Some("--ratio") {
        return ratio_gate(&args[2..]);
    }
    // Two-file form: positionals [baseline, current, max_pct?] plus any
    // number of `--skip <row>` flags, in any order.
    let mut positional: Vec<&String> = Vec::new();
    let mut skipped: Vec<&String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--skip" {
            match it.next() {
                Some(row) => skipped.push(row),
                None => {
                    eprintln!("bench_gate: --skip needs a row name");
                    return ExitCode::from(2);
                }
            }
        } else {
            positional.push(a);
        }
    }
    if positional.len() < 2 {
        eprintln!(
            "usage: bench_gate <baseline.json> <current.json> [max_regression_pct] \
             [--skip <row>]…"
        );
        return ExitCode::from(2);
    }
    let max_pct: f64 = match positional.get(2) {
        None => 25.0,
        Some(s) => match s.parse() {
            Ok(p) => p,
            Err(_) => {
                eprintln!("bench_gate: max_regression_pct must be a number, got {s:?}");
                return ExitCode::from(2);
            }
        },
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(parse(&text)),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(positional[0]), read(positional[1])) else {
        return ExitCode::from(2);
    };

    let mut failures = 0u32;
    // (name, base_ns, cur_ns, pct) for every row present on both sides.
    let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for (name, base_ns) in &baseline {
        if skipped.contains(&name) {
            println!("  (skip)    {name}");
            continue;
        }
        let Some((_, cur_ns)) = current.iter().find(|(n, _)| n == name) else {
            println!("  (gone)    {name}");
            continue;
        };
        let pct = 100.0 * (cur_ns - base_ns) / base_ns;
        rows.push((name, *base_ns, *cur_ns, pct));
        if pct > max_pct {
            println!("  REGRESSED {name}: {base_ns:.0} ns -> {cur_ns:.0} ns ({pct:+.1}%)");
            failures += 1;
        } else {
            println!("  ok        {name}: {base_ns:.0} ns -> {cur_ns:.0} ns ({pct:+.1}%)");
        }
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) && !skipped.contains(&name) {
            println!("  (new)     {name}");
        }
    }
    let compared = rows.len();
    if failures > 0 {
        // Full delta table, worst regression first, so a failing gate
        // shows every row's movement without re-running or diffing JSON.
        let width = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
        eprintln!("\nbench_gate: {failures}/{compared} benchmarks regressed more than {max_pct}%");
        eprintln!(
            "  {:<width$}  {:>12}  {:>12}  {:>8}",
            "benchmark", "baseline", "current", "delta"
        );
        rows.sort_by(|a, b| b.3.total_cmp(&a.3));
        for (name, base_ns, cur_ns, pct) in &rows {
            let flag = if *pct > max_pct { "  <-- FAIL" } else { "" };
            eprintln!(
                "  {name:<width$}  {:>9.0} ns  {:>9.0} ns  {pct:>+7.1}%{flag}",
                base_ns, cur_ns
            );
        }
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {compared} benchmarks within {max_pct}% of baseline");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse;

    #[test]
    fn parses_harness_lines() {
        let json = "{\n  \"suite\": \"x\",\n  \"benchmarks\": [\n    {\"name\": \"a/b\", \"iters\": 3, \"ns_per_iter\": 125.5},\n    {\"name\": \"c\", \"iters\": 1, \"ns_per_iter\": 7.0}\n  ]\n}\n";
        let parsed = parse(json);
        assert_eq!(
            parsed,
            vec![("a/b".to_string(), 125.5), ("c".to_string(), 7.0)]
        );
    }
}

//! Performance snapshot of the curve kernels and analysis drivers.
//!
//! `cargo run -p rta-bench --release --bin perf_snapshot` times the
//! segment-native kernels (with their lattice-scan oracles for reference)
//! and the end-to-end analyses, then writes `BENCH_curves.json` and
//! `BENCH_incremental.json` (cold-vs-warm sweeps through
//! [`AnalysisSession`]) in the working directory. CI and
//! `scripts/check.sh` use them as the regression baselines for the numbers
//! quoted in DESIGN.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::admission::{
    admission_probability, admission_probability_batched, admission_probability_strided, Method,
};
use rta_bench::harness::Bench;
use rta_core::sensitivity::Oracle;
use rta_core::{analyze_exact_spp, AnalysisConfig, AnalysisSession};
use rta_curves::convolution::{convolve, convolve_decomposed, min_plus_convolve_lattice};
use rta_curves::{Curve, CurveCursor, Time};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{SchedulerKind, TaskSystem};

fn arrivals(n: i64, gap: i64) -> Curve {
    let times: Vec<Time> = (0..n).map(|i| Time(i * gap)).collect();
    Curve::from_event_times(&times)
}

fn shop(scheduler: SchedulerKind, stages: usize, n_jobs: usize) -> TaskSystem {
    shop_at_ticks(scheduler, stages, n_jobs, 500)
}

fn shop_at_ticks(
    scheduler: SchedulerKind,
    stages: usize,
    n_jobs: usize,
    ticks_per_unit: i64,
) -> TaskSystem {
    let cfg = ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs,
        scheduler,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0 * stages as f64,
        },
        x_min: 0.2,
        ticks_per_unit,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    if scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

fn main() {
    let mut b = Bench::new();

    // Kernel vs oracle: the general min-plus convolution on non-convex
    // staircase curves. `convolve` is the crossover-dispatching hybrid;
    // `decomposed` is the pure segment path and `lattice_oracle` the
    // O(horizon²) scan, pinned so the heuristic's choice stays visible.
    for n in [16i64, 64] {
        let f = arrivals(n, 10).scale(3);
        let g = arrivals(n, 12).scale(2);
        let horizon = Time(n * 12 + 120);
        b.run(&format!("convolve/hybrid/{n}"), || {
            convolve(&f, &g, horizon)
        });
        b.run(&format!("convolve/segment/{n}"), || {
            convolve_decomposed(&f, &g, horizon)
        });
        b.run(&format!("convolve/lattice_oracle/{n}"), || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // At realistic tick resolution (the job-shop generator uses 500
    // ticks/unit) the horizon is tens of thousands of ticks while the
    // breakpoint count stays small — the regime the segment kernel is for.
    {
        let f = arrivals(32, 625).scale(3);
        let g = arrivals(32, 750).scale(2);
        let horizon = Time(25_000);
        b.run("convolve/hybrid/sparse_h25k", || convolve(&f, &g, horizon));
        b.run("convolve/segment/sparse_h25k", || {
            convolve_decomposed(&f, &g, horizon)
        });
        b.run("convolve/lattice_oracle/sparse_h25k", || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // Cursor sweep vs front-rescanning pseudo-inverse (Theorem-1 loop).
    for n in [128i64, 1024] {
        let arr = arrivals(n, 10);
        b.run(&format!("inverse_sweep/cursor/{n}"), || {
            let mut cur = CurveCursor::new(&arr);
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = cur.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
        b.run(&format!("inverse_sweep/rescan/{n}"), || {
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = arr.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
    }

    // Policy-seam overhead: identical Theorem 5/6 inputs through the
    // direct kernel and through `policy_for(...).service_bounds` (one
    // vtable hop plus `BoundsInputs` construction per call). The pair pins
    // the trait dispatch as noise (<5%) next to the curve algebra.
    {
        use rta_core::policy::{policy_for, BoundsInputs};
        use rta_core::spnp::spnp_bounds;
        use rta_core::SpnpAvailability;
        let workload = arrivals(48, 10).scale(3);
        let hp_work = arrivals(48, 14).scale(2);
        let hp = spnp_bounds(
            &hp_work,
            &[],
            &[],
            Time::ZERO,
            SpnpAvailability::Conservative,
        )
        .unwrap();
        let horizon = Time(48 * 14 + 200);
        b.run("policy_dispatch/spnp_direct", || {
            spnp_bounds(
                &workload,
                &[&hp.lower],
                &[&hp.upper],
                Time(5),
                SpnpAvailability::Conservative,
            )
            .unwrap()
        });
        let policy = policy_for(SchedulerKind::Spnp);
        b.run("policy_dispatch/spnp_trait", || {
            policy
                .service_bounds(&BoundsInputs {
                    workload: &workload,
                    tau: Time(3),
                    weight: 1,
                    blocking: Time(5),
                    hp_lower: &[&hp.lower],
                    hp_upper: &[&hp.upper],
                    variant: SpnpAvailability::Conservative,
                    ctx: None,
                    horizon,
                    processor: rta_model::ProcessorId(0),
                })
                .unwrap()
        });
    }

    // End-to-end drivers on the largest analysis_scaling configs.
    let big = shop(SchedulerKind::Spp, 8, 6);
    b.run("analysis/exact_spp_8stage_6job", || {
        analyze_exact_spp(&big, &AnalysisConfig::default()).unwrap()
    });
    let wide = shop(SchedulerKind::Spp, 2, 12);
    b.run("analysis/exact_spp_2stage_12job", || {
        analyze_exact_spp(&wide, &AnalysisConfig::default()).unwrap()
    });
    let spnp = shop(SchedulerKind::Spnp, 2, 6);
    b.run("analysis/fixpoint_loops_2stage_6job", || {
        rta_core::fixpoint::analyze_with_loops(&spnp, &AnalysisConfig::default(), 4).unwrap()
    });

    let json = b.to_json(&[
        ("suite", "BENCH_curves"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    if cfg!(feature = "alloc_stats") {
        println!("\nalloc_stats build: not overwriting BENCH_curves.json (timings perturbed)");
    } else {
        std::fs::write("BENCH_curves.json", &json).expect("write BENCH_curves.json");
        println!(
            "\nwrote BENCH_curves.json ({} benchmarks)",
            b.results().len()
        );
    }

    incremental_suite();
}

/// Cold-vs-warm sweeps through the incremental re-analysis engine
/// (`BENCH_incremental.json`). Every cold/session pair computes the same
/// verdicts — the oracle tests in `incremental_oracles.rs` pin them
/// bit-for-bit — so the ratio is pure reuse.
fn incremental_suite() {
    let mut b = Bench::new();
    // Full-precision λ search (64 bisection steps resolves λ* to the f64
    // limit): execution times are integer ticks, so past the first ~12
    // probes every bisection midpoint lands on an already-seen quantized
    // system — a cold driver re-analyzes it, a session answers from its
    // verdict memo.
    let iters = 64;

    // Bisection sweep, loop-tolerant oracle, frame pinned so fixpoint
    // seeds stay valid across scale probes. An 8-stage pipeline makes the
    // fixpoint deep (rounds dominate setup) and coarse ticks keep the
    // probe space small, as in the paper's unit-scale experiments. Cold:
    // clone + full fixpoint per probe.
    let spnp = shop_at_ticks(SchedulerKind::Spnp, 8, 6, 8);
    let (w, h) = AnalysisConfig::default().resolve(&spnp);
    let pinned = AnalysisConfig {
        arrival_window: Some(w),
        horizon: Some(h),
        ..AnalysisConfig::default()
    };
    let rounds = 24;
    b.run("critical_scaling/loops_cold", || {
        bisect(iters, |f| {
            rta_core::fixpoint::analyze_with_loops(&spnp.with_scaled_exec(f), &pinned, rounds)
                .map(|r| r.all_schedulable())
                .unwrap_or(false)
        })
    });
    b.run("critical_scaling/loops_session", || {
        AnalysisSession::pinned(spnp.clone(), pinned.clone())
            .critical_scaling(Oracle::Loops { max_rounds: rounds }, iters)
            .unwrap()
    });

    // The allocation-free steady state: one warm, seeded fixpoint run per
    // iteration on a session whose seed has already converged. The 2-stage
    // shop (12 subjobs) stays below the fixpoint's parallel-dispatch
    // threshold, so this times the sequential in-workspace path — the
    // per-scenario unit cost inside every batched sweep; the `alloc_budget`
    // test pins the warm path's heap traffic.
    let small = shop_at_ticks(SchedulerKind::Spnp, 2, 6, 8);
    let (sw, sh) = AnalysisConfig::default().resolve(&small);
    let small_pinned = AnalysisConfig {
        arrival_window: Some(sw),
        horizon: Some(sh),
        ..AnalysisConfig::default()
    };
    {
        let mut warm = AnalysisSession::pinned(small.clone(), small_pinned.clone());
        warm.analyze_with_loops(rounds).unwrap();
        b.run("fixpoint_loops/alloc_free", move || {
            warm.analyze_with_loops(rounds).unwrap()
        });
    }

    // Same sweep with the exact oracle at full tick resolution (dynamic
    // frame, like the free function) — the conservative data point: far
    // more distinct probes, memoization only collapses the tail.
    let spp = shop(SchedulerKind::Spp, 2, 6);
    let acfg = AnalysisConfig::default();
    b.run("critical_scaling/exact_cold", || {
        bisect(iters, |f| {
            analyze_exact_spp(&spp.with_scaled_exec(f), &acfg)
                .map(|r| r.all_schedulable())
                .unwrap_or(false)
        })
    });
    b.run("critical_scaling/exact_session", || {
        AnalysisSession::new(spp.clone(), acfg.clone())
            .critical_scaling(Oracle::Exact, iters)
            .unwrap()
    });

    // The paper's 1,000-set admission sweep. `strided` is the retired
    // cold path (scoped threads per call, fresh `TaskSystem` per seed),
    // kept as the oracle baseline. `pooled` is the production
    // `admission_probability`, which now runs on the batched scenario
    // engine; `batched` measures the `BatchAnalyzer` entry point directly.
    // The last two should coincide — the wrapper must add nothing — and
    // both must dominate the strided baseline.
    let base = ShopConfig {
        stages: 1,
        procs_per_stage: 2,
        n_jobs: 4,
        scheduler: SchedulerKind::Spp,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0,
        },
        x_min: 0.25,
        ticks_per_unit: 200,
    };
    let threads = rta_core::par::pool_threads();
    b.run("admission/1000sets_strided", || {
        admission_probability_strided(&base, Method::SppSL, 1000, 7, threads, &acfg)
    });
    b.run("admission/1000sets_pooled", || {
        admission_probability(&base, Method::SppSL, 1000, 7, threads, &acfg)
    });
    b.run("admission/1000sets_batched", || {
        admission_probability_batched(&base, Method::SppSL, 1000, 7, &acfg)
    });

    // With the counting allocator installed, also report heap traffic per
    // warm analysis (not a timed row: the counter's atomics perturb the
    // timing baselines, so `alloc_stats` builds never overwrite the JSON
    // written by default builds — see the guard below).
    #[cfg(feature = "alloc_stats")]
    {
        let mut warm = AnalysisSession::pinned(small.clone(), small_pinned.clone());
        for _ in 0..3 {
            warm.analyze_with_loops(rounds).unwrap();
        }
        const RUNS: u64 = 64;
        let before = rta_bench::alloc_stats::alloc_count();
        for _ in 0..RUNS {
            warm.analyze_with_loops(rounds).unwrap();
        }
        let per = (rta_bench::alloc_stats::alloc_count() - before) as f64 / RUNS as f64;
        println!("\nallocs/analysis (warm seeded fixpoint): {per:.2}");
    }

    let json = b.to_json(&[
        ("suite", "BENCH_incremental"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    if cfg!(feature = "alloc_stats") {
        println!("alloc_stats build: not overwriting BENCH_incremental.json (timings perturbed)");
    } else {
        std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
        println!(
            "\nwrote BENCH_incremental.json ({} benchmarks)",
            b.results().len()
        );
    }
}

/// The `critical_scaling` search shape, over an arbitrary probe.
fn bisect(iterations: u32, probe: impl Fn(f64) -> bool) -> Option<f64> {
    let (mut lo, mut hi) = (1.0 / 64.0, 64.0);
    if !probe(lo) {
        return None;
    }
    if probe(hi) {
        return Some(hi);
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        if probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

//! Performance snapshot of the curve kernels and analysis drivers.
//!
//! `cargo run -p rta-bench --release --bin perf_snapshot` times the
//! segment-native kernels (with their lattice-scan oracles for reference)
//! and the end-to-end analyses, then writes `BENCH_curves.json` in the
//! working directory. CI and `scripts/check.sh` use it as the regression
//! baseline for the numbers quoted in DESIGN.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::harness::Bench;
use rta_core::{analyze_exact_spp, AnalysisConfig};
use rta_curves::convolution::{convolve, min_plus_convolve_lattice};
use rta_curves::{Curve, CurveCursor, Time};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{SchedulerKind, TaskSystem};

fn arrivals(n: i64, gap: i64) -> Curve {
    let times: Vec<Time> = (0..n).map(|i| Time(i * gap)).collect();
    Curve::from_event_times(&times)
}

fn shop(scheduler: SchedulerKind, stages: usize, n_jobs: usize) -> TaskSystem {
    let cfg = ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs,
        scheduler,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0 * stages as f64,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    if scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

fn main() {
    let mut b = Bench::new();

    // Kernel vs oracle: the general min-plus convolution on non-convex
    // staircase curves, against the O(horizon²) lattice scan it replaced.
    for n in [16i64, 64] {
        let f = arrivals(n, 10).scale(3);
        let g = arrivals(n, 12).scale(2);
        let horizon = Time(n * 12 + 120);
        b.run(&format!("convolve/segment/{n}"), || {
            convolve(&f, &g, horizon)
        });
        b.run(&format!("convolve/lattice_oracle/{n}"), || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // At realistic tick resolution (the job-shop generator uses 500
    // ticks/unit) the horizon is tens of thousands of ticks while the
    // breakpoint count stays small — the regime the segment kernel is for.
    {
        let f = arrivals(32, 625).scale(3);
        let g = arrivals(32, 750).scale(2);
        let horizon = Time(25_000);
        b.run("convolve/segment/sparse_h25k", || convolve(&f, &g, horizon));
        b.run("convolve/lattice_oracle/sparse_h25k", || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // Cursor sweep vs front-rescanning pseudo-inverse (Theorem-1 loop).
    for n in [128i64, 1024] {
        let arr = arrivals(n, 10);
        b.run(&format!("inverse_sweep/cursor/{n}"), || {
            let mut cur = CurveCursor::new(&arr);
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = cur.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
        b.run(&format!("inverse_sweep/rescan/{n}"), || {
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = arr.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
    }

    // End-to-end drivers on the largest analysis_scaling configs.
    let big = shop(SchedulerKind::Spp, 8, 6);
    b.run("analysis/exact_spp_8stage_6job", || {
        analyze_exact_spp(&big, &AnalysisConfig::default()).unwrap()
    });
    let wide = shop(SchedulerKind::Spp, 2, 12);
    b.run("analysis/exact_spp_2stage_12job", || {
        analyze_exact_spp(&wide, &AnalysisConfig::default()).unwrap()
    });
    let spnp = shop(SchedulerKind::Spnp, 2, 6);
    b.run("analysis/fixpoint_loops_2stage_6job", || {
        rta_core::fixpoint::analyze_with_loops(&spnp, &AnalysisConfig::default(), 4).unwrap()
    });

    let json = b.to_json(&[
        ("suite", "BENCH_curves"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    std::fs::write("BENCH_curves.json", &json).expect("write BENCH_curves.json");
    println!(
        "\nwrote BENCH_curves.json ({} benchmarks)",
        b.results().len()
    );
}

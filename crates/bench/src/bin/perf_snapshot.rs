//! Performance snapshot of the curve kernels and analysis drivers.
//!
//! `cargo run -p rta-bench --release --bin perf_snapshot` times the
//! segment-native kernels (with their lattice-scan oracles for reference)
//! and the end-to-end analyses, then writes `BENCH_curves.json` and
//! `BENCH_incremental.json` (cold-vs-warm sweeps through
//! [`AnalysisSession`]) in the working directory. CI and
//! `scripts/check.sh` use them as the regression baselines for the numbers
//! quoted in DESIGN.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::admission::{
    admission_probability, admission_probability_batched, admission_probability_strided, Method,
};
use rta_bench::harness::Bench;
use rta_core::sensitivity::region::{explore_region, RegionConfig};
use rta_core::sensitivity::Oracle;
use rta_core::{analyze_exact_spp, AnalysisConfig, AnalysisSession};
use rta_curves::arena::Scratch;
use rta_curves::convolution::{convolve, convolve_decomposed_into, min_plus_convolve_lattice};
use rta_curves::ops::linear_combine_into;
use rta_curves::{Curve, CurveCursor, SoaCurve, Time};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder, TaskSystem};

fn arrivals(n: i64, gap: i64) -> Curve {
    let times: Vec<Time> = (0..n).map(|i| Time(i * gap)).collect();
    Curve::from_event_times(&times)
}

fn shop(scheduler: SchedulerKind, stages: usize, n_jobs: usize) -> TaskSystem {
    shop_at_ticks(scheduler, stages, n_jobs, 500)
}

fn shop_at_ticks(
    scheduler: SchedulerKind,
    stages: usize,
    n_jobs: usize,
    ticks_per_unit: i64,
) -> TaskSystem {
    let cfg = ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs,
        scheduler,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0 * stages as f64,
        },
        x_min: 0.2,
        ticks_per_unit,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    if scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

/// SPP pipeline with one burst-train flow crossing the first `flow_stages`
/// stages and two periodic jobs per stage — a wide variant of the
/// `examples/region_explorer` workload. The flow carries the lowest
/// priority (deadline-monotonic, longest deadline), so a burst edit dirties
/// only the flow's own subjob cone while the other `2·stages` jobs stay
/// cached — the cold arm re-derives all of them per probe.
fn bursty_pipeline(stages: usize, flow_stages: usize) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let procs: Vec<_> = (0..stages)
        .map(|i| b.add_processor(format!("stage-{}", i + 1), SchedulerKind::Spp))
        .collect();
    b.add_job(
        "bursty-flow",
        Time(150 * flow_stages as i64),
        ArrivalPattern::BurstTrain {
            burst_len: 1,
            intra_gap: Time(8),
            train_period: Time(400),
            offset: Time::ZERO,
        },
        procs[..flow_stages]
            .iter()
            .map(|&p| (p, Time(10)))
            .collect(),
    );
    for (i, &p) in procs.iter().enumerate() {
        let i = i as i64;
        b.add_job(
            format!("local-a{}", i + 1),
            Time(80),
            ArrivalPattern::Periodic {
                period: Time(80),
                offset: Time(i * 7 % 80),
            },
            vec![(p, Time(16))],
        );
        b.add_job(
            format!("local-b{}", i + 1),
            Time(120),
            ArrivalPattern::Periodic {
                period: Time(120),
                offset: Time((5 + i * 11) % 120),
            },
            vec![(p, Time(20))],
        );
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

/// `sys` with every burst-train job's burst length replaced by `len`.
fn with_burst(sys: &TaskSystem, len: u32) -> TaskSystem {
    let mut out = sys.clone();
    for k in 0..out.jobs().len() {
        if let ArrivalPattern::BurstTrain {
            intra_gap,
            train_period,
            offset,
            ..
        } = out.jobs()[k].arrival
        {
            out.set_arrival(
                rta_model::JobId(k),
                ArrivalPattern::BurstTrain {
                    burst_len: len,
                    intra_gap,
                    train_period,
                    offset,
                },
            );
        }
    }
    out
}

fn main() {
    let mut b = Bench::new();

    // Kernel vs oracle: the general min-plus convolution on non-convex
    // staircase curves. `convolve` is the crossover-dispatching hybrid;
    // `segment` is the SoA decomposition path driven the way the analyses
    // drive it (warm `Scratch`, reused output) and `lattice_oracle` the
    // O(horizon²) scan, pinned so the heuristic's choice stays visible.
    let mut scratch = Scratch::new();
    let mut conv_out = Curve::zero();
    for n in [16i64, 64] {
        let f = arrivals(n, 10).scale(3);
        let g = arrivals(n, 12).scale(2);
        let horizon = Time(n * 12 + 120);
        b.run(&format!("convolve/hybrid/{n}"), || {
            convolve(&f, &g, horizon)
        });
        b.run(&format!("convolve/segment/{n}"), || {
            convolve_decomposed_into(&f, &g, horizon, &mut scratch, &mut conv_out)
        });
        b.run(&format!("convolve/lattice_oracle/{n}"), || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // At realistic tick resolution (the job-shop generator uses 500
    // ticks/unit) the horizon is tens of thousands of ticks while the
    // breakpoint count stays small — the regime the segment kernel is for.
    {
        let f = arrivals(32, 625).scale(3);
        let g = arrivals(32, 750).scale(2);
        let horizon = Time(25_000);
        b.run("convolve/hybrid/sparse_h25k", || convolve(&f, &g, horizon));
        b.run("convolve/segment/sparse_h25k", || {
            convolve_decomposed_into(&f, &g, horizon, &mut scratch, &mut conv_out)
        });
        b.run("convolve/lattice_oracle/sparse_h25k", || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // SoA kernels against their AoS counterparts on the merge-heavy shapes
    // the fixpoint inner loop produces. Same inputs, warm buffers on both
    // sides; `tests/soa_kernels.rs` pins the outputs equal, so the pair is
    // a pure layout comparison.
    {
        let a = arrivals(256, 7).scale(3);
        let c = arrivals(256, 11).scale(2);
        let (sa, sc) = (SoaCurve::from_curve(&a), SoaCurve::from_curve(&c));
        let mut aos_out = Curve::zero();
        let mut soa_out = SoaCurve::zero();
        b.run("aos/linear_combine/256", || {
            linear_combine_into(&a, 2, &c, -1, &mut aos_out)
        });
        b.run("soa/linear_combine/256", || {
            rta_curves::soa::linear_combine_into(&sa, 2, &sc, -1, &mut soa_out)
        });
        b.run("aos/floor_div/256", || {
            a.floor_div_into(3, Time(2048), &mut aos_out).unwrap()
        });
        b.run("soa/floor_div/256", || {
            sa.floor_div_into(3, Time(2048), &mut soa_out).unwrap()
        });
        b.run("aos/pointwise_min/256", || {
            a.min_with_into(&c, &mut aos_out)
        });
        b.run("soa/pointwise_min/256", || {
            sa.min_with_into(&sc, &mut soa_out)
        });
    }

    // Cursor sweep vs front-rescanning pseudo-inverse (Theorem-1 loop).
    for n in [128i64, 1024] {
        let arr = arrivals(n, 10);
        b.run(&format!("inverse_sweep/cursor/{n}"), || {
            let mut cur = CurveCursor::new(&arr);
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = cur.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
        b.run(&format!("inverse_sweep/rescan/{n}"), || {
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = arr.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
    }

    // Policy-seam overhead: identical Theorem 5/6 inputs through the
    // direct kernel and through `policy_for(...).service_bounds` (one
    // vtable hop plus `BoundsInputs` construction per call). The pair pins
    // the trait dispatch as noise (<5%) next to the curve algebra.
    {
        use rta_core::policy::{policy_for, BoundsInputs};
        use rta_core::spnp::spnp_bounds;
        use rta_core::SpnpAvailability;
        let workload = arrivals(48, 10).scale(3);
        let hp_work = arrivals(48, 14).scale(2);
        let hp = spnp_bounds(
            &hp_work,
            &[],
            &[],
            Time::ZERO,
            SpnpAvailability::Conservative,
        )
        .unwrap();
        let horizon = Time(48 * 14 + 200);
        b.run("policy_dispatch/spnp_direct", || {
            spnp_bounds(
                &workload,
                &[&hp.lower],
                &[&hp.upper],
                Time(5),
                SpnpAvailability::Conservative,
            )
            .unwrap()
        });
        let policy = policy_for(SchedulerKind::Spnp);
        b.run("policy_dispatch/spnp_trait", || {
            policy
                .service_bounds(&BoundsInputs {
                    workload: &workload,
                    tau: Time(3),
                    weight: 1,
                    blocking: Time(5),
                    hp_lower: &[&hp.lower],
                    hp_upper: &[&hp.upper],
                    variant: SpnpAvailability::Conservative,
                    ctx: None,
                    horizon,
                    processor: rta_model::ProcessorId(0),
                })
                .unwrap()
        });
    }

    // End-to-end drivers on the largest analysis_scaling configs.
    let big = shop(SchedulerKind::Spp, 8, 6);
    b.run("analysis/exact_spp_8stage_6job", || {
        analyze_exact_spp(&big, &AnalysisConfig::default()).unwrap()
    });
    let wide = shop(SchedulerKind::Spp, 2, 12);
    b.run("analysis/exact_spp_2stage_12job", || {
        analyze_exact_spp(&wide, &AnalysisConfig::default()).unwrap()
    });
    let spnp = shop(SchedulerKind::Spnp, 2, 6);
    b.run("analysis/fixpoint_loops_2stage_6job", || {
        rta_core::fixpoint::analyze_with_loops(&spnp, &AnalysisConfig::default(), 4).unwrap()
    });

    let json = b.to_json(&[
        ("suite", "BENCH_curves"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    if cfg!(feature = "alloc_stats") {
        println!("\nalloc_stats build: not overwriting BENCH_curves.json (timings perturbed)");
    } else {
        std::fs::write("BENCH_curves.json", &json).expect("write BENCH_curves.json");
        println!(
            "\nwrote BENCH_curves.json ({} benchmarks)",
            b.results().len()
        );
    }

    incremental_suite();
}

/// Cold-vs-warm sweeps through the incremental re-analysis engine
/// (`BENCH_incremental.json`). Every cold/session pair computes the same
/// verdicts — the oracle tests in `incremental_oracles.rs` pin them
/// bit-for-bit — so the ratio is pure reuse.
fn incremental_suite() {
    let mut b = Bench::new();
    // Full-precision λ search (64 bisection steps resolves λ* to the f64
    // limit): execution times are integer ticks, so past the first ~12
    // probes every bisection midpoint lands on an already-seen quantized
    // system — a cold driver re-analyzes it, a session answers from its
    // verdict memo.
    let iters = 64;

    // Bisection sweep, loop-tolerant oracle, frame pinned so fixpoint
    // seeds stay valid across scale probes. An 8-stage pipeline makes the
    // fixpoint deep (rounds dominate setup) and coarse ticks keep the
    // probe space small, as in the paper's unit-scale experiments. Cold:
    // clone + full fixpoint per probe.
    let spnp = shop_at_ticks(SchedulerKind::Spnp, 8, 6, 8);
    let (w, h) = AnalysisConfig::default().resolve(&spnp);
    let pinned = AnalysisConfig {
        arrival_window: Some(w),
        horizon: Some(h),
        ..AnalysisConfig::default()
    };
    let rounds = 24;
    b.run("critical_scaling/loops_cold", || {
        bisect(iters, |f| {
            rta_core::fixpoint::analyze_with_loops(&spnp.with_scaled_exec(f), &pinned, rounds)
                .map(|r| r.all_schedulable())
                .unwrap_or(false)
        })
    });
    b.run("critical_scaling/loops_session", || {
        AnalysisSession::pinned(spnp.clone(), pinned.clone())
            .critical_scaling(Oracle::Loops { max_rounds: rounds }, iters)
            .unwrap()
    });

    // The allocation-free steady state: one warm, seeded fixpoint run per
    // iteration on a session whose seed has already converged. The 2-stage
    // shop (12 subjobs) stays below the fixpoint's parallel-dispatch
    // threshold, so this times the sequential in-workspace path — the
    // per-scenario unit cost inside every batched sweep; the `alloc_budget`
    // test pins the warm path's heap traffic.
    let small = shop_at_ticks(SchedulerKind::Spnp, 2, 6, 8);
    let (sw, sh) = AnalysisConfig::default().resolve(&small);
    let small_pinned = AnalysisConfig {
        arrival_window: Some(sw),
        horizon: Some(sh),
        ..AnalysisConfig::default()
    };
    {
        let mut warm = AnalysisSession::pinned(small.clone(), small_pinned.clone());
        warm.analyze_with_loops(rounds).unwrap();
        b.run("fixpoint_loops/alloc_free", move || {
            warm.analyze_with_loops(rounds).unwrap()
        });
    }

    // Same sweep with the exact oracle at full tick resolution (dynamic
    // frame, like the free function) — the conservative data point: far
    // more distinct probes, memoization only collapses the tail.
    let spp = shop(SchedulerKind::Spp, 2, 6);
    let acfg = AnalysisConfig::default();
    b.run("critical_scaling/exact_cold", || {
        bisect(iters, |f| {
            analyze_exact_spp(&spp.with_scaled_exec(f), &acfg)
                .map(|r| r.all_schedulable())
                .unwrap_or(false)
        })
    });
    b.run("critical_scaling/exact_session", || {
        AnalysisSession::new(spp.clone(), acfg.clone())
            .critical_scaling(Oracle::Exact, iters)
            .unwrap()
    });

    // Schedulability-region sweep: a 32×32 (execution-scale × burst-length)
    // grid over the bursty SPP pipeline under the exact oracle. For the
    // exact path `explore_region` walks scale-outer/burst-inner, so the
    // inner delta is a single `set_arrival` whose dirty cone is just the
    // bursty flow's two subjobs — the other 32 single-hop jobs are served
    // from the session's curve and verdict caches. `grid_cold` performs the
    // *identical* transposed walk — same pinned frame, same early exits
    // (a column failing at the smallest burst fails all wider ones) — with
    // a fresh full analysis per probe. The verdicts coincide (the
    // `frontier_is_monotone_and_matches_cold_analysis` and
    // `loops_oracle_cells_match_cold_fixpoint` region tests pin both walk
    // orders), so the ratio is pure session reuse.
    let pipeline = bursty_pipeline(16, 2);
    let region = RegionConfig::grid(0.25, 4.0, 32, 1, 32, 32, Oracle::Exact);
    b.run("region/32x32_grid", || {
        explore_region(&pipeline, &acfg, &region).unwrap()
    });
    let (rw, rh) = acfg.resolve(&with_burst(&pipeline, 32));
    let rpinned = AnalysisConfig {
        arrival_window: Some(rw),
        horizon: Some(rh),
        ..AnalysisConfig::default()
    };
    b.run("region/32x32_grid_cold", || {
        let mut masks = vec![vec![false; region.scales.len()]; region.burst_lens.len()];
        'columns: for (si, &s) in region.scales.iter().enumerate() {
            for (bi, &bl) in region.burst_lens.iter().enumerate() {
                let row_sys = with_burst(&pipeline, bl).with_scaled_exec(s);
                let ok = rta_core::analyze_exact_spp(&row_sys, &rpinned)
                    .map(|r| r.all_schedulable())
                    .unwrap_or(false);
                if ok {
                    masks[bi][si] = true;
                } else if bi == 0 {
                    break 'columns;
                } else {
                    break;
                }
            }
        }
        masks
    });

    // The paper's 1,000-set admission sweep. `strided` is the retired
    // cold path (scoped threads per call, fresh `TaskSystem` per seed),
    // kept as the oracle baseline. `pooled` is the production
    // `admission_probability`, which now runs on the batched scenario
    // engine; `batched` measures the `BatchAnalyzer` entry point directly.
    // The last two should coincide — the wrapper must add nothing — and
    // both must dominate the strided baseline.
    let base = ShopConfig {
        stages: 1,
        procs_per_stage: 2,
        n_jobs: 4,
        scheduler: SchedulerKind::Spp,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0,
        },
        x_min: 0.25,
        ticks_per_unit: 200,
    };
    let threads = rta_core::par::pool_threads();
    b.run("admission/1000sets_strided", || {
        admission_probability_strided(&base, Method::SppSL, 1000, 7, threads, &acfg)
    });
    b.run("admission/1000sets_pooled", || {
        admission_probability(&base, Method::SppSL, 1000, 7, threads, &acfg)
    });
    b.run("admission/1000sets_batched", || {
        admission_probability_batched(&base, Method::SppSL, 1000, 7, &acfg)
    });

    // With the counting allocator installed, also report heap traffic per
    // warm analysis (not a timed row: the counter's atomics perturb the
    // timing baselines, so `alloc_stats` builds never overwrite the JSON
    // written by default builds — see the guard below).
    #[cfg(feature = "alloc_stats")]
    {
        let mut warm = AnalysisSession::pinned(small.clone(), small_pinned.clone());
        for _ in 0..3 {
            warm.analyze_with_loops(rounds).unwrap();
        }
        const RUNS: u64 = 64;
        let before = rta_bench::alloc_stats::alloc_count();
        for _ in 0..RUNS {
            warm.analyze_with_loops(rounds).unwrap();
        }
        let per = (rta_bench::alloc_stats::alloc_count() - before) as f64 / RUNS as f64;
        println!("\nallocs/analysis (warm seeded fixpoint): {per:.2}");
    }

    let json = b.to_json(&[
        ("suite", "BENCH_incremental"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    if cfg!(feature = "alloc_stats") {
        println!("alloc_stats build: not overwriting BENCH_incremental.json (timings perturbed)");
    } else {
        std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
        println!(
            "\nwrote BENCH_incremental.json ({} benchmarks)",
            b.results().len()
        );
    }
}

/// The `critical_scaling` search shape, over an arbitrary probe.
fn bisect(iterations: u32, probe: impl Fn(f64) -> bool) -> Option<f64> {
    let (mut lo, mut hi) = (1.0 / 64.0, 64.0);
    if !probe(lo) {
        return None;
    }
    if probe(hi) {
        return Some(hi);
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        if probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

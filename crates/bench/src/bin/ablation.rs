//! Ablation: the SPNP availability recursion of Theorem 5 — paper-verbatim
//! (`AsPrinted`, Eq. 17) vs. the provably sound mixed-increment form
//! (`Conservative`, the library default).
//!
//! Reports, per utilization level: admission probability under each
//! variant, plus bound-violation rates against the simulator. The verbatim
//! variant is tighter (admits more) but can under-estimate; the
//! conservative variant never violates (see DESIGN.md §5).
//!
//! Usage: `cargo run -p rta-bench --release --bin ablation [-- --sets N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::admission::{admission_probability, Method};
use rta_core::{analyze_bounds, AnalysisConfig, SpnpAvailability};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{JobId, SchedulerKind};
use rta_sim::{simulate, SimConfig};

fn shop(utilization: f64) -> ShopConfig {
    ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler: SchedulerKind::Spnp,
        utilization,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 4.0,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    }
}

fn violation_rate(variant: SpnpAvailability, sets: u64, util: f64) -> f64 {
    let (mut bad, mut total) = (0u64, 0u64);
    for seed in 0..sets {
        let cfg = shop(util);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = generate(&cfg, &mut rng).unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let acfg = AnalysisConfig {
            spnp_availability: variant,
            ..Default::default()
        };
        let (window, horizon) = acfg.resolve(&sys);
        let report = analyze_bounds(&sys, &acfg).unwrap();
        let sim = simulate(&sys, &SimConfig { window, horizon });
        for (k, jb) in report.jobs.iter().enumerate() {
            let Some(bound) = jb.e2e_bound else { continue };
            for m in 1..=sim.instances(JobId(k)) {
                if let Some(resp) = sim.response(JobId(k), m) {
                    total += 1;
                    if resp > bound {
                        bad += 1;
                    }
                }
            }
        }
    }
    bad as f64 / total.max(1) as f64
}

fn main() {
    let sets: u64 = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--sets")
        .map(|w| w[1].parse().expect("--sets N"))
        .unwrap_or(60);

    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14}",
        "util", "admit(printed)", "admit(conserv)", "viol(printed)", "viol(conserv)"
    );
    for util in [0.3, 0.5, 0.7, 0.9] {
        let base = shop(util);
        let printed_cfg = AnalysisConfig {
            spnp_availability: SpnpAvailability::AsPrinted,
            ..Default::default()
        };
        let conserv_cfg = AnalysisConfig::default();
        let ap = admission_probability(&base, Method::SpnpApp, sets as u32, 7, 1, &printed_cfg);
        let ac = admission_probability(&base, Method::SpnpApp, sets as u32, 7, 1, &conserv_cfg);
        let vp = violation_rate(SpnpAvailability::AsPrinted, sets, util);
        let vc = violation_rate(SpnpAvailability::Conservative, sets, util);
        println!("{util:>6.2} {ap:>16.3} {ac:>16.3} {vp:>14.4} {vc:>14.4}");
    }
}

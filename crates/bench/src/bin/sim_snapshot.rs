//! Performance snapshot of the discrete-event simulator
//! (`BENCH_sim.json`).
//!
//! `cargo run -p rta-bench --release --bin sim_snapshot` times the event
//! engine on the standard job-shop workload and writes `BENCH_sim.json` in
//! the working directory; `scripts/check.sh` gates it against the committed
//! baseline like the other suites.
//!
//! The headline row is `sim/throughput/jobshop`: nanoseconds per **subjob
//! completion** on a Figure-2-shaped shop (4 stages × 2 processors, 6 jobs,
//! SPP, utilization 0.6) simulated over a long arrival window. The ROADMAP
//! target is ≥ 10⁶ subjob completions per second, i.e. the row must stay
//! below 1000 ns.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::harness::Bench;
use rta_curves::Time;
use rta_model::distributions::Dist;
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{SchedulerKind, TaskSystem};
use rta_sim::batch::{replicate, BatchConfig};
use rta_sim::{simulate, SimConfig, SimResult};

/// The standard throughput workload: the Figure 2 shop shape at realistic
/// tick resolution, simulated over a window long enough that per-run setup
/// is noise next to the event loop.
fn throughput_workload() -> (TaskSystem, SimConfig) {
    let cfg = ShopConfig {
        stages: 4,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler: SchedulerKind::Spp,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 8.0,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    // A long window (vs the analysis default) so one run retires tens of
    // thousands of subjob completions.
    let window = Time(400_000);
    let horizon = rta_model::horizon::analysis_horizon(&sys, window);
    (sys, SimConfig { window, horizon })
}

fn completed_hops(res: &SimResult) -> u64 {
    res.hop_completions
        .iter()
        .flatten()
        .flatten()
        .filter(|c| c.is_some())
        .count() as u64
}

fn main() {
    let mut b = Bench::new();

    let (sys, scfg) = throughput_workload();
    let completions = completed_hops(&simulate(&sys, &scfg));
    assert!(
        completions > 10_000,
        "throughput workload too small: {completions} completions"
    );
    let run = b.run("sim/run/jobshop", || simulate(&sys, &scfg));
    let per_completion = run.ns_per_iter / completions as f64;
    b.record("sim/throughput/jobshop", completions, per_completion);
    println!(
        "  -> {completions} subjob completions/run, {:.3} M completions/sec",
        1e3 / per_completion
    );

    // Batched replication: 1000 independent bursty draws through the
    // per-worker (sampler, engine, result) workspaces — times the whole
    // Monte-Carlo path (sample + simulate + collect), not just the event
    // loop.
    let shop = ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler: SchedulerKind::Spp,
        utilization: 0.7,
        arrivals: ShopArrivals::Bursty {
            deadline: Dist::Exponential { mean: 6.0 },
        },
        x_min: 0.25,
        ticks_per_unit: 100,
    };
    let bcfg = BatchConfig {
        draws: 1000,
        base_seed: 42,
    };
    let batch = b.run("sim/batch/1000draws", || replicate(&shop, &bcfg));
    let samples: usize = replicate(&shop, &bcfg)
        .jobs
        .iter()
        .map(|j| j.samples.len())
        .sum();
    println!(
        "  -> {samples} response samples over {} draws, {:.1} µs/draw",
        bcfg.draws,
        batch.ns_per_iter / bcfg.draws as f64 / 1e3
    );

    let json = b.to_json(&[
        ("suite", "BENCH_sim"),
        ("package", "rta-bench"),
        ("profile", "release"),
    ]);
    if cfg!(feature = "alloc_stats") {
        println!("\nalloc_stats build: not overwriting BENCH_sim.json (timings perturbed)");
    } else {
        std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
        println!("\nwrote BENCH_sim.json ({} benchmarks)", b.results().len());
    }
}

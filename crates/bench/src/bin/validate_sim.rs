//! Validate the analyses against the discrete-event simulator on random
//! job shops, reporting:
//!
//! * exact SPP agreement (must be 100% of instances),
//! * bound-domination statistics for SPNP/FCFS (conservative variant),
//! * the tightness ratio `bound / simulated WCRT` per method.
//!
//! Usage: `cargo run -p rta-bench --release --bin validate_sim [-- --sets N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::{analyze_bounds, analyze_exact_spp, AnalysisConfig};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{JobId, SchedulerKind};
use rta_sim::{simulate, SimConfig};

fn shop(scheduler: SchedulerKind, stages: usize, utilization: f64) -> ShopConfig {
    ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler,
        utilization,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0 * stages as f64,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    }
}

fn main() {
    let sets: u64 = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--sets")
        .map(|w| w[1].parse().expect("--sets N"))
        .unwrap_or(30);

    println!("validate_sim: {sets} job sets per (scheduler, stages, util) cell\n");

    // --- Exact SPP agreement ---
    let mut checked = 0u64;
    let mut mismatches = 0u64;
    for seed in 0..sets {
        for (stages, util) in [(1, 0.5), (2, 0.7), (3, 0.6)] {
            let cfg = shop(SchedulerKind::Spp, stages, util);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sys = generate(&cfg, &mut rng).unwrap();
            assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
            let acfg = AnalysisConfig::default();
            let (window, horizon) = acfg.resolve(&sys);
            let report = analyze_exact_spp(&sys, &acfg).unwrap();
            let sim = simulate(&sys, &SimConfig { window, horizon });
            for (k, jr) in report.jobs.iter().enumerate() {
                for m in 1..=sim.instances(JobId(k)) {
                    checked += 1;
                    if jr.responses[m - 1] != sim.response(JobId(k), m) {
                        mismatches += 1;
                    }
                }
            }
        }
    }
    println!("SPP/Exact vs simulation: {checked} instances checked, {mismatches} mismatches");
    assert_eq!(mismatches, 0, "exact analysis must equal simulation");

    // --- Bound domination + tightness ---
    for scheduler in [SchedulerKind::Spp, SchedulerKind::Spnp, SchedulerKind::Fcfs] {
        let mut total = 0u64;
        let mut violations = 0u64;
        let mut ratio_sum = 0f64;
        let mut ratio_n = 0u64;
        for seed in 0..sets {
            for (stages, util) in [(1, 0.5), (2, 0.6), (3, 0.4)] {
                let cfg = shop(scheduler, stages, util);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sys = generate(&cfg, &mut rng).unwrap();
                if scheduler.uses_priorities() {
                    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
                }
                let acfg = AnalysisConfig::default();
                let (window, horizon) = acfg.resolve(&sys);
                let report = analyze_bounds(&sys, &acfg).unwrap();
                let sim = simulate(&sys, &SimConfig { window, horizon });
                for (k, jb) in report.jobs.iter().enumerate() {
                    let Some(bound) = jb.e2e_bound else { continue };
                    let job = JobId(k);
                    let mut worst = None::<rta_curves::Time>;
                    for m in 1..=sim.instances(job) {
                        if let Some(resp) = sim.response(job, m) {
                            total += 1;
                            if resp > bound {
                                violations += 1;
                            }
                            worst = Some(worst.map_or(resp, |w| w.max(resp)));
                        }
                    }
                    if let Some(w) = worst {
                        if w.ticks() > 0 {
                            ratio_sum += bound.ticks() as f64 / w.ticks() as f64;
                            ratio_n += 1;
                        }
                    }
                }
            }
        }
        println!(
            "{:>4}/App bounds: {total} instances, {violations} violations ({:.3}%), \
             mean tightness bound/observed-WCRT = {:.2}",
            scheduler,
            100.0 * violations as f64 / total.max(1) as f64,
            ratio_sum / ratio_n.max(1) as f64,
        );
    }
    println!("\nvalidation complete");
}

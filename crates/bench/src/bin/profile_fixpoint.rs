//! Tight warm-fixpoint loop for sampling profilers.
//!
//! `cargo run -p rta-bench --release --bin profile_fixpoint -- [iters]`
//! replays the `fixpoint_loops/alloc_free` scenario (the warm, seeded
//! sequential fixpoint on the 2-stage 6-job SPNP shop) `iters` times so a
//! profiler like `gprofng collect app` has a single hot region to sample.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::{AnalysisConfig, AnalysisSession};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::SchedulerKind;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    // COLD=1 replays `analysis/fixpoint_loops_2stage_6job` (fresh analysis
    // at ticks 500) instead of the warm seeded session.
    let cold = std::env::var("COLD").is_ok();
    let cfg = ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler: SchedulerKind::Spnp,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 4.0,
        },
        x_min: 0.2,
        ticks_per_unit: if cold { 500 } else { 8 },
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    let (w, h) = AnalysisConfig::default().resolve(&sys);
    let pinned = AnalysisConfig {
        arrival_window: Some(w),
        horizon: Some(h),
        ..AnalysisConfig::default()
    };
    if std::env::var("PRINT_LENS").is_ok() {
        eprintln!("window {w:?} horizon {h:?}");
        for (k, job) in sys.jobs().iter().enumerate() {
            let times = job.arrival.release_times(w);
            eprintln!(
                "job {k}: {} releases, {} subjobs",
                times.len(),
                job.subjobs.len()
            );
        }
    }
    let mut acc = 0usize;
    if cold {
        for _ in 0..iters {
            let report =
                rta_core::fixpoint::analyze_with_loops(&sys, &AnalysisConfig::default(), 4)
                    .unwrap();
            acc = acc.wrapping_add(report.jobs.len());
        }
    } else {
        let mut warm = AnalysisSession::pinned(sys, pinned);
        warm.analyze_with_loops(24).unwrap();
        for _ in 0..iters {
            let report = warm.analyze_with_loops(24).unwrap();
            acc = acc.wrapping_add(report.jobs.len());
        }
    }
    println!("done: {iters} iters (sink {acc})");
}

//! Minimal self-calibrating timing harness for the `harness = false`
//! benchmarks and the `perf_snapshot` binary.
//!
//! Criterion is deliberately not used: the workspace must build with
//! path-only dependencies in offline environments. The harness keeps the
//! parts that matter for regression tracking — warm-up, auto-calibrated
//! iteration counts, best-of-N sampling — and prints one line per
//! benchmark plus an optional machine-readable JSON dump.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Hierarchical name, e.g. `"pointwise_min/1024"`.
    pub name: String,
    /// Iterations per timed sample.
    pub iters: u64,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Collects measurements and prints them as they complete.
#[derive(Default)]
pub struct Bench {
    samples: usize,
    target: Duration,
    results: Vec<Measurement>,
}

impl Bench {
    /// A harness with the default budget (3 samples of ~100 ms each).
    pub fn new() -> Self {
        Bench {
            samples: 3,
            target: Duration::from_millis(100),
            results: Vec::new(),
        }
    }

    /// Override the per-sample time budget.
    pub fn with_target(mut self, target: Duration) -> Self {
        self.target = target;
        self
    }

    /// Time `f`, auto-calibrating the iteration count to the budget, and
    /// record the best sample. The closure's return value is black-boxed
    /// so the computation cannot be optimized away.
    pub fn run<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &Measurement {
        // Warm-up + calibration: grow the batch until it fills ~1/4 budget.
        let mut iters: u64 = 1;
        let per_iter_est = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target / 4 || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        let iters = ((self.target.as_nanos() as f64 / per_iter_est.max(1.0)) as u64).max(1);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
        }
        println!(
            "{name:<40} {:>14} /iter  ({iters} iters/sample)",
            fmt_ns(best)
        );
        self.results.push(Measurement {
            name: name.to_string(),
            iters,
            ns_per_iter: best,
        });
        self.results.last().expect("just pushed")
    }

    /// Record an externally-derived measurement — e.g. a per-event cost
    /// computed from a timed run and an event count — so it lands in the
    /// JSON dump and the regression gate like any timed row.
    pub fn record(&mut self, name: &str, iters: u64, ns_per_iter: f64) -> &Measurement {
        println!(
            "{name:<40} {:>14} /iter  ({iters} events, derived)",
            fmt_ns(ns_per_iter)
        );
        self.results.push(Measurement {
            name: name.to_string(),
            iters,
            ns_per_iter,
        });
        self.results.last().expect("just pushed")
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Render the measurements as a JSON object (hand-rolled: no serde in
    /// the offline dependency closure).
    pub fn to_json(&self, meta: &[(&str, &str)]) -> String {
        let mut out = String::from("{\n");
        for (k, v) in meta {
            out.push_str(&format!("  \"{}\": \"{}\",\n", escape(k), escape(v)));
        }
        out.push_str("  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}}}{}\n",
                escape(&m.name),
                m.iters,
                m.ns_per_iter,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        let mut b = Bench::new().with_target(Duration::from_millis(2));
        b.run("noop", || 1 + 1);
        assert_eq!(b.results().len(), 1);
        assert!(b.results()[0].ns_per_iter >= 0.0);
        let json = b.to_json(&[("kind", "test")]);
        assert!(json.contains("\"kind\": \"test\""));
        assert!(json.contains("\"name\": \"noop\""));
    }

    #[test]
    fn json_escapes_quotes() {
        let mut b = Bench::new().with_target(Duration::from_millis(1));
        b.run("quo\"te", || 0);
        assert!(b.to_json(&[]).contains("quo\\\"te"));
    }
}

//! Admission-probability estimation (Section 5.1).
//!
//! "The admission probability is defined as the probability that a randomly
//! generated job set can meet its deadline requirements. […] In each run of
//! the simulation, 1,000 sets of jobs are randomly generated. We apply each
//! analysis method separately to determine how many sets of jobs can be
//! admitted."
//!
//! Each job set is identified by a seed; the same seed produces the same
//! periods, routes, weights and deadlines for every method (only the
//! scheduler kind differs), exactly as in the paper's methodology.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::{analyze_bounds, analyze_exact_spp, holistic::holistic_schedulable, AnalysisConfig};
use rta_model::jobshop::{generate, ShopConfig, ShopSampler};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::SchedulerKind;

/// The four analysis methods compared in Section 5.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Exact analysis, preemptive static priorities (Section 4.1).
    SppExact,
    /// Approximate analysis, non-preemptive static priorities (§4.2.2).
    SpnpApp,
    /// Approximate analysis, FCFS (§4.2.3).
    FcfsApp,
    /// Holistic baseline for periodic jobs (Sun & Liu / Tindell-Clark).
    SppSL,
}

impl Method {
    /// The scheduler the method analyzes.
    pub fn scheduler(self) -> SchedulerKind {
        match self {
            Method::SppExact | Method::SppSL => SchedulerKind::Spp,
            Method::SpnpApp => SchedulerKind::Spnp,
            Method::FcfsApp => SchedulerKind::Fcfs,
        }
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Method::SppExact => "SPP/Exact",
            Method::SpnpApp => "SPNP/App",
            Method::FcfsApp => "FCFS/App",
            Method::SppSL => "SPP/S&L",
        }
    }
}

/// Generate job set `seed` for `base` and decide admission under `method`.
pub fn admits(base: &ShopConfig, method: Method, seed: u64, acfg: &AnalysisConfig) -> bool {
    let mut cfg = base.clone();
    cfg.scheduler = method.scheduler();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = match generate(&cfg, &mut rng) {
        Ok(s) => s,
        Err(_) => return false,
    };
    decide(&mut sys, method, acfg)
}

/// Assign priorities (Eq. 24) and run `method`'s analysis on a freshly
/// drawn system. Shared verdict tail of [`admits`] and the batched sweep.
fn decide(sys: &mut rta_model::TaskSystem, method: Method, acfg: &AnalysisConfig) -> bool {
    if method.scheduler().uses_priorities() {
        // The paper's relative-deadline-monotonic rule (Eq. 24).
        if assign_priorities(sys, PriorityPolicy::RelativeDeadlineMonotonic).is_err() {
            return false;
        }
    }
    match method {
        Method::SppExact => analyze_exact_spp(sys, acfg)
            .map(|r| r.all_schedulable())
            .unwrap_or(false),
        Method::SpnpApp | Method::FcfsApp => analyze_bounds(sys, acfg)
            .map(|r| r.all_schedulable())
            .unwrap_or(false),
        // Verdict-only driver: same fixed point as `analyze_holistic`, no
        // report or seed assembly — the sweep only keeps the boolean.
        Method::SppSL => holistic_schedulable(sys, acfg).unwrap_or(false),
    }
}

/// Estimate the admission probability of `method` over `sets` random job
/// sets derived from `master_seed`.
///
/// Runs on the batched scenario engine ([`rta_core::BatchAnalyzer`] over
/// the persistent worker pool): each participating thread redraws sets
/// into a reusable [`ShopSampler`] instead of rebuilding a `TaskSystem`
/// per seed. The `threads` argument is kept for API compatibility (the
/// pool sizes itself), and the estimate is a pure function of
/// `(base, method, sets, master_seed, acfg)` — each seed depends only on
/// its index, never on which worker ran it, so the result is identical to
/// the per-seed [`admits`] loop and to [`admission_probability_strided`].
pub fn admission_probability(
    base: &ShopConfig,
    method: Method,
    sets: u32,
    master_seed: u64,
    threads: usize,
    acfg: &AnalysisConfig,
) -> f64 {
    let _ = threads;
    admission_probability_batched(base, method, sets, master_seed, acfg)
}

/// Batched estimator over [`rta_core::BatchAnalyzer`]: each participating
/// thread builds a [`ShopSampler`] once and redraws every set it claims
/// into that sampler's reusable `TaskSystem` (plus a cloned
/// [`AnalysisConfig`]), so the per-set cost is the random draws and the
/// warm, workspace-backed analysis — no per-set Strings, builders, or
/// shared-state captures.
///
/// Produces exactly the same estimate as [`admission_probability`]: the
/// sampler is draw-for-draw identical to `generate`
/// (`jobshop::ShopSampler`), and the verdict for seed `i` is a pure
/// function of `(base, method, master_seed, i, acfg)`.
pub fn admission_probability_batched(
    base: &ShopConfig,
    method: Method,
    sets: u32,
    master_seed: u64,
    acfg: &AnalysisConfig,
) -> f64 {
    assert!(sets >= 1);
    let mut shop = base.clone();
    shop.scheduler = method.scheduler();
    let batch = rta_core::BatchAnalyzer::new(acfg.clone());
    let admitted = batch
        .run(
            sets as usize,
            move |cfg| (ShopSampler::new(shop.clone()), cfg.clone()),
            move |(sampler, cfg), i| {
                let Ok(sampler) = sampler else {
                    // Template construction failed: `generate` would fail
                    // identically for every seed, so nothing admits.
                    return false;
                };
                let seed = master_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                match sampler.sample(&mut rng) {
                    Ok(sys) => decide(sys, method, cfg),
                    Err(_) => false,
                }
            },
        )
        .into_iter()
        .filter(|&a| a)
        .count();
    admitted as f64 / sets as f64
}

/// The pre-pool estimator: strided scoped threads spawned per call. Kept as
/// the cold baseline for the incremental-engine benchmarks; produces the
/// same estimate as [`admission_probability`].
pub fn admission_probability_strided(
    base: &ShopConfig,
    method: Method,
    sets: u32,
    master_seed: u64,
    threads: usize,
    acfg: &AnalysisConfig,
) -> f64 {
    assert!(sets >= 1);
    let threads = threads.max(1);
    let counter = std::sync::atomic::AtomicU32::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let counter = &counter;
            scope.spawn(move || {
                let mut local = 0u32;
                let mut i = t as u32;
                while i < sets {
                    let seed = master_seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64);
                    if admits(base, method, seed, acfg) {
                        local += 1;
                    }
                    i += threads as u32;
                }
                counter.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    counter.load(std::sync::atomic::Ordering::Relaxed) as f64 / sets as f64
}

/// Default thread count: all cores (the estimator is CPU-bound).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::distributions::Dist;
    use rta_model::jobshop::ShopArrivals;

    fn base(util: f64) -> ShopConfig {
        ShopConfig {
            stages: 1,
            procs_per_stage: 2,
            n_jobs: 4,
            scheduler: SchedulerKind::Spp,
            utilization: util,
            arrivals: ShopArrivals::Periodic {
                deadline_factor: 2.0,
            },
            x_min: 0.25,
            ticks_per_unit: 200,
        }
    }

    #[test]
    fn probability_is_monotone_in_load() {
        let acfg = AnalysisConfig::default();
        let lo = admission_probability(&base(0.2), Method::SppExact, 40, 7, 2, &acfg);
        let hi = admission_probability(&base(0.95), Method::SppExact, 40, 7, 2, &acfg);
        assert!(
            lo >= hi,
            "admission must not increase with load: {lo} < {hi}"
        );
        assert!(lo > 0.5, "light load should mostly admit: {lo}");
    }

    #[test]
    fn exact_dominates_approximations_on_identical_draws() {
        // Method comparison is per-seed: whenever SPNP/App admits, the
        // (preemptive, exact) SPP/Exact analysis must admit the same draw —
        // preemptive scheduling is inherently superior (Section 5.2) and
        // the exact analysis is tighter.
        let acfg = AnalysisConfig::default();
        for seed in 0..30 {
            let cfg = base(0.6);
            if admits(&cfg, Method::SpnpApp, seed, &acfg) {
                assert!(
                    admits(&cfg, Method::SppExact, seed, &acfg),
                    "seed {seed}: SPNP/App admitted but SPP/Exact did not"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_master_seed() {
        let acfg = AnalysisConfig::default();
        let a = admission_probability(&base(0.5), Method::FcfsApp, 25, 99, 3, &acfg);
        let b = admission_probability(&base(0.5), Method::FcfsApp, 25, 99, 1, &acfg);
        assert_eq!(a, b, "thread count must not affect the estimate");
    }

    #[test]
    fn pooled_strided_and_batched_estimators_agree() {
        let acfg = AnalysisConfig::default();
        let pooled = admission_probability(&base(0.6), Method::SppExact, 30, 42, 2, &acfg);
        let strided = admission_probability_strided(&base(0.6), Method::SppExact, 30, 42, 2, &acfg);
        let batched = admission_probability_batched(&base(0.6), Method::SppExact, 30, 42, &acfg);
        assert_eq!(pooled, strided);
        assert_eq!(pooled, batched);
        // Also over the S&L holistic path, which exercises the sequential
        // per-set driver inside the batched sweep.
        let p2 = admission_probability(&base(0.6), Method::SppSL, 30, 42, 2, &acfg);
        let b2 = admission_probability_batched(&base(0.6), Method::SppSL, 30, 42, &acfg);
        assert_eq!(p2, b2);
    }

    #[test]
    fn bursty_mode_works_for_all_but_holistic() {
        let cfg = ShopConfig {
            arrivals: ShopArrivals::Bursty {
                deadline: Dist::Exponential { mean: 8.0 },
            },
            ..base(0.4)
        };
        let acfg = AnalysisConfig::default();
        for m in [Method::SppExact, Method::SpnpApp, Method::FcfsApp] {
            let p = admission_probability(&cfg, m, 20, 5, 2, &acfg);
            assert!((0.0..=1.0).contains(&p));
        }
        // The holistic baseline requires periodic jobs: every set rejected.
        assert_eq!(
            admission_probability(&cfg, Method::SppSL, 10, 5, 2, &acfg),
            0.0
        );
    }
}

//! # rta-bench — experiment harness for the ICPP'98 evaluation
//!
//! Reproduces Section 5 of the paper: admission probability of randomly
//! generated job-shop systems under four analysis methods —
//!
//! * **SPP/Exact** — the exact Section 4.1 analysis,
//! * **SPNP/App** — the Section 4.2.2 approximation,
//! * **FCFS/App** — the Section 4.2.3 approximation,
//! * **SPP/S&L** — the holistic baseline of Sun & Liu (periodic only),
//!
//! over the Figure 3 (periodic) and Figure 4 (bursty) parameter grids, plus
//! a simulator-backed validation sweep. Binaries:
//!
//! * `cargo run -p rta-bench --release --bin fig3 [-- --sets N]`
//! * `cargo run -p rta-bench --release --bin fig4 [-- --sets N]`
//! * `cargo run -p rta-bench --release --bin validate_sim`
//! * `cargo run -p rta-bench --release --bin ablation`
//!
//! Estimation is embarrassingly parallel across job sets and fans out over
//! `std::thread::scope` threads with deterministic per-set seeds.

// The counting allocator (feature `alloc_stats`) is the one sanctioned use
// of `unsafe` in this crate: a `GlobalAlloc` impl cannot be written without
// it. Everything else stays forbidden.
#![cfg_attr(not(feature = "alloc_stats"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc_stats", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod admission;
#[cfg(feature = "alloc_stats")]
pub mod alloc_stats;
pub mod figures;
pub mod harness;
pub mod table;

pub use admission::{admission_probability, admits, Method};

//! Eviction soak: churn 10× the session cap of tenants through the
//! admission service and prove its memory is bounded by the cap, not by
//! tenant count — plus correct re-warm behaviour after eviction.
//!
//! Run with `cargo test -p rta-bench --features alloc_stats --release
//! --test service_soak`. Alone in its binary: the counting allocator is
//! process-global, so the live-byte window must not see unrelated
//! allocations.

#![cfg(feature = "alloc_stats")]

use rta_bench::alloc_stats::live_bytes;
use rta_core::analyze_exact_spp;
use rta_core::service::{AdmissionService, ServiceConfig, Verdict};
use rta_curves::Time;
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{
    ArrivalPattern, Job, ProcessorId, SchedulerKind, Subjob, SystemBuilder, TaskSystem,
};

const CAP: usize = 8;
const TENANTS: usize = 80; // 10× the session cap

/// A small two-stage SPP shop, varied per seed so tenants differ.
fn tenant_system(seed: usize) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    for k in 0..3 {
        let period = 40 + ((seed * 7 + k * 13) % 50) as i64;
        b.add_job(
            format!("T{k}"),
            Time(4 * period),
            ArrivalPattern::Periodic {
                period: Time(period),
                offset: Time(0),
            },
            vec![
                (p1, Time(2 + ((seed + k) % 4) as i64)),
                (p2, Time(2 + ((seed * 3 + k) % 4) as i64)),
            ],
        );
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

/// A light probe with the lowest priority slot on each processor.
fn probe(sys: &TaskSystem, name: &str) -> Job {
    let subjobs = (0..2)
        .map(|i| {
            let pid = ProcessorId(i);
            let lowest = sys
                .subjobs_on(pid)
                .into_iter()
                .filter_map(|r| sys.subjob(r).priority)
                .max()
                .unwrap_or(0);
            Subjob {
                processor: pid,
                exec: Time(1),
                priority: Some(lowest + 1),
                weight: None,
            }
        })
        .collect();
    Job {
        name: name.to_string(),
        deadline: Time(400),
        arrival: ArrivalPattern::Periodic {
            period: Time(100),
            offset: Time(0),
        },
        subjobs,
    }
}

/// One tenant visit: load, probe, roll the probe back if admitted.
fn visit(svc: &mut AdmissionService, seed: usize) -> u64 {
    let tenant = format!("tenant{seed}");
    let out = svc.load(&tenant, tenant_system(seed)).unwrap();
    assert!(out.schedulable, "{tenant}: baseline must be schedulable");
    let admit = svc
        .admit(&tenant, probe(svc.tenant_system(&tenant).unwrap(), "probe"))
        .unwrap();
    if admit.verdict == Verdict::Admitted {
        svc.remove(&tenant, "probe").unwrap();
    }
    assert!(svc.tenant_count() <= CAP, "tenant map exceeded the cap");
    admit.generation
}

#[test]
fn eviction_bounds_memory_and_rewarms_correctly() {
    let mut svc = AdmissionService::new(ServiceConfig {
        max_tenants: CAP,
        ..ServiceConfig::default()
    });

    // Fill to the cap and let every warm structure materialize.
    let mut last_gen = 0;
    for seed in 0..2 * CAP {
        last_gen = visit(&mut svc, seed);
    }
    let plateau = live_bytes();
    assert!(plateau > 0, "counting allocator must be active");

    // Churn the remaining 10×-cap tenants. Live bytes may wiggle with the
    // resident mix but must stay in the plateau's neighbourhood — leaked
    // sessions would grow it linearly in (TENANTS − CAP) · session size.
    let budget = plateau + plateau / 2 + (1 << 20);
    let mut peak = plateau;
    for seed in 2 * CAP..TENANTS {
        let generation = visit(&mut svc, seed);
        assert!(generation > last_gen, "generations must stay monotone");
        last_gen = generation;
        peak = peak.max(live_bytes());
        assert!(
            live_bytes() <= budget,
            "live bytes {} exceeded budget {budget} (plateau {plateau}) at tenant {seed}",
            live_bytes(),
        );
    }
    assert!(
        svc.evictions() >= (TENANTS - CAP) as u64,
        "churning 10× the cap must evict continuously (got {})",
        svc.evictions()
    );
    println!(
        "plateau {plateau} B, peak {peak} B, evictions {}",
        svc.evictions()
    );

    // Re-warm after eviction: tenant0 was evicted long ago; a fresh load
    // must serve verdicts identical to a cold analysis, at a generation
    // above everything seen so far.
    assert!(!svc.contains("tenant0"), "tenant0 should have been evicted");
    let out = svc.load("tenant0", tenant_system(0)).unwrap();
    assert!(
        out.generation > last_gen,
        "re-warmed generation must advance"
    );
    let sys = svc.tenant_system("tenant0").unwrap().clone();
    let mut cold_sys = sys.clone();
    cold_sys.push_job(probe(&sys, "probe"));
    let cfg = svc.tenant_config("tenant0").unwrap();
    let cold = analyze_exact_spp(&cold_sys, &cfg)
        .unwrap()
        .all_schedulable();
    let warm = svc
        .admit("tenant0", probe(&sys, "probe"))
        .unwrap()
        .verdict
        .admitted();
    assert_eq!(warm, cold, "re-warmed verdict must match cold analysis");

    // The pinned config must be byte-stable across evict/re-load cycles.
    let cfg2 = svc.tenant_config("tenant0").unwrap();
    assert_eq!(format!("{cfg:?}"), format!("{cfg2:?}"));
}

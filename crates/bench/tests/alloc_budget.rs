//! Allocation budget of the warm analysis path.
//!
//! Run with `cargo test -p rta-bench --features alloc_stats --release
//! --test alloc_budget`. The single test below is alone in its binary on
//! purpose: the counter is process-global, so no other test may allocate
//! concurrently while the budget window is open.

#![cfg(feature = "alloc_stats")]

use rta_bench::alloc_stats::alloc_count;
use rta_core::sensitivity::Oracle;
use rta_core::{AnalysisConfig, AnalysisSession};
use rta_curves::Time;
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder, TaskSystem};

fn pipeline() -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    b.add_job(
        "T1",
        Time(80),
        ArrivalPattern::Periodic {
            period: Time(40),
            offset: Time::ZERO,
        },
        vec![(p1, Time(4)), (p2, Time(6))],
    );
    b.add_job(
        "T2",
        Time(90),
        ArrivalPattern::Periodic {
            period: Time(45),
            offset: Time::ZERO,
        },
        vec![(p1, Time(5))],
    );
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

/// After warm-up, a seeded loop analysis must do O(1) heap allocations —
/// the arena/workspace discipline of the fixpoint driver. The budget of 8
/// covers the report assembly (one jobs `Vec`, one hop-delay `Vec` per
/// job) plus the per-round peer-reference scratch; everything else comes
/// from the thread-local workspace and the carried seed.
#[test]
fn warm_seeded_analysis_stays_within_allocation_budget() {
    let sys = pipeline();
    let base = AnalysisConfig::default();
    let (window, horizon) = base.resolve(&sys);
    // Pin the frame so the carried seed stays valid run over run.
    let cfg = AnalysisConfig {
        arrival_window: Some(window),
        horizon: Some(horizon),
        ..base
    };
    let mut session = AnalysisSession::pinned(sys, cfg);

    // Warm-up: builds the thread-local workspace and converges the seed.
    for _ in 0..3 {
        assert!(session.analyze_with_loops(16).unwrap().all_schedulable());
    }

    const RUNS: u64 = 64;
    let before = alloc_count();
    for _ in 0..RUNS {
        session.analyze_with_loops(16).unwrap();
    }
    let per_call = (alloc_count() - before) as f64 / RUNS as f64;
    assert!(
        per_call <= 8.0,
        "warm seeded analyze allocates {per_call} times per call (budget 8)"
    );

    // Memoized verdicts are cheaper still: answered from the verdict table
    // without running the driver at all.
    session
        .schedulable(Oracle::Loops { max_rounds: 16 })
        .unwrap();
    let before = alloc_count();
    for _ in 0..RUNS {
        session
            .schedulable(Oracle::Loops { max_rounds: 16 })
            .unwrap();
    }
    let per_probe = (alloc_count() - before) as f64 / RUNS as f64;
    assert!(
        per_probe <= 4.0,
        "memoized verdict allocates {per_probe} times per probe"
    );
}

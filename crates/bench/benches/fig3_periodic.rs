//! Figure 3 (reduced): admission-probability estimation cost per method on
//! the periodic job shop, one Criterion benchmark per analysis method.
//!
//! The full 1000-set reproduction is `cargo run -p rta-bench --release
//! --bin fig3`; this bench pins the per-method cost of a single grid point
//! so regressions in any analysis path surface in `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rta_bench::admission::{admission_probability, Method};
use rta_bench::figures::fig3_panels;
use rta_core::AnalysisConfig;

fn bench_fig3_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_point");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let panels = fig3_panels();
    // Middle panel (2 stages), moderate load — the representative cell.
    let base = {
        let mut b = panels[1].base.clone();
        b.utilization = 0.6;
        b
    };
    let acfg = AnalysisConfig::default();
    for method in [Method::SppExact, Method::SpnpApp, Method::FcfsApp, Method::SppSL] {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| {
                b.iter(|| {
                    black_box(admission_probability(&base, m, 8, 11, 1, &acfg))
                });
            },
        );
    }
    g.finish();
}

fn bench_fig3_stage_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_exact_by_stage_panel");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let acfg = AnalysisConfig::default();
    for (i, panel) in fig3_panels().into_iter().enumerate().take(3) {
        let mut base = panel.base;
        base.utilization = 0.5;
        g.bench_with_input(BenchmarkId::from_parameter(i), &base, |b, base| {
            b.iter(|| {
                black_box(admission_probability(base, Method::SppExact, 8, 13, 1, &acfg))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3_point, bench_fig3_stage_scaling);
criterion_main!(benches);

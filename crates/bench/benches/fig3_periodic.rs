//! Figure 3 (reduced): admission-probability estimation cost per method on
//! the periodic job shop, one benchmark per analysis method.
//!
//! The full 1000-set reproduction is `cargo run -p rta-bench --release
//! --bin fig3`; this bench pins the per-method cost of a single grid point
//! so regressions in any analysis path surface in `cargo bench`.

use rta_bench::admission::{admission_probability, Method};
use rta_bench::figures::fig3_panels;
use rta_bench::harness::Bench;
use rta_core::AnalysisConfig;
use std::time::Duration;

fn main() {
    let mut b = Bench::new().with_target(Duration::from_millis(300));
    let panels = fig3_panels();
    // Middle panel (2 stages), moderate load — the representative cell.
    let base = {
        let mut p = panels[1].base.clone();
        p.utilization = 0.6;
        p
    };
    let acfg = AnalysisConfig::default();
    for method in [
        Method::SppExact,
        Method::SpnpApp,
        Method::FcfsApp,
        Method::SppSL,
    ] {
        b.run(&format!("fig3_point/{}", method.label()), || {
            admission_probability(&base, method, 8, 11, 1, &acfg)
        });
    }

    for (i, panel) in fig3_panels().into_iter().enumerate().take(3) {
        let mut base = panel.base;
        base.utilization = 0.5;
        b.run(&format!("fig3_exact_by_stage_panel/{i}"), || {
            admission_probability(&base, Method::SppExact, 8, 13, 1, &acfg)
        });
    }
}

//! Microbenchmarks of the exact curve algebra (the analysis inner loop).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rta_curves::ops::pointwise_min;
use rta_curves::{Curve, Time};

/// A periodic arrival curve with `n` events spaced `gap` apart.
fn arrivals(n: i64, gap: i64) -> Curve {
    let times: Vec<Time> = (0..n).map(|i| Time(i * gap)).collect();
    Curve::from_event_times(&times)
}

fn bench_running_min(c: &mut Criterion) {
    let mut g = c.benchmark_group("running_min");
    for &n in &[16i64, 128, 1024] {
        let saw = arrivals(n, 10).scale(3).sub(&Curve::identity());
        g.bench_with_input(BenchmarkId::from_parameter(n), &saw, |b, saw| {
            b.iter(|| black_box(saw.running_min()));
        });
    }
    g.finish();
}

fn bench_pointwise_min(c: &mut Criterion) {
    let mut g = c.benchmark_group("pointwise_min");
    for &n in &[16i64, 128, 1024] {
        let a = arrivals(n, 10).scale(2);
        let b2 = Curve::affine(5, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, b2), |b, (a, b2)| {
            b.iter(|| black_box(pointwise_min(a, b2)));
        });
    }
    g.finish();
}

fn bench_floor_div(c: &mut Criterion) {
    let mut g = c.benchmark_group("floor_div");
    for &n in &[16i64, 128, 1024] {
        // A service-like curve: workload clipped by elapsed time.
        let service = arrivals(n, 10).scale(4).min_with(&Curve::identity());
        let horizon = Time(n * 10 + 100);
        g.bench_with_input(BenchmarkId::from_parameter(n), &service, |b, s| {
            b.iter(|| black_box(s.floor_div(4, horizon).unwrap()));
        });
    }
    g.finish();
}

fn bench_inverse_and_compose(c: &mut Criterion) {
    let mut g = c.benchmark_group("inverse_compose");
    for &n in &[16i64, 128, 1024] {
        let step = arrivals(n, 10).scale(7);
        g.bench_with_input(BenchmarkId::new("inverse_curve", n), &step, |b, s| {
            b.iter(|| black_box(s.inverse_curve().unwrap()));
        });
        let inv = step.inverse_curve().unwrap();
        let u = Curve::identity().min_with(&Curve::constant(n * 7));
        g.bench_with_input(BenchmarkId::new("compose", n), &(inv, u), |b, (inv, u)| {
            b.iter(|| black_box(rta_curves::compose::compose(inv, u).unwrap()));
        });
    }
    g.finish();
}

fn bench_exact_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm3_service");
    for &n in &[16i64, 128, 1024] {
        let hp = rta_core::spp::exact_service(&arrivals(n, 10).scale(3), &[]);
        let work = arrivals(n, 12).scale(5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(work, hp), |b, (w, hp)| {
            b.iter(|| black_box(rta_core::spp::exact_service(w, &[hp])));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_running_min, bench_pointwise_min, bench_floor_div,
              bench_inverse_and_compose, bench_exact_service
}
criterion_main!(benches);

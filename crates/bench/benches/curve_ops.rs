//! Microbenchmarks of the exact curve algebra (the analysis inner loop).
//!
//! Run with `cargo bench -p rta-bench --bench curve_ops`. Uses the crate's
//! own [`rta_bench::harness::Bench`] (criterion is not in the offline
//! dependency closure).

use rta_bench::harness::Bench;
use rta_curves::convolution::{convolve, min_plus_convolve_lattice};
use rta_curves::ops::pointwise_min;
use rta_curves::{Curve, CurveCursor, Time};

/// A periodic arrival curve with `n` events spaced `gap` apart.
fn arrivals(n: i64, gap: i64) -> Curve {
    let times: Vec<Time> = (0..n).map(|i| Time(i * gap)).collect();
    Curve::from_event_times(&times)
}

const SIZES: [i64; 3] = [16, 128, 1024];

fn main() {
    let mut b = Bench::new();

    for n in SIZES {
        let saw = arrivals(n, 10).scale(3).sub(&Curve::identity());
        b.run(&format!("running_min/{n}"), || saw.running_min());
    }

    for n in SIZES {
        let a = arrivals(n, 10).scale(2);
        let b2 = Curve::affine(5, 1);
        b.run(&format!("pointwise_min/{n}"), || pointwise_min(&a, &b2));
    }

    for n in SIZES {
        // A service-like curve: workload clipped by elapsed time.
        let service = arrivals(n, 10).scale(4).min_with(&Curve::identity());
        let horizon = Time(n * 10 + 100);
        b.run(&format!("floor_div/{n}"), || {
            service.floor_div(4, horizon).unwrap()
        });
    }

    for n in SIZES {
        let step = arrivals(n, 10).scale(7);
        b.run(&format!("inverse_compose/inverse_curve/{n}"), || {
            step.inverse_curve().unwrap()
        });
        let inv = step.inverse_curve().unwrap();
        let u = Curve::identity().min_with(&Curve::constant(n * 7));
        b.run(&format!("inverse_compose/compose/{n}"), || {
            rta_curves::compose::compose(&inv, &u).unwrap()
        });
    }

    for n in SIZES {
        let hp = rta_core::spp::exact_service(&arrivals(n, 10).scale(3), &[]);
        let work = arrivals(n, 12).scale(5);
        b.run(&format!("thm3_service/{n}"), || {
            rta_core::spp::exact_service(&work, &[&hp])
        });
    }

    // The segment-native general convolution vs the lattice-scan oracle it
    // replaced. Staircase arrival curves are the worst (non-convex) case.
    for n in [16i64, 64, 256] {
        let f = arrivals(n, 10).scale(3);
        let g = arrivals(n, 12).scale(2);
        let horizon = Time(n * 12 + 120);
        b.run(&format!("convolve/segment/{n}"), || {
            convolve(&f, &g, horizon)
        });
        if n <= 64 {
            b.run(&format!("convolve/lattice_oracle/{n}"), || {
                min_plus_convolve_lattice(&f, &g, horizon)
            });
        }
    }

    // At realistic tick resolution the horizon is tens of thousands of
    // ticks while breakpoints stay sparse — the segment kernel's regime.
    {
        let f = arrivals(32, 625).scale(3);
        let g = arrivals(32, 750).scale(2);
        let horizon = Time(25_000);
        b.run("convolve/segment/sparse_h25k", || convolve(&f, &g, horizon));
        b.run("convolve/lattice_oracle/sparse_h25k", || {
            min_plus_convolve_lattice(&f, &g, horizon)
        });
    }

    // Cursor sweep vs front-rescanning inverse: the Theorem-1 inner loop.
    for n in SIZES {
        let arr = arrivals(n, 10);
        b.run(&format!("inverse_sweep/cursor/{n}"), || {
            let mut cur = CurveCursor::new(&arr);
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = cur.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
        b.run(&format!("inverse_sweep/rescan/{n}"), || {
            let mut acc = Time::ZERO;
            for m in 1..=n {
                if let Some(t) = arr.inverse_at(m) {
                    acc += t;
                }
            }
            acc
        });
    }
}

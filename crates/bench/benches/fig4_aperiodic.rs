//! Figure 4 (reduced): admission-probability estimation cost per method on
//! the bursty (Eq. 27) job shop.
//!
//! The full reproduction is `cargo run -p rta-bench --release --bin fig4`;
//! this bench pins the per-method cost of a representative grid point.

use rta_bench::admission::{admission_probability, Method};
use rta_bench::figures::fig4_panels;
use rta_bench::harness::Bench;
use rta_core::AnalysisConfig;
use std::time::Duration;

fn main() {
    let mut b = Bench::new().with_target(Duration::from_millis(300));
    let base = {
        let mut p = fig4_panels()[1].base.clone();
        p.utilization = 0.6;
        p
    };
    let acfg = AnalysisConfig::default();
    for method in [Method::SppExact, Method::SpnpApp, Method::FcfsApp] {
        b.run(&format!("fig4_point/{}", method.label()), || {
            admission_probability(&base, method, 8, 17, 1, &acfg)
        });
    }

    for (i, panel) in fig4_panels().into_iter().enumerate().take(3) {
        let mut base = panel.base;
        base.utilization = 0.5;
        b.run(&format!("fig4_exact_by_variance_panel/{i}"), || {
            admission_probability(&base, Method::SppExact, 8, 19, 1, &acfg)
        });
    }
}

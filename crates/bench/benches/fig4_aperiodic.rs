//! Figure 4 (reduced): admission-probability estimation cost per method on
//! the bursty (Eq. 27) job shop.
//!
//! The full reproduction is `cargo run -p rta-bench --release --bin fig4`;
//! this bench pins the per-method cost of a representative grid point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rta_bench::admission::{admission_probability, Method};
use rta_bench::figures::fig4_panels;
use rta_core::AnalysisConfig;

fn bench_fig4_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_point");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let base = {
        let mut b = fig4_panels()[1].base.clone();
        b.utilization = 0.6;
        b
    };
    let acfg = AnalysisConfig::default();
    for method in [Method::SppExact, Method::SpnpApp, Method::FcfsApp] {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| {
                b.iter(|| {
                    black_box(admission_probability(&base, m, 8, 17, 1, &acfg))
                });
            },
        );
    }
    g.finish();
}

fn bench_fig4_variance_panels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_exact_by_variance_panel");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let acfg = AnalysisConfig::default();
    for (i, panel) in fig4_panels().into_iter().enumerate().take(3) {
        let mut base = panel.base;
        base.utilization = 0.5;
        g.bench_with_input(BenchmarkId::from_parameter(i), &base, |b, base| {
            b.iter(|| {
                black_box(admission_probability(base, Method::SppExact, 8, 19, 1, &acfg))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig4_point, bench_fig4_variance_panels);
criterion_main!(benches);

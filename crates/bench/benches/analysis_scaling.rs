//! Analysis runtime scaling: how the exact, bounds, holistic and fixpoint
//! analyses scale with job count and pipeline depth (the DESIGN.md ablation
//! on analysis cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::{analyze_bounds, analyze_exact_spp, holistic::analyze_holistic, AnalysisConfig};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{SchedulerKind, TaskSystem};

fn system(scheduler: SchedulerKind, stages: usize, n_jobs: usize) -> TaskSystem {
    let cfg = ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs,
        scheduler,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic { deadline_factor: 2.0 * stages as f64 },
        x_min: 0.2,
        ticks_per_unit: 500,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    if scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

fn bench_exact_by_jobs(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_by_jobs");
    for &n in &[2usize, 6, 12] {
        let sys = system(SchedulerKind::Spp, 2, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &sys, |b, sys| {
            b.iter(|| black_box(analyze_exact_spp(sys, &AnalysisConfig::default()).unwrap()));
        });
    }
    g.finish();
}

fn bench_exact_by_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_by_stages");
    for &s in &[1usize, 2, 4, 8] {
        let sys = system(SchedulerKind::Spp, s, 6);
        g.bench_with_input(BenchmarkId::from_parameter(s), &sys, |b, sys| {
            b.iter(|| black_box(analyze_exact_spp(sys, &AnalysisConfig::default()).unwrap()));
        });
    }
    g.finish();
}

fn bench_methods_head_to_head(c: &mut Criterion) {
    let mut g = c.benchmark_group("methods");
    let spp = system(SchedulerKind::Spp, 2, 6);
    let spnp = system(SchedulerKind::Spnp, 2, 6);
    let fcfs = system(SchedulerKind::Fcfs, 2, 6);
    g.bench_function("spp_exact", |b| {
        b.iter(|| black_box(analyze_exact_spp(&spp, &AnalysisConfig::default()).unwrap()));
    });
    g.bench_function("spp_holistic", |b| {
        b.iter(|| black_box(analyze_holistic(&spp, &AnalysisConfig::default()).unwrap()));
    });
    g.bench_function("spnp_bounds", |b| {
        b.iter(|| black_box(analyze_bounds(&spnp, &AnalysisConfig::default()).unwrap()));
    });
    g.bench_function("fcfs_bounds", |b| {
        b.iter(|| black_box(analyze_bounds(&fcfs, &AnalysisConfig::default()).unwrap()));
    });
    g.bench_function("fixpoint_loops", |b| {
        b.iter(|| {
            black_box(
                rta_core::fixpoint::analyze_with_loops(&spnp, &AnalysisConfig::default(), 4)
                    .unwrap(),
            )
        });
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    for &s in &[1usize, 4] {
        let sys = system(SchedulerKind::Spp, s, 6);
        let cfg = rta_sim::SimConfig::defaults_for(&sys);
        g.bench_with_input(BenchmarkId::from_parameter(s), &(sys, cfg), |b, (sys, cfg)| {
            b.iter(|| black_box(rta_sim::simulate(sys, cfg)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_exact_by_jobs, bench_exact_by_stages, bench_methods_head_to_head,
              bench_simulation
}
criterion_main!(benches);

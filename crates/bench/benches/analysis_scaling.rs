//! Analysis runtime scaling: how the exact, bounds, holistic and fixpoint
//! analyses scale with job count and pipeline depth (the DESIGN.md ablation
//! on analysis cost).
//!
//! Run with `cargo bench -p rta-bench --bench analysis_scaling`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::harness::Bench;
use rta_core::{analyze_bounds, analyze_exact_spp, holistic::analyze_holistic, AnalysisConfig};
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{SchedulerKind, TaskSystem};

fn system(scheduler: SchedulerKind, stages: usize, n_jobs: usize) -> TaskSystem {
    let cfg = ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs,
        scheduler,
        utilization: 0.6,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0 * stages as f64,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
    if scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

fn main() {
    let mut b = Bench::new();

    for n in [2usize, 6, 12] {
        let sys = system(SchedulerKind::Spp, 2, n);
        b.run(&format!("exact_by_jobs/{n}"), || {
            analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap()
        });
    }

    for s in [1usize, 2, 4, 8] {
        let sys = system(SchedulerKind::Spp, s, 6);
        b.run(&format!("exact_by_stages/{s}"), || {
            analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap()
        });
    }

    let spp = system(SchedulerKind::Spp, 2, 6);
    let spnp = system(SchedulerKind::Spnp, 2, 6);
    let fcfs = system(SchedulerKind::Fcfs, 2, 6);
    b.run("methods/spp_exact", || {
        analyze_exact_spp(&spp, &AnalysisConfig::default()).unwrap()
    });
    b.run("methods/spp_holistic", || {
        analyze_holistic(&spp, &AnalysisConfig::default()).unwrap()
    });
    b.run("methods/spnp_bounds", || {
        analyze_bounds(&spnp, &AnalysisConfig::default()).unwrap()
    });
    b.run("methods/fcfs_bounds", || {
        analyze_bounds(&fcfs, &AnalysisConfig::default()).unwrap()
    });
    b.run("methods/fixpoint_loops", || {
        rta_core::fixpoint::analyze_with_loops(&spnp, &AnalysisConfig::default(), 4).unwrap()
    });

    for s in [1usize, 4] {
        let sys = system(SchedulerKind::Spp, s, 6);
        let cfg = rta_sim::SimConfig::defaults_for(&sys);
        b.run(&format!("simulation/{s}"), || rta_sim::simulate(&sys, &cfg));
    }
}

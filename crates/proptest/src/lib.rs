//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the slice of `proptest` its test suites use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`/`boxed`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! deterministic per-test seed. A failing case reports its index and seed
//! (re-runnable by construction) but is not shrunk — failures print the
//! assertion message rather than a minimized counterexample.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The generator handed to strategies.
    pub type TestRng = StdRng;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
        /// Base seed; case `i` derives its own generator from it.
        pub seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 96,
                seed: 0x5EED_CAFE,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a single case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An explicit `prop_assert*` failure.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Result type of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives the case loop for one `proptest!` test function.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Create a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run `f` once per case with a per-case deterministic generator.
        /// Panics (failing the enclosing `#[test]`) on the first failure.
        pub fn run_cases<F>(&mut self, test_name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let seed = self
                    .config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(case as u64);
                let mut rng = TestRng::seed_from_u64(seed);
                match f(&mut rng) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest {test_name}: case {case}/{} (seed {seed:#x}) failed:\n{msg}",
                        self.config.cases
                    ),
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from the macro's arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let i = rng.gen_range(0..self.0.len());
            self.0[i].gen_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(i64, usize, u64, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `vec(element, 0..6)`: vectors of 0–5 generated elements.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy (subset of proptest's `Arbitrary`).
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Construct the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`: a fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            use rand::Rng;
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` body (early-returns a failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn` becomes a `#[test]` running
/// `ProptestConfig::cases` random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategies = ($($strat,)+);
                runner.run_cases(stringify!($name), |rng| {
                    // Draw all arguments in one tuple so each binds to its
                    // own strategy (tuples of strategies are strategies).
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::gen_value(&strategies, rng);
                    { $body }
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

//! Pointwise curve operations: linear combination, minimum, maximum.
//!
//! All operations are exact **on the integer tick lattice**. Pointwise
//! min/max of two linear pieces may cross at a fractional instant; the
//! breakpoint of the result is placed at the first integer tick past the
//! crossing, which leaves the value at every integer tick exact (see the
//! crate-level discussion of the lattice exactness model).

use crate::curve::push_normalized;
use crate::util::div_floor;
use crate::{Curve, Segment, Time};

/// Walk two segment lists over their merged breakpoints in one streaming
/// O(n + m) pass, yielding at each interval start the active segment of
/// each operand. No intermediate breakpoint list is materialized; each
/// binary operation writes only its output. Taking raw slices (not
/// `&Curve`) lets the clamp kernels pass a stack-allocated constant
/// segment as one operand.
fn zip_pieces<'a>(
    sa: &'a [Segment],
    sb: &'a [Segment],
) -> impl Iterator<Item = (Time, Option<Time>, &'a Segment, &'a Segment)> {
    let mut ia = 0usize;
    let mut ib = 0usize;
    let mut cur = Some(Time::ZERO);
    std::iter::from_fn(move || {
        let t = cur?;
        while ia + 1 < sa.len() && sa[ia + 1].start <= t {
            ia += 1;
        }
        while ib + 1 < sb.len() && sb[ib + 1].start <= t {
            ib += 1;
        }
        let next = match (sa.get(ia + 1), sb.get(ib + 1)) {
            (Some(x), Some(y)) => Some(x.start.min(y.start)),
            (Some(x), None) => Some(x.start),
            (None, Some(y)) => Some(y.start),
            (None, None) => None,
        };
        cur = next;
        Some((t, next, &sa[ia], &sb[ib]))
    })
}

/// The pointwise linear combination `ca·a + cb·b`, written into `out`.
pub fn linear_combine_into(a: &Curve, ca: i64, b: &Curve, cb: i64, out: &mut Curve) {
    let segs = out.begin_write(a.num_segments() + b.num_segments());
    for (t, _next, sa, sb) in zip_pieces(a.segments(), b.segments()) {
        push_normalized(
            segs,
            Segment::new(
                t,
                ca * sa.eval(t) + cb * sb.eval(t),
                ca * sa.slope + cb * sb.slope,
            ),
        );
    }
    out.finish_write();
}

/// The pointwise linear combination `ca·a + cb·b`.
#[must_use]
pub fn linear_combine(a: &Curve, ca: i64, b: &Curve, cb: i64) -> Curve {
    let mut out = Curve::zero();
    linear_combine_into(a, ca, b, cb, &mut out);
    out
}

/// Shared min/max kernel. With `max = false` this is the lattice-exact
/// minimum logic verbatim; `max = true` flips the sign of every comparison,
/// which computes `−min(−a, −b)` without materializing either negation —
/// the crossing offsets and tie-breaks come out identical because
/// `div_floor` sees the same (negated-twice) operands.
fn pointwise_extremum_into(sa: &[Segment], sb: &[Segment], max: bool, out: &mut Curve) {
    let sign: i64 = if max { -1 } else { 1 };
    let segs = out.begin_write(2 * (sa.len() + sb.len()));
    for (t0, next, pa, pb) in zip_pieces(sa, sb) {
        let e0 = sign * (pa.eval(t0) - pb.eval(t0)); // ±(a − b) at interval start
        let es = sign * (pa.slope - pb.slope);
        // The currently-extremal piece, then a possible single switch.
        let (first, second, take_a) = if e0 <= 0 {
            (pa, pb, true)
        } else {
            (pb, pa, false)
        };
        push_normalized(segs, Segment::new(t0, first.eval(t0), first.slope));
        // Does the sign of e = ±(a − b) flip inside this interval?
        let cross_off = if take_a && es > 0 {
            // first integer offset with e0 + es·off > 0
            Some(div_floor(-e0, es) + 1)
        } else if !take_a && es < 0 {
            // first integer offset with e0 + es·off < 0  ⇔  (−es)·off > e0
            Some(div_floor(e0, -es) + 1)
        } else {
            None
        };
        if let Some(off) = cross_off {
            debug_assert!(off >= 1);
            let tc = t0 + Time(off);
            if next.is_none_or(|t1| tc < t1) {
                push_normalized(segs, Segment::new(tc, second.eval(tc), second.slope));
            }
        }
    }
    out.finish_write();
}

/// Pointwise minimum written into `out`, exact at every integer tick.
pub fn pointwise_min_into(a: &Curve, b: &Curve, out: &mut Curve) {
    pointwise_extremum_into(a.segments(), b.segments(), false, out);
}

/// Pointwise maximum written into `out`, exact at every integer tick.
pub fn pointwise_max_into(a: &Curve, b: &Curve, out: &mut Curve) {
    pointwise_extremum_into(a.segments(), b.segments(), true, out);
}

/// Pointwise minimum, exact at every integer tick.
#[must_use]
pub fn pointwise_min(a: &Curve, b: &Curve) -> Curve {
    let mut out = Curve::zero();
    pointwise_min_into(a, b, &mut out);
    out
}

/// Pointwise maximum, exact at every integer tick.
#[must_use]
pub fn pointwise_max(a: &Curve, b: &Curve) -> Curve {
    let mut out = Curve::zero();
    pointwise_max_into(a, b, &mut out);
    out
}

impl Curve {
    /// Pointwise sum `self + rhs`, written into `out`.
    pub fn add_into(&self, rhs: &Curve, out: &mut Curve) {
        linear_combine_into(self, 1, rhs, 1, out);
    }

    /// Pointwise sum `self + rhs`.
    #[must_use]
    pub fn add(&self, rhs: &Curve) -> Curve {
        linear_combine(self, 1, rhs, 1)
    }

    /// Pointwise difference `self − rhs`, written into `out`.
    pub fn sub_into(&self, rhs: &Curve, out: &mut Curve) {
        linear_combine_into(self, 1, rhs, -1, out);
    }

    /// Pointwise difference `self − rhs`.
    #[must_use]
    pub fn sub(&self, rhs: &Curve) -> Curve {
        linear_combine(self, 1, rhs, -1)
    }

    /// Pointwise negation written into `out`.
    pub fn neg_into(&self, out: &mut Curve) {
        let segs = out.begin_write(self.num_segments());
        for s in self.segments() {
            push_normalized(segs, Segment::new(s.start, -s.value, -s.slope));
        }
        out.finish_write();
    }

    /// Pointwise negation.
    #[must_use]
    pub fn neg(&self) -> Curve {
        let mut out = Curve::zero();
        self.neg_into(&mut out);
        out
    }

    /// Pointwise scaling `k·self`, written into `out`.
    pub fn scale_into(&self, k: i64, out: &mut Curve) {
        let segs = out.begin_write(self.num_segments());
        for s in self.segments() {
            push_normalized(segs, Segment::new(s.start, k * s.value, k * s.slope));
        }
        out.finish_write();
    }

    /// Pointwise scaling `k·self` — e.g. the workload function
    /// `c(t) = f_arr(t) · τ` of Definition 3.
    #[must_use]
    pub fn scale(&self, k: i64) -> Curve {
        let mut out = Curve::zero();
        self.scale_into(k, &mut out);
        out
    }

    /// Pointwise constant offset `self + v`, written into `out`.
    pub fn add_const_into(&self, v: i64, out: &mut Curve) {
        let segs = out.begin_write(self.num_segments());
        for s in self.segments() {
            push_normalized(segs, Segment::new(s.start, s.value + v, s.slope));
        }
        out.finish_write();
    }

    /// Pointwise constant offset `self + v`.
    #[must_use]
    pub fn add_const(&self, v: i64) -> Curve {
        let mut out = Curve::zero();
        self.add_const_into(v, &mut out);
        out
    }

    /// Pointwise minimum with another curve, written into `out`.
    pub fn min_with_into(&self, rhs: &Curve, out: &mut Curve) {
        pointwise_min_into(self, rhs, out);
    }

    /// Pointwise minimum with another curve.
    #[must_use]
    pub fn min_with(&self, rhs: &Curve) -> Curve {
        pointwise_min(self, rhs)
    }

    /// Pointwise maximum with another curve, written into `out`.
    pub fn max_with_into(&self, rhs: &Curve, out: &mut Curve) {
        pointwise_max_into(self, rhs, out);
    }

    /// Pointwise maximum with another curve.
    #[must_use]
    pub fn max_with(&self, rhs: &Curve) -> Curve {
        pointwise_max(self, rhs)
    }

    /// Clamp below written into `out` — allocation-free: the constant
    /// operand is a stack segment, never a heap curve.
    pub fn clamp_min_into(&self, v: i64, out: &mut Curve) {
        let constant = [Segment::new(Time::ZERO, v, 0)];
        pointwise_extremum_into(self.segments(), &constant, true, out);
    }

    /// Clamp below: `max(self, v)` — e.g. forcing a service lower bound to be
    /// nonnegative.
    #[must_use]
    pub fn clamp_min(&self, v: i64) -> Curve {
        let mut out = Curve::zero();
        self.clamp_min_into(v, &mut out);
        out
    }

    /// Clamp above written into `out` — allocation-free like
    /// [`Curve::clamp_min_into`].
    pub fn clamp_max_into(&self, v: i64, out: &mut Curve) {
        let constant = [Segment::new(Time::ZERO, v, 0)];
        pointwise_extremum_into(self.segments(), &constant, false, out);
    }

    /// Clamp above: `min(self, v)`.
    #[must_use]
    pub fn clamp_max(&self, v: i64) -> Curve {
        let mut out = Curve::zero();
        self.clamp_max_into(v, &mut out);
        out
    }
}

// Operator sugar: `&a + &b`, `&a - &b`, `-&a` delegate to the exact
// pointwise operations above.
impl std::ops::Add for &Curve {
    type Output = Curve;
    fn add(self, rhs: &Curve) -> Curve {
        Curve::add(self, rhs)
    }
}

impl std::ops::Sub for &Curve {
    type Output = Curve;
    fn sub(self, rhs: &Curve) -> Curve {
        Curve::sub(self, rhs)
    }
}

impl std::ops::Neg for &Curve {
    type Output = Curve;
    fn neg(self) -> Curve {
        Curve::neg(self)
    }
}

impl std::ops::Mul<i64> for &Curve {
    type Output = Curve;
    fn mul(self, k: i64) -> Curve {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> Curve {
        Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(3), 2, 0),
            Segment::new(Time(6), 5, 1),
        ])
    }

    #[test]
    fn add_and_sub_are_pointwise() {
        let a = steps();
        let b = Curve::identity();
        let sum = a.add(&b);
        let diff = a.sub(&b);
        for t in 0..12 {
            let t = Time(t);
            assert_eq!(sum.eval(t), a.eval(t) + b.eval(t));
            assert_eq!(diff.eval(t), a.eval(t) - b.eval(t));
        }
    }

    #[test]
    fn scale_and_const_offset() {
        let a = steps();
        let s = a.scale(3).add_const(7);
        for t in 0..12 {
            assert_eq!(s.eval(Time(t)), 3 * a.eval(Time(t)) + 7);
        }
    }

    #[test]
    fn neg_roundtrip() {
        let a = steps();
        assert_eq!(a.neg().neg(), a);
    }

    #[test]
    fn min_of_crossing_lines() {
        // f = t, g = 10 − t: crossing at t = 5 exactly.
        let f = Curve::identity();
        let g = Curve::affine(10, -1);
        let m = pointwise_min(&f, &g);
        for t in 0..=12 {
            assert_eq!(m.eval(Time(t)), t.min(10 - t), "t={t}");
        }
    }

    #[test]
    fn min_with_fractional_crossing_is_lattice_exact() {
        // f = 2t, g = 7 (crossing at t = 3.5).
        let f = Curve::affine(0, 2);
        let g = Curve::constant(7);
        let m = pointwise_min(&f, &g);
        for t in 0..=10 {
            assert_eq!(m.eval(Time(t)), (2 * t).min(7), "t={t}");
        }
    }

    #[test]
    fn min_and_max_against_staircase() {
        let a = steps();
        let b = Curve::affine(1, 0);
        let mn = a.min_with(&b);
        let mx = a.max_with(&b);
        for t in 0..15 {
            let t = Time(t);
            assert_eq!(mn.eval(t), a.eval(t).min(1), "min t={t}");
            assert_eq!(mx.eval(t), a.eval(t).max(1), "max t={t}");
        }
    }

    #[test]
    fn clamp_bounds() {
        let a = Curve::affine(-5, 1); // −5, −4, …
        let c = a.clamp_min(0);
        for t in 0..12 {
            assert_eq!(c.eval(Time(t)), (t - 5).max(0));
        }
        let d = a.clamp_max(2);
        for t in 0..12 {
            assert_eq!(d.eval(Time(t)), (t - 5).min(2));
        }
    }

    #[test]
    fn operator_sugar_matches_methods() {
        let a = steps();
        let b = Curve::identity();
        assert_eq!(&a + &b, a.add(&b));
        assert_eq!(&a - &b, a.sub(&b));
        assert_eq!(-&a, a.neg());
        assert_eq!(&a * 3, a.scale(3));
    }

    #[test]
    fn min_handles_multiple_intervals() {
        // Staircase vs slope-1 line starting above then catching up repeatedly.
        let a = steps();
        let b = Curve::affine(4, 0);
        let m = pointwise_min(&a, &b);
        for t in 0..20 {
            let t = Time(t);
            assert_eq!(m.eval(t), a.eval(t).min(4));
        }
    }
}

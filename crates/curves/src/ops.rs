//! Pointwise curve operations: linear combination, minimum, maximum.
//!
//! All operations are exact **on the integer tick lattice**. Pointwise
//! min/max of two linear pieces may cross at a fractional instant; the
//! breakpoint of the result is placed at the first integer tick past the
//! crossing, which leaves the value at every integer tick exact (see the
//! crate-level discussion of the lattice exactness model).

use crate::util::div_floor;
use crate::{Curve, Segment, Time};

/// Walk two curves over their merged breakpoints in one streaming O(n + m)
/// pass, yielding at each interval start the active segment of each curve.
/// No intermediate breakpoint list is materialized; each binary operation
/// allocates only its output.
fn zip_pieces<'a>(
    a: &'a Curve,
    b: &'a Curve,
) -> impl Iterator<Item = (Time, Option<Time>, &'a Segment, &'a Segment)> {
    let sa = a.segments();
    let sb = b.segments();
    let mut ia = 0usize;
    let mut ib = 0usize;
    let mut cur = Some(Time::ZERO);
    std::iter::from_fn(move || {
        let t = cur?;
        while ia + 1 < sa.len() && sa[ia + 1].start <= t {
            ia += 1;
        }
        while ib + 1 < sb.len() && sb[ib + 1].start <= t {
            ib += 1;
        }
        let next = match (sa.get(ia + 1), sb.get(ib + 1)) {
            (Some(x), Some(y)) => Some(x.start.min(y.start)),
            (Some(x), None) => Some(x.start),
            (None, Some(y)) => Some(y.start),
            (None, None) => None,
        };
        cur = next;
        Some((t, next, &sa[ia], &sb[ib]))
    })
}

/// The pointwise linear combination `ca·a + cb·b`.
pub fn linear_combine(a: &Curve, ca: i64, b: &Curve, cb: i64) -> Curve {
    let mut segs = Vec::with_capacity(a.num_segments() + b.num_segments());
    for (t, _next, sa, sb) in zip_pieces(a, b) {
        segs.push(Segment::new(
            t,
            ca * sa.eval(t) + cb * sb.eval(t),
            ca * sa.slope + cb * sb.slope,
        ));
    }
    Curve::from_sorted_segments(segs)
}

/// Pointwise minimum, exact at every integer tick.
pub fn pointwise_min(a: &Curve, b: &Curve) -> Curve {
    let mut segs: Vec<Segment> = Vec::with_capacity(2 * (a.num_segments() + b.num_segments()));
    for (t0, next, sa, sb) in zip_pieces(a, b) {
        let (va, vb) = (sa.eval(t0), sb.eval(t0));
        let d0 = va - vb; // a − b at interval start
        let ds = sa.slope - sb.slope;
        // The currently-lower piece, then a possible single switch.
        let (first, second, lower_first) = if d0 <= 0 {
            (sa, sb, true)
        } else {
            (sb, sa, false)
        };
        segs.push(Segment::new(t0, first.eval(t0), first.slope));
        // Does the sign of d = a − b flip inside this interval?
        let cross_off = if lower_first && ds > 0 {
            // first integer offset with d0 + ds·off > 0
            Some(div_floor(-d0, ds) + 1)
        } else if !lower_first && ds < 0 {
            // first integer offset with d0 + ds·off < 0  ⇔  (−ds)·off > d0
            Some(div_floor(d0, -ds) + 1)
        } else {
            None
        };
        if let Some(off) = cross_off {
            debug_assert!(off >= 1);
            let tc = t0 + Time(off);
            if next.is_none_or(|t1| tc < t1) {
                segs.push(Segment::new(tc, second.eval(tc), second.slope));
            }
        }
    }
    Curve::from_sorted_segments(segs)
}

/// Pointwise maximum, exact at every integer tick.
pub fn pointwise_max(a: &Curve, b: &Curve) -> Curve {
    pointwise_min(&a.neg(), &b.neg()).neg()
}

impl Curve {
    /// Pointwise sum `self + rhs`.
    pub fn add(&self, rhs: &Curve) -> Curve {
        linear_combine(self, 1, rhs, 1)
    }

    /// Pointwise difference `self − rhs`.
    pub fn sub(&self, rhs: &Curve) -> Curve {
        linear_combine(self, 1, rhs, -1)
    }

    /// Pointwise negation.
    pub fn neg(&self) -> Curve {
        let segs = self
            .segments()
            .iter()
            .map(|s| Segment::new(s.start, -s.value, -s.slope))
            .collect();
        Curve::from_sorted_segments(segs)
    }

    /// Pointwise scaling `k·self` — e.g. the workload function
    /// `c(t) = f_arr(t) · τ` of Definition 3.
    pub fn scale(&self, k: i64) -> Curve {
        let segs = self
            .segments()
            .iter()
            .map(|s| Segment::new(s.start, k * s.value, k * s.slope))
            .collect();
        Curve::from_sorted_segments(segs)
    }

    /// Pointwise constant offset `self + v`.
    pub fn add_const(&self, v: i64) -> Curve {
        let segs = self
            .segments()
            .iter()
            .map(|s| Segment::new(s.start, s.value + v, s.slope))
            .collect();
        Curve::from_sorted_segments(segs)
    }

    /// Pointwise minimum with another curve.
    pub fn min_with(&self, rhs: &Curve) -> Curve {
        pointwise_min(self, rhs)
    }

    /// Pointwise maximum with another curve.
    pub fn max_with(&self, rhs: &Curve) -> Curve {
        pointwise_max(self, rhs)
    }

    /// Clamp below: `max(self, v)` — e.g. forcing a service lower bound to be
    /// nonnegative.
    pub fn clamp_min(&self, v: i64) -> Curve {
        pointwise_max(self, &Curve::constant(v))
    }

    /// Clamp above: `min(self, v)`.
    pub fn clamp_max(&self, v: i64) -> Curve {
        pointwise_min(self, &Curve::constant(v))
    }
}

// Operator sugar: `&a + &b`, `&a - &b`, `-&a` delegate to the exact
// pointwise operations above.
impl std::ops::Add for &Curve {
    type Output = Curve;
    fn add(self, rhs: &Curve) -> Curve {
        Curve::add(self, rhs)
    }
}

impl std::ops::Sub for &Curve {
    type Output = Curve;
    fn sub(self, rhs: &Curve) -> Curve {
        Curve::sub(self, rhs)
    }
}

impl std::ops::Neg for &Curve {
    type Output = Curve;
    fn neg(self) -> Curve {
        Curve::neg(self)
    }
}

impl std::ops::Mul<i64> for &Curve {
    type Output = Curve;
    fn mul(self, k: i64) -> Curve {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> Curve {
        Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(3), 2, 0),
            Segment::new(Time(6), 5, 1),
        ])
    }

    #[test]
    fn add_and_sub_are_pointwise() {
        let a = steps();
        let b = Curve::identity();
        let sum = a.add(&b);
        let diff = a.sub(&b);
        for t in 0..12 {
            let t = Time(t);
            assert_eq!(sum.eval(t), a.eval(t) + b.eval(t));
            assert_eq!(diff.eval(t), a.eval(t) - b.eval(t));
        }
    }

    #[test]
    fn scale_and_const_offset() {
        let a = steps();
        let s = a.scale(3).add_const(7);
        for t in 0..12 {
            assert_eq!(s.eval(Time(t)), 3 * a.eval(Time(t)) + 7);
        }
    }

    #[test]
    fn neg_roundtrip() {
        let a = steps();
        assert_eq!(a.neg().neg(), a);
    }

    #[test]
    fn min_of_crossing_lines() {
        // f = t, g = 10 − t: crossing at t = 5 exactly.
        let f = Curve::identity();
        let g = Curve::affine(10, -1);
        let m = pointwise_min(&f, &g);
        for t in 0..=12 {
            assert_eq!(m.eval(Time(t)), t.min(10 - t), "t={t}");
        }
    }

    #[test]
    fn min_with_fractional_crossing_is_lattice_exact() {
        // f = 2t, g = 7 (crossing at t = 3.5).
        let f = Curve::affine(0, 2);
        let g = Curve::constant(7);
        let m = pointwise_min(&f, &g);
        for t in 0..=10 {
            assert_eq!(m.eval(Time(t)), (2 * t).min(7), "t={t}");
        }
    }

    #[test]
    fn min_and_max_against_staircase() {
        let a = steps();
        let b = Curve::affine(1, 0);
        let mn = a.min_with(&b);
        let mx = a.max_with(&b);
        for t in 0..15 {
            let t = Time(t);
            assert_eq!(mn.eval(t), a.eval(t).min(1), "min t={t}");
            assert_eq!(mx.eval(t), a.eval(t).max(1), "max t={t}");
        }
    }

    #[test]
    fn clamp_bounds() {
        let a = Curve::affine(-5, 1); // −5, −4, …
        let c = a.clamp_min(0);
        for t in 0..12 {
            assert_eq!(c.eval(Time(t)), (t - 5).max(0));
        }
        let d = a.clamp_max(2);
        for t in 0..12 {
            assert_eq!(d.eval(Time(t)), (t - 5).min(2));
        }
    }

    #[test]
    fn operator_sugar_matches_methods() {
        let a = steps();
        let b = Curve::identity();
        assert_eq!(&a + &b, a.add(&b));
        assert_eq!(&a - &b, a.sub(&b));
        assert_eq!(-&a, a.neg());
        assert_eq!(&a * 3, a.scale(3));
    }

    #[test]
    fn min_handles_multiple_intervals() {
        // Staircase vs slope-1 line starting above then catching up repeatedly.
        let a = steps();
        let b = Curve::affine(4, 0);
        let m = pointwise_min(&a, &b);
        for t in 0..20 {
            let t = Time(t);
            assert_eq!(m.eval(t), a.eval(t).min(4));
        }
    }
}

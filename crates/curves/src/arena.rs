//! Bump-arena style buffer reuse for the hot curve kernels.
//!
//! The `_into` kernel variants (`*_into` methods across [`crate::ops`],
//! [`crate::running`], [`crate::floor_div`], [`crate::envelope`],
//! [`crate::convolution`] and [`crate::inverse`]) write their results into
//! caller-provided [`Curve`]s, reusing the segment buffers already
//! allocated there. This module provides the two pieces callers need to
//! keep those buffers alive across calls:
//!
//! * [`CurveArenaBuf`] — a free-list of curve buffers. `take` hands out a
//!   curve whose segment `Vec` retains the capacity it grew to on earlier
//!   uses; `put` returns it. After a warm-up pass over representative
//!   inputs, a take/compute/put cycle performs no heap allocation.
//! * [`Scratch`] — a `CurveArenaBuf` plus the typed side buffers some
//!   kernels need (dense lattice values for the convolution fallback, a
//!   piece-merge staging area for the convex path). One `Scratch` per
//!   worker thread is the intended granularity; none of the types are
//!   `Sync` — sharing across threads is a compile error, not a data race.
//!
//! Results are **bit-identical** to the allocating kernels: every
//! allocating entry point is a thin wrapper that runs the `_into` kernel
//! on a fresh buffer (see `tests/into_kernels.rs` for the pinning tests),
//! so reusing buffers can change *where* a result lives, never what it is.
//!
//! A kernel that panics mid-write (e.g. a debug assertion) can leave the
//! output curve holding a partial, invariant-violating segment list; the
//! output must be treated as poisoned and not reused after a caught panic.

use crate::{Curve, SoaCurve, Time};

/// A free-list of reusable curve buffers — the "bump arena" of the hot
/// analysis paths.
///
/// Unlike a classical bump allocator there is no unsafe pointer bumping
/// (the crate forbids `unsafe`); the arena instead recycles fully-grown
/// `Vec<Segment>` storage, which achieves the same steady-state goal:
/// zero allocator traffic once every buffer has reached its working size.
#[derive(Default)]
pub struct CurveArenaBuf {
    pool: Vec<Curve>,
}

impl CurveArenaBuf {
    /// An empty arena.
    pub fn new() -> CurveArenaBuf {
        CurveArenaBuf::default()
    }

    /// Hand out a curve buffer. The returned curve is the zero curve; its
    /// segment buffer keeps whatever capacity it had when it was `put`
    /// back, so warm takes allocate nothing.
    pub fn take(&mut self) -> Curve {
        match self.pool.pop() {
            Some(mut c) => {
                let segs = c.begin_write(1);
                segs.push(crate::Segment::new(Time::ZERO, 0, 0));
                c.finish_write();
                c
            }
            None => Curve::zero(),
        }
    }

    /// Return a curve buffer to the arena for later reuse.
    pub fn put(&mut self, c: Curve) {
        self.pool.push(c);
    }

    /// Number of buffers currently parked in the arena.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// `true` when no buffers are parked.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

/// Reusable scratch space for the `_into` curve kernels: a curve-buffer
/// arena plus the typed staging buffers of the convolution kernels.
///
/// Intended granularity is one `Scratch` per worker thread (the analysis
/// drivers in `rta-core` keep one in thread-local storage); kernels borrow
/// it mutably for the duration of a call and leave all buffers empty but
/// capacity-warm.
#[derive(Default)]
pub struct Scratch {
    bufs: CurveArenaBuf,
    /// Dense lattice samples of the left convolution operand.
    pub(crate) values_a: Vec<i64>,
    /// Dense lattice samples of the right convolution operand.
    pub(crate) values_b: Vec<i64>,
    /// Piece staging for the convex slope-merge: `(length, slope)` with
    /// `None` marking the unbounded tail piece.
    pub(crate) pieces: Vec<(Option<Time>, i64)>,
    /// Free-list of structure-of-arrays curve buffers for the SoA kernels.
    soa_pool: Vec<SoaCurve>,
    /// Convex-run begin indices of the left decomposition operand.
    pub(crate) run_bounds_a: Vec<u32>,
    /// Convex-run begin indices of the right decomposition operand.
    pub(crate) run_bounds_b: Vec<u32>,
    /// Tree-fold layer staging for the decomposed convolution (curves held
    /// here come from `soa_pool` and return to it between calls).
    pub(crate) fold_layer: Vec<SoaCurve>,
    /// Second tree-fold layer, ping-ponged with `fold_layer`.
    pub(crate) fold_spare: Vec<SoaCurve>,
}

impl Scratch {
    /// A fresh, empty scratch space.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Borrow a temporary curve from the arena (zero curve, capacity-warm).
    pub fn take_curve(&mut self) -> Curve {
        self.bufs.take()
    }

    /// Return a temporary curve to the arena.
    pub fn put_curve(&mut self, c: Curve) {
        self.bufs.put(c);
    }

    /// Borrow a temporary SoA curve buffer (zero curve, capacity-warm) —
    /// the structure-of-arrays counterpart of [`Scratch::take_curve`].
    pub fn take_soa(&mut self) -> SoaCurve {
        match self.soa_pool.pop() {
            Some(mut c) => {
                c.set_affine(0, 0);
                c
            }
            None => SoaCurve::zero(),
        }
    }

    /// Return a temporary SoA curve buffer to the arena.
    pub fn put_soa(&mut self, c: SoaCurve) {
        self.soa_pool.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    #[test]
    fn arena_round_trips_capacity() {
        let mut arena = CurveArenaBuf::new();
        let mut c = arena.take();
        assert_eq!(c, Curve::zero());
        // Grow the buffer, return it, take it back: still the zero curve.
        let segs = c.begin_write(64);
        for t in 0..64 {
            segs.push(Segment::new(Time(t), t, 0));
        }
        c.finish_write();
        arena.put(c);
        assert_eq!(arena.len(), 1);
        let c2 = arena.take();
        assert_eq!(c2, Curve::zero());
        assert!(arena.is_empty());
    }

    #[test]
    fn scratch_hands_out_zero_curves() {
        let mut s = Scratch::new();
        let a = s.take_curve();
        let b = s.take_curve();
        assert_eq!(a, Curve::zero());
        assert_eq!(b, Curve::zero());
        s.put_curve(a);
        s.put_curve(b);
    }
}

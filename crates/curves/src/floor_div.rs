//! Departure extraction: `f_dep(t) = ⌊S(t)/τ⌋` (Theorem 2).
//!
//! Given the (nondecreasing) service function `S` of a subjob and its
//! execution time `τ`, the departure function counts completed instances: the
//! `m`-th instance completes the moment the subjob has accumulated `m·τ`
//! ticks of service. The result is a counting step curve whose jumps sit at
//! the exact instants `S` crosses multiples of `τ`.

use crate::curve::push_normalized;
use crate::util::{div_ceil, div_floor};
use crate::{Curve, CurveError, Segment, Time};

impl Curve {
    /// [`Curve::floor_div`] writing into a caller-provided curve, reusing
    /// its segment buffer. On error `out` is left untouched.
    pub fn floor_div_into(
        &self,
        tau: i64,
        horizon: Time,
        out: &mut Curve,
    ) -> Result<(), CurveError> {
        assert!(tau >= 1, "execution time must be at least one tick");
        self.require_nondecreasing()?;
        let v0 = self.segments()[0].value;
        if v0 < 0 {
            return Err(CurveError::NegativeAtZero { value: v0 });
        }

        let segs = self.segments();
        let out_segs = out.begin_write(segs.len() + 4);
        let mut count = div_floor(v0, tau);
        // The counting values are strictly increasing, so direct pushes
        // produce the same normalized staircase `step_from_points` would.
        push_normalized(out_segs, Segment::new(Time::ZERO, count, 0));
        for (i, s) in segs.iter().enumerate() {
            if s.start > horizon {
                break;
            }
            // Count at the piece start (captures jumps at breakpoints).
            let c0 = div_floor(s.value, tau);
            if c0 > count {
                push_normalized(out_segs, Segment::new(s.start, c0, 0));
                count = c0;
            }
            if s.slope > 0 {
                // Enumerate crossings of successive multiples of τ inside
                // the piece, clipped to the horizon.
                let end = segs
                    .get(i + 1)
                    .map(|n| n.start - Time(1))
                    .unwrap_or(Time::MAX)
                    .min(horizon);
                loop {
                    let level = (count + 1) * tau;
                    let off = div_ceil(level - s.value, s.slope);
                    let t = s.start + Time(off);
                    if t > end {
                        break;
                    }
                    // S may cross several multiples within one tick when the
                    // slope exceeds τ.
                    let c = div_floor(s.eval(t), tau);
                    debug_assert!(c > count);
                    push_normalized(out_segs, Segment::new(t, c, 0));
                    count = c;
                }
            }
        }
        out.finish_write();
        Ok(())
    }

    /// Compute `t ↦ ⌊self(t)/τ⌋` on `[0, horizon]` as a counting curve.
    ///
    /// `self` must be nondecreasing and nonnegative at 0 (a service
    /// function); `τ ≥ 1`. Beyond `horizon` the result is frozen at its
    /// horizon value (departures past the analysis horizon are not
    /// enumerated — callers treat instances outside the horizon as
    /// unresolved).
    pub fn floor_div(&self, tau: i64, horizon: Time) -> Result<Curve, CurveError> {
        let mut out = Curve::zero();
        self.floor_div_into(tau, horizon, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    fn check(s: &Curve, tau: i64, horizon: i64) {
        let d = s
            .floor_div(tau, Time(horizon))
            .expect("valid service curve");
        for t in 0..=horizon {
            assert_eq!(
                d.eval(Time(t)),
                s.eval(Time(t)).div_euclid(tau),
                "t={t} tau={tau} for {s}"
            );
        }
    }

    #[test]
    fn pure_rate_service() {
        // S(t) = t, τ = 4: one departure every 4 ticks.
        check(&Curve::identity(), 4, 30);
        let d = Curve::identity().floor_div(4, Time(30)).unwrap();
        assert_eq!(d.event_time(1), Some(Time(4)));
        assert_eq!(d.event_time(3), Some(Time(12)));
    }

    #[test]
    fn gated_service() {
        // Idle until 5, then serves at rate 1 with a pause.
        let s = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 0, 1),
            Segment::new(Time(11), 6, 0),
            Segment::new(Time(20), 6, 1),
        ]);
        check(&s, 3, 40);
    }

    #[test]
    fn jump_crossing_multiple_levels() {
        // Upper-bound service curves can jump by more than τ (Theorem 9 adds
        // +τ), crossing several completion levels at one instant.
        let s = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(3), 10, 0),
        ]);
        let d = s.floor_div(3, Time(10)).unwrap();
        assert_eq!(d.eval(Time(2)), 0);
        assert_eq!(d.eval(Time(3)), 3);
        check(&s, 3, 10);
    }

    #[test]
    fn steep_slope_crosses_multiple_levels_per_tick() {
        let s = Curve::affine(0, 7);
        check(&s, 2, 12);
    }

    #[test]
    fn horizon_freezes_departures() {
        let d = Curve::identity().floor_div(5, Time(12)).unwrap();
        assert_eq!(d.eval(Time(12)), 2);
        // Frozen past the horizon even though S keeps rising.
        assert_eq!(d.eval(Time(1000)), 2);
    }

    #[test]
    fn nonzero_initial_service() {
        let s = Curve::affine(9, 1);
        check(&s, 4, 20);
    }

    #[test]
    fn rejects_decreasing_service() {
        assert!(Curve::affine(5, -1).floor_div(2, Time(10)).is_err());
        assert!(matches!(
            Curve::affine(-5, 1).floor_div(2, Time(10)),
            Err(CurveError::NegativeAtZero { value: -5 })
        ));
    }
}

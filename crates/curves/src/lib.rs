//! # rta-curves — exact piecewise-linear curve algebra for real-time calculus
//!
//! This crate is the mathematical substrate for the service-function based
//! response-time analysis of Li, Bettati & Zhao (ICPP 1998). Every quantity
//! in that analysis — arrival functions, departure functions, workload
//! functions, service functions, utilization functions — is a
//! right-continuous piecewise-linear (PWL) function of time. This crate
//! provides one concrete representation, [`Curve`], together with the exact
//! operations the theorems need:
//!
//! * pointwise linear combination, minimum and maximum ([`ops`]),
//! * prefix ("running") minima and maxima ([`running`]),
//! * the pseudo-inverse `g⁻¹(y) = min { s : g(s) ≥ y }` ([`inverse`]),
//! * resumable monotone eval/inverse sweeps ([`cursor`]),
//! * monotone composition `f ∘ g` ([`compose`]),
//! * departure extraction `⌊S(t)/τ⌋` ([`floor_div`]),
//! * event-counting helpers for arrival functions ([`counting`]),
//! * min-plus convolution and network-calculus bound curves
//!   ([`convolution`], [`bounds`]),
//! * structural-hash interning with memoized operators ([`intern`]).
//!
//! ## Exactness model: the tick lattice
//!
//! Time is measured in integer **ticks** ([`Time`]). All schedulability
//! decisions are made on the integer lattice: curves are piecewise linear
//! with *integer* breakpoints, values, and slopes, and every operation is
//! specified (and exact) at integer times. A model is quantized to ticks
//! once, at construction time; afterwards the analysis is free of floating
//! point, so a job is never admitted or rejected because of rounding noise.
//!
//! Operations whose true real-valued breakpoints could be fractional (e.g.
//! the crossing point inside a pointwise minimum) place the breakpoint at
//! the first integer tick past the crossing, which preserves the value of
//! the result at every integer tick. Because all events in a quantized
//! system happen on the lattice, this is exact for the analysis.
//!
//! ## Quick example
//!
//! ```
//! use rta_curves::{Curve, Time};
//!
//! // Arrival function of a job released at t = 0, 10, 20 (3 instances).
//! let arr = Curve::from_event_times(&[Time(0), Time(10), Time(20)]);
//! assert_eq!(arr.eval(Time(0)), 1);
//! assert_eq!(arr.eval(Time(15)), 2);
//! // Pseudo-inverse: release time of the 2nd instance.
//! assert_eq!(arr.inverse_at(2), Some(Time(10)));
//!
//! // Workload function c(t) = f_arr(t) * tau with tau = 4.
//! let c = arr.scale(4);
//! assert_eq!(c.eval(Time(25)), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bounds;
pub mod compose;
pub mod convolution;
pub mod counting;
pub mod cursor;
mod curve;
pub mod envelope;
pub mod floor_div;
pub mod intern;
pub mod inverse;
pub mod ops;
pub mod running;
mod segment;
pub mod soa;
mod time;
mod util;

pub use arena::{CurveArenaBuf, Scratch};
pub use cursor::CurveCursor;
pub use curve::Curve;
pub use intern::{CurveArena, CurveId};
pub use segment::Segment;
pub use soa::{linear_combine_line_into, sum_many_into, SoaCursor, SoaCurve, SoaView};
pub use time::{Time, DEFAULT_TICKS_PER_UNIT};

/// Error type for curve construction and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// A curve must contain at least one segment.
    Empty,
    /// The first segment of a curve must start at time zero.
    FirstSegmentNotAtZero,
    /// Segment start times must be strictly increasing.
    UnsortedSegments {
        /// Index of the offending segment.
        index: usize,
    },
    /// An operation required a nondecreasing curve but got a decreasing one.
    NotMonotone {
        /// Time at which the curve decreases.
        at: Time,
    },
    /// The pseudo-inverse of a curve with a negative-slope or otherwise
    /// unsupported segment was requested.
    UnsupportedSlope {
        /// The offending slope.
        slope: i64,
    },
    /// An operation on cumulative curves required `f(0) ≥ 0`.
    NegativeAtZero {
        /// The offending initial value.
        value: i64,
    },
    /// Two curve collections that must be paired element-wise (e.g. peer
    /// lower/upper service bounds) have different lengths.
    MismatchedLengths {
        /// Length of the left collection.
        left: usize,
        /// Length of the right collection.
        right: usize,
    },
}

impl std::fmt::Display for CurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CurveError::Empty => write!(f, "curve must contain at least one segment"),
            CurveError::FirstSegmentNotAtZero => {
                write!(f, "first segment must start at time zero")
            }
            CurveError::UnsortedSegments { index } => {
                write!(f, "segment {index} does not start after its predecessor")
            }
            CurveError::NotMonotone { at } => {
                write!(f, "curve decreases at t = {at}, expected nondecreasing")
            }
            CurveError::UnsupportedSlope { slope } => {
                write!(f, "operation does not support segments of slope {slope}")
            }
            CurveError::NegativeAtZero { value } => {
                write!(f, "operation requires f(0) ≥ 0, got {value}")
            }
            CurveError::MismatchedLengths { left, right } => {
                write!(
                    f,
                    "paired curve collections differ in length: {left} vs {right}"
                )
            }
        }
    }
}

impl std::error::Error for CurveError {}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn error_messages_name_the_problem() {
        let cases: Vec<(CurveError, &str)> = vec![
            (CurveError::Empty, "at least one segment"),
            (CurveError::FirstSegmentNotAtZero, "start at time zero"),
            (CurveError::UnsortedSegments { index: 3 }, "segment 3"),
            (CurveError::NotMonotone { at: Time(7) }, "t = 7"),
            (CurveError::UnsupportedSlope { slope: -2 }, "slope -2"),
            (CurveError::NegativeAtZero { value: -5 }, "-5"),
            (
                CurveError::MismatchedLengths { left: 2, right: 3 },
                "2 vs 3",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }
}

//! The piecewise-linear curve type.

use crate::{CurveError, Segment, Time};

/// A right-continuous piecewise-linear function `f : [0, ∞) → ℤ` with integer
/// breakpoints, values and slopes.
///
/// `Curve` is the common representation for every cumulative function of the
/// ICPP'98 analysis: arrival functions (`f_arr`), departure functions
/// (`f_dep`), workload functions (`c`), service functions (`S`), availability
/// functions (`A`, `B`) and utilization functions (`U`). Values are plain
/// `i64`; their meaning (instance counts, ticks of work, ticks of time) is
/// established by the caller.
///
/// Invariants (enforced by all constructors):
/// * at least one segment,
/// * the first segment starts at [`Time::ZERO`],
/// * segment start times are strictly increasing,
/// * the representation is *normalized*: no segment is a straight-line
///   continuation of its predecessor.
///
/// Jump discontinuities are encoded implicitly: a jump exists at a breakpoint
/// whenever the previous piece's line, extended to the breakpoint, differs
/// from the new segment's `value` (curves are right-continuous, so the new
/// `value` is the value *at* the breakpoint).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Curve {
    segs: Vec<Segment>,
}

impl Curve {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Build a curve from raw segments, validating and normalizing.
    pub fn try_from_segments(segs: Vec<Segment>) -> Result<Curve, CurveError> {
        if segs.is_empty() {
            return Err(CurveError::Empty);
        }
        if segs[0].start != Time::ZERO {
            return Err(CurveError::FirstSegmentNotAtZero);
        }
        for i in 1..segs.len() {
            if segs[i].start <= segs[i - 1].start {
                return Err(CurveError::UnsortedSegments { index: i });
            }
        }
        let mut c = Curve { segs };
        c.normalize();
        Ok(c)
    }

    /// Build a curve from raw segments; panics on invalid input.
    ///
    /// Prefer [`Curve::try_from_segments`] when the input is not statically
    /// known to be well-formed.
    pub fn from_segments(segs: Vec<Segment>) -> Curve {
        Curve::try_from_segments(segs).expect("invalid segment list")
    }

    /// The constant curve `f(t) = v`.
    pub fn constant(v: i64) -> Curve {
        Curve {
            segs: vec![Segment::new(Time::ZERO, v, 0)],
        }
    }

    /// The zero curve — e.g. the trivial lower bound on any service function
    /// (Definition 6 of the paper).
    pub fn zero() -> Curve {
        Curve::constant(0)
    }
}

/// The zero curve (there is no "empty" curve — every curve has at least
/// one segment).
impl Default for Curve {
    fn default() -> Curve {
        Curve::zero()
    }
}

impl Curve {
    /// The affine curve `f(t) = v0 + slope · t`.
    pub fn affine(v0: i64, slope: i64) -> Curve {
        Curve {
            segs: vec![Segment::new(Time::ZERO, v0, slope)],
        }
    }

    /// The identity curve `f(t) = t` — the trivial upper bound on any service
    /// function (Definition 6: a processor can offer at most `t` time by `t`).
    pub fn identity() -> Curve {
        Curve::affine(0, 1)
    }

    /// Overwrite `self` with the affine curve `v0 + slope · t`, reusing the
    /// segment buffer — the in-place counterpart of [`Curve::affine`].
    pub fn set_affine(&mut self, v0: i64, slope: i64) {
        let segs = self.begin_write(1);
        segs.push(Segment::new(Time::ZERO, v0, slope));
        self.finish_write();
    }

    /// A pure step function from `(time, cumulative value)` breakpoints:
    /// `f(t)` equals the value of the latest breakpoint at or before `t`, and
    /// `before` prior to the first breakpoint. Breakpoints must be sorted by
    /// strictly increasing time.
    pub fn step_from_points(before: i64, points: &[(Time, i64)]) -> Curve {
        let mut segs = Vec::with_capacity(points.len() + 1);
        if points.first().map(|p| p.0) != Some(Time::ZERO) {
            segs.push(Segment::new(Time::ZERO, before, 0));
        }
        for &(t, v) in points {
            segs.push(Segment::new(t, v, 0));
        }
        Curve::from_segments(segs)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The segments of the curve (normalized, sorted).
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Number of linear pieces.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// Slope of the final (unbounded) piece.
    #[inline]
    pub fn final_slope(&self) -> i64 {
        self.segs.last().expect("curve is non-empty").slope
    }

    /// Index of the segment whose piece contains `t` (`t ≥ 0`).
    fn seg_index(&self, t: Time) -> usize {
        debug_assert!(t >= Time::ZERO, "curves are defined on [0, ∞)");
        // partition_point: first segment with start > t, minus one.
        self.segs.partition_point(|s| s.start <= t) - 1
    }

    /// Evaluate the curve at `t ≥ 0` (right-continuous value).
    #[inline]
    pub fn eval(&self, t: Time) -> i64 {
        self.segs[self.seg_index(t)].eval(t)
    }

    /// Left limit `f(t⁻)` for `t > 0`: the value of the piece active just
    /// before `t`, extended to `t`. Differs from [`Curve::eval`] exactly at
    /// jump discontinuities.
    pub fn eval_left(&self, t: Time) -> i64 {
        debug_assert!(t > Time::ZERO, "left limit needs t > 0");
        let i = self.seg_index(t);
        if self.segs[i].start == t && i > 0 {
            self.segs[i - 1].eval(t)
        } else {
            self.segs[i].eval(t)
        }
    }

    /// Size of the jump discontinuity at `t` (`0` where continuous).
    pub fn jump_at(&self, t: Time) -> i64 {
        if t == Time::ZERO {
            return 0;
        }
        self.eval(t) - self.eval_left(t)
    }

    /// Iterator over breakpoint times (segment starts, including `0`).
    pub fn breakpoints(&self) -> impl Iterator<Item = Time> + '_ {
        self.segs.iter().map(|s| s.start)
    }

    /// `true` iff the curve never decreases **on the tick lattice**:
    /// `f(t) ≥ f(t−1)` for every integer `t ≥ 1`.
    ///
    /// Lattice operations (pointwise min/max, running extrema) place
    /// breakpoints at the first integer past a fractional crossing, so the
    /// real-line interpolation may overshoot between the last lattice point
    /// of a piece and the next breakpoint; only lattice monotonicity is
    /// meaningful for such curves.
    pub fn is_nondecreasing(&self) -> bool {
        self.first_decrease().is_none()
    }

    /// First integer `t` with `f(t) < f(t−1)`, if any.
    pub fn first_decrease(&self) -> Option<Time> {
        for (i, s) in self.segs.iter().enumerate() {
            let next_start = self.segs.get(i + 1).map(|n| n.start);
            // Decrease inside the piece: a negative slope observable at a
            // second lattice point.
            if s.slope < 0 {
                let second = s.start + Time(1);
                if next_start.is_none_or(|ns| second < ns) {
                    return Some(second);
                }
            }
            // Decrease across the breakpoint vs. the previous lattice point.
            if i > 0 && s.start > Time::ZERO && s.value < self.eval(s.start - Time(1)) {
                return Some(s.start);
            }
        }
        None
    }

    /// Check the curve is nondecreasing, returning a descriptive error if not.
    pub fn require_nondecreasing(&self) -> Result<(), CurveError> {
        match self.first_decrease() {
            None => Ok(()),
            Some(at) => Err(CurveError::NotMonotone { at }),
        }
    }

    /// `true` iff the curve is continuous (no jumps).
    pub fn is_continuous(&self) -> bool {
        self.segs
            .windows(2)
            .all(|w| w[1].value == w[0].eval(w[1].start))
    }

    // ------------------------------------------------------------------
    // Simple transforms
    // ------------------------------------------------------------------

    /// Horizontal shift right by `d ≥ 0` ticks, filling `[0, d)` with `fill`:
    /// `g(t) = f(t − d)` for `t ≥ d`, `g(t) = fill` for `t < d`.
    #[must_use = "shift_right returns a new curve without modifying the input"]
    pub fn shift_right(&self, d: Time, fill: i64) -> Curve {
        let mut out = Curve::zero();
        self.shift_right_into(d, fill, &mut out);
        out
    }

    /// [`Curve::shift_right`] writing into a caller-provided curve, reusing
    /// its segment buffer.
    pub fn shift_right_into(&self, d: Time, fill: i64, out: &mut Curve) {
        assert!(d >= Time::ZERO, "shift_right requires d >= 0");
        if d == Time::ZERO {
            out.copy_from(self);
            return;
        }
        let segs = out.begin_write(self.segs.len() + 1);
        push_normalized(segs, Segment::new(Time::ZERO, fill, 0));
        for s in &self.segs {
            push_normalized(segs, Segment::new(s.start + d, s.value, s.slope));
        }
        out.finish_write();
    }

    /// Replace the prefix `[0, t0)` with the constant `fill`, keeping the
    /// curve unchanged from `t0` on — e.g. the SPNP lower availability
    /// (Equation 17) is zero during the maximal blocking interval.
    #[must_use = "mask_before returns a new curve without modifying the input"]
    pub fn mask_before(&self, t0: Time, fill: i64) -> Curve {
        let mut out = Curve::zero();
        self.mask_before_into(t0, fill, &mut out);
        out
    }

    /// [`Curve::mask_before`] writing into a caller-provided curve, reusing
    /// its segment buffer.
    pub fn mask_before_into(&self, t0: Time, fill: i64, out: &mut Curve) {
        if t0 <= Time::ZERO {
            out.copy_from(self);
            return;
        }
        let i = self.seg_index(t0);
        let at = self.segs[i].eval(t0);
        let slope = self.segs[i].slope;
        let tail = &self.segs[i + 1..];
        let segs = out.begin_write(tail.len() + 2);
        push_normalized(segs, Segment::new(Time::ZERO, fill, 0));
        push_normalized(segs, Segment::new(t0, at, slope));
        for s in tail {
            push_normalized(segs, *s);
        }
        out.finish_write();
    }

    /// Drop all breakpoints strictly after `horizon`, extending the piece
    /// active at `horizon` to infinity. The result agrees with `self` on
    /// `[0, horizon]`.
    #[must_use = "truncate_after returns a new curve without modifying the input"]
    pub fn truncate_after(&self, horizon: Time) -> Curve {
        let i = self.seg_index(horizon.max(Time::ZERO));
        Curve {
            segs: self.segs[..=i].to_vec(),
        }
    }

    /// [`Curve::truncate_after`] writing into a caller-provided curve,
    /// reusing its segment buffer.
    pub fn truncate_after_into(&self, horizon: Time, out: &mut Curve) {
        let i = self.seg_index(horizon.max(Time::ZERO));
        out.segs.clear();
        out.segs.extend_from_slice(&self.segs[..=i]);
    }

    /// Overwrite this curve with a copy of `src`, reusing the existing
    /// segment buffer (no allocation when capacity suffices).
    pub fn copy_from(&mut self, src: &Curve) {
        self.segs.clear();
        self.segs.extend_from_slice(&src.segs);
    }

    /// Sample the curve at every integer tick in `[from, to]` (inclusive) —
    /// intended for tests and debugging, not hot paths.
    pub fn sample(&self, from: Time, to: Time) -> Vec<i64> {
        (from.ticks()..=to.ticks())
            .map(|t| self.eval(Time(t)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Internal
    // ------------------------------------------------------------------

    /// Merge segments that continue their predecessor's line — in place,
    /// without allocating, by compacting with a read/write pointer pair.
    pub(crate) fn normalize(&mut self) {
        let mut w = 0usize;
        for r in 0..self.segs.len() {
            let s = self.segs[r];
            if w > 0 {
                let prev = self.segs[w - 1];
                if prev.slope == s.slope && prev.eval(s.start) == s.value {
                    continue;
                }
            }
            self.segs[w] = s;
            w += 1;
        }
        self.segs.truncate(w);
    }

    /// Internal constructor for operation results: input must be sorted with
    /// strictly increasing starts beginning at zero; normalizes, then
    /// debug-checks the full invariant set (sortedness *and* coalesced
    /// runs), so a writer handing over a malformed list — e.g. an SoA
    /// round-trip that corrupted a column — fails loudly here instead of
    /// producing a curve that silently violates the representation
    /// invariants downstream.
    pub(crate) fn from_sorted_segments(segs: Vec<Segment>) -> Curve {
        debug_assert!(!segs.is_empty());
        debug_assert!(segs[0].start == Time::ZERO);
        debug_assert!(segs.windows(2).all(|w| w[0].start < w[1].start));
        let mut c = Curve { segs };
        c.normalize();
        c.finish_write();
        c
    }

    /// Start overwriting this curve in place: clears the segment buffer
    /// (keeping its capacity, reserving room for `cap` more entries) and
    /// hands it out for writing. The curve's invariants are suspended until
    /// [`Curve::finish_write`]; writers must push segments with strictly
    /// increasing starts beginning at [`Time::ZERO`], normally via
    /// [`push_normalized`].
    pub(crate) fn begin_write(&mut self, cap: usize) -> &mut Vec<Segment> {
        self.segs.clear();
        self.segs.reserve(cap);
        &mut self.segs
    }

    /// Close a [`Curve::begin_write`] session, debug-checking the invariants
    /// (writers using [`push_normalized`] produce normalized output, so no
    /// normalization pass runs here).
    pub(crate) fn finish_write(&mut self) {
        debug_assert!(!self.segs.is_empty(), "written curve must be non-empty");
        debug_assert!(self.segs[0].start == Time::ZERO);
        debug_assert!(self.segs.windows(2).all(|w| w[0].start < w[1].start));
        debug_assert!(self
            .segs
            .windows(2)
            .all(|w| { w[0].slope != w[1].slope || w[0].eval(w[1].start) != w[1].value }));
    }
}

/// Append a segment to an output buffer, keeping the buffer normalized:
/// segments that continue the previous line are skipped, exactly as
/// [`Curve::normalize`] would merge them. Starts must be strictly
/// increasing.
#[inline]
pub(crate) fn push_normalized(segs: &mut Vec<Segment>, s: Segment) {
    if let Some(prev) = segs.last() {
        debug_assert!(prev.start < s.start, "pushes must be strictly increasing");
        if prev.slope == s.slope && prev.eval(s.start) == s.value {
            return;
        }
    }
    segs.push(s);
}

impl std::fmt::Display for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Curve[")?;
        for (i, s) in self.segs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({}: {} + {}·Δt)", s.start, s.value, s.slope)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Curve {
        // 0 on [0,5), 2 on [5,10), then slope 1.
        Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 2, 0),
            Segment::new(Time(10), 2, 1),
        ])
    }

    #[test]
    fn construction_validates() {
        assert_eq!(Curve::try_from_segments(vec![]), Err(CurveError::Empty));
        assert_eq!(
            Curve::try_from_segments(vec![Segment::new(Time(1), 0, 0)]),
            Err(CurveError::FirstSegmentNotAtZero)
        );
        let dup = vec![Segment::new(Time(0), 0, 0), Segment::new(Time(0), 1, 0)];
        assert_eq!(
            Curve::try_from_segments(dup),
            Err(CurveError::UnsortedSegments { index: 1 })
        );
    }

    #[test]
    fn normalization_merges_continuations() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(5), 5, 1), // continuation of the same line
            Segment::new(Time(8), 9, 1), // jump of +1
        ]);
        assert_eq!(c.num_segments(), 2);
        assert_eq!(c.eval(Time(7)), 7);
        assert_eq!(c.eval(Time(8)), 9);
    }

    #[test]
    fn eval_and_left_limits() {
        let c = staircase();
        assert_eq!(c.eval(Time(0)), 0);
        assert_eq!(c.eval(Time(4)), 0);
        assert_eq!(c.eval(Time(5)), 2); // right-continuous
        assert_eq!(c.eval_left(Time(5)), 0);
        assert_eq!(c.jump_at(Time(5)), 2);
        assert_eq!(c.jump_at(Time(7)), 0);
        assert_eq!(c.eval(Time(12)), 4);
        assert_eq!(c.eval_left(Time(12)), 4);
    }

    #[test]
    fn monotonicity_detection() {
        assert!(staircase().is_nondecreasing());
        let dec = Curve::from_segments(vec![
            Segment::new(Time(0), 10, 0),
            Segment::new(Time(3), 4, 0), // downward jump
        ]);
        assert_eq!(dec.first_decrease(), Some(Time(3)));
        let negslope = Curve::affine(0, -1);
        // The first observable lattice decrease is at t = 1 (f(1) < f(0)).
        assert_eq!(negslope.first_decrease(), Some(Time(1)));
        assert!(negslope.require_nondecreasing().is_err());
        // Overshoot-then-dip representations that are monotone on the
        // lattice count as nondecreasing: values 0,1,2,2,… with the second
        // piece starting below the first piece's interpolated extension.
        let lattice_monotone = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(3), 2, 0),
        ]);
        assert!(lattice_monotone.is_nondecreasing());
    }

    #[test]
    fn continuity_detection() {
        assert!(!staircase().is_continuous());
        assert!(Curve::identity().is_continuous());
        let cont = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(4), 4, 0),
        ]);
        assert!(cont.is_continuous());
    }

    #[test]
    fn shift_right_fills_prefix() {
        let c = Curve::identity().shift_right(Time(3), 0);
        assert_eq!(c.eval(Time(0)), 0);
        assert_eq!(c.eval(Time(2)), 0);
        assert_eq!(c.eval(Time(3)), 0);
        assert_eq!(c.eval(Time(10)), 7);
        // Zero shift is identity.
        assert_eq!(
            Curve::identity().shift_right(Time(0), 99),
            Curve::identity()
        );
    }

    #[test]
    fn mask_before_replaces_prefix() {
        let c = Curve::identity().mask_before(Time(5), 0);
        assert_eq!(c.sample(Time(0), Time(7)), vec![0, 0, 0, 0, 0, 5, 6, 7]);
        // No-op masks.
        assert_eq!(Curve::identity().mask_before(Time(0), 9), Curve::identity());
        // Mask inside a later segment.
        let s = staircase().mask_before(Time(7), -1);
        assert_eq!(s.eval(Time(6)), -1);
        assert_eq!(s.eval(Time(7)), 2);
        assert_eq!(s.eval(Time(12)), 4);
    }

    #[test]
    fn truncate_after_keeps_prefix() {
        let c = staircase().truncate_after(Time(6));
        assert_eq!(c.eval(Time(6)), 2);
        assert_eq!(c.eval(Time(100)), 2); // plateau extended
        assert_eq!(c.num_segments(), 2);
    }

    #[test]
    fn step_from_points_builds_staircase() {
        let c = Curve::step_from_points(0, &[(Time(2), 1), (Time(4), 3)]);
        assert_eq!(c.sample(Time(0), Time(5)), vec![0, 0, 1, 1, 3, 3]);
        // Breakpoint at zero replaces the implicit prefix.
        let d = Curve::step_from_points(7, &[(Time(0), 1), (Time(4), 3)]);
        assert_eq!(d.eval(Time(0)), 1);
    }

    #[test]
    fn display_is_stable() {
        let s = format!("{}", Curve::affine(1, 2));
        assert_eq!(s, "Curve[(0: 1 + 2·Δt)]");
    }
}

//! Integer tick time base.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// Default number of ticks per abstract model-time unit.
///
/// The ICPP'98 workload generators draw periods and execution times as real
/// numbers in "period units"; quantizing at one million ticks per unit keeps
/// relative quantization error below 10⁻⁶ while all analysis arithmetic stays
/// inside `i64`.
pub const DEFAULT_TICKS_PER_UNIT: i64 = 1_000_000;

/// A point in (or span of) time, measured in integer ticks.
///
/// `Time` is deliberately a thin transparent wrapper: the analysis performs a
/// large volume of breakpoint arithmetic, and the wrapper exists purely so the
/// type system separates *time* from *work* and *counts* (both plain `i64` at
/// the curve layer). Spans and instants share this one type, mirroring the
/// paper's usage where `t`, response times, and execution times all live on
/// the same axis.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Time(pub i64);

impl Time {
    /// The origin of the timeline.
    pub const ZERO: Time = Time(0);
    /// One single tick.
    pub const ONE: Time = Time(1);
    /// The largest representable time; used as "never".
    pub const MAX: Time = Time(i64::MAX);

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Quantize a real-valued duration in model units, rounding to nearest.
    #[inline]
    pub fn from_units(units: f64, ticks_per_unit: i64) -> Time {
        Time((units * ticks_per_unit as f64).round() as i64)
    }

    /// Quantize rounding **up** — the conservative direction for execution
    /// times (never underestimate demand).
    #[inline]
    pub fn from_units_ceil(units: f64, ticks_per_unit: i64) -> Time {
        Time((units * ticks_per_unit as f64).ceil() as i64)
    }

    /// Quantize rounding **down** — the conservative direction for release
    /// times (never postpone an arrival).
    #[inline]
    pub fn from_units_floor(units: f64, ticks_per_unit: i64) -> Time {
        Time((units * ticks_per_unit as f64).floor() as i64)
    }

    /// Convert back to model units (for reporting only; never used in
    /// schedulability decisions).
    #[inline]
    pub fn to_units(self, ticks_per_unit: i64) -> f64 {
        self.0 as f64 / ticks_per_unit as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Pointwise minimum.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// `true` iff this is a nonnegative time (valid point on the timeline).
    #[inline]
    pub fn is_valid_instant(self) -> bool {
        self.0 >= 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<i64> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: i64) -> Time {
        Time(self.0 % rhs)
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Time {
    #[inline]
    fn from(v: i64) -> Time {
        Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Time(30);
        let b = Time(12);
        assert_eq!(a + b, Time(42));
        assert_eq!(a - b, Time(18));
        assert_eq!(a * 2, Time(60));
        assert_eq!(a / 3, Time(10));
        assert_eq!(-b, Time(-12));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn quantization_directions() {
        // ceil for demand, floor for releases.
        assert_eq!(Time::from_units_ceil(1.0000001, 1_000_000), Time(1_000_001));
        assert_eq!(
            Time::from_units_floor(1.9999999, 1_000_000),
            Time(1_999_999)
        );
        assert_eq!(Time::from_units(0.5, 10), Time(5));
    }

    #[test]
    fn unit_conversion_roundtrip() {
        let t = Time::from_units(3.25, 1000);
        assert_eq!(t, Time(3250));
        assert!((t.to_units(1000) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Time(1)), Time::MAX);
        assert_eq!(Time(i64::MIN).saturating_sub(Time(1)), Time(i64::MIN));
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time(1), Time(2), Time(3)].into_iter().sum();
        assert_eq!(total, Time(6));
    }
}

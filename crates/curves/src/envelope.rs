//! Minimal arrival envelopes from concrete traces.
//!
//! The paper analyzes *concrete* arrival functions; classical network
//! calculus (its refs [20, 21]) abstracts traces into time-invariant
//! envelopes `α(Δ) = max #events in any window of length Δ`. This module
//! extracts the **minimal** such envelope from a finite trace — the bridge
//! between the two worlds: any shifted replay of the trace is bounded by
//! `α`, and `α` can be fed to the [`crate::bounds`] machinery (e.g. fitted
//! by a token bucket) for compositional reasoning.
//!
//! ```
//! use rta_curves::envelope::arrival_envelope;
//! use rta_curves::Time;
//!
//! // A burst of three, then a straggler.
//! let env = arrival_envelope(&[Time(0), Time(1), Time(2), Time(50)]);
//! assert_eq!(env.eval(Time(0)), 1);  // no simultaneous arrivals
//! assert_eq!(env.eval(Time(2)), 3);  // the burst fits a 2-tick window
//! assert_eq!(env.eval(Time(50)), 4); // everything fits the full span
//! ```

use crate::{Curve, Segment, Time};

/// [`arrival_envelope`] writing into a caller-provided curve, reusing its
/// segment buffer.
pub fn arrival_envelope_into(times: &[Time], out: &mut Curve) {
    let n = times.len();
    let segs = out.begin_write(n + 1);
    if n == 0 {
        segs.push(Segment::new(Time::ZERO, 0, 0));
        out.finish_write();
        return;
    }
    debug_assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "trace must be sorted"
    );
    // w_min(c) = smallest window containing c+1 consecutive events; it is
    // nondecreasing in c, and α(Δ) = max { c+1 : w_min(c) ≤ Δ } is the
    // staircase through the points (w_min(c), c+1), keeping the largest
    // count per distinct window length. w_min(0) = 0, so the first segment
    // sits at Δ = 0 and counts strictly increase — the pushes are already
    // a normalized staircase.
    for c in 0..n {
        let w_min = (0..n - c)
            .map(|i| times[i + c] - times[i])
            .min()
            .expect("non-empty range");
        let count = c as i64 + 1;
        match segs.last_mut() {
            Some(last) if last.start == w_min => last.value = count,
            _ => segs.push(Segment::new(w_min, count, 0)),
        }
    }
    out.finish_write();
}

/// The minimal sliding-window arrival envelope of a sorted trace:
/// `α(Δ) = max_t #{ i : t ≤ times[i] ≤ t + Δ }`, returned as a staircase
/// curve over window length `Δ` (so `α(0)` is the largest simultaneous
/// burst).
///
/// `O(n²)` over the trace length — envelopes are extracted once per trace,
/// not in analysis inner loops.
#[must_use]
pub fn arrival_envelope(times: &[Time]) -> Curve {
    let mut out = Curve::zero();
    arrival_envelope_into(times, &mut out);
    out
}

/// Check that `envelope` dominates every window of the trace:
/// `#{ i : t ≤ times[i] ≤ t + Δ } ≤ envelope(Δ)` for all `t` in the trace
/// and all `Δ`. Used in tests and debug assertions.
pub fn is_envelope_of(envelope: &Curve, times: &[Time]) -> bool {
    let n = times.len();
    for i in 0..n {
        for j in i..n {
            let window = times[j] - times[i];
            let count = (j - i + 1) as i64;
            if envelope.eval(window) < count {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_trace_envelope() {
        let times: Vec<Time> = (0..6).map(|i| Time(i * 10)).collect();
        let a = arrival_envelope(&times);
        // α(Δ) = 1 + ⌊Δ/10⌋ up to the trace length.
        assert_eq!(a.eval(Time(0)), 1);
        assert_eq!(a.eval(Time(9)), 1);
        assert_eq!(a.eval(Time(10)), 2);
        assert_eq!(a.eval(Time(35)), 4);
        assert_eq!(a.eval(Time(50)), 6);
        assert_eq!(a.eval(Time(500)), 6);
        assert!(is_envelope_of(&a, &times));
    }

    #[test]
    fn bursty_trace_envelope() {
        // Burst of 3 at t=0..2, then a lone event at 50.
        let times = vec![Time(0), Time(1), Time(2), Time(50)];
        let a = arrival_envelope(&times);
        assert_eq!(a.eval(Time(0)), 1);
        assert_eq!(a.eval(Time(1)), 2);
        assert_eq!(a.eval(Time(2)), 3);
        assert_eq!(a.eval(Time(49)), 3);
        assert_eq!(a.eval(Time(50)), 4); // the full span [0, 50]
        assert!(is_envelope_of(&a, &times));
    }

    #[test]
    fn simultaneous_events() {
        let times = vec![Time(5), Time(5), Time(5)];
        let a = arrival_envelope(&times);
        assert_eq!(a.eval(Time(0)), 3);
        assert!(is_envelope_of(&a, &times));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(arrival_envelope(&[]), Curve::zero());
        let a = arrival_envelope(&[Time(7)]);
        assert_eq!(a.eval(Time(0)), 1);
        assert_eq!(a.eval(Time(1000)), 1);
    }

    #[test]
    fn envelope_is_minimal() {
        // For every jump (Δ, c) of the envelope there is a real window of
        // length Δ holding c events — no slack anywhere.
        let times = vec![Time(0), Time(3), Time(4), Time(11), Time(12), Time(30)];
        let a = arrival_envelope(&times);
        for (delta, _) in a.jumps() {
            let c = a.eval(delta);
            let exists = (0..times.len()).any(|i| {
                (i + c as usize - 1) < times.len() && times[i + c as usize - 1] - times[i] <= delta
            });
            assert!(exists, "no witness window for ({delta}, {c})");
        }
        assert!(is_envelope_of(&a, &times));
    }

    #[test]
    fn token_bucket_fits_envelope() {
        // The envelope composes with the (σ,ρ) machinery.
        let times: Vec<Time> = vec![Time(0), Time(1), Time(2), Time(20), Time(40)];
        let a = arrival_envelope(&times);
        let tb = crate::bounds::TokenBucket::enclosing(&a, 1, Time(60));
        for d in 0..=60 {
            assert!(tb.curve().eval(Time(d)) >= a.eval(Time(d)), "Δ={d}");
        }
    }
}

//! Monotone curve composition `h(t) = f(g(t))`.
//!
//! Needed by the FCFS analysis (Theorems 8/9): the service bound is the
//! three-way composition `c ∘ G⁻¹ ∘ U` of the subjob's workload function,
//! the inverse of the processor's total workload, and the processor's
//! utilization function. Composition is exact at every integer tick: within
//! any stretch where the inner curve's values stay inside one linear piece of
//! the outer curve, linear∘linear is linear (slope product), and piece
//! boundaries are located with exact integer ceiling division.

use crate::util::div_ceil;
use crate::{Curve, CurveError, Segment, Time};

/// Compose `f ∘ g`: the curve `t ↦ f(g(t))`.
///
/// Requirements: `g` nondecreasing with `g(0) ≥ 0` (its values index into
/// `f`'s domain). `f` may be arbitrary.
pub fn compose(f: &Curve, g: &Curve) -> Result<Curve, CurveError> {
    g.require_nondecreasing()?;
    let g0 = g.segments()[0].value;
    if g0 < 0 {
        return Err(CurveError::NegativeAtZero { value: g0 });
    }

    let fsegs = f.segments();
    let gsegs = g.segments();
    let mut out: Vec<Segment> = Vec::new();
    let mut fi = 0usize; // advances monotonically since g is nondecreasing

    for (gi, gs) in gsegs.iter().enumerate() {
        let t1 = gsegs.get(gi + 1).map(|n| n.start);
        if gs.slope == 0 {
            let v = gs.value;
            while fi + 1 < fsegs.len() && fsegs[fi + 1].start.ticks() <= v {
                fi += 1;
            }
            out.push(Segment::new(gs.start, fsegs[fi].eval(Time(v)), 0));
            continue;
        }
        // Rising piece: walk the f segments the swept value range touches.
        let mut cur_t = gs.start;
        loop {
            let cur_v = gs.eval(cur_t);
            while fi + 1 < fsegs.len() && fsegs[fi + 1].start.ticks() <= cur_v {
                fi += 1;
            }
            let fseg = &fsegs[fi];
            let piece = Segment::new(cur_t, fseg.eval(Time(cur_v)), fseg.slope * gs.slope);
            // Where does g first reach the next f breakpoint?
            let next_cross = fsegs.get(fi + 1).map(|nf| {
                let off = div_ceil(nf.start.ticks() - gs.value, gs.slope);
                gs.start + Time(off)
            });
            match next_cross {
                Some(tc) if t1.is_none_or(|t1| tc < t1) => {
                    out.push(piece);
                    debug_assert!(tc > cur_t);
                    cur_t = tc;
                }
                _ => {
                    out.push(piece);
                    break;
                }
            }
        }
    }
    Ok(Curve::from_sorted_segments(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: evaluate f(g(t)) at each lattice point.
    fn check(f: &Curve, g: &Curve, horizon: i64) {
        let h = compose(f, g).expect("composable");
        for t in 0..=horizon {
            let expect = f.eval(Time(g.eval(Time(t))));
            assert_eq!(h.eval(Time(t)), expect, "t={t} f={f} g={g}");
        }
    }

    #[test]
    fn identity_laws() {
        let f = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(3), 5, 1),
            Segment::new(Time(8), 20, 0),
        ]);
        let id = Curve::identity();
        assert_eq!(compose(&f, &id).unwrap(), f);
        check(&id, &f, 15);
    }

    #[test]
    fn step_outer_with_sloped_inner() {
        // Outer: workload step; inner: slope-0/1 utilization-like curve.
        let f = Curve::from_event_times(&[Time(2), Time(5), Time(9)]).scale(4);
        let g = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(4), 4, 0),
            Segment::new(Time(7), 4, 1),
        ]);
        check(&f, &g, 20);
    }

    #[test]
    fn inner_with_jumps_skips_outer_breakpoints() {
        let f = Curve::from_event_times(&[Time(1), Time(2), Time(3), Time(4)]);
        let g = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 10, 0), // jump over all of f's breakpoints
        ]);
        check(&f, &g, 10);
    }

    #[test]
    fn steep_inner_slope() {
        let f = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(6), 6, 0),
        ]);
        let g = Curve::affine(0, 3); // g(t) = 3t skips f values
        check(&f, &g, 10);
    }

    #[test]
    fn outer_with_negative_slopes_is_fine() {
        let f = Curve::from_segments(vec![
            Segment::new(Time(0), 10, -1),
            Segment::new(Time(5), 0, 2),
        ]);
        let g = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(8), 8, 0),
        ]);
        check(&f, &g, 12);
    }

    #[test]
    fn decreasing_inner_rejected() {
        let f = Curve::identity();
        let g = Curve::affine(5, -1);
        assert!(matches!(
            compose(&f, &g),
            Err(CurveError::NotMonotone { .. })
        ));
    }

    #[test]
    fn negative_inner_start_rejected() {
        let f = Curve::identity();
        let g = Curve::affine(-3, 1);
        assert!(matches!(
            compose(&f, &g),
            Err(CurveError::NegativeAtZero { value: -3 })
        ));
    }
}

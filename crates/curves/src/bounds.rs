//! Bound curves and deviation measures.
//!
//! Definition 6 of the paper introduces upper/lower bound functions; the
//! response-time bound of Theorem 4 is, in network-calculus terms, the
//! *horizontal deviation* between an arrival upper bound and a departure
//! lower bound. This module provides that primitive plus the two classical
//! parametric bound families of Cruz's calculus (the paper's refs [20, 21]),
//! which the library exposes as an extension for abstracting concrete
//! arrival traces into `(σ, ρ)` envelopes.

use crate::util::div_ceil;
use crate::{Curve, Segment, Time};

/// Maximum horizontal gap `max_{1 ≤ m ≤ m_max} ( late⁻¹(m) − early⁻¹(m) )`
/// between two counting curves.
///
/// With `early` an arrival function and `late` the matching departure
/// function this is exactly the worst-case response time of Theorem 1 (or,
/// with bound functions, the per-hop delay `d_{k,j}` of Equation 12).
/// Returns `None` if some instance `m ≤ m_max` never departs (`late` never
/// reaches `m`) — the delay is unbounded at this horizon.
pub fn horizontal_deviation(early: &Curve, late: &Curve, m_max: i64) -> Option<Time> {
    let mut worst = Time::ZERO;
    for m in 1..=m_max {
        let a = early
            .inverse_at(m)
            .expect("early curve must dominate m_max events");
        let d = late.inverse_at(m)?;
        worst = worst.max(d - a);
    }
    Some(worst)
}

/// Maximum vertical gap `max_t ( upper(t) − lower(t) )` over `[0, horizon]`
/// — e.g. a backlog bound between arrived and departed work.
pub fn vertical_deviation(upper: &Curve, lower: &Curve, horizon: Time) -> i64 {
    upper.sub(lower).sup_on(horizon)
}

/// A token-bucket (leaky-bucket) arrival envelope `α(t) = σ + ρ·t`:
/// at most `σ` units of burst plus a sustained rate of `ρ` units per tick.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TokenBucket {
    /// Burst allowance (work units).
    pub sigma: i64,
    /// Sustained rate (work units per tick).
    pub rho: i64,
}

impl TokenBucket {
    /// The envelope as a concrete curve.
    pub fn curve(&self) -> Curve {
        Curve::affine(self.sigma, self.rho)
    }

    /// Tightest token-bucket envelope with the given rate that dominates a
    /// workload curve on `[0, horizon]`: `σ = max_t (c(t) − ρ·t)`.
    pub fn enclosing(c: &Curve, rho: i64, horizon: Time) -> TokenBucket {
        let sigma = c.sub(&Curve::affine(0, rho)).sup_on(horizon).max(0);
        TokenBucket { sigma, rho }
    }
}

/// A rate-latency service lower bound `β(t) = max(0, R·(t − T))`: nothing for
/// `T` ticks, then service at rate `R`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RateLatency {
    /// Initial service latency in ticks.
    pub latency: Time,
    /// Service rate (work units per tick), ≥ 1.
    pub rate: i64,
}

impl RateLatency {
    /// The bound as a concrete curve.
    pub fn curve(&self) -> Curve {
        if self.latency == Time::ZERO {
            return Curve::affine(0, self.rate);
        }
        Curve::from_segments(vec![
            Segment::new(Time::ZERO, 0, 0),
            Segment::new(self.latency, 0, self.rate),
        ])
    }

    /// Concatenation of two rate-latency servers (min-plus convolution):
    /// latencies add, the slower rate dominates.
    pub fn then(&self, other: &RateLatency) -> RateLatency {
        RateLatency {
            latency: self.latency + other.latency,
            rate: self.rate.min(other.rate),
        }
    }

    /// Classical delay bound for a token-bucket flow through this server:
    /// `T + ⌈σ/R⌉` (lattice-rounded), provided the rate keeps up (`ρ ≤ R`).
    pub fn delay_bound(&self, flow: &TokenBucket) -> Option<Time> {
        if flow.rho > self.rate {
            return None;
        }
        Some(self.latency + Time(div_ceil(flow.sigma, self.rate)))
    }

    /// Classical backlog bound `σ + ρ·T` for a token-bucket flow.
    pub fn backlog_bound(&self, flow: &TokenBucket) -> Option<i64> {
        if flow.rho > self.rate {
            return None;
        }
        Some(flow.sigma + flow.rho * self.latency.ticks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_deviation_is_response_time() {
        // Arrivals at 0, 10; departures at 4, 17 ⇒ responses 4 and 7.
        let arr = Curve::from_event_times(&[Time(0), Time(10)]);
        let dep = Curve::from_event_times(&[Time(4), Time(17)]);
        assert_eq!(horizontal_deviation(&arr, &dep, 2), Some(Time(7)));
    }

    #[test]
    fn horizontal_deviation_unbounded_when_instance_stuck() {
        let arr = Curve::from_event_times(&[Time(0), Time(1)]);
        let dep = Curve::from_event_times(&[Time(5)]);
        assert_eq!(horizontal_deviation(&arr, &dep, 2), None);
        assert_eq!(horizontal_deviation(&arr, &dep, 1), Some(Time(5)));
    }

    #[test]
    fn vertical_deviation_is_max_backlog() {
        let arr = Curve::from_event_times(&[Time(0), Time(1), Time(2)]).scale(3);
        let dep = Curve::identity();
        // Backlog peaks at t=2: 9 arrived, 2 served.
        assert_eq!(vertical_deviation(&arr, &dep, Time(20)), 7);
    }

    #[test]
    fn token_bucket_encloses_trace() {
        let c = Curve::from_event_times(&[Time(0), Time(1), Time(8)]).scale(5);
        let tb = TokenBucket::enclosing(&c, 1, Time(20));
        // At t=1: c=10, line=1 ⇒ σ ≥ 9; check domination.
        assert_eq!(tb.sigma, 9);
        let env = tb.curve();
        for t in 0..=20 {
            assert!(env.eval(Time(t)) >= c.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn rate_latency_algebra() {
        let a = RateLatency {
            latency: Time(3),
            rate: 2,
        };
        let b = RateLatency {
            latency: Time(5),
            rate: 1,
        };
        let ab = a.then(&b);
        assert_eq!(
            ab,
            RateLatency {
                latency: Time(8),
                rate: 1
            }
        );
        let c = a.curve();
        assert_eq!(c.eval(Time(3)), 0);
        assert_eq!(c.eval(Time(7)), 8);
    }

    #[test]
    fn delay_and_backlog_bounds() {
        let srv = RateLatency {
            latency: Time(4),
            rate: 2,
        };
        let flow = TokenBucket { sigma: 5, rho: 1 };
        assert_eq!(srv.delay_bound(&flow), Some(Time(4 + 3))); // ceil(5/2)=3
        assert_eq!(srv.backlog_bound(&flow), Some(5 + 4));
        let fast = TokenBucket { sigma: 5, rho: 3 };
        assert_eq!(srv.delay_bound(&fast), None);
        assert_eq!(srv.backlog_bound(&fast), None);
    }

    #[test]
    fn zero_latency_rate_latency_is_affine() {
        let srv = RateLatency {
            latency: Time::ZERO,
            rate: 3,
        };
        assert_eq!(srv.curve(), Curve::affine(0, 3));
    }
}

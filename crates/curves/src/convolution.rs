//! Min-plus convolution.
//!
//! The paper's Theorem 3 is a disguised min-plus operation: the exact SPP
//! service function is `S = A − ((A − c) ⊘ 0)` in deconvolution form, or —
//! as implemented in `rta-core` — an availability curve plus a running
//! minimum. This module provides the general operator for the convex case
//! (the classical network-calculus service-curve family) and an exhaustive
//! lattice evaluator used as a test oracle and for small ad-hoc curves.

use crate::{Curve, Segment, Time};

impl Curve {
    /// `true` iff the curve is convex on the lattice: continuous with
    /// nondecreasing slopes.
    pub fn is_convex(&self) -> bool {
        self.is_continuous()
            && self
                .segments()
                .windows(2)
                .all(|w| w[0].slope <= w[1].slope)
    }
}

/// Min-plus convolution `(f ⊗ g)(t) = min_{0 ≤ s ≤ t} ( f(s) + g(t − s) )`
/// for **convex** nondecreasing curves.
///
/// For convex curves the infimal convolution is obtained by laying the linear
/// pieces of both curves end to end in order of increasing slope, starting
/// from `f(0) + g(0)` — an O(n + m) merge. Panics (debug) if either curve is
/// not convex; use [`min_plus_convolve_lattice`] for arbitrary curves.
pub fn convolve_convex(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_convex(), "convolve_convex requires convex f");
    debug_assert!(g.is_convex(), "convolve_convex requires convex g");

    // Collect finite pieces (length, slope); final pieces are infinite.
    struct Piece {
        len: Option<Time>,
        slope: i64,
    }
    fn pieces(c: &Curve) -> Vec<Piece> {
        let segs = c.segments();
        segs.iter()
            .enumerate()
            .map(|(i, s)| Piece {
                len: segs.get(i + 1).map(|n| n.start - s.start),
                slope: s.slope,
            })
            .collect()
    }
    let mut all: Vec<Piece> = pieces(f).into_iter().chain(pieces(g)).collect();
    all.sort_by_key(|p| p.slope);

    let mut out = Vec::with_capacity(all.len());
    let mut t = Time::ZERO;
    let mut v = f.eval(Time::ZERO) + g.eval(Time::ZERO);
    for p in all {
        out.push(Segment::new(t, v, p.slope));
        match p.len {
            Some(len) => {
                t += len;
                v += p.slope * len.ticks();
            }
            None => break, // first infinite piece has the smallest remaining slope
        }
    }
    Curve::from_sorted_segments(out)
}

/// Exhaustive min-plus convolution on the lattice, `O(horizon²)` — a test
/// oracle and a fallback for small arbitrary curves. The result is frozen at
/// its horizon value.
pub fn min_plus_convolve_lattice(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    let h = horizon.ticks();
    assert!(h >= 0);
    let fv: Vec<i64> = (0..=h).map(|t| f.eval(Time(t))).collect();
    let gv: Vec<i64> = (0..=h).map(|t| g.eval(Time(t))).collect();
    let mut points = Vec::with_capacity(h as usize + 1);
    for t in 0..=h {
        let mut best = i64::MAX;
        for s in 0..=t {
            best = best.min(fv[s as usize] + gv[(t - s) as usize]);
        }
        points.push((Time(t), best));
    }
    Curve::step_from_points(points[0].1, &points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::RateLatency;

    fn assert_agree(f: &Curve, g: &Curve, horizon: i64) {
        let fast = convolve_convex(f, g);
        let slow = min_plus_convolve_lattice(f, g, Time(horizon));
        for t in 0..=horizon {
            assert_eq!(
                fast.eval(Time(t)),
                slow.eval(Time(t)),
                "t={t} f={f} g={g}"
            );
        }
    }

    #[test]
    fn convexity_detection() {
        assert!(Curve::identity().is_convex());
        assert!(RateLatency { latency: Time(3), rate: 2 }.curve().is_convex());
        assert!(!Curve::from_event_times(&[Time(1)]).is_convex()); // jump
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(4), 8, 1),
        ]);
        assert!(!concave.is_convex());
    }

    #[test]
    fn rate_latency_convolution_is_closed_form() {
        let a = RateLatency { latency: Time(2), rate: 3 };
        let b = RateLatency { latency: Time(5), rate: 1 };
        let conv = convolve_convex(&a.curve(), &b.curve());
        assert_eq!(conv, a.then(&b).curve());
        assert_agree(&a.curve(), &b.curve(), 25);
    }

    #[test]
    fn convolution_with_zero_is_floor() {
        // f ⊗ 0 = min over splits: with g ≡ 0 the result is the running min
        // of f; for nondecreasing convex f that is f(0).
        let f = Curve::affine(4, 2);
        let conv = convolve_convex(&f, &Curve::zero());
        assert_eq!(conv, Curve::constant(4));
    }

    #[test]
    fn general_convex_pair() {
        let f = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 0),
            Segment::new(Time(3), 1, 1),
            Segment::new(Time(7), 5, 4),
        ]);
        let g = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(5), 10, 3),
        ]);
        assert!(f.is_convex() && g.is_convex());
        assert_agree(&f, &g, 30);
    }

    #[test]
    fn lattice_oracle_handles_nonconvex() {
        // Staircase ⊗ rate: classic smoothing.
        let f = Curve::from_event_times(&[Time(0), Time(4), Time(8)]).scale(3);
        let g = Curve::identity();
        let conv = min_plus_convolve_lattice(&f, &g, Time(15));
        for t in 0..=15 {
            let mut best = i64::MAX;
            for s in 0..=t {
                best = best.min(f.eval(Time(s)) + (t - s));
            }
            assert_eq!(conv.eval(Time(t)), best, "t={t}");
        }
    }
}

//! Min-plus convolution.
//!
//! The paper's Theorem 3 is a disguised min-plus operation: the exact SPP
//! service function is `S = A − ((A − c) ⊘ 0)` in deconvolution form, or —
//! as implemented in `rta-core` — an availability curve plus a running
//! minimum. This module provides the segment-native operator for arbitrary
//! curves ([`convolve`]) via convex decomposition, the O(n + m) slope-merge
//! for the convex case ([`convolve_convex`]), and an exhaustive lattice
//! evaluator ([`min_plus_convolve_lattice`]) kept **only as a test oracle**
//! — it is O(horizon²) and must not appear on analysis paths.
//!
//! ## Convex decomposition
//!
//! Any piecewise-linear curve splits into maximal *convex runs*: break the
//! segment list wherever the curve jumps or its slope decreases. Each run
//! is convex on its half-open time domain, the domains partition `[0, ∞)`,
//! and with the convention `f_i = +∞` outside its domain, `f = min_i f_i`.
//! Min-plus convolution distributes over `min`, so
//!
//! ```text
//! f ⊗ g = min_{i,j} ( f_i ⊗ g_j )
//! ```
//!
//! where each `f_i ⊗ g_j` is a convex partial curve computed by the
//! classical slope merge (domain start/lengths add). The cost is
//! O(R_f · R_g · segments) for R convex runs — for the convex curves that
//! dominate the analysis R = 1 and the general path collapses to the
//! slope merge.
//!
//! ## Dense crossover
//!
//! The decomposition cost grows with the *product* of the run counts, so
//! for curves whose breakpoint spacing approaches one tick (R ≈ horizon —
//! dense staircases at coarse resolution) the O(horizon²) lattice scan is
//! cheaper than the O(R_f · R_g · segments) pair merge. [`convolve`] is a
//! hybrid: it estimates both costs and dispatches to the cheaper kernel;
//! both produce identical values at every tick of the horizon.
//! [`convolve_decomposed`] pins the decomposition path for benchmarks and
//! oracle tests.

use crate::curve::push_normalized;
use crate::soa::SoaCurve;
use crate::{Curve, Scratch, Segment, Time};

/// Sentinel standing in for `+∞` while folding partial curves into a total
/// minimum. Any real curve value within the analysis horizon is far below
/// this, so the sentinel loses every pointwise min on `[0, horizon]`.
const INFTY: i64 = i64::MAX / 8;

impl Curve {
    /// `true` iff the curve is convex on the lattice: continuous with
    /// nondecreasing slopes.
    pub fn is_convex(&self) -> bool {
        self.is_continuous() && self.segments().windows(2).all(|w| w[0].slope <= w[1].slope)
    }
}

/// Min-plus convolution `(f ⊗ g)(t) = min_{0 ≤ s ≤ t} ( f(s) + g(t − s) )`
/// for **convex** nondecreasing curves.
///
/// For convex curves the infimal convolution is obtained by laying the linear
/// pieces of both curves end to end in order of increasing slope, starting
/// from `f(0) + g(0)` — an O(n + m) merge. Panics (debug) if either curve is
/// not convex; use [`min_plus_convolve_lattice`] for arbitrary curves.
#[must_use]
pub fn convolve_convex(f: &Curve, g: &Curve) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    convolve_convex_into(f, g, &mut scratch, &mut out);
    out
}

/// [`convolve_convex`] writing into a caller-provided curve; the
/// `(length, slope)` piece staging lives in `scratch`, so a warm call
/// allocates nothing.
pub fn convolve_convex_into(f: &Curve, g: &Curve, scratch: &mut Scratch, out: &mut Curve) {
    debug_assert!(f.is_convex(), "convolve_convex requires convex f");
    debug_assert!(g.is_convex(), "convolve_convex requires convex g");

    // Collect finite pieces (length, slope); final pieces are infinite.
    let pieces = &mut scratch.pieces;
    pieces.clear();
    for c in [f, g] {
        let segs = c.segments();
        for (i, s) in segs.iter().enumerate() {
            pieces.push((segs.get(i + 1).map(|n| n.start - s.start), s.slope));
        }
    }
    // Stable sort, f's pieces staged before g's — the same piece order the
    // allocating implementation always produced.
    pieces.sort_by_key(|&(_, slope)| slope);

    let out_segs = out.begin_write(pieces.len());
    let mut t = Time::ZERO;
    let mut v = f.eval(Time::ZERO) + g.eval(Time::ZERO);
    for &(len, slope) in pieces.iter() {
        push_normalized(out_segs, Segment::new(t, v, slope));
        match len {
            Some(len) => {
                t += len;
                v += slope * len.ticks();
            }
            None => break, // first infinite piece has the smallest remaining slope
        }
    }
    out.finish_write();
}

/// A maximal convex run of a curve: segments covering the half-open time
/// domain `[segs[0].start, end)`, continuous with nondecreasing slopes.
struct ConvexRun<'a> {
    segs: &'a [Segment],
    /// Exclusive domain end; `None` for the final, unbounded run.
    end: Option<Time>,
}

/// Split a curve into its maximal convex runs. The runs' domains partition
/// `[0, ∞)` and the curve equals each run on its domain.
fn convex_runs(c: &Curve) -> Vec<ConvexRun<'_>> {
    let segs = c.segments();
    let mut runs = Vec::new();
    let mut begin = 0;
    for i in 1..segs.len() {
        let discontinuous = segs[i - 1].eval(segs[i].start) != segs[i].value;
        if discontinuous || segs[i].slope < segs[i - 1].slope {
            runs.push(ConvexRun {
                segs: &segs[begin..i],
                end: Some(segs[i].start),
            });
            begin = i;
        }
    }
    runs.push(ConvexRun {
        segs: &segs[begin..],
        end: None,
    });
    runs
}

/// A convex partial curve: `segs` cover `[segs[0].start, end)`.
struct Partial {
    segs: Vec<Segment>,
    end: Option<Time>,
}

/// Min-plus convolution of two convex runs by the slope merge. Domain
/// starts add; piece lengths add; pieces are laid out in slope order from
/// `f(a_f) + g(a_g)`.
fn convolve_runs(f: &ConvexRun<'_>, g: &ConvexRun<'_>) -> Partial {
    // (length, slope) pieces; `None` length marks the single unbounded tail.
    let mut pieces: Vec<(Option<Time>, i64)> = Vec::with_capacity(f.segs.len() + g.segs.len());
    let mut unbounded = false;
    for run in [f, g] {
        for (i, s) in run.segs.iter().enumerate() {
            match run.segs.get(i + 1) {
                Some(n) => pieces.push((Some(n.start - s.start), s.slope)),
                None => match run.end {
                    // Last lattice point of the domain is `end − 1`.
                    Some(e) => pieces.push((Some(e - Time(1) - s.start), s.slope)),
                    None => {
                        pieces.push((None, s.slope));
                        unbounded = true;
                    }
                },
            }
        }
    }
    pieces.sort_by_key(|&(_, slope)| slope);

    let mut t = f.segs[0].start + g.segs[0].start;
    let mut v = f.segs[0].value + g.segs[0].value;
    let mut out = Vec::with_capacity(pieces.len());
    for (len, slope) in pieces {
        match len {
            Some(len) if len == Time::ZERO => continue,
            Some(len) => {
                out.push(Segment::new(t, v, slope));
                t += len;
                v += slope * len.ticks();
            }
            None => {
                out.push(Segment::new(t, v, slope));
                break; // smallest-slope unbounded piece dominates the tail
            }
        }
    }
    if out.is_empty() {
        // Both domains are single lattice points: a point mass.
        out.push(Segment::new(t, v, 0));
    }
    // Closed result domain ends at the sum of the last lattice points.
    let end = if unbounded { None } else { Some(t + Time(1)) };
    Partial { segs: out, end }
}

/// Extend a partial curve to a total one using the [`INFTY`] sentinel
/// outside its domain, clipped against `horizon`.
fn partial_to_total(p: Partial, horizon: Time) -> Option<Curve> {
    let start = p.segs[0].start;
    if start > horizon {
        return None;
    }
    let mut segs = Vec::with_capacity(p.segs.len() + 2);
    if start > Time::ZERO {
        segs.push(Segment::new(Time::ZERO, INFTY, 0));
    }
    segs.extend(p.segs);
    if let Some(e) = p.end {
        if e <= horizon {
            segs.push(Segment::new(e, INFTY, 0));
        }
    }
    Some(Curve::from_sorted_segments(segs))
}

/// Min-plus convolution
/// `(f ⊗ g)(t) = min_{0 ≤ s ≤ t} ( f(s) + g(t − s) )` for **arbitrary**
/// piecewise-linear curves, exact at every integer tick in `[0, horizon]`
/// (frozen beyond, like the lattice oracle it replaces).
///
/// Convex inputs take the O(n + m) slope-merge fast path. General inputs
/// are dispatched by a cost heuristic (see the module docs): sparse curves
/// go through the convex decomposition ([`convolve_decomposed`],
/// O(R_f · R_g · (n + m)) for R convex runs, independent of the horizon),
/// while run counts approaching the horizon fall back to the dense
/// O(horizon²) lattice scan, which beats the decomposition in that regime.
#[must_use]
pub fn convolve(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    convolve_into(f, g, horizon, &mut scratch, &mut out);
    out
}

/// [`convolve`] writing into a caller-provided curve. All three kernels —
/// the convex fast path, the dense lattice fallback, and the
/// convex-decomposition path (whose per-pair partials and fold layers are
/// structure-of-arrays buffers pooled in `scratch`) — run entirely out of
/// `scratch`, so a warm call performs no heap traffic.
pub fn convolve_into(f: &Curve, g: &Curve, horizon: Time, scratch: &mut Scratch, out: &mut Curve) {
    assert!(horizon >= Time::ZERO);
    if f.is_convex() && g.is_convex() {
        convolve_convex_into(f, g, scratch, out);
    } else if dense_scan_is_cheaper(f, g, horizon) {
        min_plus_convolve_lattice_into(f, g, horizon, scratch, out);
    } else {
        convolve_decomposed_into(f, g, horizon, scratch, out);
    }
}

/// Exclusive-prefix run starts of a curve's convex decomposition, clipped
/// to the horizon (runs starting beyond it contribute nothing).
fn run_starts_within(c: &Curve, horizon: Time) -> Vec<i64> {
    let segs = c.segments();
    let mut starts = vec![Time::ZERO.ticks()];
    for i in 1..segs.len() {
        let discontinuous = segs[i - 1].eval(segs[i].start) != segs[i].value;
        if discontinuous || segs[i].slope < segs[i - 1].slope {
            if segs[i].start > horizon {
                break;
            }
            starts.push(segs[i].start.ticks());
        }
    }
    starts
}

/// Cost heuristic for the hybrid dispatch: compare the decomposition's
/// leaf-and-fold work against the lattice scan's `horizon²` cell sweep,
/// mirroring which leaf generator [`convolve_decomposed_into`] would pick.
///
/// When the staircase row path applies its work is `R · |other|` (one
/// shifted copy of the other operand per flat run), so the lattice only
/// wins for near-every-tick staircases where `R` and `|other|` both
/// approach the horizon. Otherwise the pair count honors the horizon clip
/// of the decomposition's inner loop (a pair is dead once its domain
/// starts past the horizon), and each pair costs on the order of the total
/// segment count. Both constants calibrate merge work against the per-cell
/// scan; they were fitted on the `convolve/*` benchmarks in
/// `BENCH_curves.json` plus adversarial every-tick / every-2-tick
/// staircase shapes (lattice 506–576 µs vs rows 1.9–17.8 ms there; rows
/// 67–317 µs on the bench shapes).
fn dense_scan_is_cheaper(f: &Curve, g: &Curve, horizon: Time) -> bool {
    const ROW_VS_CELL: u128 = 16;
    const PAIR_VS_CELL: u128 = 3;
    let h = horizon.ticks() as u128;
    let segs_within = |c: &Curve| {
        c.segments()
            .iter()
            .take_while(|s| s.start <= horizon)
            .count() as u128
    };
    for (stair, other) in [(f, g), (g, f)] {
        if is_staircase(stair) && other.is_nondecreasing() {
            let rows = segs_within(stair);
            return h * h < ROW_VS_CELL * rows * (segs_within(other) + 2);
        }
    }
    let starts_f = run_starts_within(f, horizon);
    let starts_g = run_starts_within(g, horizon);
    // Two-pointer count of pairs with start_f + start_g ≤ horizon.
    let mut pairs: u128 = 0;
    let mut j = starts_g.len();
    for &sf in &starts_f {
        while j > 0 && sf + starts_g[j - 1] > horizon.ticks() {
            j -= 1;
        }
        if j == 0 {
            break;
        }
        pairs += j as u128;
    }
    let segs = (f.num_segments() + g.num_segments()) as u128;
    h * h < PAIR_VS_CELL * pairs * segs
}

/// The convex-decomposition convolution kernel behind [`convolve`]: always
/// takes the pair-merge path regardless of the cost heuristic. Exposed so
/// benchmarks and oracle tests can pin this path; analysis code should
/// call [`convolve`]. Delegates to [`convolve_decomposed_into`] on a fresh
/// scratch; hot callers should hold a warm [`Scratch`] and use the `_into`
/// variant directly.
#[must_use]
pub fn convolve_decomposed(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    convolve_decomposed_into(f, g, horizon, &mut scratch, &mut out);
    out
}

/// Convex-run begin indices of a segment list — the index form of
/// [`convex_runs`], staged in a reusable buffer. Run `k` spans
/// `segs[out[k]..out[k+1]]` (the last run extends to the end of the list).
fn run_begins_into(segs: &[Segment], out: &mut Vec<u32>) {
    out.clear();
    out.push(0);
    for i in 1..segs.len() {
        let discontinuous = segs[i - 1].eval(segs[i].start) != segs[i].value;
        if discontinuous || segs[i].slope < segs[i - 1].slope {
            out.push(i as u32);
        }
    }
}

/// Min-plus convolution of two convex runs, written as an [`INFTY`]-padded
/// total curve straight into an SoA buffer — [`convolve_runs`] and
/// [`partial_to_total`] fused into one pass with no per-pair allocation.
/// The normalized pushes produce the same segment list the reference
/// path's `from_sorted_segments` normalization would.
#[allow(clippy::too_many_arguments)]
fn pair_partial_into(
    fsegs: &[Segment],
    f_end: Option<Time>,
    gsegs: &[Segment],
    g_end: Option<Time>,
    horizon: Time,
    pieces: &mut Vec<(Option<Time>, i64)>,
    p: &mut SoaCurve,
) {
    pieces.clear();
    let mut unbounded = false;
    for (segs, end) in [(fsegs, f_end), (gsegs, g_end)] {
        for (i, s) in segs.iter().enumerate() {
            match segs.get(i + 1) {
                Some(n) => pieces.push((Some(n.start - s.start), s.slope)),
                None => match end {
                    // Last lattice point of the domain is `end − 1`.
                    Some(e) => pieces.push((Some(e - Time(1) - s.start), s.slope)),
                    None => {
                        pieces.push((None, s.slope));
                        unbounded = true;
                    }
                },
            }
        }
    }
    pieces.sort_by_key(|&(_, slope)| slope);

    let mut t = (fsegs[0].start + gsegs[0].start).ticks();
    let mut v = fsegs[0].value + gsegs[0].value;
    p.begin(pieces.len() + 3);
    if t > 0 {
        p.push(0, INFTY, 0);
    }
    let mut pushed = false;
    for &(len, slope) in pieces.iter() {
        match len {
            Some(len) if len == Time::ZERO => continue,
            Some(len) => {
                p.push(t, v, slope);
                pushed = true;
                t += len.ticks();
                v += slope * len.ticks();
            }
            None => {
                p.push(t, v, slope);
                pushed = true;
                break; // smallest-slope unbounded piece dominates the tail
            }
        }
    }
    if !pushed {
        // Both domains are single lattice points: a point mass.
        p.push(t, v, 0);
    }
    if !unbounded {
        // Closed result domain ends at the sum of the last lattice points.
        let e = t + 1;
        if e <= horizon.ticks() {
            p.push(e, INFTY, 0);
        }
    }
    p.finish();
}

/// `true` iff every segment is flat — i.e. every convex run is a single
/// slope-0 segment (a staircase; jumps may go either way). Normalization
/// guarantees consecutive flat segments are discontinuous, so for such a
/// curve segments and convex runs coincide.
fn is_staircase(c: &Curve) -> bool {
    c.segments().iter().all(|s| s.slope == 0)
}

/// Leaf generator for the staircase fast path of the decomposition:
/// `f` a staircase, `g` nondecreasing. The flat run `[aᵢ, bᵢ)` of `f` at
/// height `vᵢ` convolves with *all* of `g` at once:
///
/// ```text
/// (fᵢ ⊗ g)(t) = vᵢ + min_{s ∈ [aᵢ, min(bᵢ−1, t)]} g(t − s)
///             = vᵢ + g(max(t − (bᵢ − 1), 0))        for t ≥ aᵢ
/// ```
///
/// because a nondecreasing `g` always prefers the latest start the run
/// allows. Each row is a shifted copy of `g`, so the `R_f · R_g` pair
/// explosion collapses to one leaf per run of `f` — the difference between
/// ~R² tiny partials and ~R rows on dense staircase workloads.
fn staircase_rows(
    f: &Curve,
    g: &Curve,
    horizon: Time,
    scratch: &mut Scratch,
    layer: &mut Vec<SoaCurve>,
) {
    let fsegs = f.segments();
    let gsegs = g.segments();
    let g0 = gsegs[0].value;
    for (i, s) in fsegs.iter().enumerate() {
        let a = s.start.ticks();
        if a > horizon.ticks() {
            break; // later runs start even further out
        }
        let v = s.value;
        let mut p = scratch.take_soa();
        p.begin(gsegs.len() + 2);
        if a > 0 {
            p.push(0, INFTY, 0);
        }
        match fsegs.get(i + 1) {
            // Final, unbounded run: the inner minimum always reaches g(0).
            None => p.push(a, v + g0, 0),
            Some(n) => {
                let shift = n.start.ticks() - 1;
                if a < shift {
                    // Flat at v + g(0) until the run's last lattice point …
                    p.push(a, v + g0, 0);
                    if gsegs[0].slope != 0 {
                        p.push(shift, v + g0, gsegs[0].slope);
                    }
                } else {
                    // … which for a one-point run is the start itself.
                    p.push(a, v + g0, gsegs[0].slope);
                }
                for gs in &gsegs[1..] {
                    let t = shift + gs.start.ticks();
                    if t > horizon.ticks() {
                        break; // beyond-horizon content is truncated anyway
                    }
                    p.push(t, v + gs.value, gs.slope);
                }
            }
        }
        p.finish();
        layer.push(p);
    }
}

/// Leaf generator for the general decomposition path: one [`INFTY`]-padded
/// partial per pair of convex runs whose domain starts within the horizon.
fn pair_partials(
    f: &Curve,
    g: &Curve,
    horizon: Time,
    scratch: &mut Scratch,
    layer: &mut Vec<SoaCurve>,
) {
    let fsegs = f.segments();
    let gsegs = g.segments();
    let mut rb_f = std::mem::take(&mut scratch.run_bounds_a);
    let mut rb_g = std::mem::take(&mut scratch.run_bounds_b);
    run_begins_into(fsegs, &mut rb_f);
    run_begins_into(gsegs, &mut rb_g);

    for i in 0..rb_f.len() {
        let f_run = &fsegs[rb_f[i] as usize..rb_f.get(i + 1).map_or(fsegs.len(), |&n| n as usize)];
        let f_end = rb_f.get(i + 1).map(|&n| fsegs[n as usize].start);
        if f_run[0].start > horizon {
            break; // later runs start even further out
        }
        for j in 0..rb_g.len() {
            let g_run =
                &gsegs[rb_g[j] as usize..rb_g.get(j + 1).map_or(gsegs.len(), |&n| n as usize)];
            let g_end = rb_g.get(j + 1).map(|&n| gsegs[n as usize].start);
            // The pair's domain starts at the sum of the run starts.
            if f_run[0].start + g_run[0].start > horizon {
                break;
            }
            let mut p = scratch.take_soa();
            pair_partial_into(
                f_run,
                f_end,
                g_run,
                g_end,
                horizon,
                &mut scratch.pieces,
                &mut p,
            );
            layer.push(p);
        }
    }
    scratch.run_bounds_a = rb_f;
    scratch.run_bounds_b = rb_g;
}

/// [`convolve_decomposed`] writing into a caller-provided curve, with
/// every leaf partial and both tree-fold layers drawn from `scratch`'s
/// SoA pool — the allocation-free counterpart of the reference path
/// ([`convolve_decomposed_reference`]), value-identical to it at every
/// lattice tick in `[0, horizon]`.
///
/// Leaves come from one of two generators: when either operand is a
/// staircase and the other nondecreasing, [`staircase_rows`] emits one
/// shifted copy of the other curve per flat run; otherwise
/// [`pair_partials`] emits the classical per-run-pair convex merges
/// (segment-identical to the reference on that path).
pub fn convolve_decomposed_into(
    f: &Curve,
    g: &Curve,
    horizon: Time,
    scratch: &mut Scratch,
    out: &mut Curve,
) {
    assert!(horizon >= Time::ZERO);
    if f.is_convex() && g.is_convex() {
        convolve_convex_into(f, g, scratch, out);
        return;
    }
    let mut layer = std::mem::take(&mut scratch.fold_layer);
    let mut spare = std::mem::take(&mut scratch.fold_spare);
    layer.clear();
    spare.clear();

    if is_staircase(f) && g.is_nondecreasing() {
        staircase_rows(f, g, horizon, scratch, &mut layer);
    } else if is_staircase(g) && f.is_nondecreasing() {
        // Min-plus convolution is commutative; swap roles.
        staircase_rows(g, f, horizon, scratch, &mut layer);
    } else {
        pair_partials(f, g, horizon, scratch, &mut layer);
    }
    // Tree-fold the pairwise results: a sequential fold would re-walk the
    // O(horizon)-sized accumulator once per pair (O(pairs · |acc|)); merging
    // neighbours pairwise keeps every operand near its final size and costs
    // O(total segments · log pairs). Truncating at every merge keeps all
    // breakpoints within the horizon, so sentinel-sized values only ever
    // appear on constant pieces (no overflow in later crossings).
    while layer.len() > 1 {
        spare.clear();
        let mut k = 0;
        while k < layer.len() {
            if k + 1 < layer.len() {
                let mut m = scratch.take_soa();
                crate::soa::pointwise_min_into(&layer[k], &layer[k + 1], &mut m);
                m.truncate_after(horizon);
                spare.push(m);
                k += 2;
            } else {
                // The odd leftover passes to the next layer unchanged (and
                // untruncated, exactly like the reference fold).
                let placeholder = scratch.take_soa();
                spare.push(std::mem::replace(&mut layer[k], placeholder));
                k += 1;
            }
        }
        for c in layer.drain(..) {
            scratch.put_soa(c);
        }
        std::mem::swap(&mut layer, &mut spare);
    }
    let mut result = layer.pop().expect("runs cover t = 0");
    result.truncate_after(horizon);
    result.write_to_curve(out);
    scratch.put_soa(result);
    scratch.fold_layer = layer;
    scratch.fold_spare = spare;
}

/// The retained allocating AoS implementation of the decomposition path —
/// the oracle [`convolve_decomposed_into`] is pinned against (unit tests
/// here, property tests in `tests/soa_kernels.rs`). Not used on analysis
/// paths.
#[must_use]
pub fn convolve_decomposed_reference(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    assert!(horizon >= Time::ZERO);
    if f.is_convex() && g.is_convex() {
        return convolve_convex(f, g);
    }
    let runs_f = convex_runs(f);
    let runs_g = convex_runs(g);
    let mut layer: Vec<Curve> = Vec::with_capacity(runs_f.len() * runs_g.len());
    for rf in &runs_f {
        if rf.segs[0].start > horizon {
            break; // later runs start even further out
        }
        for rg in &runs_g {
            // The pair's domain starts at the sum of the run starts.
            if rf.segs[0].start + rg.segs[0].start > horizon {
                break;
            }
            if let Some(total) = partial_to_total(convolve_runs(rf, rg), horizon) {
                layer.push(total);
            }
        }
    }
    // Same neighbour-pairwise fold as the SoA path (see there for the cost
    // argument).
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => a.min_with(&b).truncate_after(horizon),
                None => a,
            });
        }
        layer = next;
    }
    layer
        .pop()
        .expect("runs cover t = 0")
        .truncate_after(horizon)
}

/// Exhaustive min-plus convolution on the lattice, `O(horizon²)`. Serves
/// two roles: the **test oracle** for [`convolve_decomposed`] and
/// [`convolve_convex`], and the dense kernel [`convolve`] falls back to
/// when the run-pair count rivals the horizon. The result is frozen at its
/// horizon value.
#[must_use]
pub fn min_plus_convolve_lattice(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    min_plus_convolve_lattice_into(f, g, horizon, &mut scratch, &mut out);
    out
}

/// The dense kernel behind [`min_plus_convolve_lattice`]: samples both
/// operands into `scratch` and pushes the resulting staircase straight
/// into `out`.
fn min_plus_convolve_lattice_into(
    f: &Curve,
    g: &Curve,
    horizon: Time,
    scratch: &mut Scratch,
    out: &mut Curve,
) {
    let h = horizon.ticks();
    assert!(h >= 0);
    let fv = &mut scratch.values_a;
    let gv = &mut scratch.values_b;
    fv.clear();
    fv.extend((0..=h).map(|t| f.eval(Time(t))));
    gv.clear();
    gv.extend((0..=h).map(|t| g.eval(Time(t))));
    let segs = out.begin_write(h as usize + 1);
    for t in 0..=h {
        let mut best = i64::MAX;
        for s in 0..=t {
            best = best.min(fv[s as usize] + gv[(t - s) as usize]);
        }
        push_normalized(segs, Segment::new(Time(t), best, 0));
    }
    out.finish_write();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::RateLatency;

    fn assert_agree(f: &Curve, g: &Curve, horizon: i64) {
        let fast = convolve_convex(f, g);
        let slow = min_plus_convolve_lattice(f, g, Time(horizon));
        for t in 0..=horizon {
            assert_eq!(fast.eval(Time(t)), slow.eval(Time(t)), "t={t} f={f} g={g}");
        }
    }

    #[test]
    fn convexity_detection() {
        assert!(Curve::identity().is_convex());
        assert!(RateLatency {
            latency: Time(3),
            rate: 2
        }
        .curve()
        .is_convex());
        assert!(!Curve::from_event_times(&[Time(1)]).is_convex()); // jump
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(4), 8, 1),
        ]);
        assert!(!concave.is_convex());
    }

    #[test]
    fn rate_latency_convolution_is_closed_form() {
        let a = RateLatency {
            latency: Time(2),
            rate: 3,
        };
        let b = RateLatency {
            latency: Time(5),
            rate: 1,
        };
        let conv = convolve_convex(&a.curve(), &b.curve());
        assert_eq!(conv, a.then(&b).curve());
        assert_agree(&a.curve(), &b.curve(), 25);
    }

    #[test]
    fn convolution_with_zero_is_floor() {
        // f ⊗ 0 = min over splits: with g ≡ 0 the result is the running min
        // of f; for nondecreasing convex f that is f(0).
        let f = Curve::affine(4, 2);
        let conv = convolve_convex(&f, &Curve::zero());
        assert_eq!(conv, Curve::constant(4));
    }

    #[test]
    fn general_convex_pair() {
        let f = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 0),
            Segment::new(Time(3), 1, 1),
            Segment::new(Time(7), 5, 4),
        ]);
        let g = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(5), 10, 3),
        ]);
        assert!(f.is_convex() && g.is_convex());
        assert_agree(&f, &g, 30);
    }

    fn assert_convolve_matches_oracle(f: &Curve, g: &Curve, horizon: i64) {
        let fast = convolve(f, g, Time(horizon));
        let slow = min_plus_convolve_lattice(f, g, Time(horizon));
        for t in 0..=horizon {
            assert_eq!(fast.eval(Time(t)), slow.eval(Time(t)), "t={t} f={f} g={g}");
        }
    }

    #[test]
    fn general_convolve_on_staircases() {
        // Staircase ⊗ rate — non-convex left operand.
        let f = Curve::from_event_times(&[Time(0), Time(4), Time(8)]).scale(3);
        assert_convolve_matches_oracle(&f, &Curve::identity(), 20);
        // Staircase ⊗ staircase.
        let g = Curve::from_event_times(&[Time(1), Time(5)]).scale(2);
        assert_convolve_matches_oracle(&f, &g, 20);
        // Against a rate-latency service curve.
        let rl = RateLatency {
            latency: Time(3),
            rate: 2,
        }
        .curve();
        assert_convolve_matches_oracle(&f, &rl, 25);
    }

    #[test]
    fn general_convolve_on_concave_and_mixed() {
        // Concave: slopes decrease (two runs).
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 3),
            Segment::new(Time(4), 12, 1),
        ]);
        assert_convolve_matches_oracle(&concave, &Curve::identity(), 20);
        assert_convolve_matches_oracle(&concave, &concave, 20);
        // Plateau-then-burst against concave.
        let bursty = Curve::from_segments(vec![
            Segment::new(Time(0), 2, 0),
            Segment::new(Time(6), 9, 2),
        ]);
        assert_convolve_matches_oracle(&bursty, &concave, 24);
    }

    #[test]
    fn general_convolve_convex_fast_path() {
        // Convex inputs must round-trip through convolve_convex unchanged.
        let a = RateLatency {
            latency: Time(2),
            rate: 3,
        }
        .curve();
        let b = RateLatency {
            latency: Time(5),
            rate: 1,
        }
        .curve();
        assert_eq!(convolve(&a, &b, Time(40)), convolve_convex(&a, &b));
    }

    #[test]
    fn general_convolve_with_zero_horizon() {
        // Only the s = 0 split exists: (f ⊗ id)(0) = f(0) + id(0).
        let f = Curve::from_event_times(&[Time(0), Time(2)]).scale(4);
        let c = convolve(&f, &Curve::identity(), Time::ZERO);
        assert_eq!(c.eval(Time::ZERO), f.eval(Time::ZERO));
    }

    #[test]
    fn convex_run_decomposition_counts() {
        assert_eq!(convex_runs(&Curve::identity()).len(), 1);
        let stair = Curve::from_event_times(&[Time(1), Time(5), Time(9)]);
        // Each jump opens a new run: initial plateau + 3 steps.
        assert_eq!(convex_runs(&stair).len(), 4);
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 3),
            Segment::new(Time(4), 12, 1),
        ]);
        assert_eq!(convex_runs(&concave).len(), 2);
    }

    #[test]
    fn hybrid_agrees_with_both_kernels_in_both_regimes() {
        // Dense regime: 64 events at gap 10 against 64 at gap 12 — the
        // BENCH_curves regression shape. The staircase row path collapsed
        // the pair explosion, so the decomposition wins here now; the
        // lattice only takes over near every-tick density (see
        // `dispatch_picks_expected_kernel_per_size_class`).
        let dense_f =
            Curve::from_event_times(&(0..64).map(|i| Time(i * 10)).collect::<Vec<_>>()).scale(3);
        let dense_g =
            Curve::from_event_times(&(0..64).map(|i| Time(i * 12)).collect::<Vec<_>>()).scale(2);
        let h_dense = Time(64 * 12 + 120);
        assert!(!dense_scan_is_cheaper(&dense_f, &dense_g, h_dense));
        // Sparse regime: few events across a huge horizon — decomposition
        // territory (the lattice scan would be ~1000× slower here).
        let sparse_f = Curve::from_event_times(&(0..8).map(|i| Time(i * 625)).collect::<Vec<_>>());
        let h_sparse = Time(25_000);
        assert!(!dense_scan_is_cheaper(&sparse_f, &sparse_f, h_sparse));
        // Whichever kernel the heuristic picks, values are identical at
        // every tick (spot-check the dense pair on a clipped horizon to
        // keep the oracle affordable).
        let h = Time(200);
        let hybrid = convolve(&dense_f, &dense_g, h);
        let dec = convolve_decomposed(&dense_f, &dense_g, h);
        let lat = min_plus_convolve_lattice(&dense_f, &dense_g, h);
        for t in 0..=h.ticks() {
            assert_eq!(hybrid.eval(Time(t)), dec.eval(Time(t)), "t={t}");
            assert_eq!(hybrid.eval(Time(t)), lat.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn decomposed_soa_path_matches_reference() {
        // Value-identical to the reference at every lattice tick, across
        // both leaf generators (the staircase row path may normalize to a
        // different — equivalent — segment structure), repeated calls on
        // one scratch, and a dirty output buffer.
        let dense_f =
            Curve::from_event_times(&(0..32).map(|i| Time(i * 10)).collect::<Vec<_>>()).scale(3);
        let dense_g =
            Curve::from_event_times(&(0..32).map(|i| Time(i * 12)).collect::<Vec<_>>()).scale(2);
        let sparse = Curve::from_event_times(&(0..8).map(|i| Time(i * 625)).collect::<Vec<_>>());
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 3),
            Segment::new(Time(4), 12, 1),
        ]);
        let mut scratch = Scratch::new();
        let mut out = Curve::affine(-7, 13); // pre-dirtied
        for (f, g, h) in [
            (&dense_f, &dense_g, Time(500)),
            (&sparse, &sparse, Time(25_000)),
            (&dense_f, &concave, Time(400)),
        ] {
            convolve_decomposed_into(f, g, h, &mut scratch, &mut out);
            let reference = convolve_decomposed_reference(f, g, h);
            for t in 0..=h.ticks() {
                assert_eq!(out.eval(Time(t)), reference.eval(Time(t)), "t={t} h={h}");
            }
            assert_eq!(out, convolve_decomposed(f, g, h), "h={h}");
        }
    }

    #[test]
    fn decomposed_pair_path_matches_reference_exactly() {
        // Neither operand is a staircase, so the pair-partial generator
        // runs — that path is pinned segment-identical to the reference.
        let saw_f = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(6), 12, 1), // slope decrease: run break
        ]);
        let saw_g = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 3),
            Segment::new(Time(5), 16, 1), // slope decrease: run break
            Segment::new(Time(9), 20, 2),
        ]);
        assert!(!is_staircase(&saw_f) && !is_staircase(&saw_g));
        let mut scratch = Scratch::new();
        let mut out = Curve::affine(-7, 13); // pre-dirtied
        let h = Time(60);
        convolve_decomposed_into(&saw_f, &saw_g, h, &mut scratch, &mut out);
        assert_eq!(out, convolve_decomposed_reference(&saw_f, &saw_g, h));
    }

    #[test]
    fn staircase_row_path_matches_lattice_oracle() {
        // The row identity (fᵢ ⊗ g)(t) = vᵢ + g(max(t − (bᵢ − 1), 0))
        // needs g nondecreasing but allows f to jump *down*; check both
        // argument orders so each dispatch branch runs.
        let down_stair = Curve::from_segments(vec![
            Segment::new(Time(0), 5, 0),
            Segment::new(Time(3), 2, 0),
            Segment::new(Time(7), 9, 0),
        ]);
        let ramp = Curve::identity();
        let h = Time(30);
        for (f, g) in [(&down_stair, &ramp), (&ramp, &down_stair)] {
            let dec = convolve_decomposed(f, g, h);
            let lat = min_plus_convolve_lattice(f, g, h);
            for t in 0..=h.ticks() {
                assert_eq!(dec.eval(Time(t)), lat.eval(Time(t)), "t={t}");
            }
        }
    }

    #[test]
    fn dispatch_picks_expected_kernel_per_size_class() {
        // Pins the hybrid's choice on each benchmarked size class, so a
        // heuristic retune that flips a class shows up as a test diff, not
        // as a silent perf cliff. Measured on the BENCH_curves shapes:
        // the decomposition (row path) wins every staircase shape up to
        // roughly every-2-tick density, where the lattice takes over.
        let shape = |n: i64, gap_f: i64, gap_g: i64, h: i64| {
            (
                Curve::from_event_times(&(0..n).map(|i| Time(i * gap_f)).collect::<Vec<_>>())
                    .scale(3),
                Curve::from_event_times(&(0..n).map(|i| Time(i * gap_g)).collect::<Vec<_>>())
                    .scale(2),
                Time(h),
            )
        };
        // Bench size classes 16 / 64 / sparse: decomposition.
        for (n, gf, gg, h) in [
            (16, 10, 12, 16 * 12 + 120),
            (64, 10, 12, 64 * 12 + 120),
            (8, 625, 625, 25_000),
        ] {
            let (f, g, h) = shape(n, gf, gg, h);
            assert!(!dense_scan_is_cheaper(&f, &g, h), "n={n} gap={gf}/{gg}");
        }
        // Adversarial near-every-tick staircases: lattice (the row fold
        // would walk R · |g| ≈ h² segments with a worse constant).
        for gap in [1, 2] {
            let (f, g, h) = shape(888 / gap + 1, gap, gap, 888);
            assert!(dense_scan_is_cheaper(&f, &g, h), "gap={gap}");
        }
    }

    #[test]
    fn run_start_counting_clips_at_horizon() {
        let stair = Curve::from_event_times(&[Time(1), Time(5), Time(9)]);
        // All four runs (plateau + 3 jumps) start within a large horizon...
        assert_eq!(run_starts_within(&stair, Time(100)).len(), 4);
        // ...but only the plateau and the first jump within a small one.
        assert_eq!(run_starts_within(&stair, Time(4)).len(), 2);
    }

    #[test]
    fn lattice_oracle_handles_nonconvex() {
        // Staircase ⊗ rate: classic smoothing.
        let f = Curve::from_event_times(&[Time(0), Time(4), Time(8)]).scale(3);
        let g = Curve::identity();
        let conv = min_plus_convolve_lattice(&f, &g, Time(15));
        for t in 0..=15 {
            let mut best = i64::MAX;
            for s in 0..=t {
                best = best.min(f.eval(Time(s)) + (t - s));
            }
            assert_eq!(conv.eval(Time(t)), best, "t={t}");
        }
    }
}

//! Min-plus convolution.
//!
//! The paper's Theorem 3 is a disguised min-plus operation: the exact SPP
//! service function is `S = A − ((A − c) ⊘ 0)` in deconvolution form, or —
//! as implemented in `rta-core` — an availability curve plus a running
//! minimum. This module provides the segment-native operator for arbitrary
//! curves ([`convolve`]) via convex decomposition, the O(n + m) slope-merge
//! for the convex case ([`convolve_convex`]), and an exhaustive lattice
//! evaluator ([`min_plus_convolve_lattice`]) kept **only as a test oracle**
//! — it is O(horizon²) and must not appear on analysis paths.
//!
//! ## Convex decomposition
//!
//! Any piecewise-linear curve splits into maximal *convex runs*: break the
//! segment list wherever the curve jumps or its slope decreases. Each run
//! is convex on its half-open time domain, the domains partition `[0, ∞)`,
//! and with the convention `f_i = +∞` outside its domain, `f = min_i f_i`.
//! Min-plus convolution distributes over `min`, so
//!
//! ```text
//! f ⊗ g = min_{i,j} ( f_i ⊗ g_j )
//! ```
//!
//! where each `f_i ⊗ g_j` is a convex partial curve computed by the
//! classical slope merge (domain start/lengths add). The cost is
//! O(R_f · R_g · segments) for R convex runs — for the convex curves that
//! dominate the analysis R = 1 and the general path collapses to the
//! slope merge.
//!
//! ## Dense crossover
//!
//! The decomposition cost grows with the *product* of the run counts, so
//! for curves whose breakpoint spacing approaches one tick (R ≈ horizon —
//! dense staircases at coarse resolution) the O(horizon²) lattice scan is
//! cheaper than the O(R_f · R_g · segments) pair merge. [`convolve`] is a
//! hybrid: it estimates both costs and dispatches to the cheaper kernel;
//! both produce identical values at every tick of the horizon.
//! [`convolve_decomposed`] pins the decomposition path for benchmarks and
//! oracle tests.

use crate::curve::push_normalized;
use crate::{Curve, Scratch, Segment, Time};

/// Sentinel standing in for `+∞` while folding partial curves into a total
/// minimum. Any real curve value within the analysis horizon is far below
/// this, so the sentinel loses every pointwise min on `[0, horizon]`.
const INFTY: i64 = i64::MAX / 8;

impl Curve {
    /// `true` iff the curve is convex on the lattice: continuous with
    /// nondecreasing slopes.
    pub fn is_convex(&self) -> bool {
        self.is_continuous() && self.segments().windows(2).all(|w| w[0].slope <= w[1].slope)
    }
}

/// Min-plus convolution `(f ⊗ g)(t) = min_{0 ≤ s ≤ t} ( f(s) + g(t − s) )`
/// for **convex** nondecreasing curves.
///
/// For convex curves the infimal convolution is obtained by laying the linear
/// pieces of both curves end to end in order of increasing slope, starting
/// from `f(0) + g(0)` — an O(n + m) merge. Panics (debug) if either curve is
/// not convex; use [`min_plus_convolve_lattice`] for arbitrary curves.
#[must_use]
pub fn convolve_convex(f: &Curve, g: &Curve) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    convolve_convex_into(f, g, &mut scratch, &mut out);
    out
}

/// [`convolve_convex`] writing into a caller-provided curve; the
/// `(length, slope)` piece staging lives in `scratch`, so a warm call
/// allocates nothing.
pub fn convolve_convex_into(f: &Curve, g: &Curve, scratch: &mut Scratch, out: &mut Curve) {
    debug_assert!(f.is_convex(), "convolve_convex requires convex f");
    debug_assert!(g.is_convex(), "convolve_convex requires convex g");

    // Collect finite pieces (length, slope); final pieces are infinite.
    let pieces = &mut scratch.pieces;
    pieces.clear();
    for c in [f, g] {
        let segs = c.segments();
        for (i, s) in segs.iter().enumerate() {
            pieces.push((segs.get(i + 1).map(|n| n.start - s.start), s.slope));
        }
    }
    // Stable sort, f's pieces staged before g's — the same piece order the
    // allocating implementation always produced.
    pieces.sort_by_key(|&(_, slope)| slope);

    let out_segs = out.begin_write(pieces.len());
    let mut t = Time::ZERO;
    let mut v = f.eval(Time::ZERO) + g.eval(Time::ZERO);
    for &(len, slope) in pieces.iter() {
        push_normalized(out_segs, Segment::new(t, v, slope));
        match len {
            Some(len) => {
                t += len;
                v += slope * len.ticks();
            }
            None => break, // first infinite piece has the smallest remaining slope
        }
    }
    out.finish_write();
}

/// A maximal convex run of a curve: segments covering the half-open time
/// domain `[segs[0].start, end)`, continuous with nondecreasing slopes.
struct ConvexRun<'a> {
    segs: &'a [Segment],
    /// Exclusive domain end; `None` for the final, unbounded run.
    end: Option<Time>,
}

/// Split a curve into its maximal convex runs. The runs' domains partition
/// `[0, ∞)` and the curve equals each run on its domain.
fn convex_runs(c: &Curve) -> Vec<ConvexRun<'_>> {
    let segs = c.segments();
    let mut runs = Vec::new();
    let mut begin = 0;
    for i in 1..segs.len() {
        let discontinuous = segs[i - 1].eval(segs[i].start) != segs[i].value;
        if discontinuous || segs[i].slope < segs[i - 1].slope {
            runs.push(ConvexRun {
                segs: &segs[begin..i],
                end: Some(segs[i].start),
            });
            begin = i;
        }
    }
    runs.push(ConvexRun {
        segs: &segs[begin..],
        end: None,
    });
    runs
}

/// A convex partial curve: `segs` cover `[segs[0].start, end)`.
struct Partial {
    segs: Vec<Segment>,
    end: Option<Time>,
}

/// Min-plus convolution of two convex runs by the slope merge. Domain
/// starts add; piece lengths add; pieces are laid out in slope order from
/// `f(a_f) + g(a_g)`.
fn convolve_runs(f: &ConvexRun<'_>, g: &ConvexRun<'_>) -> Partial {
    // (length, slope) pieces; `None` length marks the single unbounded tail.
    let mut pieces: Vec<(Option<Time>, i64)> = Vec::with_capacity(f.segs.len() + g.segs.len());
    let mut unbounded = false;
    for run in [f, g] {
        for (i, s) in run.segs.iter().enumerate() {
            match run.segs.get(i + 1) {
                Some(n) => pieces.push((Some(n.start - s.start), s.slope)),
                None => match run.end {
                    // Last lattice point of the domain is `end − 1`.
                    Some(e) => pieces.push((Some(e - Time(1) - s.start), s.slope)),
                    None => {
                        pieces.push((None, s.slope));
                        unbounded = true;
                    }
                },
            }
        }
    }
    pieces.sort_by_key(|&(_, slope)| slope);

    let mut t = f.segs[0].start + g.segs[0].start;
    let mut v = f.segs[0].value + g.segs[0].value;
    let mut out = Vec::with_capacity(pieces.len());
    for (len, slope) in pieces {
        match len {
            Some(len) if len == Time::ZERO => continue,
            Some(len) => {
                out.push(Segment::new(t, v, slope));
                t += len;
                v += slope * len.ticks();
            }
            None => {
                out.push(Segment::new(t, v, slope));
                break; // smallest-slope unbounded piece dominates the tail
            }
        }
    }
    if out.is_empty() {
        // Both domains are single lattice points: a point mass.
        out.push(Segment::new(t, v, 0));
    }
    // Closed result domain ends at the sum of the last lattice points.
    let end = if unbounded { None } else { Some(t + Time(1)) };
    Partial { segs: out, end }
}

/// Extend a partial curve to a total one using the [`INFTY`] sentinel
/// outside its domain, clipped against `horizon`.
fn partial_to_total(p: Partial, horizon: Time) -> Option<Curve> {
    let start = p.segs[0].start;
    if start > horizon {
        return None;
    }
    let mut segs = Vec::with_capacity(p.segs.len() + 2);
    if start > Time::ZERO {
        segs.push(Segment::new(Time::ZERO, INFTY, 0));
    }
    segs.extend(p.segs);
    if let Some(e) = p.end {
        if e <= horizon {
            segs.push(Segment::new(e, INFTY, 0));
        }
    }
    Some(Curve::from_sorted_segments(segs))
}

/// Min-plus convolution
/// `(f ⊗ g)(t) = min_{0 ≤ s ≤ t} ( f(s) + g(t − s) )` for **arbitrary**
/// piecewise-linear curves, exact at every integer tick in `[0, horizon]`
/// (frozen beyond, like the lattice oracle it replaces).
///
/// Convex inputs take the O(n + m) slope-merge fast path. General inputs
/// are dispatched by a cost heuristic (see the module docs): sparse curves
/// go through the convex decomposition ([`convolve_decomposed`],
/// O(R_f · R_g · (n + m)) for R convex runs, independent of the horizon),
/// while run counts approaching the horizon fall back to the dense
/// O(horizon²) lattice scan, which beats the decomposition in that regime.
#[must_use]
pub fn convolve(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    convolve_into(f, g, horizon, &mut scratch, &mut out);
    out
}

/// [`convolve`] writing into a caller-provided curve. The convex fast path
/// and the dense lattice fallback run entirely out of `scratch` (no heap
/// traffic when warm); the convex-decomposition path still allocates its
/// per-pair intermediates internally — it is chosen exactly when inputs
/// are irregular enough that those intermediates dominate the cost anyway.
pub fn convolve_into(f: &Curve, g: &Curve, horizon: Time, scratch: &mut Scratch, out: &mut Curve) {
    assert!(horizon >= Time::ZERO);
    if f.is_convex() && g.is_convex() {
        convolve_convex_into(f, g, scratch, out);
    } else if dense_scan_is_cheaper(f, g, horizon) {
        min_plus_convolve_lattice_into(f, g, horizon, scratch, out);
    } else {
        out.copy_from(&convolve_decomposed(f, g, horizon));
    }
}

/// Exclusive-prefix run starts of a curve's convex decomposition, clipped
/// to the horizon (runs starting beyond it contribute nothing).
fn run_starts_within(c: &Curve, horizon: Time) -> Vec<i64> {
    let segs = c.segments();
    let mut starts = vec![Time::ZERO.ticks()];
    for i in 1..segs.len() {
        let discontinuous = segs[i - 1].eval(segs[i].start) != segs[i].value;
        if discontinuous || segs[i].slope < segs[i - 1].slope {
            if segs[i].start > horizon {
                break;
            }
            starts.push(segs[i].start.ticks());
        }
    }
    starts
}

/// Cost heuristic for the hybrid dispatch: compare the decomposition's
/// pair-merge work against the lattice scan's `horizon²` cell sweep.
///
/// The pair count honors the horizon clip of the decomposition's inner
/// loop (a pair is dead once its domain starts past the horizon), and each
/// pair costs on the order of the total segment count. The constant
/// calibrates the per-pair merge against the per-cell scan; it was fitted
/// on the `convolve/*` benchmarks in `BENCH_curves.json`.
fn dense_scan_is_cheaper(f: &Curve, g: &Curve, horizon: Time) -> bool {
    const PAIR_VS_CELL: u128 = 3;
    let h = horizon.ticks() as u128;
    let starts_f = run_starts_within(f, horizon);
    let starts_g = run_starts_within(g, horizon);
    // Two-pointer count of pairs with start_f + start_g ≤ horizon.
    let mut pairs: u128 = 0;
    let mut j = starts_g.len();
    for &sf in &starts_f {
        while j > 0 && sf + starts_g[j - 1] > horizon.ticks() {
            j -= 1;
        }
        if j == 0 {
            break;
        }
        pairs += j as u128;
    }
    let segs = (f.num_segments() + g.num_segments()) as u128;
    h * h < PAIR_VS_CELL * pairs * segs
}

/// The convex-decomposition convolution kernel behind [`convolve`]: always
/// takes the pair-merge path regardless of the cost heuristic. Exposed so
/// benchmarks and oracle tests can pin this path; analysis code should
/// call [`convolve`].
#[must_use]
pub fn convolve_decomposed(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    assert!(horizon >= Time::ZERO);
    if f.is_convex() && g.is_convex() {
        return convolve_convex(f, g);
    }
    let runs_f = convex_runs(f);
    let runs_g = convex_runs(g);
    let mut layer: Vec<Curve> = Vec::with_capacity(runs_f.len() * runs_g.len());
    for rf in &runs_f {
        if rf.segs[0].start > horizon {
            break; // later runs start even further out
        }
        for rg in &runs_g {
            // The pair's domain starts at the sum of the run starts.
            if rf.segs[0].start + rg.segs[0].start > horizon {
                break;
            }
            if let Some(total) = partial_to_total(convolve_runs(rf, rg), horizon) {
                layer.push(total);
            }
        }
    }
    // Tree-fold the pairwise results: a sequential fold would re-walk the
    // O(horizon)-sized accumulator once per pair (O(pairs · |acc|)); merging
    // neighbours pairwise keeps every operand near its final size and costs
    // O(total segments · log pairs). Truncating at every merge keeps all
    // breakpoints within the horizon, so sentinel-sized values only ever
    // appear on constant pieces (no overflow in later crossings).
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => a.min_with(&b).truncate_after(horizon),
                None => a,
            });
        }
        layer = next;
    }
    layer
        .pop()
        .expect("runs cover t = 0")
        .truncate_after(horizon)
}

/// Exhaustive min-plus convolution on the lattice, `O(horizon²)`. Serves
/// two roles: the **test oracle** for [`convolve_decomposed`] and
/// [`convolve_convex`], and the dense kernel [`convolve`] falls back to
/// when the run-pair count rivals the horizon. The result is frozen at its
/// horizon value.
#[must_use]
pub fn min_plus_convolve_lattice(f: &Curve, g: &Curve, horizon: Time) -> Curve {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    min_plus_convolve_lattice_into(f, g, horizon, &mut scratch, &mut out);
    out
}

/// The dense kernel behind [`min_plus_convolve_lattice`]: samples both
/// operands into `scratch` and pushes the resulting staircase straight
/// into `out`.
fn min_plus_convolve_lattice_into(
    f: &Curve,
    g: &Curve,
    horizon: Time,
    scratch: &mut Scratch,
    out: &mut Curve,
) {
    let h = horizon.ticks();
    assert!(h >= 0);
    let fv = &mut scratch.values_a;
    let gv = &mut scratch.values_b;
    fv.clear();
    fv.extend((0..=h).map(|t| f.eval(Time(t))));
    gv.clear();
    gv.extend((0..=h).map(|t| g.eval(Time(t))));
    let segs = out.begin_write(h as usize + 1);
    for t in 0..=h {
        let mut best = i64::MAX;
        for s in 0..=t {
            best = best.min(fv[s as usize] + gv[(t - s) as usize]);
        }
        push_normalized(segs, Segment::new(Time(t), best, 0));
    }
    out.finish_write();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::RateLatency;

    fn assert_agree(f: &Curve, g: &Curve, horizon: i64) {
        let fast = convolve_convex(f, g);
        let slow = min_plus_convolve_lattice(f, g, Time(horizon));
        for t in 0..=horizon {
            assert_eq!(fast.eval(Time(t)), slow.eval(Time(t)), "t={t} f={f} g={g}");
        }
    }

    #[test]
    fn convexity_detection() {
        assert!(Curve::identity().is_convex());
        assert!(RateLatency {
            latency: Time(3),
            rate: 2
        }
        .curve()
        .is_convex());
        assert!(!Curve::from_event_times(&[Time(1)]).is_convex()); // jump
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(4), 8, 1),
        ]);
        assert!(!concave.is_convex());
    }

    #[test]
    fn rate_latency_convolution_is_closed_form() {
        let a = RateLatency {
            latency: Time(2),
            rate: 3,
        };
        let b = RateLatency {
            latency: Time(5),
            rate: 1,
        };
        let conv = convolve_convex(&a.curve(), &b.curve());
        assert_eq!(conv, a.then(&b).curve());
        assert_agree(&a.curve(), &b.curve(), 25);
    }

    #[test]
    fn convolution_with_zero_is_floor() {
        // f ⊗ 0 = min over splits: with g ≡ 0 the result is the running min
        // of f; for nondecreasing convex f that is f(0).
        let f = Curve::affine(4, 2);
        let conv = convolve_convex(&f, &Curve::zero());
        assert_eq!(conv, Curve::constant(4));
    }

    #[test]
    fn general_convex_pair() {
        let f = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 0),
            Segment::new(Time(3), 1, 1),
            Segment::new(Time(7), 5, 4),
        ]);
        let g = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(5), 10, 3),
        ]);
        assert!(f.is_convex() && g.is_convex());
        assert_agree(&f, &g, 30);
    }

    fn assert_convolve_matches_oracle(f: &Curve, g: &Curve, horizon: i64) {
        let fast = convolve(f, g, Time(horizon));
        let slow = min_plus_convolve_lattice(f, g, Time(horizon));
        for t in 0..=horizon {
            assert_eq!(fast.eval(Time(t)), slow.eval(Time(t)), "t={t} f={f} g={g}");
        }
    }

    #[test]
    fn general_convolve_on_staircases() {
        // Staircase ⊗ rate — non-convex left operand.
        let f = Curve::from_event_times(&[Time(0), Time(4), Time(8)]).scale(3);
        assert_convolve_matches_oracle(&f, &Curve::identity(), 20);
        // Staircase ⊗ staircase.
        let g = Curve::from_event_times(&[Time(1), Time(5)]).scale(2);
        assert_convolve_matches_oracle(&f, &g, 20);
        // Against a rate-latency service curve.
        let rl = RateLatency {
            latency: Time(3),
            rate: 2,
        }
        .curve();
        assert_convolve_matches_oracle(&f, &rl, 25);
    }

    #[test]
    fn general_convolve_on_concave_and_mixed() {
        // Concave: slopes decrease (two runs).
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 3),
            Segment::new(Time(4), 12, 1),
        ]);
        assert_convolve_matches_oracle(&concave, &Curve::identity(), 20);
        assert_convolve_matches_oracle(&concave, &concave, 20);
        // Plateau-then-burst against concave.
        let bursty = Curve::from_segments(vec![
            Segment::new(Time(0), 2, 0),
            Segment::new(Time(6), 9, 2),
        ]);
        assert_convolve_matches_oracle(&bursty, &concave, 24);
    }

    #[test]
    fn general_convolve_convex_fast_path() {
        // Convex inputs must round-trip through convolve_convex unchanged.
        let a = RateLatency {
            latency: Time(2),
            rate: 3,
        }
        .curve();
        let b = RateLatency {
            latency: Time(5),
            rate: 1,
        }
        .curve();
        assert_eq!(convolve(&a, &b, Time(40)), convolve_convex(&a, &b));
    }

    #[test]
    fn general_convolve_with_zero_horizon() {
        // Only the s = 0 split exists: (f ⊗ id)(0) = f(0) + id(0).
        let f = Curve::from_event_times(&[Time(0), Time(2)]).scale(4);
        let c = convolve(&f, &Curve::identity(), Time::ZERO);
        assert_eq!(c.eval(Time::ZERO), f.eval(Time::ZERO));
    }

    #[test]
    fn convex_run_decomposition_counts() {
        assert_eq!(convex_runs(&Curve::identity()).len(), 1);
        let stair = Curve::from_event_times(&[Time(1), Time(5), Time(9)]);
        // Each jump opens a new run: initial plateau + 3 steps.
        assert_eq!(convex_runs(&stair).len(), 4);
        let concave = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 3),
            Segment::new(Time(4), 12, 1),
        ]);
        assert_eq!(convex_runs(&concave).len(), 2);
    }

    #[test]
    fn hybrid_agrees_with_both_kernels_in_both_regimes() {
        // Dense regime: 64 events at gap 10 against 64 at gap 12 — the
        // BENCH_curves regression shape, where the lattice scan wins.
        let dense_f =
            Curve::from_event_times(&(0..64).map(|i| Time(i * 10)).collect::<Vec<_>>()).scale(3);
        let dense_g =
            Curve::from_event_times(&(0..64).map(|i| Time(i * 12)).collect::<Vec<_>>()).scale(2);
        let h_dense = Time(64 * 12 + 120);
        assert!(dense_scan_is_cheaper(&dense_f, &dense_g, h_dense));
        // Sparse regime: few events across a huge horizon — decomposition
        // territory (the lattice scan would be ~1000× slower here).
        let sparse_f = Curve::from_event_times(&(0..8).map(|i| Time(i * 625)).collect::<Vec<_>>());
        let h_sparse = Time(25_000);
        assert!(!dense_scan_is_cheaper(&sparse_f, &sparse_f, h_sparse));
        // Whichever kernel the heuristic picks, values are identical at
        // every tick (spot-check the dense pair on a clipped horizon to
        // keep the oracle affordable).
        let h = Time(200);
        let hybrid = convolve(&dense_f, &dense_g, h);
        let dec = convolve_decomposed(&dense_f, &dense_g, h);
        let lat = min_plus_convolve_lattice(&dense_f, &dense_g, h);
        for t in 0..=h.ticks() {
            assert_eq!(hybrid.eval(Time(t)), dec.eval(Time(t)), "t={t}");
            assert_eq!(hybrid.eval(Time(t)), lat.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn run_start_counting_clips_at_horizon() {
        let stair = Curve::from_event_times(&[Time(1), Time(5), Time(9)]);
        // All four runs (plateau + 3 jumps) start within a large horizon...
        assert_eq!(run_starts_within(&stair, Time(100)).len(), 4);
        // ...but only the plateau and the first jump within a small one.
        assert_eq!(run_starts_within(&stair, Time(4)).len(), 2);
    }

    #[test]
    fn lattice_oracle_handles_nonconvex() {
        // Staircase ⊗ rate: classic smoothing.
        let f = Curve::from_event_times(&[Time(0), Time(4), Time(8)]).scale(3);
        let g = Curve::identity();
        let conv = min_plus_convolve_lattice(&f, &g, Time(15));
        for t in 0..=15 {
            let mut best = i64::MAX;
            for s in 0..=t {
                best = best.min(f.eval(Time(s)) + (t - s));
            }
            assert_eq!(conv.eval(Time(t)), best, "t={t}");
        }
    }
}

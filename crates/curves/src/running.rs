//! Prefix ("running") extrema of a curve.
//!
//! The heart of Theorem 3 of the paper: the exact SPP service function is
//! `S(t) = A(t) + min_{0 ≤ s ≤ t} ( c(s) − A(s) )` — an availability curve
//! plus a *running minimum*. Running extrema are computed here exactly on the
//! integer tick lattice: `running_min(f)(t) = min { f(s) : s ∈ ℤ, 0 ≤ s ≤ t }`.
//!
//! On the lattice this coincides with the continuous prefix-infimum for every
//! curve produced by the analysis, because those curves are linear between
//! integer breakpoints, so the infimum over a piece is attained at an integer
//! endpoint.

use crate::curve::push_normalized;
use crate::util::div_floor;
use crate::{Curve, Segment, Time};

impl Curve {
    /// Shared prefix-extremum kernel. The minimum logic runs verbatim in a
    /// sign-folded domain (`max = true` negates every sample on read and
    /// every output on write), which is exactly `−running_min(−f)` without
    /// materializing either negation.
    fn running_extremum_into(&self, max: bool, out: &mut Curve) {
        let sign: i64 = if max { -1 } else { 1 };
        let segs_in = self.segments();
        let segs = out.begin_write(2 * segs_in.len());
        // Extremum (folded: minimum) over all lattice points strictly
        // before the current segment.
        let mut m = i64::MAX;
        for (i, s) in segs_in.iter().enumerate() {
            let next_start = segs_in.get(i + 1).map(|n| n.start);
            let (value, slope) = (sign * s.value, sign * s.slope);
            if slope >= 0 {
                // The piece is (folded) nondecreasing: its lattice minimum
                // is at its start, so the running min is flat across it.
                let new_m = m.min(value);
                push_normalized(segs, Segment::new(s.start, sign * new_m, 0));
                m = new_m;
            } else {
                // Decreasing piece: the running min eventually follows it.
                if value <= m {
                    push_normalized(segs, Segment::new(s.start, s.value, s.slope));
                } else {
                    push_normalized(segs, Segment::new(s.start, sign * m, 0));
                    // First integer offset where the line dips below m:
                    // value − |slope|·off < m  ⇔  off > (value − m)/|slope|.
                    let off = div_floor(value - m, -slope) + 1;
                    let tc = s.start + Time(off);
                    if next_start.is_none_or(|t1| tc < t1) {
                        push_normalized(segs, Segment::new(tc, s.eval(tc), s.slope));
                    }
                }
                if let Some(t1) = next_start {
                    // Update m with the last lattice point of this piece.
                    let last = t1 - Time(1);
                    if last >= s.start {
                        m = m.min(sign * s.eval(last));
                    }
                }
            }
        }
        out.finish_write();
    }

    /// The running minimum `t ↦ min_{0 ≤ s ≤ t} f(s)`, written into `out`.
    pub fn running_min_into(&self, out: &mut Curve) {
        self.running_extremum_into(false, out);
    }

    /// The running minimum `t ↦ min_{0 ≤ s ≤ t} f(s)` over the lattice.
    #[must_use]
    pub fn running_min(&self) -> Curve {
        let mut out = Curve::zero();
        self.running_min_into(&mut out);
        out
    }

    /// The running maximum `t ↦ max_{0 ≤ s ≤ t} f(s)`, written into `out`.
    pub fn running_max_into(&self, out: &mut Curve) {
        self.running_extremum_into(true, out);
    }

    /// The running maximum `t ↦ max_{0 ≤ s ≤ t} f(s)` over the lattice.
    #[must_use]
    pub fn running_max(&self) -> Curve {
        let mut out = Curve::zero();
        self.running_max_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation by explicit lattice scan.
    fn brute_running_min(c: &Curve, horizon: i64) -> Vec<i64> {
        let mut best = i64::MAX;
        (0..=horizon)
            .map(|t| {
                best = best.min(c.eval(Time(t)));
                best
            })
            .collect()
    }

    fn check(c: &Curve, horizon: i64) {
        let r = c.running_min();
        let expect = brute_running_min(c, horizon);
        for t in 0..=horizon {
            assert_eq!(
                r.eval(Time(t)),
                expect[t as usize],
                "running_min mismatch at t={t} for {c}"
            );
        }
    }

    #[test]
    fn monotone_curve_is_fixed_point() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 0),
            Segment::new(Time(4), 3, 1),
        ]);
        // running_min of a nondecreasing curve is the constant f(0).
        let r = c.running_min();
        assert_eq!(r, Curve::constant(1));
    }

    #[test]
    fn sawtooth() {
        // Rises then falls below previous minimum.
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 5, 1),   // 5,6,7
            Segment::new(Time(3), 8, -2),  // 8,6,4,2 on [3,7)
            Segment::new(Time(7), 10, 0),  // plateau above the min
            Segment::new(Time(9), -1, -1), // dives further
        ]);
        check(&c, 15);
    }

    #[test]
    fn decreasing_piece_starting_above_running_min() {
        // First piece establishes m = 0; second piece starts at 10 and
        // decreases with slope −3 (fractional crossing of m).
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(2), 10, -3),
        ]);
        check(&c, 10);
    }

    #[test]
    fn decreasing_final_piece_followed_forever() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 4, 0),
            Segment::new(Time(1), 9, -1),
        ]);
        check(&c, 20);
        // Far out, running min follows the line exactly.
        assert_eq!(c.running_min().eval(Time(100)), 9 - 99);
    }

    #[test]
    fn jumps_up_do_not_disturb_min() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 3, -1), // 3,2,1 on [0,3)
            Segment::new(Time(3), 50, 0), // big up-jump
        ]);
        check(&c, 8);
        // Last lattice point of the decreasing piece (t=2, value 1) must be
        // the permanent minimum.
        assert_eq!(c.running_min().eval(Time(8)), 1);
    }

    #[test]
    fn running_max_mirrors_running_min() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(4), 1, 0),
        ]);
        let r = c.running_max();
        let mut best = i64::MIN;
        for t in 0..=10 {
            best = best.max(c.eval(Time(t)));
            assert_eq!(r.eval(Time(t)), best, "t={t}");
        }
    }
}

//! Event-counting curves: arrival and departure functions.
//!
//! An *arrival function* `f_arr(t)` (Definition 1) counts the instances of a
//! subjob released during `[0, t]`; a *departure function* `f_dep(t)`
//! (Definition 2) counts completions. Both are nondecreasing step curves
//! with unit (or multi-unit, for simultaneous events) upward jumps, and are
//! represented as plain [`Curve`]s whose values are counts.

use crate::{Curve, Segment, Time};

impl Curve {
    /// Build the counting curve of a sorted sequence of event times:
    /// `f(t) = #{ i : times[i] ≤ t }`.
    ///
    /// Multiple equal times produce a single multi-unit jump. Panics if the
    /// sequence is unsorted or contains a negative time.
    pub fn from_event_times(times: &[Time]) -> Curve {
        let mut out = Curve::zero();
        Curve::from_event_times_into(times, &mut out);
        out
    }

    /// [`Curve::from_event_times`] writing into a caller-provided curve,
    /// reusing its segment buffer.
    pub fn from_event_times_into(times: &[Time], out: &mut Curve) {
        let segs = out.begin_write(times.len() + 1);
        segs.push(Segment::new(Time::ZERO, 0, 0));
        let mut count: i64 = 0;
        let mut i = 0;
        while i < times.len() {
            let t = times[i];
            assert!(t >= Time::ZERO, "event times must be nonnegative");
            if i > 0 {
                assert!(times[i - 1] <= t, "event times must be sorted");
            }
            let mut j = i;
            while j < times.len() && times[j] == t {
                j += 1;
            }
            count += (j - i) as i64;
            if t == Time::ZERO {
                segs[0] = Segment::new(Time::ZERO, count, 0);
            } else {
                segs.push(Segment::new(t, count, 0));
            }
            i = j;
        }
        out.finish_write();
    }

    /// Release/completion time of the `m`-th event (`m ≥ 1`): the
    /// pseudo-inverse `f⁻¹(m)` of Equation 3. `None` if fewer than `m`
    /// events ever occur (within the curve's represented extent).
    pub fn event_time(&self, m: i64) -> Option<Time> {
        debug_assert!(m >= 1);
        self.inverse_at(m)
    }

    /// Number of events up to and including `t` — an alias of
    /// [`Curve::eval`] that documents counting intent.
    #[inline]
    pub fn count_at(&self, t: Time) -> i64 {
        self.eval(t)
    }

    /// Total number of events represented (the final value), provided the
    /// curve is a bounded step function (final slope 0).
    pub fn total_events(&self) -> i64 {
        debug_assert_eq!(self.final_slope(), 0, "unbounded counting curve");
        self.segments().last().expect("non-empty").value
    }

    /// Iterator over `(time, delta)` jump pairs of a step curve.
    pub fn jumps(&self) -> impl Iterator<Item = (Time, i64)> + '_ {
        let segs = self.segments();
        let first = if segs[0].value != 0 {
            Some((Time::ZERO, segs[0].value))
        } else {
            None
        };
        first.into_iter().chain(segs.windows(2).filter_map(|w| {
            let d = w[1].value - w[0].eval(w[1].start);
            (d != 0).then_some((w[1].start, d))
        }))
    }

    /// Recover the explicit event-time list of a counting curve (inverse of
    /// [`Curve::from_event_times`]). Panics on downward jumps.
    pub fn to_event_times(&self) -> Vec<Time> {
        let mut out = Vec::new();
        for (t, d) in self.jumps() {
            assert!(d > 0, "counting curve has a downward jump at {t}");
            for _ in 0..d {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_roundtrip() {
        let times = vec![Time(0), Time(0), Time(5), Time(9), Time(9), Time(9)];
        let c = Curve::from_event_times(&times);
        assert_eq!(c.to_event_times(), times);
        assert_eq!(c.total_events(), 6);
        assert_eq!(c.count_at(Time(0)), 2);
        assert_eq!(c.count_at(Time(4)), 2);
        assert_eq!(c.count_at(Time(5)), 3);
        assert_eq!(c.count_at(Time(100)), 6);
    }

    #[test]
    fn event_times_are_pseudo_inverse() {
        let c = Curve::from_event_times(&[Time(2), Time(7), Time(7)]);
        assert_eq!(c.event_time(1), Some(Time(2)));
        assert_eq!(c.event_time(2), Some(Time(7)));
        assert_eq!(c.event_time(3), Some(Time(7)));
        assert_eq!(c.event_time(4), None);
    }

    #[test]
    fn empty_event_list() {
        let c = Curve::from_event_times(&[]);
        assert_eq!(c, Curve::zero());
        assert_eq!(c.total_events(), 0);
        assert_eq!(c.event_time(1), None);
        assert_eq!(c.jumps().count(), 0);
    }

    #[test]
    fn jumps_report_multiplicity() {
        let c = Curve::from_event_times(&[Time(0), Time(3), Time(3)]);
        let js: Vec<_> = c.jumps().collect();
        assert_eq!(js, vec![(Time(0), 1), (Time(3), 2)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_events_panic() {
        let _ = Curve::from_event_times(&[Time(5), Time(2)]);
    }
}

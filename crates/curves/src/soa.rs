//! Structure-of-arrays curve kernels.
//!
//! [`SoaCurve`] stores the same normalized piecewise-linear function as
//! [`Curve`], but in three parallel arrays (`starts`, `values`, `slopes`)
//! instead of an array of [`Segment`] structs. The hot merge loops walk the
//! breakpoint columns contiguously, which halves the bytes touched per
//! comparison (the AoS layout drags every segment's unused fields through
//! the cache), keep both operands' active piece scalars in registers with
//! `i64::MAX` sentinels for exhausted heads (no `Option` juggling in the
//! merge), and write by index into pre-sized columns with the
//! normalization predicate checked inline against a register-cached
//! previous entry — no per-entry `Vec::push` length/capacity traffic. See
//! [`linear_combine_into`] for the canonical shape.
//!
//! ## Equivalence contract
//!
//! Every kernel here is a port of its AoS counterpart in [`crate::ops`],
//! [`crate::running`], [`crate::floor_div`], [`crate::convolution`] or
//! [`crate::cursor`], with the *same* crossing-offset formulas
//! (`div_floor`/`div_ceil`) and the *same* normalization predicate, so the
//! results are **segment-identical** — not merely value-equal — to the AoS
//! kernels. The AoS kernels are retained as oracles; the property tests in
//! `tests/soa_kernels.rs` pin the equivalence over random curves, dirty
//! output buffers and error paths.
//!
//! Writers emit breakpoints in strictly increasing order and coalesce
//! line-continuations with the exact predicate of `Curve::normalize`
//! (`prev.slope == s.slope && prev.eval(s.start) == s.value`) — applied
//! inline against the last written entry; this is observationally
//! identical to pushing through `push_normalized`, which is how the AoS
//! kernels write.

use crate::util::{div_ceil, div_floor};
use crate::{Curve, CurveError, Scratch, Segment, Time};

/// A piecewise-linear curve in structure-of-arrays layout: three parallel
/// arrays of breakpoint starts (ticks), values and slopes.
///
/// Invariants match [`Curve`]: non-empty, first start at zero, strictly
/// increasing starts, normalized (no segment continues its predecessor's
/// line). Constructed from an AoS curve ([`SoaCurve::from_curve`]) or as a
/// kernel output; arbitrary raw construction is not exposed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoaCurve {
    starts: Vec<i64>,
    values: Vec<i64>,
    slopes: Vec<i64>,
}

/// A borrowed view of a curve in structure-of-arrays layout — the operand
/// type of the SoA kernels. Cheap to copy; also constructible from stack
/// arrays inside the crate (the clamp kernels pass a one-segment constant
/// operand without touching the heap).
#[derive(Clone, Copy, Debug)]
pub struct SoaView<'a> {
    pub(crate) starts: &'a [i64],
    pub(crate) values: &'a [i64],
    pub(crate) slopes: &'a [i64],
}

impl<'a> SoaView<'a> {
    /// Number of linear pieces.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when the view holds no pieces (never the case for views of a
    /// valid curve).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Breakpoint starts, in ticks.
    #[inline]
    pub fn starts(&self) -> &'a [i64] {
        self.starts
    }

    /// Values at the breakpoints.
    #[inline]
    pub fn values(&self) -> &'a [i64] {
        self.values
    }

    /// Slopes of the pieces.
    #[inline]
    pub fn slopes(&self) -> &'a [i64] {
        self.slopes
    }

    /// Value of piece `i` extended to time `t` (ticks).
    #[inline]
    fn piece_eval(&self, i: usize, t: i64) -> i64 {
        self.values[i] + self.slopes[i] * (t - self.starts[i])
    }
}

impl Default for SoaCurve {
    fn default() -> SoaCurve {
        SoaCurve::zero()
    }
}

impl SoaCurve {
    /// The zero curve.
    pub fn zero() -> SoaCurve {
        SoaCurve {
            starts: vec![0],
            values: vec![0],
            slopes: vec![0],
        }
    }

    /// Convert an AoS curve, allocating fresh arrays.
    pub fn from_curve(c: &Curve) -> SoaCurve {
        let mut s = SoaCurve {
            starts: Vec::new(),
            values: Vec::new(),
            slopes: Vec::new(),
        };
        s.copy_from_curve(c);
        s
    }

    /// Overwrite with the contents of an AoS curve, reusing the arrays.
    pub fn copy_from_curve(&mut self, c: &Curve) {
        let segs = c.segments();
        self.begin(segs.len());
        for s in segs {
            self.starts.push(s.start.ticks());
            self.values.push(s.value);
            self.slopes.push(s.slope);
        }
    }

    /// Convert back to an AoS [`Curve`], allocating.
    pub fn to_curve(&self) -> Curve {
        let mut out = Curve::zero();
        self.write_to_curve(&mut out);
        out
    }

    /// Convert back to an AoS [`Curve`], reusing `out`'s segment buffer.
    /// The curve invariants are debug-checked at this boundary, so an SoA
    /// round-trip can never silently hand an invariant-violating segment
    /// list to the AoS world.
    pub fn write_to_curve(&self, out: &mut Curve) {
        let segs = out.begin_write(self.len());
        for i in 0..self.len() {
            segs.push(Segment::new(
                Time(self.starts[i]),
                self.values[i],
                self.slopes[i],
            ));
        }
        out.finish_write();
    }

    /// Borrow as an [`SoaView`].
    #[inline]
    pub fn view(&self) -> SoaView<'_> {
        SoaView {
            starts: &self.starts,
            values: &self.values,
            slopes: &self.slopes,
        }
    }

    /// Number of linear pieces.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when the curve holds no pieces — only observable mid-write;
    /// every finished curve is non-empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Index of the piece containing `t ≥ 0`.
    #[inline]
    fn seg_index(&self, t: i64) -> usize {
        debug_assert!(t >= 0, "curves are defined on [0, ∞)");
        self.starts.partition_point(|&s| s <= t) - 1
    }

    /// Evaluate at `t ≥ 0` (right-continuous value).
    #[inline]
    pub fn eval(&self, t: Time) -> i64 {
        let i = self.seg_index(t.ticks());
        self.values[i] + self.slopes[i] * (t.ticks() - self.starts[i])
    }

    /// Overwrite with the affine curve `v0 + slope · t`.
    pub fn set_affine(&mut self, v0: i64, slope: i64) {
        self.begin(1);
        self.starts.push(0);
        self.values.push(v0);
        self.slopes.push(slope);
    }

    /// Overwrite with a copy of `src`, reusing the arrays.
    pub fn copy_from(&mut self, src: &SoaCurve) {
        self.begin(src.len());
        self.starts.extend_from_slice(&src.starts);
        self.values.extend_from_slice(&src.values);
        self.slopes.extend_from_slice(&src.slopes);
    }

    /// Drop all breakpoints strictly after `horizon`, in place — the SoA
    /// counterpart of [`Curve::truncate_after`] (a normalized prefix of a
    /// normalized curve needs no re-normalization).
    pub fn truncate_after(&mut self, horizon: Time) {
        let i = self.seg_index(horizon.ticks().max(0));
        self.starts.truncate(i + 1);
        self.values.truncate(i + 1);
        self.slopes.truncate(i + 1);
    }

    /// Clear all three arrays (keeping capacity) and reserve room for `cap`
    /// entries — the start of a write session.
    pub(crate) fn begin(&mut self, cap: usize) {
        self.starts.clear();
        self.values.clear();
        self.slopes.clear();
        self.starts.reserve(cap);
        self.values.reserve(cap);
        self.slopes.reserve(cap);
    }

    /// Normalized push: skip the entry when it continues the previous
    /// line — the exact predicate of `Curve::normalize` / `push_normalized`.
    /// Starts must be strictly increasing (debug-asserted).
    #[inline]
    pub(crate) fn push(&mut self, t: i64, v: i64, m: i64) {
        if let Some(k) = self.starts.len().checked_sub(1) {
            debug_assert!(self.starts[k] < t, "pushes must be strictly increasing");
            if self.slopes[k] == m && self.values[k] + self.slopes[k] * (t - self.starts[k]) == v {
                return;
            }
        }
        self.starts.push(t);
        self.values.push(v);
        self.slopes.push(m);
    }

    /// Debug-check the curve invariants at the end of a write session.
    pub(crate) fn finish(&self) {
        debug_assert!(!self.starts.is_empty(), "written curve must be non-empty");
        debug_assert!(self.starts[0] == 0);
        debug_assert!(self.starts.windows(2).all(|w| w[0] < w[1]));
        debug_assert!((1..self.len()).all(|i| {
            self.slopes[i - 1] != self.slopes[i]
                || self.values[i - 1] + self.slopes[i - 1] * (self.starts[i] - self.starts[i - 1])
                    != self.values[i]
        }));
    }

    /// First integer `t` with `f(t) < f(t−1)`, if any — the SoA port of
    /// [`Curve::first_decrease`].
    pub fn first_decrease(&self) -> Option<Time> {
        for i in 0..self.len() {
            let next_start = self.starts.get(i + 1);
            if self.slopes[i] < 0 {
                let second = self.starts[i] + 1;
                if next_start.is_none_or(|&ns| second < ns) {
                    return Some(Time(second));
                }
            }
            if i > 0 && self.starts[i] > 0 {
                let prev_end = self.values[i - 1]
                    + self.slopes[i - 1] * (self.starts[i] - 1 - self.starts[i - 1]);
                if self.values[i] < prev_end {
                    return Some(Time(self.starts[i]));
                }
            }
        }
        None
    }

    /// `true` iff the curve never decreases on the tick lattice.
    pub fn is_nondecreasing(&self) -> bool {
        self.first_decrease().is_none()
    }

    /// Check the curve is nondecreasing, returning a descriptive error if
    /// not.
    pub fn require_nondecreasing(&self) -> Result<(), CurveError> {
        match self.first_decrease() {
            None => Ok(()),
            Some(at) => Err(CurveError::NotMonotone { at }),
        }
    }

    /// `true` iff the curve is continuous (no jumps).
    pub fn is_continuous(&self) -> bool {
        (1..self.len()).all(|i| {
            self.values[i - 1] + self.slopes[i - 1] * (self.starts[i] - self.starts[i - 1])
                == self.values[i]
        })
    }

    /// `true` iff the curve is convex on the lattice: continuous with
    /// nondecreasing slopes.
    pub fn is_convex(&self) -> bool {
        self.is_continuous() && self.slopes.windows(2).all(|w| w[0] <= w[1])
    }

    // ------------------------------------------------------------------
    // Unary kernels (ports of the `Curve` methods of the same names)
    // ------------------------------------------------------------------

    /// Pointwise scaling `k·self`, written into `out`.
    pub fn scale_into(&self, k: i64, out: &mut SoaCurve) {
        let mut w = SoaWriter::new(out, self.len());
        for i in 0..self.len() {
            w.emit(self.starts[i], k * self.values[i], k * self.slopes[i]);
        }
        w.finish();
        out.finish();
    }

    /// Pointwise negation, written into `out`.
    pub fn neg_into(&self, out: &mut SoaCurve) {
        self.scale_into(-1, out);
    }

    /// Pointwise constant offset `self + v`, written into `out`.
    pub fn add_const_into(&self, v: i64, out: &mut SoaCurve) {
        let mut w = SoaWriter::new(out, self.len());
        for i in 0..self.len() {
            w.emit(self.starts[i], self.values[i] + v, self.slopes[i]);
        }
        w.finish();
        out.finish();
    }

    /// Horizontal shift right by `d ≥ 0` ticks, filling `[0, d)` with
    /// `fill` — the SoA port of [`Curve::shift_right_into`].
    pub fn shift_right_into(&self, d: Time, fill: i64, out: &mut SoaCurve) {
        assert!(d >= Time::ZERO, "shift_right requires d >= 0");
        if d == Time::ZERO {
            out.copy_from(self);
            return;
        }
        let b = d.ticks();
        let mut w = SoaWriter::new(out, self.len() + 1);
        w.emit(0, fill, 0);
        w.emit(b, self.values[0], self.slopes[0]);
        // Time shifts cancel inside the normalize predicate and the input
        // is normalized, so no shifted tail entry can continue its
        // predecessor (nor the fill line, which would imply piece 1
        // continued piece 0 unshifted) — copy the tail verbatim.
        let k = w.w;
        let cnt = self.len() - 1;
        for (dst, src) in w.s[k..k + cnt].iter_mut().zip(&self.starts[1..]) {
            *dst = src + b;
        }
        w.v[k..k + cnt].copy_from_slice(&self.values[1..]);
        w.m[k..k + cnt].copy_from_slice(&self.slopes[1..]);
        w.w = k + cnt;
        w.finish();
        out.finish();
    }

    /// Replace the prefix `[0, t0)` with the constant `fill` — the SoA
    /// port of [`Curve::mask_before_into`].
    pub fn mask_before_into(&self, t0: Time, fill: i64, out: &mut SoaCurve) {
        if t0 <= Time::ZERO {
            out.copy_from(self);
            return;
        }
        let i = self.seg_index(t0.ticks());
        let at = self.values[i] + self.slopes[i] * (t0.ticks() - self.starts[i]);
        let mut w = SoaWriter::new(out, self.len() - i + 1);
        w.emit(0, fill, 0);
        w.emit(t0.ticks(), at, self.slopes[i]);
        // The entry at `t0` lies on piece `i`'s line and the input is
        // normalized, so piece `i + 1` continues neither it nor the fill
        // line it may have collapsed into — the tail copies verbatim.
        let k = w.w;
        let tail = i + 1;
        let cnt = self.len() - tail;
        w.s[k..k + cnt].copy_from_slice(&self.starts[tail..]);
        w.v[k..k + cnt].copy_from_slice(&self.values[tail..]);
        w.m[k..k + cnt].copy_from_slice(&self.slopes[tail..]);
        w.w = k + cnt;
        w.finish();
        out.finish();
    }

    /// Shared prefix-extremum kernel — the SoA port of
    /// `Curve::running_extremum_into` (same sign folding, same crossing
    /// offsets).
    fn running_extremum_into(&self, max: bool, out: &mut SoaCurve) {
        let sign: i64 = if max { -1 } else { 1 };
        // A curve already monotone in the accumulated direction is its own
        // running extremum, and the general loop below would emit exactly
        // its pieces back (monotone input never triggers a crossing). Near
        // the fixpoint the chain tails are monotone almost always, so the
        // scan-then-copy beats re-emitting piece by piece.
        let mut monotone = sign * self.slopes[0] <= 0;
        let mut i = 1;
        while monotone && i < self.len() {
            let prev_end =
                self.values[i - 1] + self.slopes[i - 1] * (self.starts[i] - 1 - self.starts[i - 1]);
            monotone = sign * self.slopes[i] <= 0 && sign * self.values[i] <= sign * prev_end;
            i += 1;
        }
        if monotone {
            return copy_view(self.view(), out);
        }
        let mut wr = SoaWriter::new(out, 2 * self.len());
        let mut m = i64::MAX;
        for i in 0..self.len() {
            let next_start = self.starts.get(i + 1).copied();
            let (value, slope) = (sign * self.values[i], sign * self.slopes[i]);
            if slope >= 0 {
                let new_m = m.min(value);
                wr.emit(self.starts[i], sign * new_m, 0);
                m = new_m;
            } else {
                if value <= m {
                    wr.emit(self.starts[i], self.values[i], self.slopes[i]);
                } else {
                    wr.emit(self.starts[i], sign * m, 0);
                    let off = div_floor(value - m, -slope) + 1;
                    let tc = self.starts[i] + off;
                    if next_start.is_none_or(|t1| tc < t1) {
                        wr.emit(
                            tc,
                            self.values[i] + self.slopes[i] * (tc - self.starts[i]),
                            self.slopes[i],
                        );
                    }
                }
                if let Some(t1) = next_start {
                    let last = t1 - 1;
                    if last >= self.starts[i] {
                        m = m.min(
                            sign * (self.values[i] + self.slopes[i] * (last - self.starts[i])),
                        );
                    }
                }
            }
        }
        wr.finish();
        out.finish();
    }

    /// The running minimum `t ↦ min_{0 ≤ s ≤ t} f(s)`, written into `out`.
    pub fn running_min_into(&self, out: &mut SoaCurve) {
        self.running_extremum_into(false, out);
    }

    /// The running maximum `t ↦ max_{0 ≤ s ≤ t} f(s)`, written into `out`.
    pub fn running_max_into(&self, out: &mut SoaCurve) {
        self.running_extremum_into(true, out);
    }

    /// Compute `t ↦ ⌊self(t)/τ⌋` on `[0, horizon]` as a counting curve —
    /// the SoA port of [`Curve::floor_div_into`]. On error `out` is left
    /// untouched.
    pub fn floor_div_into(
        &self,
        tau: i64,
        horizon: Time,
        out: &mut SoaCurve,
    ) -> Result<(), CurveError> {
        assert!(tau >= 1, "execution time must be at least one tick");
        self.require_nondecreasing()?;
        let v0 = self.values[0];
        if v0 < 0 {
            return Err(CurveError::NegativeAtZero { value: v0 });
        }

        // Every emitted step strictly raises the count, so the entry total
        // is bounded by the count swing over `[0, horizon]` — a hard cap
        // for the indexed writer (no reallocation mid-staircase).
        let t_end = horizon.ticks().max(0);
        let i_end = self.seg_index(t_end);
        let f_end = self.values[i_end] + self.slopes[i_end] * (t_end - self.starts[i_end]);
        let cap = (div_floor(f_end.max(v0), tau) - div_floor(v0, tau) + 1) as usize;
        let mut wr = SoaWriter::new(out, cap);
        let mut count = div_floor(v0, tau);
        wr.emit(0, count, 0);
        for i in 0..self.len() {
            let (s_start, s_value, s_slope) = (self.starts[i], self.values[i], self.slopes[i]);
            if s_start > horizon.ticks() {
                break;
            }
            let c0 = div_floor(s_value, tau);
            if c0 > count {
                wr.emit(s_start, c0, 0);
                count = c0;
            }
            if s_slope > 0 {
                let end = self
                    .starts
                    .get(i + 1)
                    .map(|&n| n - 1)
                    .unwrap_or(i64::MAX)
                    .min(horizon.ticks());
                loop {
                    let level = (count + 1) * tau;
                    let off = div_ceil(level - s_value, s_slope);
                    let t = s_start + off;
                    if t > end {
                        break;
                    }
                    let c = div_floor(s_value + s_slope * (t - s_start), tau);
                    debug_assert!(c > count);
                    wr.emit(t, c, 0);
                    count = c;
                }
            }
        }
        wr.finish();
        out.finish();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Binary-op sugar
    // ------------------------------------------------------------------

    /// Pointwise sum `self + rhs`, written into `out`.
    pub fn add_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        linear_combine_into(self, 1, rhs, 1, out);
    }

    /// Pointwise difference `self − rhs`, written into `out`.
    pub fn sub_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        linear_combine_into(self, 1, rhs, -1, out);
    }

    /// Pointwise minimum with another curve, written into `out`.
    pub fn min_with_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        pointwise_min_into(self, rhs, out);
    }

    /// Pointwise maximum with another curve, written into `out`.
    pub fn max_with_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        pointwise_max_into(self, rhs, out);
    }

    /// Clamp below: `max(self, v)`, written into `out` — allocation-free:
    /// the constant operand is three stack arrays, never a heap curve.
    pub fn clamp_min_into(&self, v: i64, out: &mut SoaCurve) {
        let (s, val, m) = ([0i64], [v], [0i64]);
        extremum_into(
            self.view(),
            SoaView {
                starts: &s,
                values: &val,
                slopes: &m,
            },
            true,
            out,
        );
    }

    /// Clamp above: `min(self, v)`, written into `out` — allocation-free
    /// like [`SoaCurve::clamp_min_into`].
    pub fn clamp_max_into(&self, v: i64, out: &mut SoaCurve) {
        let (s, val, m) = ([0i64], [v], [0i64]);
        extremum_into(
            self.view(),
            SoaView {
                starts: &s,
                values: &val,
                slopes: &m,
            },
            false,
            out,
        );
    }
}

/// Indexed writer over a curve's three columns: pre-sizes the arrays once,
/// writes by index (no per-entry `Vec::push` length/capacity traffic), and
/// applies the `Curve::normalize` continuation predicate inline against a
/// register-cached previous entry, so no second normalization pass runs.
/// All merge and unary kernels write through this.
struct SoaWriter<'a> {
    s: &'a mut Vec<i64>,
    v: &'a mut Vec<i64>,
    m: &'a mut Vec<i64>,
    w: usize,
    pt: i64,
    pv: i64,
    pm: i64,
}

impl<'a> SoaWriter<'a> {
    #[inline]
    fn new(out: &'a mut SoaCurve, cap: usize) -> SoaWriter<'a> {
        out.starts.resize(cap, 0);
        out.values.resize(cap, 0);
        out.slopes.resize(cap, 0);
        SoaWriter {
            s: &mut out.starts,
            v: &mut out.values,
            m: &mut out.slopes,
            w: 0,
            pt: 0,
            // No real entry evaluates to i64::MIN, so the first emit can
            // never be mistaken for a line continuation.
            pv: i64::MIN,
            pm: 0,
        }
    }

    #[inline]
    fn emit(&mut self, t: i64, v: i64, m: i64) {
        if self.pm == m && self.pv + self.pm * (t - self.pt) == v {
            return;
        }
        self.s[self.w] = t;
        self.v[self.w] = v;
        self.m[self.w] = m;
        (self.pt, self.pv, self.pm) = (t, v, m);
        self.w += 1;
    }

    #[inline]
    fn finish(self) {
        self.s.truncate(self.w);
        self.v.truncate(self.w);
        self.m.truncate(self.w);
    }
}

/// The pointwise linear combination `ca·a + cb·b`, written into `out` —
/// the SoA port of [`crate::ops::linear_combine_into`]. The merge keeps
/// both operands' active piece scalars in locals (loaded once per head
/// advance, with `i64::MAX` sentinels standing in for "no next
/// breakpoint", so the hot loop is `Option`-free), and writes by index
/// into pre-sized columns with the `Curve::normalize` continuation
/// predicate checked against a register-cached previous entry — no
/// per-entry `Vec::push` length/capacity traffic and no second
/// normalization pass, while the output stays segment-identical to the
/// AoS kernel.
pub fn linear_combine_into(a: &SoaCurve, ca: i64, b: &SoaCurve, cb: i64, out: &mut SoaCurve) {
    // A zero line folds away inside the fused kernel, including its
    // one-piece dispatches, so this is the same merge term for term.
    linear_combine_line_into(a, ca, b, cb, 0, 0, out);
}

/// `cc·c + lv + lm·t` — a scaled curve plus a line, one pass over `c`'s
/// breakpoints. The affine term regroups exactly in integer arithmetic,
/// so this matches the general merge against any one-piece operand that
/// folds to the same `(lv, lm)`.
fn combine_line(c: &SoaCurve, cc: i64, lv: i64, lm: i64, out: &mut SoaCurve) {
    let mut wr = SoaWriter::new(out, c.len());
    for i in 0..c.len() {
        let t = c.starts[i];
        wr.emit(t, cc * c.values[i] + lv + lm * t, cc * c.slopes[i] + lm);
    }
    wr.finish();
    out.finish();
}

/// `ca·a + cb·b + lv + lm·t` in a single merge pass — the two-operand
/// combine with an affine tail fused in. Staging the affine term as a
/// separate pass produces the identical segments: the `Curve::normalize`
/// continuation predicate is invariant under affine offsets (the offset
/// cancels on both sides of the check), so fusing drops a full
/// write+read of the intermediate without moving a breakpoint.
pub fn linear_combine_line_into(
    a: &SoaCurve,
    ca: i64,
    b: &SoaCurve,
    cb: i64,
    lv: i64,
    lm: i64,
    out: &mut SoaCurve,
) {
    if b.len() == 1 {
        let (fv, fm) = (
            lv + cb * (b.values[0] - b.slopes[0] * b.starts[0]),
            lm + cb * b.slopes[0],
        );
        return combine_line(a, ca, fv, fm, out);
    }
    if a.len() == 1 {
        let (fv, fm) = (
            lv + ca * (a.values[0] - a.slopes[0] * a.starts[0]),
            lm + ca * a.slopes[0],
        );
        return combine_line(b, cb, fv, fm, out);
    }
    let (sa, va, ma) = (
        a.starts.as_slice(),
        a.values.as_slice(),
        a.slopes.as_slice(),
    );
    let (sb, vb, mb) = (
        b.starts.as_slice(),
        b.values.as_slice(),
        b.slopes.as_slice(),
    );
    let mut wr = SoaWriter::new(out, a.len() + b.len());
    // The merge keeps each scaled piece in intercept form `k + m·t`, so an
    // emit is one multiply; the per-piece constants are refreshed only when
    // a head advances. `k + m·t` equals the scaled point-slope evaluation
    // exactly in integer arithmetic.
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut ka = ca * (va[0] - ma[0] * sa[0]);
    let mut kam = ca * ma[0];
    let mut kb = cb * (vb[0] - mb[0] * sb[0]);
    let mut kbm = cb * mb[0];
    let mut na = sa.get(1).copied().unwrap_or(i64::MAX);
    let mut nb = sb.get(1).copied().unwrap_or(i64::MAX);
    wr.emit(0, ka + kb + lv, kam + kbm + lm);
    loop {
        let t = na.min(nb);
        if t == i64::MAX {
            break;
        }
        if na == t {
            ia += 1;
            ka = ca * (va[ia] - ma[ia] * sa[ia]);
            kam = ca * ma[ia];
            na = sa.get(ia + 1).copied().unwrap_or(i64::MAX);
        }
        if nb == t {
            ib += 1;
            kb = cb * (vb[ib] - mb[ib] * sb[ib]);
            kbm = cb * mb[ib];
            nb = sb.get(ib + 1).copied().unwrap_or(i64::MAX);
        }
        let m = kam + kbm + lm;
        wr.emit(t, ka + kb + lv + m * t, m);
    }
    wr.finish();
    out.finish();
}

/// The pointwise sum of `curves`, written into `out` in a single k-way
/// merge — equivalent to folding [`SoaCurve::add_into`] over the slice
/// (pointwise addition is exact and the normalized segment representation
/// is canonical, so the two agree segment for segment), but each input
/// breakpoint is visited once instead of once per accumulation step. An
/// empty slice yields the zero curve. Merge state lives in fixed stack
/// arrays; sums wider than their capacity fall back to the fold.
pub fn sum_many_into(curves: &[&SoaCurve], out: &mut SoaCurve) {
    const FAN: usize = 16;
    match curves.len() {
        0 => {
            out.set_affine(0, 0);
            return;
        }
        1 => {
            out.copy_from(curves[0]);
            return;
        }
        2 => {
            linear_combine_into(curves[0], 1, curves[1], 1, out);
            return;
        }
        n if n > FAN => {
            // Cold path: tree-reduce through temporaries so the hot merge
            // below keeps its fixed-size state.
            let mut acc = SoaCurve::zero();
            let mut tmp = SoaCurve::zero();
            sum_many_into(&curves[..FAN], &mut acc);
            for chunk in curves[FAN..].chunks(FAN - 1) {
                let mut operands: Vec<&SoaCurve> = Vec::with_capacity(FAN);
                operands.push(&acc);
                operands.extend_from_slice(chunk);
                sum_many_into(&operands, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            out.copy_from(&acc);
            return;
        }
        _ => {}
    }
    let k = curves.len();
    let cap: usize = curves.iter().map(|c| c.len()).sum();
    let mut wr = SoaWriter::new(out, cap);
    let mut idx = [0usize; FAN];
    let mut head = [(0i64, 0i64, 0i64); FAN];
    let mut next = [i64::MAX; FAN];
    let (mut v0, mut m0) = (0i64, 0i64);
    for (j, c) in curves.iter().enumerate() {
        head[j] = (c.starts[0], c.values[0], c.slopes[0]);
        next[j] = c.starts.get(1).copied().unwrap_or(i64::MAX);
        v0 += c.values[0] - c.slopes[0] * c.starts[0];
        m0 += c.slopes[0];
    }
    wr.emit(0, v0, m0);
    loop {
        let mut t = i64::MAX;
        for &n in &next[..k] {
            t = t.min(n);
        }
        if t == i64::MAX {
            break;
        }
        let (mut v, mut m) = (0i64, 0i64);
        for j in 0..k {
            if next[j] == t {
                idx[j] += 1;
                let i = idx[j];
                let c = curves[j];
                head[j] = (c.starts[i], c.values[i], c.slopes[i]);
                next[j] = c.starts.get(i + 1).copied().unwrap_or(i64::MAX);
            }
            let (a0, av, am) = head[j];
            v += av + am * (t - a0);
            m += am;
        }
        wr.emit(t, v, m);
    }
    wr.finish();
    out.finish();
}

/// Shared min/max kernel — the SoA port of `ops::pointwise_extremum_into`
/// (same sign folding, same `div_floor` crossing offsets, same tie-breaks).
/// Uses the same indexed-write scheme as [`linear_combine_into`]: pre-sized
/// columns, sentinel-merged heads in registers, and the `Curve::normalize`
/// continuation predicate applied inline against the last written entry.
/// Copy a (normalized) view verbatim into `out`.
fn copy_view(v: SoaView<'_>, out: &mut SoaCurve) {
    out.starts.clear();
    out.starts.extend_from_slice(v.starts);
    out.values.clear();
    out.values.extend_from_slice(v.values);
    out.slopes.clear();
    out.slopes.extend_from_slice(v.slopes);
    out.finish();
}

fn extremum_into(a: SoaView<'_>, b: SoaView<'_>, max: bool, out: &mut SoaCurve) {
    // One-piece operands (the identity line, clamp constants) skip the
    // merge. The specialization keeps the operand roles of the general
    // loop — ties pick `a`, and which side a single-tick switch piece
    // borrows its slope from depends on that order.
    if b.len() == 1 {
        return extremum_with_affine(a, (b.starts[0], b.values[0], b.slopes[0]), max, false, out);
    }
    if a.len() == 1 {
        return extremum_with_affine(b, (a.starts[0], a.values[0], a.slopes[0]), max, true, out);
    }
    let sign: i64 = if max { -1 } else { 1 };
    let (sa, va, ma) = (a.starts, a.values, a.slopes);
    let (sb, vb, mb) = (b.starts, b.values, b.slopes);
    let (mut ia, mut ib) = (0usize, 0usize);
    let (mut a0, mut av, mut am) = (sa[0], va[0], ma[0]);
    let (mut b0, mut bv, mut bm) = (sb[0], vb[0], mb[0]);
    let mut na = sa.get(1).copied().unwrap_or(i64::MAX);
    let mut nb = sb.get(1).copied().unwrap_or(i64::MAX);
    let mut t0 = 0i64;
    // Phase 1: follow the tick-0 winner (ties pick `a`) through the
    // breakpoint union without writing anything — each interval only needs
    // the sign of the linear difference at its endpoints, no divisions.
    // The clamp/cap steps of the analysis chains are one-sided almost
    // always once the fixpoint is warm, so this usually runs to the end
    // and the merge collapses to a copy. When the winner does lose an
    // interval, everything emitted so far is exactly the winner's pieces
    // up to its current head (the other operand's breakpoints inside a won
    // stretch are line continuations the normalize predicate drops), so
    // the emitting merge resumes mid-stream from a bulk-copied prefix.
    let a_winning = sign * (va[0] - vb[0]) <= 0;
    loop {
        let next = na.min(nb);
        let d0 = sign * ((av + am * (t0 - a0)) - (bv + bm * (t0 - b0)));
        let ds = sign * (am - bm);
        let holds = if next == i64::MAX {
            if a_winning {
                d0 <= 0 && ds <= 0
            } else {
                d0 > 0 && ds >= 0
            }
        } else {
            let de = d0 + ds * (next - 1 - t0);
            if a_winning {
                d0 <= 0 && de <= 0
            } else {
                d0 > 0 && de > 0
            }
        };
        if !holds {
            break;
        }
        if next == i64::MAX {
            return copy_view(if a_winning { a } else { b }, out);
        }
        t0 = next;
        if na == next {
            ia += 1;
            (a0, av, am) = (sa[ia], va[ia], ma[ia]);
            na = sa.get(ia + 1).copied().unwrap_or(i64::MAX);
        }
        if nb == next {
            ib += 1;
            (b0, bv, bm) = (sb[ib], vb[ib], mb[ib]);
            nb = sb.get(ib + 1).copied().unwrap_or(i64::MAX);
        }
    }
    // Phase 2: the emitting merge, seeded with the winner's prefix.
    let mut wr = SoaWriter::new(out, 2 * (a.len() + b.len()));
    if t0 > 0 {
        let (ws, wv, wm, iw) = if a_winning {
            (sa, va, ma, ia)
        } else {
            (sb, vb, mb, ib)
        };
        // A winner piece starting exactly at the divergence time covers no
        // validated interval — the merge below owns the emit at `t0`.
        let n = if ws[iw] == t0 { iw } else { iw + 1 };
        wr.s[..n].copy_from_slice(&ws[..n]);
        wr.v[..n].copy_from_slice(&wv[..n]);
        wr.m[..n].copy_from_slice(&wm[..n]);
        wr.w = n;
        (wr.pt, wr.pv, wr.pm) = (ws[n - 1], wv[n - 1], wm[n - 1]);
    }
    loop {
        let next = na.min(nb);
        let ea = av + am * (t0 - a0);
        let eb = bv + bm * (t0 - b0);
        let e0 = sign * (ea - eb);
        let es = sign * (am - bm);
        // The currently-extremal piece, then a possible single switch.
        let take_a = e0 <= 0;
        let (first_v, first_m) = if take_a { (ea, am) } else { (eb, bm) };
        wr.emit(t0, first_v, first_m);
        let cross_off = if take_a && es > 0 {
            Some(div_floor(-e0, es) + 1)
        } else if !take_a && es < 0 {
            Some(div_floor(e0, -es) + 1)
        } else {
            None
        };
        if let Some(off) = cross_off {
            debug_assert!(off >= 1);
            let tc = t0 + off;
            if tc < next {
                let (sv, sm) = if take_a {
                    (bv + bm * (tc - b0), bm)
                } else {
                    (av + am * (tc - a0), am)
                };
                wr.emit(tc, sv, sm);
            }
        }
        if next == i64::MAX {
            break;
        }
        t0 = next;
        if na == next {
            ia += 1;
            (a0, av, am) = (sa[ia], va[ia], ma[ia]);
            na = sa.get(ia + 1).copied().unwrap_or(i64::MAX);
        }
        if nb == next {
            ib += 1;
            (b0, bv, bm) = (sb[ib], vb[ib], mb[ib]);
            nb = sb.get(ib + 1).copied().unwrap_or(i64::MAX);
        }
    }
    wr.finish();
    out.finish();
}

/// [`extremum_into`] against a single affine piece `aff(t) = av + am·(t −
/// a0)`, iterating only the multi-piece operand `c`. `aff_is_a` records
/// which *positional* operand the affine piece was, so tie-breaks (`take_a
/// = e0 ≤ 0`) and switch-piece slopes replicate the general merge exactly.
fn extremum_with_affine(
    c: SoaView<'_>,
    (f0, fv, fm): (i64, i64, i64),
    max: bool,
    aff_is_a: bool,
    out: &mut SoaCurve,
) {
    let sign: i64 = if max { -1 } else { 1 };
    let (sc, vc, mc) = (c.starts, c.values, c.slopes);
    // Pre-scan: when `c` is extremal at every integer tick the merge is
    // the identity on it — the general loop would take `c`'s piece in
    // every interval and never emit a switch, so copying `c` is
    // segment-identical and skips all crossing divisions. Ties go to
    // positional operand `a`, so `c` must win strictly when the affine
    // piece holds that slot. Clipping curves against the identity line or
    // a zero floor usually no-ops on converged bounds, which makes this
    // the common case in the fixpoint's warm rounds.
    let strict = aff_is_a;
    let mut c_extremal = true;
    for i in 0..c.len() {
        let (t0, cv, cm) = (sc[i], vc[i], mc[i]);
        let d0 = sign * (cv - (fv + fm * (t0 - f0)));
        if if strict { d0 >= 0 } else { d0 > 0 } {
            c_extremal = false;
            break;
        }
        let ds = sign * (cm - fm);
        match sc.get(i + 1) {
            Some(&t1) => {
                let de = d0 + ds * (t1 - 1 - t0);
                if if strict { de >= 0 } else { de > 0 } {
                    c_extremal = false;
                    break;
                }
            }
            None => {
                if ds > 0 {
                    c_extremal = false;
                    break;
                }
            }
        }
    }
    if c_extremal {
        return copy_view(c, out);
    }
    let mut wr = SoaWriter::new(out, 2 * (c.len() + 1));
    for i in 0..c.len() {
        let (t0, cv, cm) = (sc[i], vc[i], mc[i]);
        let next = sc.get(i + 1).copied().unwrap_or(i64::MAX);
        let ev = fv + fm * (t0 - f0);
        // The general loop's (ea, eb) with the affine piece restored to
        // its original operand slot.
        let (e0, es) = if aff_is_a {
            (sign * (ev - cv), sign * (fm - cm))
        } else {
            (sign * (cv - ev), sign * (cm - fm))
        };
        let take_a = e0 <= 0;
        let take_aff = take_a == aff_is_a;
        let (first_v, first_m) = if take_aff { (ev, fm) } else { (cv, cm) };
        wr.emit(t0, first_v, first_m);
        let cross_off = if take_a && es > 0 {
            Some(div_floor(-e0, es) + 1)
        } else if !take_a && es < 0 {
            Some(div_floor(e0, -es) + 1)
        } else {
            None
        };
        if let Some(off) = cross_off {
            debug_assert!(off >= 1);
            let tc = t0 + off;
            if tc < next {
                let (sv, sm) = if take_aff {
                    (cv + cm * (tc - t0), cm)
                } else {
                    (fv + fm * (tc - f0), fm)
                };
                wr.emit(tc, sv, sm);
            }
        }
    }
    wr.finish();
    out.finish();
}

/// Pointwise minimum written into `out`, exact at every integer tick.
pub fn pointwise_min_into(a: &SoaCurve, b: &SoaCurve, out: &mut SoaCurve) {
    extremum_into(a.view(), b.view(), false, out);
}

/// Pointwise maximum written into `out`, exact at every integer tick.
pub fn pointwise_max_into(a: &SoaCurve, b: &SoaCurve, out: &mut SoaCurve) {
    extremum_into(a.view(), b.view(), true, out);
}

/// Min-plus convolution for **convex** nondecreasing curves, written into
/// `out` — the SoA port of [`crate::convolution::convolve_convex_into`].
/// The `(length, slope)` piece staging lives in `scratch`, so a warm call
/// allocates nothing.
pub fn convolve_convex_into(f: &SoaCurve, g: &SoaCurve, scratch: &mut Scratch, out: &mut SoaCurve) {
    debug_assert!(f.is_convex(), "convolve_convex requires convex f");
    debug_assert!(g.is_convex(), "convolve_convex requires convex g");

    let pieces = &mut scratch.pieces;
    pieces.clear();
    for c in [f, g] {
        for i in 0..c.len() {
            pieces.push((
                c.starts.get(i + 1).map(|&n| Time(n - c.starts[i])),
                c.slopes[i],
            ));
        }
    }
    pieces.sort_by_key(|&(_, slope)| slope);

    out.begin(pieces.len());
    let mut t = 0i64;
    let mut v = f.values[0] + g.values[0];
    for &(len, slope) in pieces.iter() {
        out.push(t, v, slope);
        match len {
            Some(len) => {
                t += len.ticks();
                v += slope * len.ticks();
            }
            None => break, // first infinite piece has the smallest remaining slope
        }
    }
    out.finish();
}

/// A forward-only cursor over a **nondecreasing** SoA curve — the port of
/// [`crate::CurveCursor`], answering [`SoaCursor::eval`] and
/// [`SoaCursor::inverse_at`] for monotone query sequences in amortized
/// O(1). The inverse sweep touches only the `starts`/`values` columns until
/// a sloped piece resolves the query, so a counting-curve sweep streams two
/// flat arrays instead of striding through segment structs.
#[derive(Clone, Debug)]
pub struct SoaCursor<'a> {
    curve: SoaView<'a>,
    inv_idx: usize,
    eval_idx: usize,
    #[cfg(debug_assertions)]
    last_t: Option<Time>,
    #[cfg(debug_assertions)]
    last_y: Option<i64>,
}

impl<'a> SoaCursor<'a> {
    /// Start a sweep over `curve`.
    pub fn new(curve: &'a SoaCurve) -> SoaCursor<'a> {
        debug_assert!(
            curve.is_nondecreasing(),
            "SoaCursor requires a nondecreasing curve"
        );
        SoaCursor {
            curve: curve.view(),
            inv_idx: 0,
            eval_idx: 0,
            #[cfg(debug_assertions)]
            last_t: None,
            #[cfg(debug_assertions)]
            last_y: None,
        }
    }

    /// `curve.eval(t)` for a nondecreasing sequence of `t`.
    pub fn eval(&mut self, t: Time) -> i64 {
        #[cfg(debug_assertions)]
        {
            debug_assert!(t >= Time::ZERO);
            debug_assert!(
                self.last_t.is_none_or(|p| t >= p),
                "cursor eval queries must be nondecreasing"
            );
            self.last_t = Some(t);
        }
        let starts = self.curve.starts;
        while self.eval_idx + 1 < starts.len() && starts[self.eval_idx + 1] <= t.ticks() {
            self.eval_idx += 1;
        }
        self.curve.piece_eval(self.eval_idx, t.ticks())
    }

    /// `curve.inverse_at(y)` — smallest integer `t ≥ 0` with `f(t) ≥ y` —
    /// for a nondecreasing sequence of `y`.
    pub fn inverse_at(&mut self, y: i64) -> Option<Time> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_y.is_none_or(|p| y >= p),
                "cursor inverse queries must be nondecreasing"
            );
            self.last_y = Some(y);
        }
        let (starts, values, slopes) = (self.curve.starts, self.curve.values, self.curve.slopes);
        while self.inv_idx < starts.len() {
            let i = self.inv_idx;
            if values[i] >= y {
                return Some(Time(starts[i]));
            }
            if slopes[i] > 0 {
                let off = div_ceil(y - values[i], slopes[i]);
                debug_assert!(off >= 1);
                let t = starts[i] + off;
                match starts.get(i + 1) {
                    Some(&next) if t >= next => {} // reached after piece ends
                    _ => return Some(Time(t)),
                }
            }
            // This piece never reaches `y` (nor any larger value): skip it
            // for the rest of the sweep.
            self.inv_idx += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Curve {
        Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 2, 0),
            Segment::new(Time(10), 2, 1),
        ])
    }

    #[test]
    fn round_trip_preserves_segments() {
        for c in [Curve::zero(), Curve::identity(), staircase()] {
            assert_eq!(SoaCurve::from_curve(&c).to_curve(), c);
        }
    }

    #[test]
    fn eval_matches_aos() {
        let c = staircase();
        let s = SoaCurve::from_curve(&c);
        for t in 0..=15 {
            assert_eq!(s.eval(Time(t)), c.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn linear_combine_matches_aos() {
        let a = SoaCurve::from_curve(&staircase());
        let b = SoaCurve::from_curve(&Curve::identity());
        let mut out = SoaCurve::zero();
        linear_combine_into(&a, 2, &b, -3, &mut out);
        let oracle = crate::ops::linear_combine(&staircase(), 2, &Curve::identity(), -3);
        assert_eq!(out.to_curve(), oracle);
    }

    #[test]
    fn extrema_match_aos() {
        let ac = staircase();
        let bc = Curve::affine(1, 0);
        let (a, b) = (SoaCurve::from_curve(&ac), SoaCurve::from_curve(&bc));
        let mut out = SoaCurve::zero();
        pointwise_min_into(&a, &b, &mut out);
        assert_eq!(out.to_curve(), ac.min_with(&bc));
        pointwise_max_into(&a, &b, &mut out);
        assert_eq!(out.to_curve(), ac.max_with(&bc));
        a.clamp_min_into(1, &mut out);
        assert_eq!(out.to_curve(), ac.clamp_min(1));
        a.clamp_max_into(1, &mut out);
        assert_eq!(out.to_curve(), ac.clamp_max(1));
    }

    #[test]
    fn running_extrema_match_aos() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 5, 1),
            Segment::new(Time(3), 8, -2),
            Segment::new(Time(7), 10, 0),
            Segment::new(Time(9), -1, -1),
        ]);
        let s = SoaCurve::from_curve(&c);
        let mut out = SoaCurve::zero();
        s.running_min_into(&mut out);
        assert_eq!(out.to_curve(), c.running_min());
        s.running_max_into(&mut out);
        assert_eq!(out.to_curve(), c.running_max());
    }

    #[test]
    fn floor_div_matches_aos_including_errors() {
        let c = Curve::identity();
        let s = SoaCurve::from_curve(&c);
        let mut out = SoaCurve::zero();
        s.floor_div_into(4, Time(30), &mut out).unwrap();
        assert_eq!(out.to_curve(), c.floor_div(4, Time(30)).unwrap());
        // Errors leave out untouched.
        let bad = SoaCurve::from_curve(&Curve::affine(5, -1));
        let before = out.clone();
        assert!(bad.floor_div_into(2, Time(10), &mut out).is_err());
        assert_eq!(out, before);
    }

    #[test]
    fn shift_and_mask_match_aos() {
        let c = staircase();
        let s = SoaCurve::from_curve(&c);
        let mut out = SoaCurve::zero();
        s.shift_right_into(Time(3), 7, &mut out);
        assert_eq!(out.to_curve(), c.shift_right(Time(3), 7));
        s.mask_before_into(Time(7), -1, &mut out);
        assert_eq!(out.to_curve(), c.mask_before(Time(7), -1));
    }

    #[test]
    fn convolve_convex_matches_aos() {
        let fc = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 0),
            Segment::new(Time(3), 1, 1),
            Segment::new(Time(7), 5, 4),
        ]);
        let gc = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(5), 10, 3),
        ]);
        let (f, g) = (SoaCurve::from_curve(&fc), SoaCurve::from_curve(&gc));
        let mut scratch = Scratch::new();
        let mut out = SoaCurve::zero();
        convolve_convex_into(&f, &g, &mut scratch, &mut out);
        assert_eq!(
            out.to_curve(),
            crate::convolution::convolve_convex(&fc, &gc)
        );
    }

    #[test]
    fn cursor_matches_aos_cursor() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(3), 3, 0),
            Segment::new(Time(8), 5, 2),
            Segment::new(Time(12), 13, 0),
        ]);
        let s = SoaCurve::from_curve(&c);
        let mut soa = SoaCursor::new(&s);
        let mut aos = crate::CurveCursor::new(&c);
        for t in 0..=20 {
            assert_eq!(soa.eval(Time(t)), aos.eval(Time(t)), "t={t}");
        }
        let mut soa = SoaCursor::new(&s);
        let mut aos = crate::CurveCursor::new(&c);
        for y in 0..=16 {
            assert_eq!(soa.inverse_at(y), aos.inverse_at(y), "y={y}");
        }
    }

    #[test]
    fn truncate_after_matches_aos() {
        let c = staircase();
        let mut s = SoaCurve::from_curve(&c);
        s.truncate_after(Time(6));
        assert_eq!(s.to_curve(), c.truncate_after(Time(6)));
    }
}

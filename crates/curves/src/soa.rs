//! Structure-of-arrays curve kernels.
//!
//! [`SoaCurve`] stores the same normalized piecewise-linear function as
//! [`Curve`], but in three parallel arrays (`starts`, `values`, `slopes`)
//! instead of an array of [`Segment`] structs. The hot merge loops walk the
//! breakpoint columns contiguously, which halves the bytes touched per
//! comparison (the AoS layout drags every segment's unused fields through
//! the cache) and gives the autovectorizer straight-line arithmetic over
//! `i64` lanes in the compute phases — see [`linear_combine_into`], whose
//! breakpoint-merge and value-compute phases are split precisely so the
//! second phase is a branch-free gather loop.
//!
//! ## Equivalence contract
//!
//! Every kernel here is a port of its AoS counterpart in [`crate::ops`],
//! [`crate::running`], [`crate::floor_div`], [`crate::convolution`] or
//! [`crate::cursor`], with the *same* crossing-offset formulas
//! (`div_floor`/`div_ceil`) and the *same* normalization predicate, so the
//! results are **segment-identical** — not merely value-equal — to the AoS
//! kernels. The AoS kernels are retained as oracles; the property tests in
//! `tests/soa_kernels.rs` pin the equivalence over random curves, dirty
//! output buffers and error paths.
//!
//! Writers first emit a raw breakpoint sequence with strictly increasing
//! starts and then coalesce line-continuations with the exact predicate of
//! `Curve::normalize` (`prev.slope == s.slope && prev.eval(s.start) ==
//! s.value`); this is observationally identical to pushing through
//! `push_normalized`, which is how the AoS kernels write.

use crate::util::{div_ceil, div_floor};
use crate::{Curve, CurveError, Scratch, Segment, Time};

/// A piecewise-linear curve in structure-of-arrays layout: three parallel
/// arrays of breakpoint starts (ticks), values and slopes.
///
/// Invariants match [`Curve`]: non-empty, first start at zero, strictly
/// increasing starts, normalized (no segment continues its predecessor's
/// line). Constructed from an AoS curve ([`SoaCurve::from_curve`]) or as a
/// kernel output; arbitrary raw construction is not exposed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoaCurve {
    starts: Vec<i64>,
    values: Vec<i64>,
    slopes: Vec<i64>,
}

/// A borrowed view of a curve in structure-of-arrays layout — the operand
/// type of the SoA kernels. Cheap to copy; also constructible from stack
/// arrays inside the crate (the clamp kernels pass a one-segment constant
/// operand without touching the heap).
#[derive(Clone, Copy, Debug)]
pub struct SoaView<'a> {
    pub(crate) starts: &'a [i64],
    pub(crate) values: &'a [i64],
    pub(crate) slopes: &'a [i64],
}

impl<'a> SoaView<'a> {
    /// Number of linear pieces.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when the view holds no pieces (never the case for views of a
    /// valid curve).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Breakpoint starts, in ticks.
    #[inline]
    pub fn starts(&self) -> &'a [i64] {
        self.starts
    }

    /// Values at the breakpoints.
    #[inline]
    pub fn values(&self) -> &'a [i64] {
        self.values
    }

    /// Slopes of the pieces.
    #[inline]
    pub fn slopes(&self) -> &'a [i64] {
        self.slopes
    }

    /// Value of piece `i` extended to time `t` (ticks).
    #[inline]
    fn piece_eval(&self, i: usize, t: i64) -> i64 {
        self.values[i] + self.slopes[i] * (t - self.starts[i])
    }
}

impl Default for SoaCurve {
    fn default() -> SoaCurve {
        SoaCurve::zero()
    }
}

impl SoaCurve {
    /// The zero curve.
    pub fn zero() -> SoaCurve {
        SoaCurve {
            starts: vec![0],
            values: vec![0],
            slopes: vec![0],
        }
    }

    /// Convert an AoS curve, allocating fresh arrays.
    pub fn from_curve(c: &Curve) -> SoaCurve {
        let mut s = SoaCurve {
            starts: Vec::new(),
            values: Vec::new(),
            slopes: Vec::new(),
        };
        s.copy_from_curve(c);
        s
    }

    /// Overwrite with the contents of an AoS curve, reusing the arrays.
    pub fn copy_from_curve(&mut self, c: &Curve) {
        let segs = c.segments();
        self.begin(segs.len());
        for s in segs {
            self.starts.push(s.start.ticks());
            self.values.push(s.value);
            self.slopes.push(s.slope);
        }
    }

    /// Convert back to an AoS [`Curve`], allocating.
    pub fn to_curve(&self) -> Curve {
        let mut out = Curve::zero();
        self.write_to_curve(&mut out);
        out
    }

    /// Convert back to an AoS [`Curve`], reusing `out`'s segment buffer.
    /// The curve invariants are debug-checked at this boundary, so an SoA
    /// round-trip can never silently hand an invariant-violating segment
    /// list to the AoS world.
    pub fn write_to_curve(&self, out: &mut Curve) {
        let segs = out.begin_write(self.len());
        for i in 0..self.len() {
            segs.push(Segment::new(
                Time(self.starts[i]),
                self.values[i],
                self.slopes[i],
            ));
        }
        out.finish_write();
    }

    /// Borrow as an [`SoaView`].
    #[inline]
    pub fn view(&self) -> SoaView<'_> {
        SoaView {
            starts: &self.starts,
            values: &self.values,
            slopes: &self.slopes,
        }
    }

    /// Number of linear pieces.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when the curve holds no pieces — only observable mid-write;
    /// every finished curve is non-empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Index of the piece containing `t ≥ 0`.
    #[inline]
    fn seg_index(&self, t: i64) -> usize {
        debug_assert!(t >= 0, "curves are defined on [0, ∞)");
        self.starts.partition_point(|&s| s <= t) - 1
    }

    /// Evaluate at `t ≥ 0` (right-continuous value).
    #[inline]
    pub fn eval(&self, t: Time) -> i64 {
        let i = self.seg_index(t.ticks());
        self.values[i] + self.slopes[i] * (t.ticks() - self.starts[i])
    }

    /// Overwrite with the affine curve `v0 + slope · t`.
    pub fn set_affine(&mut self, v0: i64, slope: i64) {
        self.begin(1);
        self.starts.push(0);
        self.values.push(v0);
        self.slopes.push(slope);
    }

    /// Overwrite with a copy of `src`, reusing the arrays.
    pub fn copy_from(&mut self, src: &SoaCurve) {
        self.begin(src.len());
        self.starts.extend_from_slice(&src.starts);
        self.values.extend_from_slice(&src.values);
        self.slopes.extend_from_slice(&src.slopes);
    }

    /// Drop all breakpoints strictly after `horizon`, in place — the SoA
    /// counterpart of [`Curve::truncate_after`] (a normalized prefix of a
    /// normalized curve needs no re-normalization).
    pub fn truncate_after(&mut self, horizon: Time) {
        let i = self.seg_index(horizon.ticks().max(0));
        self.starts.truncate(i + 1);
        self.values.truncate(i + 1);
        self.slopes.truncate(i + 1);
    }

    /// Clear all three arrays (keeping capacity) and reserve room for `cap`
    /// entries — the start of a write session.
    pub(crate) fn begin(&mut self, cap: usize) {
        self.starts.clear();
        self.values.clear();
        self.slopes.clear();
        self.starts.reserve(cap);
        self.values.reserve(cap);
        self.slopes.reserve(cap);
    }

    /// Normalized push: skip the entry when it continues the previous
    /// line — the exact predicate of `Curve::normalize` / `push_normalized`.
    /// Starts must be strictly increasing (debug-asserted).
    #[inline]
    pub(crate) fn push(&mut self, t: i64, v: i64, m: i64) {
        if let Some(k) = self.starts.len().checked_sub(1) {
            debug_assert!(self.starts[k] < t, "pushes must be strictly increasing");
            if self.slopes[k] == m && self.values[k] + self.slopes[k] * (t - self.starts[k]) == v {
                return;
            }
        }
        self.starts.push(t);
        self.values.push(v);
        self.slopes.push(m);
    }

    /// Debug-check the curve invariants at the end of a write session.
    pub(crate) fn finish(&self) {
        debug_assert!(!self.starts.is_empty(), "written curve must be non-empty");
        debug_assert!(self.starts[0] == 0);
        debug_assert!(self.starts.windows(2).all(|w| w[0] < w[1]));
        debug_assert!((1..self.len()).all(|i| {
            self.slopes[i - 1] != self.slopes[i]
                || self.values[i - 1] + self.slopes[i - 1] * (self.starts[i] - self.starts[i - 1])
                    != self.values[i]
        }));
    }

    /// First integer `t` with `f(t) < f(t−1)`, if any — the SoA port of
    /// [`Curve::first_decrease`].
    pub fn first_decrease(&self) -> Option<Time> {
        for i in 0..self.len() {
            let next_start = self.starts.get(i + 1);
            if self.slopes[i] < 0 {
                let second = self.starts[i] + 1;
                if next_start.is_none_or(|&ns| second < ns) {
                    return Some(Time(second));
                }
            }
            if i > 0 && self.starts[i] > 0 && self.values[i] < self.eval(Time(self.starts[i] - 1)) {
                return Some(Time(self.starts[i]));
            }
        }
        None
    }

    /// `true` iff the curve never decreases on the tick lattice.
    pub fn is_nondecreasing(&self) -> bool {
        self.first_decrease().is_none()
    }

    /// Check the curve is nondecreasing, returning a descriptive error if
    /// not.
    pub fn require_nondecreasing(&self) -> Result<(), CurveError> {
        match self.first_decrease() {
            None => Ok(()),
            Some(at) => Err(CurveError::NotMonotone { at }),
        }
    }

    /// `true` iff the curve is continuous (no jumps).
    pub fn is_continuous(&self) -> bool {
        (1..self.len()).all(|i| {
            self.values[i - 1] + self.slopes[i - 1] * (self.starts[i] - self.starts[i - 1])
                == self.values[i]
        })
    }

    /// `true` iff the curve is convex on the lattice: continuous with
    /// nondecreasing slopes.
    pub fn is_convex(&self) -> bool {
        self.is_continuous() && self.slopes.windows(2).all(|w| w[0] <= w[1])
    }

    // ------------------------------------------------------------------
    // Unary kernels (ports of the `Curve` methods of the same names)
    // ------------------------------------------------------------------

    /// Pointwise scaling `k·self`, written into `out`.
    pub fn scale_into(&self, k: i64, out: &mut SoaCurve) {
        out.begin(self.len());
        for i in 0..self.len() {
            out.push(self.starts[i], k * self.values[i], k * self.slopes[i]);
        }
        out.finish();
    }

    /// Pointwise negation, written into `out`.
    pub fn neg_into(&self, out: &mut SoaCurve) {
        self.scale_into(-1, out);
    }

    /// Pointwise constant offset `self + v`, written into `out`.
    pub fn add_const_into(&self, v: i64, out: &mut SoaCurve) {
        out.begin(self.len());
        for i in 0..self.len() {
            out.push(self.starts[i], self.values[i] + v, self.slopes[i]);
        }
        out.finish();
    }

    /// Horizontal shift right by `d ≥ 0` ticks, filling `[0, d)` with
    /// `fill` — the SoA port of [`Curve::shift_right_into`].
    pub fn shift_right_into(&self, d: Time, fill: i64, out: &mut SoaCurve) {
        assert!(d >= Time::ZERO, "shift_right requires d >= 0");
        if d == Time::ZERO {
            out.copy_from(self);
            return;
        }
        out.begin(self.len() + 1);
        out.push(0, fill, 0);
        for i in 0..self.len() {
            out.push(self.starts[i] + d.ticks(), self.values[i], self.slopes[i]);
        }
        out.finish();
    }

    /// Replace the prefix `[0, t0)` with the constant `fill` — the SoA
    /// port of [`Curve::mask_before_into`].
    pub fn mask_before_into(&self, t0: Time, fill: i64, out: &mut SoaCurve) {
        if t0 <= Time::ZERO {
            out.copy_from(self);
            return;
        }
        let i = self.seg_index(t0.ticks());
        let at = self.values[i] + self.slopes[i] * (t0.ticks() - self.starts[i]);
        out.begin(self.len() - i + 1);
        out.push(0, fill, 0);
        out.push(t0.ticks(), at, self.slopes[i]);
        for j in i + 1..self.len() {
            out.push(self.starts[j], self.values[j], self.slopes[j]);
        }
        out.finish();
    }

    /// Shared prefix-extremum kernel — the SoA port of
    /// `Curve::running_extremum_into` (same sign folding, same crossing
    /// offsets).
    fn running_extremum_into(&self, max: bool, out: &mut SoaCurve) {
        let sign: i64 = if max { -1 } else { 1 };
        out.begin(2 * self.len());
        let mut m = i64::MAX;
        for i in 0..self.len() {
            let next_start = self.starts.get(i + 1).copied();
            let (value, slope) = (sign * self.values[i], sign * self.slopes[i]);
            if slope >= 0 {
                let new_m = m.min(value);
                out.push(self.starts[i], sign * new_m, 0);
                m = new_m;
            } else {
                if value <= m {
                    out.push(self.starts[i], self.values[i], self.slopes[i]);
                } else {
                    out.push(self.starts[i], sign * m, 0);
                    let off = div_floor(value - m, -slope) + 1;
                    let tc = self.starts[i] + off;
                    if next_start.is_none_or(|t1| tc < t1) {
                        out.push(
                            tc,
                            self.values[i] + self.slopes[i] * (tc - self.starts[i]),
                            self.slopes[i],
                        );
                    }
                }
                if let Some(t1) = next_start {
                    let last = t1 - 1;
                    if last >= self.starts[i] {
                        m = m.min(
                            sign * (self.values[i] + self.slopes[i] * (last - self.starts[i])),
                        );
                    }
                }
            }
        }
        out.finish();
    }

    /// The running minimum `t ↦ min_{0 ≤ s ≤ t} f(s)`, written into `out`.
    pub fn running_min_into(&self, out: &mut SoaCurve) {
        self.running_extremum_into(false, out);
    }

    /// The running maximum `t ↦ max_{0 ≤ s ≤ t} f(s)`, written into `out`.
    pub fn running_max_into(&self, out: &mut SoaCurve) {
        self.running_extremum_into(true, out);
    }

    /// Compute `t ↦ ⌊self(t)/τ⌋` on `[0, horizon]` as a counting curve —
    /// the SoA port of [`Curve::floor_div_into`]. On error `out` is left
    /// untouched.
    pub fn floor_div_into(
        &self,
        tau: i64,
        horizon: Time,
        out: &mut SoaCurve,
    ) -> Result<(), CurveError> {
        assert!(tau >= 1, "execution time must be at least one tick");
        self.require_nondecreasing()?;
        let v0 = self.values[0];
        if v0 < 0 {
            return Err(CurveError::NegativeAtZero { value: v0 });
        }

        out.begin(self.len() + 4);
        let mut count = div_floor(v0, tau);
        out.push(0, count, 0);
        for i in 0..self.len() {
            let (s_start, s_value, s_slope) = (self.starts[i], self.values[i], self.slopes[i]);
            if s_start > horizon.ticks() {
                break;
            }
            let c0 = div_floor(s_value, tau);
            if c0 > count {
                out.push(s_start, c0, 0);
                count = c0;
            }
            if s_slope > 0 {
                let end = self
                    .starts
                    .get(i + 1)
                    .map(|&n| n - 1)
                    .unwrap_or(i64::MAX)
                    .min(horizon.ticks());
                loop {
                    let level = (count + 1) * tau;
                    let off = div_ceil(level - s_value, s_slope);
                    let t = s_start + off;
                    if t > end {
                        break;
                    }
                    let c = div_floor(s_value + s_slope * (t - s_start), tau);
                    debug_assert!(c > count);
                    out.push(t, c, 0);
                    count = c;
                }
            }
        }
        out.finish();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Binary-op sugar
    // ------------------------------------------------------------------

    /// Pointwise sum `self + rhs`, written into `out`.
    pub fn add_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        linear_combine_into(self, 1, rhs, 1, out);
    }

    /// Pointwise difference `self − rhs`, written into `out`.
    pub fn sub_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        linear_combine_into(self, 1, rhs, -1, out);
    }

    /// Pointwise minimum with another curve, written into `out`.
    pub fn min_with_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        pointwise_min_into(self, rhs, out);
    }

    /// Pointwise maximum with another curve, written into `out`.
    pub fn max_with_into(&self, rhs: &SoaCurve, out: &mut SoaCurve) {
        pointwise_max_into(self, rhs, out);
    }

    /// Clamp below: `max(self, v)`, written into `out` — allocation-free:
    /// the constant operand is three stack arrays, never a heap curve.
    pub fn clamp_min_into(&self, v: i64, out: &mut SoaCurve) {
        let (s, val, m) = ([0i64], [v], [0i64]);
        extremum_into(
            self.view(),
            SoaView {
                starts: &s,
                values: &val,
                slopes: &m,
            },
            true,
            out,
        );
    }

    /// Clamp above: `min(self, v)`, written into `out` — allocation-free
    /// like [`SoaCurve::clamp_min_into`].
    pub fn clamp_max_into(&self, v: i64, out: &mut SoaCurve) {
        let (s, val, m) = ([0i64], [v], [0i64]);
        extremum_into(
            self.view(),
            SoaView {
                starts: &s,
                values: &val,
                slopes: &m,
            },
            false,
            out,
        );
    }
}

/// One operand of a merged-breakpoint walk. The active piece's scalars are
/// cached in the struct so the hot loop touches the backing slices only
/// when a head actually advances — the SoA counterpart of `ops::zip_pieces`
/// handing out `&Segment`s, which gets that caching for free from the
/// borrow. Without it every evaluation costs three separately
/// bounds-checked gathers, which is exactly where the first-cut SoA merges
/// lost to the AoS kernels.
struct Head<'a> {
    starts: &'a [i64],
    values: &'a [i64],
    slopes: &'a [i64],
    i: usize,
    start: i64,
    value: i64,
    slope: i64,
}

impl<'a> Head<'a> {
    fn new(v: SoaView<'a>) -> Head<'a> {
        Head {
            starts: v.starts,
            values: v.values,
            slopes: v.slopes,
            i: 0,
            start: v.starts[0],
            value: v.values[0],
            slope: v.slopes[0],
        }
    }

    /// Advance to the piece active at `t`; returns the next breakpoint
    /// strictly after the active piece, if any.
    #[inline]
    fn advance(&mut self, t: i64) -> Option<i64> {
        while self.i + 1 < self.starts.len() && self.starts[self.i + 1] <= t {
            self.i += 1;
            self.start = self.starts[self.i];
            self.value = self.values[self.i];
            self.slope = self.slopes[self.i];
        }
        self.starts.get(self.i + 1).copied()
    }

    /// The active piece evaluated at `t`.
    #[inline]
    fn eval(&self, t: i64) -> i64 {
        self.value + self.slope * (t - self.start)
    }
}

/// The next merged breakpoint after the two heads' active pieces.
#[inline]
fn merged_next(na: Option<i64>, nb: Option<i64>) -> Option<i64> {
    match (na, nb) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The pointwise linear combination `ca·a + cb·b`, written into `out` —
/// the SoA port of [`crate::ops::linear_combine_into`]: one streaming pass
/// over the merged breakpoints with cached piece heads and normalized
/// pushes.
pub fn linear_combine_into(a: &SoaCurve, ca: i64, b: &SoaCurve, cb: i64, out: &mut SoaCurve) {
    let (mut ha, mut hb) = (Head::new(a.view()), Head::new(b.view()));
    out.begin(a.len() + b.len());
    let mut cur = Some(0i64);
    while let Some(t) = cur {
        let (na, nb) = (ha.advance(t), hb.advance(t));
        cur = merged_next(na, nb);
        out.push(
            t,
            ca * ha.eval(t) + cb * hb.eval(t),
            ca * ha.slope + cb * hb.slope,
        );
    }
    out.finish();
}

/// Shared min/max kernel — the SoA port of `ops::pointwise_extremum_into`
/// (same sign folding, same `div_floor` crossing offsets, same tie-breaks).
fn extremum_into(a: SoaView<'_>, b: SoaView<'_>, max: bool, out: &mut SoaCurve) {
    let sign: i64 = if max { -1 } else { 1 };
    out.begin(2 * (a.len() + b.len()));
    let (mut ha, mut hb) = (Head::new(a), Head::new(b));
    let mut cur = Some(0i64);
    while let Some(t0) = cur {
        let (na, nb) = (ha.advance(t0), hb.advance(t0));
        let next = merged_next(na, nb);
        cur = next;
        let ea = ha.eval(t0);
        let eb = hb.eval(t0);
        let e0 = sign * (ea - eb);
        let es = sign * (ha.slope - hb.slope);
        // The currently-extremal piece, then a possible single switch.
        let take_a = e0 <= 0;
        let (first_v, first_m) = if take_a {
            (ea, ha.slope)
        } else {
            (eb, hb.slope)
        };
        out.push(t0, first_v, first_m);
        let cross_off = if take_a && es > 0 {
            Some(div_floor(-e0, es) + 1)
        } else if !take_a && es < 0 {
            Some(div_floor(e0, -es) + 1)
        } else {
            None
        };
        if let Some(off) = cross_off {
            debug_assert!(off >= 1);
            let tc = t0 + off;
            if next.is_none_or(|t1| tc < t1) {
                let (sv, sm) = if take_a {
                    (hb.eval(tc), hb.slope)
                } else {
                    (ha.eval(tc), ha.slope)
                };
                out.push(tc, sv, sm);
            }
        }
    }
    out.finish();
}

/// Pointwise minimum written into `out`, exact at every integer tick.
pub fn pointwise_min_into(a: &SoaCurve, b: &SoaCurve, out: &mut SoaCurve) {
    extremum_into(a.view(), b.view(), false, out);
}

/// Pointwise maximum written into `out`, exact at every integer tick.
pub fn pointwise_max_into(a: &SoaCurve, b: &SoaCurve, out: &mut SoaCurve) {
    extremum_into(a.view(), b.view(), true, out);
}

/// Min-plus convolution for **convex** nondecreasing curves, written into
/// `out` — the SoA port of [`crate::convolution::convolve_convex_into`].
/// The `(length, slope)` piece staging lives in `scratch`, so a warm call
/// allocates nothing.
pub fn convolve_convex_into(f: &SoaCurve, g: &SoaCurve, scratch: &mut Scratch, out: &mut SoaCurve) {
    debug_assert!(f.is_convex(), "convolve_convex requires convex f");
    debug_assert!(g.is_convex(), "convolve_convex requires convex g");

    let pieces = &mut scratch.pieces;
    pieces.clear();
    for c in [f, g] {
        for i in 0..c.len() {
            pieces.push((
                c.starts.get(i + 1).map(|&n| Time(n - c.starts[i])),
                c.slopes[i],
            ));
        }
    }
    pieces.sort_by_key(|&(_, slope)| slope);

    out.begin(pieces.len());
    let mut t = 0i64;
    let mut v = f.values[0] + g.values[0];
    for &(len, slope) in pieces.iter() {
        out.push(t, v, slope);
        match len {
            Some(len) => {
                t += len.ticks();
                v += slope * len.ticks();
            }
            None => break, // first infinite piece has the smallest remaining slope
        }
    }
    out.finish();
}

/// A forward-only cursor over a **nondecreasing** SoA curve — the port of
/// [`crate::CurveCursor`], answering [`SoaCursor::eval`] and
/// [`SoaCursor::inverse_at`] for monotone query sequences in amortized
/// O(1). The inverse sweep touches only the `starts`/`values` columns until
/// a sloped piece resolves the query, so a counting-curve sweep streams two
/// flat arrays instead of striding through segment structs.
#[derive(Clone, Debug)]
pub struct SoaCursor<'a> {
    curve: SoaView<'a>,
    inv_idx: usize,
    eval_idx: usize,
    #[cfg(debug_assertions)]
    last_t: Option<Time>,
    #[cfg(debug_assertions)]
    last_y: Option<i64>,
}

impl<'a> SoaCursor<'a> {
    /// Start a sweep over `curve`.
    pub fn new(curve: &'a SoaCurve) -> SoaCursor<'a> {
        debug_assert!(
            curve.is_nondecreasing(),
            "SoaCursor requires a nondecreasing curve"
        );
        SoaCursor {
            curve: curve.view(),
            inv_idx: 0,
            eval_idx: 0,
            #[cfg(debug_assertions)]
            last_t: None,
            #[cfg(debug_assertions)]
            last_y: None,
        }
    }

    /// `curve.eval(t)` for a nondecreasing sequence of `t`.
    pub fn eval(&mut self, t: Time) -> i64 {
        #[cfg(debug_assertions)]
        {
            debug_assert!(t >= Time::ZERO);
            debug_assert!(
                self.last_t.is_none_or(|p| t >= p),
                "cursor eval queries must be nondecreasing"
            );
            self.last_t = Some(t);
        }
        let starts = self.curve.starts;
        while self.eval_idx + 1 < starts.len() && starts[self.eval_idx + 1] <= t.ticks() {
            self.eval_idx += 1;
        }
        self.curve.piece_eval(self.eval_idx, t.ticks())
    }

    /// `curve.inverse_at(y)` — smallest integer `t ≥ 0` with `f(t) ≥ y` —
    /// for a nondecreasing sequence of `y`.
    pub fn inverse_at(&mut self, y: i64) -> Option<Time> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_y.is_none_or(|p| y >= p),
                "cursor inverse queries must be nondecreasing"
            );
            self.last_y = Some(y);
        }
        let (starts, values, slopes) = (self.curve.starts, self.curve.values, self.curve.slopes);
        while self.inv_idx < starts.len() {
            let i = self.inv_idx;
            if values[i] >= y {
                return Some(Time(starts[i]));
            }
            if slopes[i] > 0 {
                let off = div_ceil(y - values[i], slopes[i]);
                debug_assert!(off >= 1);
                let t = starts[i] + off;
                match starts.get(i + 1) {
                    Some(&next) if t >= next => {} // reached after piece ends
                    _ => return Some(Time(t)),
                }
            }
            // This piece never reaches `y` (nor any larger value): skip it
            // for the rest of the sweep.
            self.inv_idx += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Curve {
        Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 2, 0),
            Segment::new(Time(10), 2, 1),
        ])
    }

    #[test]
    fn round_trip_preserves_segments() {
        for c in [Curve::zero(), Curve::identity(), staircase()] {
            assert_eq!(SoaCurve::from_curve(&c).to_curve(), c);
        }
    }

    #[test]
    fn eval_matches_aos() {
        let c = staircase();
        let s = SoaCurve::from_curve(&c);
        for t in 0..=15 {
            assert_eq!(s.eval(Time(t)), c.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn linear_combine_matches_aos() {
        let a = SoaCurve::from_curve(&staircase());
        let b = SoaCurve::from_curve(&Curve::identity());
        let mut out = SoaCurve::zero();
        linear_combine_into(&a, 2, &b, -3, &mut out);
        let oracle = crate::ops::linear_combine(&staircase(), 2, &Curve::identity(), -3);
        assert_eq!(out.to_curve(), oracle);
    }

    #[test]
    fn extrema_match_aos() {
        let ac = staircase();
        let bc = Curve::affine(1, 0);
        let (a, b) = (SoaCurve::from_curve(&ac), SoaCurve::from_curve(&bc));
        let mut out = SoaCurve::zero();
        pointwise_min_into(&a, &b, &mut out);
        assert_eq!(out.to_curve(), ac.min_with(&bc));
        pointwise_max_into(&a, &b, &mut out);
        assert_eq!(out.to_curve(), ac.max_with(&bc));
        a.clamp_min_into(1, &mut out);
        assert_eq!(out.to_curve(), ac.clamp_min(1));
        a.clamp_max_into(1, &mut out);
        assert_eq!(out.to_curve(), ac.clamp_max(1));
    }

    #[test]
    fn running_extrema_match_aos() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 5, 1),
            Segment::new(Time(3), 8, -2),
            Segment::new(Time(7), 10, 0),
            Segment::new(Time(9), -1, -1),
        ]);
        let s = SoaCurve::from_curve(&c);
        let mut out = SoaCurve::zero();
        s.running_min_into(&mut out);
        assert_eq!(out.to_curve(), c.running_min());
        s.running_max_into(&mut out);
        assert_eq!(out.to_curve(), c.running_max());
    }

    #[test]
    fn floor_div_matches_aos_including_errors() {
        let c = Curve::identity();
        let s = SoaCurve::from_curve(&c);
        let mut out = SoaCurve::zero();
        s.floor_div_into(4, Time(30), &mut out).unwrap();
        assert_eq!(out.to_curve(), c.floor_div(4, Time(30)).unwrap());
        // Errors leave out untouched.
        let bad = SoaCurve::from_curve(&Curve::affine(5, -1));
        let before = out.clone();
        assert!(bad.floor_div_into(2, Time(10), &mut out).is_err());
        assert_eq!(out, before);
    }

    #[test]
    fn shift_and_mask_match_aos() {
        let c = staircase();
        let s = SoaCurve::from_curve(&c);
        let mut out = SoaCurve::zero();
        s.shift_right_into(Time(3), 7, &mut out);
        assert_eq!(out.to_curve(), c.shift_right(Time(3), 7));
        s.mask_before_into(Time(7), -1, &mut out);
        assert_eq!(out.to_curve(), c.mask_before(Time(7), -1));
    }

    #[test]
    fn convolve_convex_matches_aos() {
        let fc = Curve::from_segments(vec![
            Segment::new(Time(0), 1, 0),
            Segment::new(Time(3), 1, 1),
            Segment::new(Time(7), 5, 4),
        ]);
        let gc = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 2),
            Segment::new(Time(5), 10, 3),
        ]);
        let (f, g) = (SoaCurve::from_curve(&fc), SoaCurve::from_curve(&gc));
        let mut scratch = Scratch::new();
        let mut out = SoaCurve::zero();
        convolve_convex_into(&f, &g, &mut scratch, &mut out);
        assert_eq!(
            out.to_curve(),
            crate::convolution::convolve_convex(&fc, &gc)
        );
    }

    #[test]
    fn cursor_matches_aos_cursor() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(3), 3, 0),
            Segment::new(Time(8), 5, 2),
            Segment::new(Time(12), 13, 0),
        ]);
        let s = SoaCurve::from_curve(&c);
        let mut soa = SoaCursor::new(&s);
        let mut aos = crate::CurveCursor::new(&c);
        for t in 0..=20 {
            assert_eq!(soa.eval(Time(t)), aos.eval(Time(t)), "t={t}");
        }
        let mut soa = SoaCursor::new(&s);
        let mut aos = crate::CurveCursor::new(&c);
        for y in 0..=16 {
            assert_eq!(soa.inverse_at(y), aos.inverse_at(y), "y={y}");
        }
    }

    #[test]
    fn truncate_after_matches_aos() {
        let c = staircase();
        let mut s = SoaCurve::from_curve(&c);
        s.truncate_after(Time(6));
        assert_eq!(s.to_curve(), c.truncate_after(Time(6)));
    }
}

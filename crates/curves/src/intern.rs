//! Curve interning and bounded operation memoization.
//!
//! The analyses derive the same piecewise-linear curves over and over:
//! every bisection step of a sensitivity sweep and every job set of an
//! admission sweep re-builds arrival envelopes, workloads and service
//! curves whose segment lists are often structurally identical to ones
//! already computed. [`CurveArena`] hash-conses curves — structurally equal
//! segment lists are stored once and shared behind a cheap, `Copy`-able
//! [`CurveId`] — so equality checks between analysis rounds become integer
//! comparisons and repeated results share memory.
//!
//! On top of the arena sits a **bounded** memo table for the binary
//! operations ([`CurveOp`]): pointwise min/max, addition and min-plus
//! convolution, keyed on the operand ids (and the horizon, for the
//! convolution). The table evicts in FIFO order once it reaches its
//! capacity, so a long-lived arena's memory stays proportional to the
//! working set, not to the total operation count.
//!
//! All keyed operations are commutative, so keys are normalized to
//! `(min(a, b), max(a, b))` — `f ⊗ g` and `g ⊗ f` share one entry.

use crate::convolution::convolve;
use crate::ops::{pointwise_max, pointwise_min};
use crate::{Curve, Time};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identifier of an interned curve within one [`CurveArena`].
///
/// Ids are only meaningful relative to the arena that issued them; two
/// curves interned in the same arena are structurally equal **iff** their
/// ids are equal.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CurveId(u32);

impl CurveId {
    /// Dense index of the curve within its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary curve operations the arena memoizes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CurveOp {
    /// Min-plus convolution `f ⊗ g` up to a horizon.
    Convolve,
    /// Pointwise minimum.
    Min,
    /// Pointwise maximum.
    Max,
    /// Pointwise sum.
    Add,
}

/// Memo key: operation, normalized operand ids, horizon ticks (zero for
/// horizon-free operations).
type MemoKey = (CurveOp, CurveId, CurveId, i64);

/// Snapshot of an arena's size and memo-table effectiveness.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct curves interned.
    pub curves: usize,
    /// Live memo-table entries.
    pub memo_entries: usize,
    /// Memo-table capacity (entries beyond this evict FIFO).
    pub memo_capacity: usize,
    /// Operations answered from the memo table.
    pub memo_hits: u64,
    /// Operations that had to be computed.
    pub memo_misses: u64,
    /// `intern` calls that found an existing structural match.
    pub intern_hits: u64,
}

/// A structural-hash arena of curves with a bounded operation memo table.
///
/// See the [module docs](self) for the design. The arena only ever grows
/// (curves are never evicted — ids must stay valid); the *memo table* is
/// bounded by [`CurveArena::with_memo_capacity`].
#[derive(Debug)]
pub struct CurveArena {
    curves: Vec<Arc<Curve>>,
    lookup: HashMap<Arc<Curve>, CurveId>,
    memo: HashMap<MemoKey, CurveId>,
    memo_order: VecDeque<MemoKey>,
    memo_capacity: usize,
    memo_hits: u64,
    memo_misses: u64,
    intern_hits: u64,
}

/// Default bound on live memo-table entries.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

impl Default for CurveArena {
    fn default() -> Self {
        CurveArena::new()
    }
}

impl CurveArena {
    /// An empty arena with the [`DEFAULT_MEMO_CAPACITY`].
    pub fn new() -> CurveArena {
        CurveArena::with_memo_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// An empty arena whose memo table holds at most `capacity` entries
    /// (FIFO eviction beyond that). A capacity of zero disables
    /// memoization but keeps interning.
    pub fn with_memo_capacity(capacity: usize) -> CurveArena {
        CurveArena {
            curves: Vec::new(),
            lookup: HashMap::new(),
            memo: HashMap::new(),
            memo_order: VecDeque::new(),
            memo_capacity: capacity,
            memo_hits: 0,
            memo_misses: 0,
            intern_hits: 0,
        }
    }

    /// Intern a curve, returning the id of its structural equivalence
    /// class. The curve is moved in only when it is new to the arena.
    pub fn intern(&mut self, curve: Curve) -> CurveId {
        if let Some(&id) = self.lookup.get(&curve) {
            self.intern_hits += 1;
            return id;
        }
        let id = CurveId(u32::try_from(self.curves.len()).expect("arena overflow"));
        let shared = Arc::new(curve);
        self.curves.push(Arc::clone(&shared));
        self.lookup.insert(shared, id);
        id
    }

    /// Intern by reference, cloning the curve only on a miss.
    pub fn intern_ref(&mut self, curve: &Curve) -> CurveId {
        if let Some(&id) = self.lookup.get(curve) {
            self.intern_hits += 1;
            return id;
        }
        self.intern(curve.clone())
    }

    /// The id a curve would intern to, without inserting it.
    pub fn find(&self, curve: &Curve) -> Option<CurveId> {
        self.lookup.get(curve).copied()
    }

    /// The interned curve behind an id.
    pub fn get(&self, id: CurveId) -> &Curve {
        &self.curves[id.index()]
    }

    /// Shared handle to the interned curve (cheap to clone across threads).
    pub fn get_arc(&self, id: CurveId) -> Arc<Curve> {
        Arc::clone(&self.curves[id.index()])
    }

    /// Number of distinct curves interned.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// `true` when no curve has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// Current size and memo statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            curves: self.curves.len(),
            memo_entries: self.memo.len(),
            memo_capacity: self.memo_capacity,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
            intern_hits: self.intern_hits,
        }
    }

    /// Memoized min-plus convolution of two interned curves (see
    /// [`crate::convolution::convolve`]).
    pub fn convolve(&mut self, f: CurveId, g: CurveId, horizon: Time) -> CurveId {
        self.binary(CurveOp::Convolve, f, g, horizon.ticks(), |a, b| {
            convolve(a, b, horizon)
        })
    }

    /// Memoized pointwise minimum.
    pub fn min(&mut self, f: CurveId, g: CurveId) -> CurveId {
        self.binary(CurveOp::Min, f, g, 0, pointwise_min)
    }

    /// Memoized pointwise maximum.
    pub fn max(&mut self, f: CurveId, g: CurveId) -> CurveId {
        self.binary(CurveOp::Max, f, g, 0, pointwise_max)
    }

    /// Memoized pointwise sum.
    pub fn add(&mut self, f: CurveId, g: CurveId) -> CurveId {
        self.binary(CurveOp::Add, f, g, 0, |a, b| a.add(b))
    }

    fn binary(
        &mut self,
        op: CurveOp,
        f: CurveId,
        g: CurveId,
        horizon: i64,
        compute: impl FnOnce(&Curve, &Curve) -> Curve,
    ) -> CurveId {
        // All four operations are commutative: normalize the key.
        let key = (op, f.min(g), f.max(g), horizon);
        if let Some(&id) = self.memo.get(&key) {
            self.memo_hits += 1;
            return id;
        }
        self.memo_misses += 1;
        let result = compute(&self.curves[f.index()], &self.curves[g.index()]);
        let id = self.intern(result);
        if self.memo_capacity > 0 {
            if self.memo.len() >= self.memo_capacity {
                if let Some(old) = self.memo_order.pop_front() {
                    self.memo.remove(&old);
                }
            }
            self.memo.insert(key, id);
            self.memo_order.push_back(key);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;
    use proptest::prelude::*;

    fn staircase(ts: &[i64], tau: i64) -> Curve {
        Curve::from_event_times(&ts.iter().map(|&t| Time(t)).collect::<Vec<_>>()).scale(tau)
    }

    #[test]
    fn interning_is_idempotent_and_injective() {
        let mut arena = CurveArena::new();
        let a = arena.intern(staircase(&[0, 4, 8], 3));
        let b = arena.intern(staircase(&[0, 4, 8], 3));
        let c = arena.intern(staircase(&[0, 4, 9], 3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.stats().intern_hits, 1);
        assert_eq!(arena.get(a), &staircase(&[0, 4, 8], 3));
    }

    #[test]
    fn memoized_ops_match_direct_computation() {
        let mut arena = CurveArena::new();
        let f = staircase(&[0, 4, 8], 3);
        let g = staircase(&[1, 5], 2);
        let fi = arena.intern_ref(&f);
        let gi = arena.intern_ref(&g);
        let h = Time(20);
        let conv = arena.convolve(fi, gi, h);
        assert_eq!(arena.get(conv), &convolve(&f, &g, h));
        let arena_min = arena.min(fi, gi);
        assert_eq!(arena.get(arena_min), &f.min_with(&g));
        let arena_max = arena.max(fi, gi);
        assert_eq!(arena.get(arena_max), &f.max_with(&g));
        let arena_add = arena.add(fi, gi);
        assert_eq!(arena.get(arena_add), &f.add(&g));
    }

    #[test]
    fn commutative_keys_share_one_entry() {
        let mut arena = CurveArena::new();
        let fi = arena.intern(staircase(&[0, 3], 2));
        let gi = arena.intern(Curve::affine(1, 1));
        let a = arena.convolve(fi, gi, Time(15));
        let b = arena.convolve(gi, fi, Time(15));
        assert_eq!(a, b);
        let s = arena.stats();
        assert_eq!((s.memo_hits, s.memo_misses), (1, 1));
    }

    #[test]
    fn memo_table_is_bounded_fifo() {
        let mut arena = CurveArena::with_memo_capacity(2);
        let ids: Vec<CurveId> = (0..4).map(|k| arena.intern(Curve::constant(k))).collect();
        // Three distinct entries through a capacity-2 table.
        arena.add(ids[0], ids[1]);
        arena.add(ids[0], ids[2]);
        arena.add(ids[0], ids[3]); // evicts the (ids[0], ids[1]) entry
        assert_eq!(arena.stats().memo_entries, 2);
        arena.add(ids[0], ids[2]); // still resident
        assert_eq!(arena.stats().memo_hits, 1);
        arena.add(ids[0], ids[1]); // recomputed after eviction
        assert_eq!(arena.stats().memo_misses, 4);
    }

    #[test]
    fn zero_capacity_disables_memoization_not_interning() {
        let mut arena = CurveArena::with_memo_capacity(0);
        let fi = arena.intern(Curve::identity());
        let gi = arena.intern(Curve::constant(3));
        let a = arena.min(fi, gi);
        let b = arena.min(fi, gi);
        // Results still intern to the same id; only the memo is off.
        assert_eq!(a, b);
        assert_eq!(arena.stats().memo_hits, 0);
        assert_eq!(arena.stats().memo_entries, 0);
    }

    fn arb_curve() -> impl Strategy<Value = Curve> {
        (
            prop::collection::vec((0i64..40, 0i64..20, 0i64..4), 1..6),
            any::<bool>(),
        )
            .prop_map(|(pieces, clip)| {
                let mut ts: Vec<i64> = pieces.iter().map(|p| p.0).collect();
                ts.sort();
                ts.dedup();
                let segs: Vec<Segment> = ts
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        let (_, v, s) = pieces[i];
                        Segment::new(Time(if i == 0 { 0 } else { t }), v + t, s)
                    })
                    .collect();
                let c = Curve::from_segments(segs);
                if clip {
                    c.min_with(&Curve::affine(10, 2))
                } else {
                    c
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Hash-consing invariant: equal curves get equal ids, distinct
        /// curves get distinct ids, and ids round-trip to the original.
        #[test]
        fn intern_equality_consistency(a in arb_curve(), b in arb_curve()) {
            let mut arena = CurveArena::new();
            let ia = arena.intern_ref(&a);
            let ib = arena.intern_ref(&b);
            prop_assert_eq!(ia == ib, a == b);
            prop_assert_eq!(arena.get(ia), &a);
            prop_assert_eq!(arena.get(ib), &b);
            // Re-interning never mints a fresh id.
            prop_assert_eq!(arena.intern_ref(&a), ia);
            prop_assert_eq!(arena.intern(b.clone()), ib);
        }

        /// Memoized results are the same curves the direct operators
        /// produce, hit or miss.
        #[test]
        fn memo_transparency(a in arb_curve(), b in arb_curve(), h in 0i64..60) {
            let mut arena = CurveArena::new();
            let ia = arena.intern_ref(&a);
            let ib = arena.intern_ref(&b);
            for _ in 0..2 { // second pass exercises the hit path
                let conv_id = arena.convolve(ia, ib, Time(h));
                prop_assert_eq!(arena.get(conv_id), &convolve(&a, &b, Time(h)));
                let min_id = arena.min(ia, ib);
                prop_assert_eq!(arena.get(min_id), &a.min_with(&b));
                let add_id = arena.add(ia, ib);
                prop_assert_eq!(arena.get(add_id), &a.add(&b));
            }
            prop_assert!(arena.stats().memo_hits >= 3);
        }
    }
}

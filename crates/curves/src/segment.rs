//! A single linear piece of a [`crate::Curve`].

use crate::Time;

/// One linear piece of a piecewise-linear curve.
///
/// A segment describes the curve on the half-open interval
/// `[start, next_start)` (the last segment of a curve extends to `+∞`) as
/// `f(t) = value + slope · (t − start)`.
///
/// `value` is the value *at* `start` (curves are right-continuous); a jump
/// discontinuity exists at a breakpoint whenever the previous segment's line,
/// extended to `start`, differs from `value`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct Segment {
    /// Left endpoint of the piece (inclusive).
    pub start: Time,
    /// Curve value at `start`.
    pub value: i64,
    /// Change in value per tick on this piece.
    pub slope: i64,
}

impl Segment {
    /// Construct a segment.
    #[inline]
    pub const fn new(start: Time, value: i64, slope: i64) -> Segment {
        Segment {
            start,
            value,
            slope,
        }
    }

    /// Evaluate the segment's line at `t` (no domain check — callers must
    /// ensure `t` lies in the piece, or explicitly want the extension).
    #[inline]
    pub fn eval(&self, t: Time) -> i64 {
        self.value + self.slope * (t - self.start).ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_its_line() {
        let s = Segment::new(Time(10), 5, 3);
        assert_eq!(s.eval(Time(10)), 5);
        assert_eq!(s.eval(Time(12)), 11);
        // Extension below start is the same line.
        assert_eq!(s.eval(Time(9)), 2);
    }
}

//! Resumable monotone sweeps over a curve.
//!
//! The Theorem 1 loop evaluates `f⁻¹(m)` for `m = 1, 2, …, n`, and the
//! hop-delay loops of the bounds analyses do the same against arrival
//! envelopes and departure lower bounds. [`Curve::inverse_at`] rescans the
//! segment list from the front on every query, making such a sweep
//! O(instances · segments). A [`CurveCursor`] remembers the segment that
//! answered the previous query; because both the query sequence and the
//! curve are nondecreasing, the answer can only move forward, and a full
//! sweep is O(instances + segments) — amortized O(1) per query.
//!
//! ```
//! use rta_curves::{Curve, CurveCursor, Time};
//!
//! let arr = Curve::from_event_times(&[Time(0), Time(10), Time(10), Time(25)]);
//! let mut cur = CurveCursor::new(&arr);
//! assert_eq!(cur.inverse_at(1), Some(Time(0)));
//! assert_eq!(cur.inverse_at(2), Some(Time(10)));
//! assert_eq!(cur.inverse_at(4), Some(Time(25)));
//! assert_eq!(cur.inverse_at(5), None);
//! ```

use crate::util::div_ceil;
use crate::{Curve, Segment, Time};

/// A forward-only cursor over a **nondecreasing** curve, answering
/// [`CurveCursor::eval`] and [`CurveCursor::inverse_at`] for monotone
/// query sequences in amortized O(1).
///
/// Queries must be nondecreasing across calls (each method independently);
/// this is debug-asserted. Results agree exactly with [`Curve::eval`] and
/// [`Curve::inverse_at`] on nondecreasing curves.
#[derive(Clone, Debug)]
pub struct CurveCursor<'a> {
    segs: &'a [Segment],
    /// Next segment index to inspect for `inverse_at` (all earlier pieces
    /// are known not to reach the previous `y`).
    inv_idx: usize,
    /// Active segment index for `eval`.
    eval_idx: usize,
    #[cfg(debug_assertions)]
    last_t: Option<Time>,
    #[cfg(debug_assertions)]
    last_y: Option<i64>,
}

impl<'a> CurveCursor<'a> {
    /// Start a sweep over `curve`.
    pub fn new(curve: &'a Curve) -> CurveCursor<'a> {
        debug_assert!(
            curve.is_nondecreasing(),
            "CurveCursor requires a nondecreasing curve"
        );
        CurveCursor {
            segs: curve.segments(),
            inv_idx: 0,
            eval_idx: 0,
            #[cfg(debug_assertions)]
            last_t: None,
            #[cfg(debug_assertions)]
            last_y: None,
        }
    }

    /// `curve.eval(t)` for a nondecreasing sequence of `t`.
    pub fn eval(&mut self, t: Time) -> i64 {
        #[cfg(debug_assertions)]
        {
            debug_assert!(t >= Time::ZERO);
            debug_assert!(
                self.last_t.is_none_or(|p| t >= p),
                "cursor eval queries must be nondecreasing"
            );
            self.last_t = Some(t);
        }
        while self.eval_idx + 1 < self.segs.len() && self.segs[self.eval_idx + 1].start <= t {
            self.eval_idx += 1;
        }
        self.segs[self.eval_idx].eval(t)
    }

    /// `curve.inverse_at(y)` — smallest integer `t ≥ 0` with `f(t) ≥ y` —
    /// for a nondecreasing sequence of `y`.
    pub fn inverse_at(&mut self, y: i64) -> Option<Time> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_y.is_none_or(|p| y >= p),
                "cursor inverse queries must be nondecreasing"
            );
            self.last_y = Some(y);
        }
        while self.inv_idx < self.segs.len() {
            let s = self.segs[self.inv_idx];
            if s.value >= y {
                return Some(s.start);
            }
            if s.slope > 0 {
                let off = div_ceil(y - s.value, s.slope);
                debug_assert!(off >= 1);
                let t = s.start + Time(off);
                match self.segs.get(self.inv_idx + 1) {
                    Some(next) if t >= next.start => {} // reached after piece ends
                    _ => return Some(t),
                }
            }
            // This piece never reaches `y` (nor any larger value): skip it
            // for the rest of the sweep.
            self.inv_idx += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Curve {
        Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(3), 3, 0),
            Segment::new(Time(8), 5, 2),
            Segment::new(Time(12), 13, 0),
        ])
    }

    #[test]
    fn eval_sweep_matches_direct_eval() {
        let c = mixed();
        let mut cur = CurveCursor::new(&c);
        for t in 0..=20 {
            assert_eq!(cur.eval(Time(t)), c.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn eval_allows_repeated_times() {
        let c = mixed();
        let mut cur = CurveCursor::new(&c);
        assert_eq!(cur.eval(Time(5)), c.eval(Time(5)));
        assert_eq!(cur.eval(Time(5)), c.eval(Time(5)));
    }

    #[test]
    fn inverse_sweep_matches_scanning_inverse() {
        let c = mixed();
        let mut cur = CurveCursor::new(&c);
        for y in 0..=16 {
            assert_eq!(cur.inverse_at(y), c.inverse_at(y), "y={y}");
        }
    }

    #[test]
    fn inverse_sweep_over_counting_curve() {
        let arr = Curve::from_event_times(&[Time(0), Time(4), Time(4), Time(9)]);
        let mut cur = CurveCursor::new(&arr);
        for m in 1..=5 {
            assert_eq!(cur.inverse_at(m), arr.event_time(m), "m={m}");
        }
    }

    #[test]
    fn inverse_none_is_sticky() {
        let c = Curve::constant(3);
        let mut cur = CurveCursor::new(&c);
        assert_eq!(cur.inverse_at(3), Some(Time::ZERO));
        assert_eq!(cur.inverse_at(4), None);
        assert_eq!(cur.inverse_at(9), None);
    }

    #[test]
    fn repeated_queries_are_allowed() {
        let c = mixed();
        let mut cur = CurveCursor::new(&c);
        assert_eq!(cur.inverse_at(5), c.inverse_at(5));
        assert_eq!(cur.inverse_at(5), c.inverse_at(5));
    }

    #[test]
    fn interleaved_eval_and_inverse_are_independent() {
        let c = mixed();
        let mut cur = CurveCursor::new(&c);
        assert_eq!(cur.inverse_at(10), c.inverse_at(10));
        // A *smaller* eval time is fine: the two sweeps are independent.
        assert_eq!(cur.eval(Time(1)), c.eval(Time(1)));
        assert_eq!(cur.inverse_at(13), c.inverse_at(13));
    }
}

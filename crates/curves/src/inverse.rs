//! Pseudo-inverse of nondecreasing curves (Definition 5 of the paper):
//! `g⁻¹(y) = min { s : g(s) ≥ y }`.
//!
//! For an arrival function, `f_arr⁻¹(m)` is the release time of the `m`-th
//! instance (Equation 3). Inverses are taken over the integer lattice; for
//! the step and slope-`1` curves that dominate the analysis the lattice
//! answer coincides with the continuous one.

use crate::curve::push_normalized;
use crate::util::div_ceil;
use crate::{Curve, CurveError, Segment, Time};

impl Curve {
    /// Smallest integer `t ≥ 0` with `f(t) ≥ y`, or `None` if the curve never
    /// reaches `y`.
    ///
    /// Works for arbitrary (not necessarily monotone) curves: the first
    /// reaching time is found by scanning pieces in order.
    pub fn inverse_at(&self, y: i64) -> Option<Time> {
        let segs = self.segments();
        for (i, s) in segs.iter().enumerate() {
            if s.value >= y {
                return Some(s.start);
            }
            if s.slope > 0 {
                let off = div_ceil(y - s.value, s.slope);
                debug_assert!(off >= 1);
                let t = s.start + Time(off);
                match segs.get(i + 1) {
                    Some(next) if t >= next.start => {} // reached after piece ends
                    _ => return Some(t),
                }
            }
        }
        None
    }

    /// Largest value the curve attains on `[0, horizon]` (lattice points).
    pub fn sup_on(&self, horizon: Time) -> i64 {
        let mut best = i64::MIN;
        let segs = self.segments();
        for (i, s) in segs.iter().enumerate() {
            if s.start > horizon {
                break;
            }
            let end = segs
                .get(i + 1)
                .map(|n| (n.start - Time(1)).min(horizon))
                .unwrap_or(horizon);
            best = best.max(s.value).max(s.eval(end));
        }
        best
    }

    /// The pseudo-inverse as a curve over the **value** axis:
    /// `g⁻¹(y) = min { s : g(s) ≥ y }`, for nondecreasing `g`.
    ///
    /// The result maps integer values `y` to times (as `i64` ticks). It is
    /// well-defined only for `y ≤ sup g`; beyond the supremum of a curve
    /// whose final slope is zero there is no finite inverse, so the returned
    /// curve is **valid on `[0, g.sup_on(·)]` only** (its final plateau is
    /// extended, which callers must not query). Curves with final slope ≥ 1
    /// have a total inverse.
    ///
    /// Supported slopes: `0` and `1` are exact and compact; slopes ≥ 2 are
    /// expanded into an exact staircase (one step per time tick of the
    /// piece). Negative slopes are rejected.
    pub fn inverse_curve(&self) -> Result<Curve, CurveError> {
        let mut out = Curve::zero();
        self.inverse_curve_into(&mut out)?;
        Ok(out)
    }

    /// [`Curve::inverse_curve`] writing into a caller-provided curve,
    /// reusing its segment buffer. On error `out` is left untouched (all
    /// validation runs before the sweep starts writing).
    pub fn inverse_curve_into(&self, out: &mut Curve) -> Result<(), CurveError> {
        self.require_nondecreasing()?;
        let segs = self.segments();
        if segs[0].value < 0 {
            return Err(CurveError::NegativeAtZero {
                value: segs[0].value,
            });
        }
        // Validate slopes upfront, in sweep order, so the sweep itself is
        // infallible: negative slopes are unsupported anywhere, and slopes
        // ≥ 2 only on bounded pieces (the staircase expansion is finite).
        for (i, s) in segs.iter().enumerate() {
            let unbounded = i + 1 == segs.len();
            if s.slope < 0 || (s.slope >= 2 && unbounded) {
                return Err(CurveError::UnsupportedSlope { slope: s.slope });
            }
        }

        let out_segs = out.begin_write(segs.len() + 2);
        // `covered` = the largest y for which the inverse has been emitted;
        // the inverse for y ≤ g(0) is 0.
        let v0 = segs[0].value;
        push_normalized(out_segs, Segment::new(Time::ZERO, 0, 0));
        let mut covered = v0;
        for (i, s) in segs.iter().enumerate() {
            let seg_end = segs.get(i + 1).map(|n| n.start);
            match s.slope {
                0 => {
                    // A plateau contributes nothing new; an upward jump INTO
                    // the *next* segment is handled when that segment starts.
                    if s.value > covered {
                        // Jump at s.start: all y in (covered, s.value] first
                        // reached at s.start.
                        push_normalized(
                            out_segs,
                            Segment::new(Time(covered + 1), s.start.ticks(), 0),
                        );
                        covered = s.value;
                    }
                }
                1 => {
                    if s.value > covered {
                        push_normalized(
                            out_segs,
                            Segment::new(Time(covered + 1), s.start.ticks(), 0),
                        );
                        covered = s.value;
                    }
                    // On the rising piece the inverse is the mirrored line:
                    // y = value + (t − start) ⇒ t = start + (y − value).
                    let top = match seg_end {
                        Some(t1) => s.eval(t1 - Time(1)),
                        None => {
                            // Unbounded rising tail: inverse continues forever.
                            if covered < i64::MAX {
                                push_normalized(
                                    out_segs,
                                    Segment::new(
                                        Time(covered + 1),
                                        s.start.ticks() + (covered + 1 - s.value),
                                        1,
                                    ),
                                );
                            }
                            break;
                        }
                    };
                    if top > covered {
                        push_normalized(
                            out_segs,
                            Segment::new(
                                Time(covered + 1),
                                s.start.ticks() + (covered + 1 - s.value),
                                1,
                            ),
                        );
                        covered = top;
                    }
                }
                k => {
                    debug_assert!(k >= 2);
                    if s.value > covered {
                        push_normalized(
                            out_segs,
                            Segment::new(Time(covered + 1), s.start.ticks(), 0),
                        );
                        covered = s.value;
                    }
                    // Exact staircase: tick Δ of the piece first reaches
                    // values (value + k(Δ−1), value + kΔ].
                    let end_tick = (seg_end.expect("validated bounded") - s.start).ticks();
                    for d in 1..=end_tick - 1 {
                        let top = s.value + k * d;
                        if top > covered {
                            push_normalized(
                                out_segs,
                                Segment::new(Time(covered + 1), s.start.ticks() + d, 0),
                            );
                            covered = top;
                        }
                    }
                }
            }
        }
        out.finish_write();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_at_step_function() {
        // Arrivals at 0, 10, 10, 25.
        let c = Curve::from_event_times(&[Time(0), Time(10), Time(10), Time(25)]);
        assert_eq!(c.inverse_at(0), Some(Time(0)));
        assert_eq!(c.inverse_at(1), Some(Time(0)));
        assert_eq!(c.inverse_at(2), Some(Time(10)));
        assert_eq!(c.inverse_at(3), Some(Time(10)));
        assert_eq!(c.inverse_at(4), Some(Time(25)));
        assert_eq!(c.inverse_at(5), None);
    }

    #[test]
    fn inverse_at_sloped_curve() {
        // f(t) = 0 on [0,5), then slope 2.
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 0, 2),
        ]);
        assert_eq!(c.inverse_at(1), Some(Time(6))); // f(6)=2 ≥ 1, f(5)=0
        assert_eq!(c.inverse_at(2), Some(Time(6)));
        assert_eq!(c.inverse_at(3), Some(Time(7)));
    }

    #[test]
    fn inverse_at_skips_plateaus() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(3), 3, 0),
            Segment::new(Time(8), 3, 1),
        ]);
        assert_eq!(c.inverse_at(3), Some(Time(3)));
        assert_eq!(c.inverse_at(4), Some(Time(9)));
    }

    #[test]
    fn sup_on_finds_piece_maxima() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(5), 0, 0),
        ]);
        assert_eq!(c.sup_on(Time(10)), 4); // max of rising piece at t=4
        assert_eq!(c.sup_on(Time(3)), 3);
    }

    /// Galois connection: g(t) ≥ y ⇔ g⁻¹(y) ≤ t, checked pointwise.
    fn check_galois(c: &Curve, horizon: i64, ymax: i64) {
        for y in 0..=ymax {
            let inv = c.inverse_at(y);
            for t in 0..=horizon {
                let reached = c.eval(Time(t)) >= y;
                let inv_le = inv.is_some_and(|it| it <= Time(t));
                assert_eq!(reached, inv_le, "y={y} t={t} inv={inv:?} for {c}");
            }
        }
    }

    #[test]
    fn galois_connection_examples() {
        check_galois(&Curve::identity(), 12, 12);
        check_galois(
            &Curve::from_event_times(&[Time(1), Time(4), Time(4), Time(9)]),
            12,
            6,
        );
        check_galois(
            &Curve::from_segments(vec![
                Segment::new(Time(0), 0, 0),
                Segment::new(Time(2), 3, 1),
                Segment::new(Time(6), 7, 0),
            ]),
            12,
            10,
        );
    }

    /// inverse_curve agrees with inverse_at for every y in range.
    fn check_inverse_curve(c: &Curve, ymax: i64) {
        let inv = c.inverse_curve().expect("invertible");
        for y in 0..=ymax {
            let expect = c.inverse_at(y).expect("y within range").ticks();
            assert_eq!(inv.eval(Time(y)), expect, "y={y} for {c}");
        }
    }

    #[test]
    fn inverse_curve_of_staircase() {
        let c = Curve::from_event_times(&[Time(0), Time(3), Time(3), Time(7)]);
        check_inverse_curve(&c, 4);
    }

    #[test]
    fn inverse_curve_of_slope_one() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(4), 0, 1),
        ]);
        check_inverse_curve(&c, 20);
    }

    #[test]
    fn inverse_curve_of_mixed_plateau_and_jump() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 2, 0),
            Segment::new(Time(5), 6, 1),
            Segment::new(Time(9), 15, 0),
        ]);
        check_inverse_curve(&c, 15);
        assert!(c.is_nondecreasing());
    }

    #[test]
    fn inverse_curve_with_steep_slope_staircase() {
        let c = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 3),
            Segment::new(Time(4), 12, 0),
        ]);
        check_inverse_curve(&c, 12);
    }

    #[test]
    fn inverse_curve_rejects_decreasing() {
        let c = Curve::affine(5, -1);
        assert!(matches!(
            c.inverse_curve(),
            Err(CurveError::NotMonotone { .. })
        ));
    }
}

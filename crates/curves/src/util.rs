//! Small exact-integer helpers shared across curve operations.

/// Floor division for `i64` with a strictly positive divisor.
#[inline]
pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_floor requires positive divisor");
    a.div_euclid(b)
}

/// Ceiling division for `i64` with a strictly positive divisor.
#[inline]
pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_ceil requires positive divisor");
    -((-a).div_euclid(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_and_ceil_division_with_negatives() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_floor(-6, 3), -2);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(6, 3), 2);
        assert_eq!(div_ceil(-6, 3), -2);
        assert_eq!(div_ceil(0, 5), 0);
        assert_eq!(div_floor(0, 5), 0);
    }
}

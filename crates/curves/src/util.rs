//! Small exact-integer helpers shared across curve operations.

/// Floor division for `i64` with a strictly positive divisor. Unit
/// divisors skip the hardware division — crossing-offset divisors are
/// slope differences, and the analysis chains run on staircases against
/// the unit-slope identity line, so `b == 1` is the overwhelmingly common
/// case.
#[inline]
pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_floor requires positive divisor");
    if b == 1 {
        return a;
    }
    a.div_euclid(b)
}

/// Ceiling division for `i64` with a strictly positive divisor. Same
/// unit-divisor fast path as [`div_floor`].
#[inline]
pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_ceil requires positive divisor");
    if b == 1 {
        return a;
    }
    -((-a).div_euclid(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_and_ceil_division_with_negatives() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_floor(-6, 3), -2);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(6, 3), 2);
        assert_eq!(div_ceil(-6, 3), -2);
        assert_eq!(div_ceil(0, 5), 0);
        assert_eq!(div_floor(0, 5), 0);
    }
}

//! The `_into` kernels must be drop-in replacements for their allocating
//! counterparts: for every input — including degenerate single-segment and
//! zero curves, empty event lists, and previously-dirty output buffers —
//! the curve written into `out` must equal the allocating result *exactly*
//! (`Curve` is `Eq`, so equality is segment-for-segment). Each test
//! pre-dirties `out` with an unrelated curve and reuses one output (and one
//! [`Scratch`]) across all the kernels it checks, which is precisely how
//! the fixpoint workspaces drive them.

use proptest::prelude::*;
use rta_curves::arena::Scratch;
use rta_curves::convolution::{convolve, convolve_convex, convolve_convex_into, convolve_into};
use rta_curves::envelope::{arrival_envelope, arrival_envelope_into};
use rta_curves::ops::{
    linear_combine, linear_combine_into, pointwise_max, pointwise_max_into, pointwise_min,
    pointwise_min_into,
};
use rta_curves::{Curve, Segment, Time};

/// Strategy: an arbitrary PWL curve (possibly negative, with jumps);
/// `rest` may be empty, so single-segment curves are covered.
fn arb_curve() -> impl Strategy<Value = Curve> {
    (
        -20i64..20,
        -3i64..4,
        prop::collection::vec((1i64..12, -20i64..20, -3i64..4), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, v, k) in rest {
                t += gap;
                segs.push(Segment::new(Time(t), v, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a nondecreasing curve with nonnegative values.
fn arb_cumulative() -> impl Strategy<Value = Curve> {
    (
        0i64..10,
        0i64..3,
        prop::collection::vec((1i64..10, 0i64..8, 0i64..3), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, jump, k) in rest {
                t += gap;
                let prev = *segs.last().unwrap();
                let base = prev.eval(Time(t));
                segs.push(Segment::new(Time(t), base + jump, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a service-shaped curve (nondecreasing, slopes in {0, 1}) —
/// the domain of `inverse_curve`.
fn arb_service_shape() -> impl Strategy<Value = Curve> {
    (
        0i64..10,
        0i64..2,
        prop::collection::vec((1i64..10, 0i64..8, 0i64..2), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, jump, k) in rest {
                t += gap;
                let prev = *segs.last().unwrap();
                let base = prev.eval(Time(t));
                segs.push(Segment::new(Time(t), base + jump, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a convex curve (nondecreasing slopes piece by piece).
fn arb_convex() -> impl Strategy<Value = Curve> {
    (0i64..5, 0i64..3, prop::collection::vec(1i64..8, 0..4)).prop_map(|(v0, base, lens)| {
        let mut segs = vec![Segment::new(Time(0), v0, base)];
        let mut t = 0i64;
        let mut v = v0;
        let mut k = base;
        for len in lens {
            t += len;
            v += k * len;
            k += 1;
            segs.push(Segment::new(Time(t), v, k));
        }
        Curve::from_segments(segs)
    })
}

/// A distinctive curve used to dirty `out` before every kernel call: the
/// kernels must fully overwrite whatever was there.
fn dirt() -> Curve {
    Curve::from_segments(vec![
        Segment::new(Time(0), 17, -2),
        Segment::new(Time(3), -9, 5),
        Segment::new(Time(11), 40, 0),
    ])
}

proptest! {
    #[test]
    fn reindexing_kernels_match_allocating(c in arb_curve(), d in 0i64..15,
                                           fill in -5i64..5, t0 in 0i64..30,
                                           h in 0i64..40) {
        // One shared output across every kernel: later calls must not be
        // contaminated by earlier contents.
        let mut out = dirt();
        c.shift_right_into(Time(d), fill, &mut out);
        prop_assert_eq!(&out, &c.shift_right(Time(d), fill));
        c.mask_before_into(Time(t0), fill, &mut out);
        prop_assert_eq!(&out, &c.mask_before(Time(t0), fill));
        c.truncate_after_into(Time(h), &mut out);
        prop_assert_eq!(&out, &c.truncate_after(Time(h)));
    }

    #[test]
    fn pointwise_unary_kernels_match_allocating(c in arb_curve(), k in -3i64..4,
                                                v in -6i64..7) {
        let mut out = dirt();
        c.neg_into(&mut out);
        prop_assert_eq!(&out, &c.neg());
        c.scale_into(k, &mut out);
        prop_assert_eq!(&out, &c.scale(k));
        c.add_const_into(v, &mut out);
        prop_assert_eq!(&out, &c.add_const(v));
        c.clamp_min_into(v, &mut out);
        prop_assert_eq!(&out, &c.clamp_min(v));
        c.clamp_max_into(v, &mut out);
        prop_assert_eq!(&out, &c.clamp_max(v));
        c.running_min_into(&mut out);
        prop_assert_eq!(&out, &c.running_min());
        c.running_max_into(&mut out);
        prop_assert_eq!(&out, &c.running_max());
    }

    #[test]
    fn binary_kernels_match_allocating(a in arb_curve(), b in arb_curve(),
                                       ca in -3i64..4, cb in -3i64..4) {
        let mut out = dirt();
        a.add_into(&b, &mut out);
        prop_assert_eq!(&out, &a.add(&b));
        a.sub_into(&b, &mut out);
        prop_assert_eq!(&out, &a.sub(&b));
        a.min_with_into(&b, &mut out);
        prop_assert_eq!(&out, &a.min_with(&b));
        a.max_with_into(&b, &mut out);
        prop_assert_eq!(&out, &a.max_with(&b));
        pointwise_min_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &pointwise_min(&a, &b));
        pointwise_max_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &pointwise_max(&a, &b));
        linear_combine_into(&a, ca, &b, cb, &mut out);
        prop_assert_eq!(&out, &linear_combine(&a, ca, &b, cb));
    }

    #[test]
    fn floor_div_into_matches_allocating(c in arb_cumulative(), tau in 1i64..7) {
        let mut out = dirt();
        c.floor_div_into(tau, Time(40), &mut out).unwrap();
        prop_assert_eq!(&out, &c.floor_div(tau, Time(40)).unwrap());
    }

    #[test]
    fn inverse_curve_into_matches_allocating(c in arb_service_shape()) {
        let mut out = dirt();
        c.inverse_curve_into(&mut out).unwrap();
        prop_assert_eq!(&out, &c.inverse_curve().unwrap());
    }

    #[test]
    fn event_time_kernels_match_allocating(
        times in prop::collection::vec(0i64..40, 0..12)
    ) {
        let mut ts: Vec<Time> = times.into_iter().map(Time).collect();
        ts.sort();
        let mut out = dirt();
        Curve::from_event_times_into(&ts, &mut out);
        prop_assert_eq!(&out, &Curve::from_event_times(&ts));
        arrival_envelope_into(&ts, &mut out);
        prop_assert_eq!(&out, &arrival_envelope(&ts));
    }

    #[test]
    fn convolve_kernels_match_allocating(f in arb_cumulative(), g in arb_cumulative(),
                                         cf in arb_convex(), cg in arb_convex()) {
        let mut scratch = Scratch::new();
        let mut out = dirt();
        convolve_into(&f, &g, Time(40), &mut scratch, &mut out);
        prop_assert_eq!(&out, &convolve(&f, &g, Time(40)));
        convolve_convex_into(&cf, &cg, &mut scratch, &mut out);
        prop_assert_eq!(&out, &convolve_convex(&cf, &cg));
        // Convex inputs take the fast path inside the general kernel too.
        convolve_into(&cf, &cg, Time(40), &mut scratch, &mut out);
        prop_assert_eq!(&out, &convolve(&cf, &cg, Time(40)));
    }
}

/// Degenerate inputs the strategies cannot hit deterministically: the zero
/// curve, constants, empty event lists, and a bounded slope-2 staircase
/// inverse.
#[test]
fn degenerate_inputs_match_allocating() {
    let zero = Curve::zero();
    let konst = Curve::constant(-4);
    let mut out = dirt();

    zero.shift_right_into(Time(5), 3, &mut out);
    assert_eq!(out, zero.shift_right(Time(5), 3));
    zero.add_into(&konst, &mut out);
    assert_eq!(out, zero.add(&konst));
    konst.running_min_into(&mut out);
    assert_eq!(out, konst.running_min());
    zero.floor_div_into(3, Time(20), &mut out).unwrap();
    assert_eq!(out, zero.floor_div(3, Time(20)).unwrap());
    zero.inverse_curve_into(&mut out).unwrap();
    assert_eq!(out, zero.inverse_curve().unwrap());

    Curve::from_event_times_into(&[], &mut out);
    assert_eq!(out, Curve::from_event_times(&[]));
    arrival_envelope_into(&[], &mut out);
    assert_eq!(out, arrival_envelope(&[]));

    let mut scratch = Scratch::new();
    convolve_into(&zero, &zero, Time(10), &mut scratch, &mut out);
    assert_eq!(out, convolve(&zero, &zero, Time(10)));

    // Slope ≥ 2 on a bounded piece: the staircase expansion.
    let stair = Curve::from_segments(vec![
        Segment::new(Time(0), 0, 2),
        Segment::new(Time(4), 8, 1),
    ]);
    stair.inverse_curve_into(&mut out).unwrap();
    assert_eq!(out, stair.inverse_curve().unwrap());
}

/// Fallible kernels must leave `out` untouched on error, so a workspace
/// slot never ends up holding a half-written curve.
#[test]
fn errors_leave_out_untouched() {
    let decreasing = Curve::from_segments(vec![Segment::new(Time(0), 3, -1)]);
    let negative = Curve::from_segments(vec![Segment::new(Time(0), -2, 1)]);
    let unbounded_steep = Curve::from_segments(vec![Segment::new(Time(0), 0, 3)]);

    let mut out = dirt();
    assert!(decreasing.floor_div_into(2, Time(20), &mut out).is_err());
    assert_eq!(out, dirt());
    assert!(negative.floor_div_into(2, Time(20), &mut out).is_err());
    assert_eq!(out, dirt());
    assert!(decreasing.inverse_curve_into(&mut out).is_err());
    assert_eq!(out, dirt());
    assert!(negative.inverse_curve_into(&mut out).is_err());
    assert_eq!(out, dirt());
    assert!(unbounded_steep.inverse_curve_into(&mut out).is_err());
    assert_eq!(out, dirt());
    // The error paths mirror the allocating counterparts.
    assert!(decreasing.floor_div(2, Time(20)).is_err());
    assert!(unbounded_steep.inverse_curve().is_err());
}

/// One `Scratch` and one output driven through many dissimilar inputs in
/// sequence — the arena-reuse pattern of the fixpoint workspaces. Buffer
/// capacity carried over from a large input must never leak into the
/// result of a small one.
#[test]
fn shared_scratch_and_out_survive_reuse() {
    let mut scratch = Scratch::new();
    let mut out = Curve::zero();
    let mut inputs: Vec<Curve> = Vec::new();
    // A deterministic family of increasingly spiky cumulative curves.
    for i in 0..20i64 {
        let mut segs = vec![Segment::new(Time(0), i % 4, i % 3)];
        for j in 1..=(i % 6) {
            let t = j * (1 + i % 3);
            let base = segs.last().unwrap().eval(Time(t));
            segs.push(Segment::new(Time(t), base + j + i % 5, (i + j) % 3));
        }
        inputs.push(Curve::from_segments(segs));
    }
    for (i, f) in inputs.iter().enumerate() {
        let g = &inputs[(i * 7 + 3) % inputs.len()];
        convolve_into(f, g, Time(30), &mut scratch, &mut out);
        assert_eq!(out, convolve(f, g, Time(30)), "convolve #{i}");
        f.add_into(g, &mut out);
        assert_eq!(out, f.add(g), "add #{i}");
        f.running_max_into(&mut out);
        assert_eq!(out, f.running_max(), "running_max #{i}");
        f.floor_div_into(1 + (i as i64 % 5), Time(30), &mut out)
            .unwrap();
        assert_eq!(
            out,
            f.floor_div(1 + (i as i64 % 5), Time(30)).unwrap(),
            "floor_div #{i}"
        );
    }
}

//! The structure-of-arrays kernels must be drop-in replacements for the
//! `Curve` (array-of-structs) kernels they shadow: for every input —
//! including degenerate single-segment and zero curves and previously-dirty
//! output buffers — converting to [`SoaCurve`], running the SoA kernel and
//! converting back must equal the AoS result *exactly* (`Curve` is `Eq`,
//! so equality is segment-for-segment). The AoS kernels are the oracles;
//! `tests/into_kernels.rs` pins them to the allocating reference in turn.
//! Every test pre-dirties its SoA outputs and reuses them across kernels,
//! which is precisely how the arena-backed workspaces drive them.

use proptest::prelude::*;
use rta_curves::arena::Scratch;
use rta_curves::convolution::{
    convolve_decomposed_into, convolve_decomposed_reference, min_plus_convolve_lattice,
};
use rta_curves::ops::{linear_combine, pointwise_max, pointwise_min};
use rta_curves::soa::{
    convolve_convex_into, linear_combine_into, linear_combine_line_into, pointwise_max_into,
    pointwise_min_into, sum_many_into,
};
use rta_curves::{Curve, CurveCursor, Segment, SoaCursor, SoaCurve, Time};

/// Strategy: an arbitrary PWL curve (possibly negative, with jumps);
/// `rest` may be empty, so single-segment curves are covered.
fn arb_curve() -> impl Strategy<Value = Curve> {
    (
        -20i64..20,
        -3i64..4,
        prop::collection::vec((1i64..12, -20i64..20, -3i64..4), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, v, k) in rest {
                t += gap;
                segs.push(Segment::new(Time(t), v, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a nondecreasing curve with nonnegative values.
fn arb_cumulative() -> impl Strategy<Value = Curve> {
    (
        0i64..10,
        0i64..3,
        prop::collection::vec((1i64..10, 0i64..8, 0i64..3), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, jump, k) in rest {
                t += gap;
                let prev = *segs.last().unwrap();
                let base = prev.eval(Time(t));
                segs.push(Segment::new(Time(t), base + jump, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a convex curve (nondecreasing slopes piece by piece).
fn arb_convex() -> impl Strategy<Value = Curve> {
    (0i64..5, 0i64..3, prop::collection::vec(1i64..8, 0..4)).prop_map(|(v0, base, lens)| {
        let mut segs = vec![Segment::new(Time(0), v0, base)];
        let mut t = 0i64;
        let mut v = v0;
        let mut k = base;
        for len in lens {
            t += len;
            v += k * len;
            k += 1;
            segs.push(Segment::new(Time(t), v, k));
        }
        Curve::from_segments(segs)
    })
}

/// Strategy: a long many-piece curve with values in a narrow band, so
/// extremum merges switch winners often and winner pre-scans see both
/// early failures and full-length successes.
fn arb_wide_curve() -> impl Strategy<Value = Curve> {
    (
        -4i64..4,
        -2i64..3,
        prop::collection::vec((1i64..5, -4i64..4, -2i64..3), 8..40),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, v, k) in rest {
                t += gap;
                segs.push(Segment::new(Time(t), v, k));
            }
            Curve::from_segments(segs)
        })
}

/// A distinctive curve used to dirty outputs before every kernel call: the
/// kernels must fully overwrite whatever was there.
fn dirt() -> Curve {
    Curve::from_segments(vec![
        Segment::new(Time(0), 17, -2),
        Segment::new(Time(3), -9, 5),
        Segment::new(Time(11), 40, 0),
    ])
}

/// A pre-dirtied SoA buffer.
fn soa_dirt() -> SoaCurve {
    SoaCurve::from_curve(&dirt())
}

/// Round-trip an SoA result back to a `Curve` through a dirty output.
fn back(soa: &SoaCurve) -> Curve {
    let mut out = dirt();
    soa.write_to_curve(&mut out);
    out
}

proptest! {
    #[test]
    fn roundtrip_preserves_curves_exactly(c in arb_curve()) {
        let soa = SoaCurve::from_curve(&c);
        prop_assert_eq!(&soa.to_curve(), &c);
        prop_assert_eq!(&back(&soa), &c);
        // `copy_from_curve` into a dirty buffer must match `from_curve`.
        let mut reused = soa_dirt();
        reused.copy_from_curve(&c);
        prop_assert_eq!(&back(&reused), &c);
        // Classification predicates agree with the AoS curve.
        prop_assert_eq!(soa.is_nondecreasing(), c.is_nondecreasing());
        prop_assert_eq!(soa.first_decrease(), c.first_decrease());
        prop_assert_eq!(soa.is_continuous(), c.is_continuous());
    }

    #[test]
    fn unary_kernels_match_aos(c in arb_curve(), k in -3i64..4, v in -6i64..7,
                               reindex in (0i64..15, -5i64..5, 0i64..30, 0i64..40)) {
        let (d, fill, t0, h) = reindex;
        let soa = SoaCurve::from_curve(&c);
        // One shared dirty output across every kernel: later calls must not
        // be contaminated by earlier contents.
        let mut out = soa_dirt();
        soa.neg_into(&mut out);
        prop_assert_eq!(&back(&out), &c.neg());
        soa.scale_into(k, &mut out);
        prop_assert_eq!(&back(&out), &c.scale(k));
        soa.add_const_into(v, &mut out);
        prop_assert_eq!(&back(&out), &c.add_const(v));
        soa.clamp_min_into(v, &mut out);
        prop_assert_eq!(&back(&out), &c.clamp_min(v));
        soa.clamp_max_into(v, &mut out);
        prop_assert_eq!(&back(&out), &c.clamp_max(v));
        soa.running_min_into(&mut out);
        prop_assert_eq!(&back(&out), &c.running_min());
        soa.running_max_into(&mut out);
        prop_assert_eq!(&back(&out), &c.running_max());
        soa.shift_right_into(Time(d), fill, &mut out);
        prop_assert_eq!(&back(&out), &c.shift_right(Time(d), fill));
        soa.mask_before_into(Time(t0), fill, &mut out);
        prop_assert_eq!(&back(&out), &c.mask_before(Time(t0), fill));
        // In-place truncation against the AoS counterpart.
        let mut trunc = soa_dirt();
        trunc.copy_from_curve(&c);
        trunc.truncate_after(Time(h));
        prop_assert_eq!(&back(&trunc), &c.truncate_after(Time(h)));
    }

    #[test]
    fn binary_kernels_match_aos(a in arb_curve(), b in arb_curve(),
                                ca in -3i64..4, cb in -3i64..4) {
        let (sa, sb) = (SoaCurve::from_curve(&a), SoaCurve::from_curve(&b));
        let mut out = soa_dirt();
        sa.add_into(&sb, &mut out);
        prop_assert_eq!(&back(&out), &a.add(&b));
        sa.sub_into(&sb, &mut out);
        prop_assert_eq!(&back(&out), &a.sub(&b));
        sa.min_with_into(&sb, &mut out);
        prop_assert_eq!(&back(&out), &a.min_with(&b));
        sa.max_with_into(&sb, &mut out);
        prop_assert_eq!(&back(&out), &a.max_with(&b));
        pointwise_min_into(&sa, &sb, &mut out);
        prop_assert_eq!(&back(&out), &pointwise_min(&a, &b));
        pointwise_max_into(&sa, &sb, &mut out);
        prop_assert_eq!(&back(&out), &pointwise_max(&a, &b));
        linear_combine_into(&sa, ca, &sb, cb, &mut out);
        prop_assert_eq!(&back(&out), &linear_combine(&a, ca, &b, cb));
    }

    #[test]
    fn fused_line_combine_matches_staged_aos(a in arb_curve(), b in arb_curve(),
                                             ca in -3i64..4, cb in -3i64..4,
                                             lv in -9i64..10, lm in -3i64..4) {
        // `ca·a + cb·b + (lv + lm·t)` in one pass must equal staging the
        // affine term as a separate AoS add.
        let (sa, sb) = (SoaCurve::from_curve(&a), SoaCurve::from_curve(&b));
        let mut out = soa_dirt();
        linear_combine_line_into(&sa, ca, &sb, cb, lv, lm, &mut out);
        let line = Curve::from_segments(vec![Segment::new(Time(0), lv, lm)]);
        prop_assert_eq!(&back(&out), &linear_combine(&a, ca, &b, cb).add(&line));
    }

    #[test]
    fn sum_many_matches_folded_aos(curves in prop::collection::vec(arb_curve(), 0..20)) {
        // Sized to cross the k-way merge fan-out (16), so the tree-reduce
        // cold path is exercised alongside the fixed-state merge.
        let soa: Vec<SoaCurve> = curves.iter().map(SoaCurve::from_curve).collect();
        let refs: Vec<&SoaCurve> = soa.iter().collect();
        let mut out = soa_dirt();
        sum_many_into(&refs, &mut out);
        let expected = curves
            .iter()
            .fold(Curve::zero(), |acc, c| acc.add(c));
        prop_assert_eq!(&back(&out), &expected);
    }

    #[test]
    fn wide_extremum_merges_match_aos(a in arb_wide_curve(), b in arb_wide_curve()) {
        // Long many-piece operands stress the winner pre-scans and the
        // two-phase merge seeding (prefix copy + divergence handoff) in a
        // way the short default strategy rarely does.
        let (sa, sb) = (SoaCurve::from_curve(&a), SoaCurve::from_curve(&b));
        let mut out = soa_dirt();
        pointwise_min_into(&sa, &sb, &mut out);
        prop_assert_eq!(&back(&out), &pointwise_min(&a, &b));
        pointwise_max_into(&sa, &sb, &mut out);
        prop_assert_eq!(&back(&out), &pointwise_max(&a, &b));
        sa.running_min_into(&mut out);
        prop_assert_eq!(&back(&out), &a.running_min());
        sa.running_max_into(&mut out);
        prop_assert_eq!(&back(&out), &a.running_max());
        linear_combine_into(&sa, 2, &sb, -1, &mut out);
        prop_assert_eq!(&back(&out), &linear_combine(&a, 2, &b, -1));
    }

    #[test]
    fn floor_div_matches_aos_including_errors(c in arb_cumulative(), bad in arb_curve(),
                                              tau in 1i64..7) {
        let soa = SoaCurve::from_curve(&c);
        let mut out = soa_dirt();
        soa.floor_div_into(tau, Time(40), &mut out).unwrap();
        prop_assert_eq!(&back(&out), &c.floor_div(tau, Time(40)).unwrap());
        // Error parity: the SoA kernel fails exactly when the AoS one does,
        // and leaves its output untouched when it fails.
        let sbad = SoaCurve::from_curve(&bad);
        let mut untouched = soa_dirt();
        let soa_res = sbad.floor_div_into(tau, Time(40), &mut untouched);
        let aos_res = bad.floor_div(tau, Time(40));
        prop_assert_eq!(soa_res.is_err(), aos_res.is_err());
        if soa_res.is_err() {
            prop_assert_eq!(&back(&untouched), &dirt());
        } else {
            prop_assert_eq!(&back(&untouched), &aos_res.unwrap());
        }
    }

    #[test]
    fn convex_convolution_matches_aos(cf in arb_convex(), cg in arb_convex()) {
        let (sf, sg) = (SoaCurve::from_curve(&cf), SoaCurve::from_curve(&cg));
        let mut scratch = Scratch::new();
        let mut out = soa_dirt();
        convolve_convex_into(&sf, &sg, &mut scratch, &mut out);
        prop_assert_eq!(&back(&out), &rta_curves::convolution::convolve_convex(&cf, &cg));
    }

    #[test]
    fn cursor_matches_aos_cursor(c in arb_cumulative(), ts in prop::collection::vec(0i64..60, 1..10),
                                 ys in prop::collection::vec(0i64..40, 1..6)) {
        // Cursors are monotone: both sides walked over the same ascending
        // time (resp. level) sequence must agree step for step.
        let soa = SoaCurve::from_curve(&c);
        let mut times: Vec<i64> = ts;
        times.sort_unstable();
        let mut aos_cur = CurveCursor::new(&c);
        let mut soa_cur = SoaCursor::new(&soa);
        for &t in &times {
            prop_assert_eq!(soa_cur.eval(Time(t)), aos_cur.eval(Time(t)), "t = {}", t);
        }
        let mut levels: Vec<i64> = ys;
        levels.sort_unstable();
        let mut aos_cur = CurveCursor::new(&c);
        let mut soa_cur = SoaCursor::new(&soa);
        for &y in &levels {
            prop_assert_eq!(soa_cur.inverse_at(y), aos_cur.inverse_at(y), "y = {}", y);
        }
    }

    #[test]
    fn decomposed_convolution_matches_reference_on_the_lattice(
        f in arb_cumulative(), g in arb_cumulative(), h in 1i64..50
    ) {
        // The SoA-backed decomposition is free to fold partials in any
        // order, so its normalized segment structure may differ from the
        // reference; the contract is value identity at every lattice tick.
        let mut scratch = Scratch::new();
        let mut out = dirt();
        convolve_decomposed_into(&f, &g, Time(h), &mut scratch, &mut out);
        let reference = convolve_decomposed_reference(&f, &g, Time(h));
        for t in 0..=h {
            prop_assert_eq!(out.eval(Time(t)), reference.eval(Time(t)), "t = {}", t);
        }
        // And the lattice oracle agrees wherever both are finite-from-zero.
        let lattice = min_plus_convolve_lattice(&f, &g, Time(h));
        for t in 0..=h {
            prop_assert_eq!(out.eval(Time(t)), lattice.eval(Time(t)), "lattice t = {}", t);
        }
    }
}

/// Degenerate inputs the strategies cannot hit deterministically: the zero
/// curve, constants, and affine reuse of one buffer.
#[test]
fn degenerate_inputs_match_aos() {
    let zero = Curve::zero();
    let konst = Curve::constant(-4);
    let (szero, skonst) = (SoaCurve::from_curve(&zero), SoaCurve::from_curve(&konst));
    let mut out = soa_dirt();

    szero.add_into(&skonst, &mut out);
    assert_eq!(back(&out), zero.add(&konst));
    skonst.running_min_into(&mut out);
    assert_eq!(back(&out), konst.running_min());
    szero.shift_right_into(Time(5), 3, &mut out);
    assert_eq!(back(&out), zero.shift_right(Time(5), 3));
    szero.floor_div_into(3, Time(20), &mut out).unwrap();
    assert_eq!(back(&out), zero.floor_div(3, Time(20)).unwrap());

    // `set_affine` reuses whatever buffer was there.
    out.set_affine(7, 2);
    assert_eq!(
        back(&out),
        Curve::from_segments(vec![Segment::new(Time(0), 7, 2)])
    );
    assert_eq!(SoaCurve::zero().to_curve(), Curve::zero());
}

/// One `Scratch` and a pair of SoA outputs driven through many dissimilar
/// inputs in sequence — the arena-reuse pattern of the analysis workspaces.
/// Buffer capacity carried over from a large input must never leak into the
/// result of a small one.
#[test]
fn shared_buffers_survive_reuse() {
    let mut scratch = Scratch::new();
    let mut out = SoaCurve::zero();
    let mut staging = SoaCurve::zero();
    let mut inputs: Vec<Curve> = Vec::new();
    for i in 0..20i64 {
        let mut segs = vec![Segment::new(Time(0), i % 4, i % 3)];
        for j in 1..=(i % 6) {
            let t = j * (1 + i % 3);
            let base = segs.last().unwrap().eval(Time(t));
            segs.push(Segment::new(Time(t), base + j + i % 5, (i + j) % 3));
        }
        inputs.push(Curve::from_segments(segs));
    }
    for (i, f) in inputs.iter().enumerate() {
        let g = &inputs[(i * 7 + 3) % inputs.len()];
        staging.copy_from_curve(f);
        let sg = SoaCurve::from_curve(g);
        staging.add_into(&sg, &mut out);
        assert_eq!(back(&out), f.add(g), "add #{i}");
        staging.max_with_into(&sg, &mut out);
        assert_eq!(back(&out), f.max_with(g), "max #{i}");
        staging.running_max_into(&mut out);
        assert_eq!(back(&out), f.running_max(), "running_max #{i}");
        staging
            .floor_div_into(1 + (i as i64 % 5), Time(30), &mut out)
            .unwrap();
        assert_eq!(
            back(&out),
            f.floor_div(1 + (i as i64 % 5), Time(30)).unwrap(),
            "floor_div #{i}"
        );
        let mut conv = dirt();
        convolve_decomposed_into(f, g, Time(30), &mut scratch, &mut conv);
        let reference = convolve_decomposed_reference(f, g, Time(30));
        for t in 0..=30 {
            assert_eq!(
                conv.eval(Time(t)),
                reference.eval(Time(t)),
                "conv #{i} t={t}"
            );
        }
    }
}

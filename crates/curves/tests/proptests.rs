//! Property-based tests for the curve algebra.
//!
//! Every operation is checked against a brute-force lattice evaluation on a
//! bounded horizon: the segment-walking algorithms must agree with the
//! definitionally-obvious per-tick computation at every integer tick.

use proptest::prelude::*;
use rta_curves::ops::{linear_combine, pointwise_max, pointwise_min};
use rta_curves::{Curve, Segment, Time};

const HORIZON: i64 = 60;

/// Strategy: an arbitrary PWL curve with small integer breakpoints, values
/// and slopes (possibly negative, possibly with jumps).
fn arb_curve() -> impl Strategy<Value = Curve> {
    (
        -20i64..20,
        -3i64..4,
        prop::collection::vec((1i64..12, -20i64..20, -3i64..4), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, v, k) in rest {
                t += gap;
                segs.push(Segment::new(Time(t), v, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a nondecreasing curve with nonnegative values (a cumulative
/// function such as an arrival, workload or service curve).
fn arb_cumulative() -> impl Strategy<Value = Curve> {
    (
        0i64..10,
        0i64..3,
        prop::collection::vec((1i64..10, 0i64..8, 0i64..3), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, jump, k) in rest {
                t += gap;
                let prev = *segs.last().unwrap();
                let base = prev.eval(Time(t));
                segs.push(Segment::new(Time(t), base + jump, k));
            }
            Curve::from_segments(segs)
        })
}

/// Strategy: a nondecreasing curve with slopes in {0, 1} — the shape of all
/// service and utilization functions. (Unbounded slope-≥2 tails have no
/// finite inverse representation and are rejected by `inverse_curve`.)
fn arb_service_shape() -> impl Strategy<Value = Curve> {
    (
        0i64..10,
        0i64..2,
        prop::collection::vec((1i64..10, 0i64..8, 0i64..2), 0..6),
    )
        .prop_map(|(v0, k0, rest)| {
            let mut segs = vec![Segment::new(Time(0), v0, k0)];
            let mut t = 0i64;
            for (gap, jump, k) in rest {
                t += gap;
                let prev = *segs.last().unwrap();
                let base = prev.eval(Time(t));
                segs.push(Segment::new(Time(t), base + jump, k));
            }
            Curve::from_segments(segs)
        })
}

fn lattice(c: &Curve) -> Vec<i64> {
    (0..=HORIZON).map(|t| c.eval(Time(t))).collect()
}

proptest! {
    #[test]
    fn linear_combine_matches_lattice(a in arb_curve(), b in arb_curve(),
                                      ca in -3i64..4, cb in -3i64..4) {
        let r = linear_combine(&a, ca, &b, cb);
        let (la, lb) = (lattice(&a), lattice(&b));
        for t in 0..=HORIZON as usize {
            prop_assert_eq!(r.eval(Time(t as i64)), ca * la[t] + cb * lb[t]);
        }
    }

    #[test]
    fn min_max_match_lattice(a in arb_curve(), b in arb_curve()) {
        let mn = pointwise_min(&a, &b);
        let mx = pointwise_max(&a, &b);
        let (la, lb) = (lattice(&a), lattice(&b));
        for t in 0..=HORIZON as usize {
            prop_assert_eq!(mn.eval(Time(t as i64)), la[t].min(lb[t]), "min at t={}", t);
            prop_assert_eq!(mx.eval(Time(t as i64)), la[t].max(lb[t]), "max at t={}", t);
        }
    }

    #[test]
    fn running_min_matches_lattice(a in arb_curve()) {
        let r = a.running_min();
        let mut best = i64::MAX;
        for (t, v) in lattice(&a).into_iter().enumerate() {
            best = best.min(v);
            prop_assert_eq!(r.eval(Time(t as i64)), best, "t={}", t);
        }
    }

    #[test]
    fn running_min_is_idempotent(a in arb_curve()) {
        let r = a.running_min();
        let rr = r.running_min();
        for t in 0..=HORIZON {
            prop_assert_eq!(r.eval(Time(t)), rr.eval(Time(t)));
        }
    }

    #[test]
    fn galois_connection(c in arb_cumulative(), y in 0i64..40) {
        // g(t) ≥ y  ⇔  g⁻¹(y) ≤ t  for nondecreasing g.
        let inv = c.inverse_at(y);
        for t in 0..=HORIZON {
            let reached = c.eval(Time(t)) >= y;
            let inv_le = inv.is_some_and(|i| i <= Time(t));
            prop_assert_eq!(reached, inv_le, "y={} t={}", y, t);
        }
    }

    #[test]
    fn inverse_curve_agrees_with_inverse_at(c in arb_service_shape()) {
        let sup = c.sup_on(Time(HORIZON));
        let inv = c.inverse_curve().unwrap();
        for y in 0..=sup {
            let expect = c.inverse_at(y).unwrap();
            prop_assert_eq!(Time(inv.eval(Time(y))), expect, "y={}", y);
        }
    }

    #[test]
    fn compose_matches_lattice(f in arb_curve(), g in arb_cumulative()) {
        let h = rta_curves::compose::compose(&f, &g).unwrap();
        for t in 0..=HORIZON {
            let expect = f.eval(Time(g.eval(Time(t))));
            prop_assert_eq!(h.eval(Time(t)), expect, "t={}", t);
        }
    }

    #[test]
    fn floor_div_matches_lattice(c in arb_cumulative(), tau in 1i64..7) {
        let d = c.floor_div(tau, Time(HORIZON)).unwrap();
        for t in 0..=HORIZON {
            prop_assert_eq!(
                d.eval(Time(t)),
                c.eval(Time(t)).div_euclid(tau),
                "t={} tau={}", t, tau
            );
        }
    }

    #[test]
    fn shift_right_matches_lattice(c in arb_curve(), d in 0i64..15, fill in -5i64..5) {
        let s = c.shift_right(Time(d), fill);
        for t in 0..=HORIZON {
            let expect = if t < d { fill } else { c.eval(Time(t - d)) };
            prop_assert_eq!(s.eval(Time(t)), expect, "t={}", t);
        }
    }

    #[test]
    fn truncate_agrees_before_horizon(c in arb_curve(), h in 0i64..HORIZON) {
        let tr = c.truncate_after(Time(h));
        for t in 0..=h {
            prop_assert_eq!(tr.eval(Time(t)), c.eval(Time(t)));
        }
    }

    #[test]
    fn mask_before_matches_lattice(c in arb_curve(), t0 in 0i64..30, fill in -5i64..5) {
        let m = c.mask_before(Time(t0), fill);
        for t in 0..=HORIZON {
            let expect = if t < t0 { fill } else { c.eval(Time(t)) };
            prop_assert_eq!(m.eval(Time(t)), expect, "t={}", t);
        }
    }

    #[test]
    fn monotone_ops_preserve_monotonicity(a in arb_cumulative(), b in arb_cumulative()) {
        prop_assert!(a.add(&b).is_nondecreasing());
        prop_assert!(pointwise_min(&a, &b).is_nondecreasing());
        prop_assert!(pointwise_max(&a, &b).is_nondecreasing());
        prop_assert!(a.running_min().neg().is_nondecreasing());
        prop_assert!(a.running_max().is_nondecreasing());
    }

    #[test]
    fn arrival_envelope_dominates_all_windows(
        times in prop::collection::vec(0i64..50, 0..10)
    ) {
        let mut ts: Vec<Time> = times.into_iter().map(Time).collect();
        ts.sort();
        let env = rta_curves::envelope::arrival_envelope(&ts);
        prop_assert!(rta_curves::envelope::is_envelope_of(&env, &ts));
        prop_assert!(env.is_nondecreasing());
        // Total count is reached at the full span.
        if let (Some(&first), Some(&last)) = (ts.first(), ts.last()) {
            prop_assert_eq!(env.eval(last - first), ts.len() as i64);
        }
    }

    #[test]
    fn eval_left_and_jumps_consistent(c in arb_curve()) {
        for t in 1..=HORIZON {
            let t = Time(t);
            prop_assert_eq!(c.eval(t) - c.eval_left(t), c.jump_at(t));
        }
        // Continuous curves report no jumps anywhere.
        if c.is_continuous() {
            for t in 1..=HORIZON {
                prop_assert_eq!(c.jump_at(Time(t)), 0);
            }
        }
    }

    #[test]
    fn counting_roundtrip(times in prop::collection::vec(0i64..40, 0..12)) {
        let mut ts: Vec<Time> = times.into_iter().map(Time).collect();
        ts.sort();
        let c = Curve::from_event_times(&ts);
        prop_assert_eq!(c.to_event_times(), ts.clone());
        // Event times are the pseudo-inverse at each count.
        for (i, &t) in ts.iter().enumerate() {
            let m = i as i64 + 1;
            let et = c.event_time(m).unwrap();
            prop_assert!(et <= t);
            prop_assert_eq!(c.eval(et), c.eval(t).min(c.eval(et).max(m)));
        }
    }

    #[test]
    fn convex_convolution_matches_oracle(
        lens in prop::collection::vec(1i64..8, 0..4),
        slopes_base in 0i64..3,
        lens2 in prop::collection::vec(1i64..8, 0..4),
        slopes_base2 in 0i64..3,
        v0 in 0i64..5,
        w0 in 0i64..5,
    ) {
        // Build convex curves: increasing slopes piece by piece.
        fn build(v0: i64, base: i64, lens: &[i64]) -> Curve {
            let mut segs = vec![Segment::new(Time(0), v0, base)];
            let mut t = 0i64;
            let mut v = v0;
            let mut k = base;
            for &len in lens {
                t += len;
                v += k * len;
                k += 1;
                segs.push(Segment::new(Time(t), v, k));
            }
            Curve::from_segments(segs)
        }
        let f = build(v0, slopes_base, &lens);
        let g = build(w0, slopes_base2, &lens2);
        prop_assert!(f.is_convex() && g.is_convex());
        let fast = rta_curves::convolution::convolve_convex(&f, &g);
        let slow = rta_curves::convolution::min_plus_convolve_lattice(&f, &g, Time(40));
        for t in 0..=40 {
            prop_assert_eq!(fast.eval(Time(t)), slow.eval(Time(t)), "t={}", t);
        }
    }
}

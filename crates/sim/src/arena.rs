//! Flat instance storage for the event core.
//!
//! Every live instance (one hop of one job instance working through its
//! chain) is a slot in a growable arena, addressed by a 4-byte
//! [`InstanceId`]. Events in the schedule carry ids, not instance structs,
//! so moving an instance between the schedule, a ready queue and a
//! processor is an integer copy — no per-event allocation, no hashing.
//! A chain advancing to its next hop mutates its slot in place, so the
//! arena holds exactly one slot per *released job instance*, not per hop.

use rta_curves::Time;
use rta_model::{JobId, SubjobRef};

/// Index of an instance slot in the [`InstanceArena`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct InstanceId(pub(crate) u32);

/// One live instance: which subjob it currently executes, how much work
/// remains, and the bookkeeping the schedulers tie-break on.
#[derive(Clone, Debug)]
pub(crate) struct InstanceState {
    /// The job this instance belongs to.
    pub job: JobId,
    /// 1-based instance index within the job.
    pub m: u32,
    /// Current hop (0-based subjob index along the chain).
    pub hop: u32,
    /// Execution time still owed at the current hop.
    pub remaining: Time,
    /// When the instance was released at the current hop.
    pub hop_release: Time,
    /// Global release sequence number — unique per (instance, hop),
    /// reassigned when the chain advances; preemption keeps it.
    pub seq: u64,
    /// First dispatch time at the current hop (`Time(-1)` until started).
    #[cfg(feature = "trace")]
    pub started: Time,
}

impl InstanceState {
    /// The subjob this instance currently executes.
    pub fn subjob(&self) -> SubjobRef {
        SubjobRef {
            job: self.job,
            index: self.hop as usize,
        }
    }
}

/// The flat slot store. Slots are never freed individually — a simulation
/// run pushes every released instance once and [`InstanceArena::clear`]
/// recycles the whole allocation for the next run (the batch driver's
/// per-thread workspaces rely on this).
#[derive(Default)]
pub(crate) struct InstanceArena {
    slots: Vec<InstanceState>,
}

impl InstanceArena {
    /// Append a slot, returning its id.
    pub fn push(&mut self, inst: InstanceState) -> InstanceId {
        let id = InstanceId(u32::try_from(self.slots.len()).expect("more than u32::MAX instances"));
        self.slots.push(inst);
        id
    }

    /// Drop all slots, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

impl std::ops::Index<InstanceId> for InstanceArena {
    type Output = InstanceState;
    fn index(&self, id: InstanceId) -> &InstanceState {
        &self.slots[id.0 as usize]
    }
}

impl std::ops::IndexMut<InstanceId> for InstanceArena {
    fn index_mut(&mut self, id: InstanceId) -> &mut InstanceState {
        &mut self.slots[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(seq: u64) -> InstanceState {
        InstanceState {
            job: JobId(0),
            m: 1,
            hop: 0,
            remaining: Time(5),
            hop_release: Time::ZERO,
            seq,
            #[cfg(feature = "trace")]
            started: Time(-1),
        }
    }

    #[test]
    fn ids_index_their_slots() {
        let mut arena = InstanceArena::default();
        let a = arena.push(inst(0));
        let b = arena.push(inst(1));
        assert_eq!(arena[a].seq, 0);
        assert_eq!(arena[b].seq, 1);
        arena[a].hop = 2;
        assert_eq!(arena[a].subjob().index, 2);
        arena.clear();
        let c = arena.push(inst(7));
        assert_eq!(c, InstanceId(0));
        assert_eq!(arena[c].seq, 7);
    }
}

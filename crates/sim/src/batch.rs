//! Monte-Carlo replication of job-shop arrival draws.
//!
//! Replicates a [`ShopConfig`] across many independent draws of the Eq. 26
//! workload generator, simulating each draw and (optionally) analyzing it,
//! to produce per-job empirical response-time distributions and the
//! observed-vs-analytic tightness gap — the measurement instrument behind
//! the EXPERIMENTS.md bound-tightness studies.
//!
//! Draws are distributed over the `rta-core` worker pool via
//! [`pool_map_stateful`]; each worker owns a ([`ShopSampler`],
//! [`SimEngine`], [`SimResult`]) workspace, so the per-draw cost is the
//! event loop itself, not setup allocations. Draw `i` is generated from
//! `StdRng::seed_from_u64(base_seed + i)` — the result depends only on the
//! draw index, never on which thread ran it or how many threads exist, and
//! `tests/determinism.rs` pins that bit for bit.

use crate::engine::{SimConfig, SimEngine};
use crate::result::SimResult;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::par::pool_map_stateful;
use rta_core::{analyze_bounds, AnalysisConfig};
use rta_curves::Time;
use rta_model::jobshop::{ShopConfig, ShopSampler};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::JobId;

/// Replication parameters.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Number of independent workload draws.
    pub draws: usize,
    /// Draw `i` uses seed `base_seed + i`.
    pub base_seed: u64,
}

/// Empirical statistics of one job across all draws.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct JobStats {
    /// Observed end-to-end response times of every completed instance in
    /// every draw, sorted ascending.
    pub samples: Vec<Time>,
    /// Instances released but not completed by the horizon.
    pub incomplete: usize,
    /// Completed instances whose response exceeded the analytic bound
    /// (only counted when bounds were computed and available).
    pub violations: usize,
    /// Instances measured against a bound.
    pub bounded_samples: usize,
    /// `Σ response/bound` over `bounded_samples` (0 when none) — divide to
    /// get the mean tightness ratio.
    pub ratio_sum: f64,
    /// Worst observed `response/bound` (0 when no bounded samples).
    pub worst_ratio: f64,
}

impl JobStats {
    /// The `q`-quantile (0 ≤ q ≤ 1, nearest-rank) of the response samples.
    pub fn quantile(&self, q: f64) -> Option<Time> {
        if self.samples.is_empty() {
            return None;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Mean observed/bound tightness ratio, if any instance had a bound.
    pub fn mean_ratio(&self) -> Option<f64> {
        (self.bounded_samples > 0).then(|| self.ratio_sum / self.bounded_samples as f64)
    }
}

/// Outcome of one replication run.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// Draws simulated.
    pub draws: usize,
    /// Draws where the analytic bounds could not be computed (bounds mode
    /// only; their instances still contribute response samples).
    pub analysis_failures: usize,
    /// Per-job statistics, indexed by [`JobId`].
    pub jobs: Vec<JobStats>,
}

/// One draw's contribution, in draw-index order.
struct DrawOutcome {
    /// Per job: (responses, incomplete, bound).
    per_job: Vec<(Vec<Time>, usize, Option<Time>)>,
    analysis_failed: bool,
}

/// Simulate `cfg.draws` independent draws of `shop`, collecting empirical
/// response-time distributions only (no analysis — the fast path the
/// throughput row tracks).
pub fn replicate(shop: &ShopConfig, cfg: &BatchConfig) -> BatchReport {
    run(shop, cfg, false)
}

/// Like [`replicate`], but also run the Theorem-4 bounds analysis on every
/// draw and measure the observed-vs-analytic tightness gap per job.
pub fn replicate_with_bounds(shop: &ShopConfig, cfg: &BatchConfig) -> BatchReport {
    run(shop, cfg, true)
}

fn run(shop: &ShopConfig, cfg: &BatchConfig, with_bounds: bool) -> BatchReport {
    let n_jobs = shop.n_jobs;
    let shop = shop.clone();
    let base_seed = cfg.base_seed;
    let outcomes: Vec<DrawOutcome> = pool_map_stateful(
        cfg.draws,
        move || {
            (
                ShopSampler::new(shop.clone()).expect("valid shop shape"),
                SimEngine::new(),
                SimResult::default(),
            )
        },
        move |(sampler, engine, result), i| {
            let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
            let sys = sampler.sample(&mut rng).expect("valid draw");
            if sys
                .processors()
                .iter()
                .any(|p| p.scheduler.uses_priorities())
            {
                assign_priorities(sys, PriorityPolicy::RelativeDeadlineMonotonic)
                    .expect("priority assignment");
            }
            let acfg = AnalysisConfig::default();
            let (window, horizon) = acfg.resolve(sys);
            let bounds = if with_bounds {
                Some(analyze_bounds(sys, &acfg))
            } else {
                None
            };
            engine.simulate_into(sys, &SimConfig { window, horizon }, result);

            let analysis_failed = matches!(bounds, Some(Err(_)));
            let per_job = (0..sys.jobs().len())
                .map(|k| {
                    let job = JobId(k);
                    let mut responses = Vec::new();
                    let mut incomplete = 0usize;
                    for m in 1..=result.instances(job) {
                        match result.response(job, m) {
                            Some(r) => responses.push(r),
                            None => incomplete += 1,
                        }
                    }
                    let bound = bounds
                        .as_ref()
                        .and_then(|b| b.as_ref().ok())
                        .and_then(|rep| rep.jobs[k].e2e_bound);
                    (responses, incomplete, bound)
                })
                .collect();
            DrawOutcome {
                per_job,
                analysis_failed,
            }
        },
    );

    let mut jobs = vec![JobStats::default(); n_jobs];
    let mut analysis_failures = 0usize;
    for outcome in &outcomes {
        if outcome.analysis_failed {
            analysis_failures += 1;
        }
        for (k, (responses, incomplete, bound)) in outcome.per_job.iter().enumerate() {
            let stats = &mut jobs[k];
            stats.incomplete += incomplete;
            for &r in responses {
                stats.samples.push(r);
                if let Some(b) = bound {
                    let ratio = r.ticks() as f64 / b.ticks().max(1) as f64;
                    stats.bounded_samples += 1;
                    stats.ratio_sum += ratio;
                    if ratio > stats.worst_ratio {
                        stats.worst_ratio = ratio;
                    }
                    if r > *b {
                        stats.violations += 1;
                    }
                }
            }
        }
    }
    for stats in &mut jobs {
        stats.samples.sort_unstable();
    }
    BatchReport {
        draws: cfg.draws,
        analysis_failures,
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::distributions::Dist;
    use rta_model::jobshop::ShopArrivals;
    use rta_model::SchedulerKind;

    fn small_shop() -> ShopConfig {
        ShopConfig {
            stages: 2,
            procs_per_stage: 2,
            n_jobs: 4,
            scheduler: SchedulerKind::Spp,
            utilization: 0.5,
            arrivals: ShopArrivals::Bursty {
                deadline: Dist::Exponential { mean: 6.0 },
            },
            x_min: 0.25,
            ticks_per_unit: 100,
        }
    }

    #[test]
    fn collects_samples_per_job() {
        let report = replicate(
            &small_shop(),
            &BatchConfig {
                draws: 10,
                base_seed: 42,
            },
        );
        assert_eq!(report.draws, 10);
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.analysis_failures, 0);
        for stats in &report.jobs {
            assert!(!stats.samples.is_empty());
            assert!(stats.samples.windows(2).all(|w| w[0] <= w[1]), "sorted");
            assert_eq!(stats.bounded_samples, 0, "no bounds requested");
            assert_eq!(stats.quantile(1.0), stats.samples.last().copied());
        }
    }

    #[test]
    fn bounds_mode_measures_tightness() {
        let report = replicate_with_bounds(
            &small_shop(),
            &BatchConfig {
                draws: 5,
                base_seed: 7,
            },
        );
        for stats in &report.jobs {
            assert!(stats.bounded_samples > 0, "bounds computed");
            let mean = stats.mean_ratio().unwrap();
            assert!(mean > 0.0 && mean <= stats.worst_ratio.max(1.0) + 1e-9);
            // SPP bounds are sound: no observed response may exceed them.
            assert_eq!(stats.violations, 0);
            assert!(stats.worst_ratio <= 1.0 + 1e-9);
        }
    }
}

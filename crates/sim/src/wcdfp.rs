//! Verdict-only Monte-Carlo estimation of deadline-failure probability.
//!
//! Where [`crate::batch`] materializes a full [`crate::SimResult`] per
//! draw (every completion time, every sample), this module runs the same
//! event loop behind a [`VerdictSink`] observer that tracks exactly one
//! bit per instance — *did it miss its deadline* — plus (optionally)
//! streaming P² response sketches, and folds each draw into a
//! [`rta_core::wcdfp::WcdfpAccum`]. No per-draw allocation, no stored
//! draws: with [`WcdfpConfig::sketches`] off (the verdict-only
//! configuration), the cost of a draw is the event loop itself, which is
//! what lets the estimator sit in the admission path.
//!
//! Draw `i` is generated from `StdRng::seed_from_u64(base_seed + i)`
//! exactly like the batch path, so results depend only on the draw index,
//! never on thread count or scheduling. Workers accumulate privately via
//! [`rta_core::par::pool_fold_states`] and the final merge is over integer
//! counters — bit-identical to a sequential fold (pinned in
//! `tests/wcdfp.rs`).
//!
//! Variance reduction hooks into the **generator**, not the simulator:
//! [`Mode::Antithetic`] runs each unit as a pair (draw `A` from the seeded
//! RNG, draw `B` from the same RNG with every word complemented, so every
//! derived uniform is reflected `u → 1 − u`), and [`Mode::Stratified`]
//! confines the *first* uniform of draw `i` — job 1's burst rate in the
//! shop model — to stratum `i mod K` of the unit interval. Both keep the
//! draw-index seeding, so they are as reproducible as the plain mode.

use crate::engine::{Observer, SimConfig, SimEngine};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rta_core::par::pool_fold_states;
use rta_core::wcdfp::{CiMethod, JobEstimate, Mode, Stopping, WcdfpAccum};
use rta_core::AnalysisConfig;
use rta_curves::Time;
use rta_model::jobshop::{ShopConfig, ShopSampler};
use rta_model::priority::{rank_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, TaskSystem};
use std::sync::Arc;

/// What varies between draws.
#[derive(Clone, Debug)]
pub enum DrawModel {
    /// Each draw samples a fresh job-shop system from the Eq. 26 generator
    /// (burst rates, routes, execution weights), like [`crate::batch`].
    Shop(ShopConfig),
    /// The system is fixed; each draw realizes its arrival nondeterminism:
    /// [`ArrivalPattern::PeriodicJitter`] delays each nominal release by a
    /// uniform amount in `[0, jitter]`, and
    /// [`ArrivalPattern::SporadicEnvelope`] draws inter-arrival gaps
    /// uniformly from `[min_gap, 2·min_gap]` (a modeling choice — the
    /// envelope only bounds gaps from below). Deterministic patterns
    /// (periodic, bursty, trace, …) release identically in every draw.
    Arrivals(TaskSystem),
}

/// Estimation parameters shared by the fixed and adaptive drivers.
#[derive(Clone, Debug)]
pub struct WcdfpConfig {
    /// Sampling mode (plain, antithetic pairs, or stratified).
    pub mode: Mode,
    /// Draw `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Two-sided confidence level of the reported intervals.
    pub confidence: f64,
    /// Binomial interval used in plain mode (and as the degenerate-variance
    /// fallback of the variance-reduction modes).
    pub ci: CiMethod,
    /// Feed completed responses into the per-job P² sketches (and the
    /// `completed`/`max_response` counters). `false` is the **verdict-only**
    /// configuration the admission path uses: draws track nothing but the
    /// per-job miss bit, so their cost is the event loop itself. Miss
    /// counts and confidence intervals are identical either way.
    pub sketches: bool,
}

impl Default for WcdfpConfig {
    fn default() -> WcdfpConfig {
        WcdfpConfig {
            mode: Mode::Plain,
            base_seed: 42,
            confidence: 0.95,
            ci: CiMethod::Wilson,
            sketches: true,
        }
    }
}

/// Outcome of a WCDFP estimation run.
#[derive(Clone, Debug)]
pub struct WcdfpReport {
    /// Job names, index-aligned with `estimates`.
    pub names: Vec<String>,
    /// Per-job estimates at the configured confidence level.
    pub estimates: Vec<JobEstimate>,
    /// Draws actually simulated.
    pub draws: u64,
    /// Whether the stopping rule was met (always `true` for fixed runs).
    pub converged: bool,
    /// The raw accumulator, for sketch readouts and further merging.
    pub accum: WcdfpAccum,
}

/// Complements every RNG word, reflecting each derived uniform `u → 1 − u`
/// (an `f64` sample reads the top 53 bits, integer ranges the high bits —
/// both are monotone in the word).
struct AntitheticRng<R>(R);

impl<R: RngCore> RngCore for AntitheticRng<R> {
    fn next_u64(&mut self) -> u64 {
        !self.0.next_u64()
    }
}

/// Confines the **first** word so the first derived uniform lands in
/// stratum `s` of `K` equal slices of `[0, 1)`; later words pass through.
struct StratifiedRng<R> {
    inner: R,
    stratum: u32,
    strata: u32,
    first: bool,
}

impl<R: RngCore> RngCore for StratifiedRng<R> {
    fn next_u64(&mut self) -> u64 {
        let x = self.inner.next_u64();
        if !self.first {
            return x;
        }
        self.first = false;
        let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = (self.stratum as f64 + u) / self.strata as f64;
        // v < 1 by construction, so the product stays below 2^53 and the
        // cast is exact; shifting restores the f64-sampling bit layout.
        ((v * (1u64 << 53) as f64) as u64) << 11
    }
}

/// One registered instance in the [`VerdictSink`]: where it released,
/// when it is due, whose job it is, and whether its chain finished.
struct InstRow {
    release_at: Time,
    deadline_at: Time,
    job: u32,
    done: bool,
}

/// The verdict-only [`Observer`]: a flat per-instance row table filled at
/// registration, per-job miss flags. Reset per draw, capacity reused
/// across draws.
#[derive(Default)]
struct VerdictSink {
    rows: Vec<InstRow>,
    jobs_seen: u32,
    /// Collect `(job, response)` pairs for the sketches; off in the
    /// verdict-only configuration (`WcdfpConfig::sketches == false`).
    collect: bool,
    /// Per-job: some instance missed its deadline this draw.
    missed: Vec<bool>,
    /// Per-job: some instance was horizon-censored (and none missed).
    censored: Vec<bool>,
    /// Completed-chain responses `(job, ticks)` of this draw.
    responses: Vec<(u32, f64)>,
}

impl VerdictSink {
    fn reset(&mut self, n_jobs: usize) {
        self.rows.clear();
        self.jobs_seen = 0;
        self.missed.clear();
        self.missed.resize(n_jobs, false);
        self.censored.clear();
        self.censored.resize(n_jobs, false);
        self.responses.clear();
    }

    /// Classify instances still running at the horizon: a miss if the
    /// deadline already passed, censored (outcome unknown) otherwise.
    /// Under the default analysis horizon censoring cannot occur.
    fn finish(&mut self, horizon: Time) {
        for row in &self.rows {
            if !row.done {
                if row.deadline_at <= horizon {
                    self.missed[row.job as usize] = true;
                } else {
                    self.censored[row.job as usize] = true;
                }
            }
        }
    }
}

impl Observer for VerdictSink {
    fn begin_job(&mut self, job: &rta_model::Job, times: &[Time]) {
        let k = self.jobs_seen;
        self.jobs_seen += 1;
        for &t in times {
            self.rows.push(InstRow {
                release_at: t,
                deadline_at: t + job.deadline,
                job: k,
                done: false,
            });
        }
    }

    fn hop_complete(
        &mut self,
        id: crate::arena::InstanceId,
        _inst: &crate::arena::InstanceState,
        t: Time,
        last: bool,
    ) {
        if !last {
            return;
        }
        let row = &mut self.rows[id.0 as usize];
        row.done = true;
        if self.collect {
            self.responses
                .push((row.job, (t - row.release_at).ticks() as f64));
        }
        if t > row.deadline_at {
            self.missed[row.job as usize] = true;
        }
    }

    #[cfg(feature = "trace")]
    fn service(&mut self, _subjob: rta_model::SubjobRef, _from: Time, _to: Time) {}
}

/// Per-worker model state.
enum ModelState {
    Shop(ShopSampler),
    Arrivals {
        sim: SimConfig,
        flat: Vec<Time>,
        off: Vec<usize>,
        tmp: Vec<Time>,
    },
}

/// One worker's reusable workspace plus its private accumulator.
struct Workspace {
    state: ModelState,
    engine: SimEngine,
    sink: VerdictSink,
    /// Antithetic scratch: draw A's flags, held across draw B.
    pair_missed: Vec<bool>,
    pair_censored: Vec<bool>,
    accum: WcdfpAccum,
}

struct Shared {
    model: DrawModel,
    cfg: WcdfpConfig,
}

fn n_jobs_of(model: &DrawModel) -> usize {
    match model {
        DrawModel::Shop(shop) => shop.n_jobs,
        DrawModel::Arrivals(sys) => sys.jobs().len(),
    }
}

fn job_names(model: &DrawModel) -> Vec<String> {
    match model {
        DrawModel::Shop(shop) => (1..=shop.n_jobs).map(|k| format!("T{k}")).collect(),
        DrawModel::Arrivals(sys) => sys.jobs().iter().map(|j| j.name.clone()).collect(),
    }
}

/// Units of work per run: antithetic pairs count two draws.
fn units_for(mode: Mode, draws: u64) -> u64 {
    match mode {
        Mode::Antithetic => draws.div_ceil(2),
        _ => draws,
    }
}

fn new_workspace(shared: &Shared) -> Workspace {
    let state = match &shared.model {
        DrawModel::Shop(shop) => {
            ModelState::Shop(ShopSampler::new(shop.clone()).expect("valid shop shape"))
        }
        DrawModel::Arrivals(sys) => {
            let (window, horizon) = AnalysisConfig::default().resolve(sys);
            ModelState::Arrivals {
                sim: SimConfig { window, horizon },
                flat: Vec::new(),
                off: Vec::new(),
                tmp: Vec::new(),
            }
        }
    };
    Workspace {
        state,
        engine: SimEngine::new(),
        sink: VerdictSink {
            collect: shared.cfg.sketches,
            ..VerdictSink::default()
        },
        pair_missed: Vec::new(),
        pair_censored: Vec::new(),
        accum: WcdfpAccum::new(shared.cfg.mode, n_jobs_of(&shared.model)),
    }
}

/// Realize one job's releases for this draw (see [`DrawModel::Arrivals`]).
fn randomized_releases<R: Rng>(
    arrival: &ArrivalPattern,
    window: Time,
    rng: &mut R,
    out: &mut Vec<Time>,
) {
    match arrival {
        ArrivalPattern::PeriodicJitter {
            period,
            jitter,
            offset,
        } => {
            out.clear();
            // The pattern's `offset` is the *maximally delayed* first
            // release, so the nominal grid starts at `offset − jitter`;
            // each instance is delayed independently by `U{0..=jitter}`.
            let mut nominal = *offset - *jitter;
            while nominal <= window {
                let d = if jitter.0 > 0 {
                    Time(rng.gen_range(0..=jitter.0))
                } else {
                    Time::ZERO
                };
                out.push((nominal + d).max(Time::ZERO));
                nominal += *period;
            }
            // Independent delays can reorder neighbors when J > T.
            out.sort_unstable();
        }
        ArrivalPattern::SporadicEnvelope { min_gap } => {
            out.clear();
            let mut t = Time::ZERO;
            while t <= window {
                out.push(t);
                t += Time(rng.gen_range(min_gap.0..=2 * min_gap.0));
            }
        }
        _ => arrival.release_times_into(window, out),
    }
}

/// Run one draw: realize the model's randomness, simulate behind the
/// verdict sink, classify horizon-censored instances.
fn one_draw<R: RngCore>(shared: &Shared, ws: &mut Workspace, rng: &mut R) {
    let (engine, sink) = (&mut ws.engine, &mut ws.sink);
    match (&shared.model, &mut ws.state) {
        (DrawModel::Shop(_), ModelState::Shop(sampler)) => {
            let sys = sampler.sample(rng).expect("valid draw");
            if sys
                .processors()
                .iter()
                .any(|p| p.scheduler.uses_priorities())
            {
                rank_priorities(sys, PriorityPolicy::RelativeDeadlineMonotonic)
                    .expect("priority assignment");
            }
            let (window, horizon) = AnalysisConfig::default().resolve(sys);
            sink.reset(sys.jobs().len());
            engine.run_observed(sys, &SimConfig { window, horizon }, sink);
            sink.finish(horizon);
        }
        (
            DrawModel::Arrivals(sys),
            ModelState::Arrivals {
                sim,
                flat,
                off,
                tmp,
            },
        ) => {
            flat.clear();
            off.clear();
            off.push(0);
            for job in sys.jobs() {
                randomized_releases(&job.arrival, sim.window, rng, tmp);
                flat.extend_from_slice(tmp);
                off.push(flat.len());
            }
            sink.reset(sys.jobs().len());
            engine.run_with_releases(sys, sim, off, flat, sink);
            sink.finish(sim.horizon);
        }
        _ => unreachable!("workspace model state matches the draw model"),
    }
}

/// Fold one unit (one draw, or one antithetic pair) into the workspace
/// accumulator. Unit `u` derives all randomness from
/// `StdRng::seed_from_u64(base_seed + u)`.
fn fold_unit(shared: &Shared, ws: &mut Workspace, unit: u64) {
    let seed = shared.cfg.base_seed.wrapping_add(unit);
    match shared.cfg.mode {
        Mode::Plain => {
            let mut rng = StdRng::seed_from_u64(seed);
            one_draw(shared, ws, &mut rng);
            drain_responses(ws);
            ws.accum
                .record_draw(&ws.sink.missed, &ws.sink.censored, None);
        }
        Mode::Stratified(k) => {
            let stratum = (unit % k as u64) as u32;
            let mut rng = StratifiedRng {
                inner: StdRng::seed_from_u64(seed),
                stratum,
                strata: k,
                first: true,
            };
            one_draw(shared, ws, &mut rng);
            drain_responses(ws);
            ws.accum
                .record_draw(&ws.sink.missed, &ws.sink.censored, Some(stratum));
        }
        Mode::Antithetic => {
            let mut rng = StdRng::seed_from_u64(seed);
            one_draw(shared, ws, &mut rng);
            drain_responses(ws);
            ws.pair_missed.clear();
            ws.pair_missed.extend_from_slice(&ws.sink.missed);
            ws.pair_censored.clear();
            ws.pair_censored.extend_from_slice(&ws.sink.censored);
            let mut rng = AntitheticRng(StdRng::seed_from_u64(seed));
            one_draw(shared, ws, &mut rng);
            drain_responses(ws);
            ws.accum.record_pair(
                &ws.pair_missed,
                &ws.pair_censored,
                &ws.sink.missed,
                &ws.sink.censored,
            );
        }
    }
}

fn drain_responses(ws: &mut Workspace) {
    for &(job, r) in &ws.sink.responses {
        ws.accum.record_response(job as usize, r);
    }
}

/// Sequentially fold units `start..end` into `accum` — the reference
/// implementation the parallel path is pinned against, and the substrate
/// of both drivers.
pub fn accumulate_range(
    model: &DrawModel,
    cfg: &WcdfpConfig,
    start: u64,
    end: u64,
    accum: &mut WcdfpAccum,
) {
    let shared = Shared {
        model: model.clone(),
        cfg: cfg.clone(),
    };
    let mut ws = new_workspace(&shared);
    for unit in start..end {
        fold_unit(&shared, &mut ws, unit);
    }
    accum.merge(&ws.accum);
}

/// Fold units `start..start + count` across the worker pool and return the
/// merged accumulator.
fn accumulate_units(shared: &Arc<Shared>, start: u64, count: u64) -> WcdfpAccum {
    let empty = WcdfpAccum::new(shared.cfg.mode, n_jobs_of(&shared.model));
    if count == 0 {
        return empty;
    }
    let s_init = Arc::clone(shared);
    let s_fold = Arc::clone(shared);
    let states = pool_fold_states(
        count as usize,
        move || new_workspace(&s_init),
        move |ws, i| fold_unit(&s_fold, ws, start + i as u64),
    );
    let mut accum = empty;
    for ws in states {
        accum.merge(&ws.accum);
    }
    accum
}

fn report(shared: &Shared, accum: WcdfpAccum, converged: bool) -> WcdfpReport {
    let estimates = accum.estimates(shared.cfg.confidence, shared.cfg.ci);
    WcdfpReport {
        names: job_names(&shared.model),
        estimates,
        draws: accum.draws,
        converged,
        accum,
    }
}

/// Estimate with a fixed draw budget (antithetic mode rounds up to a whole
/// number of pairs).
pub fn estimate_fixed(model: &DrawModel, cfg: &WcdfpConfig, draws: u64) -> WcdfpReport {
    let shared = Arc::new(Shared {
        model: model.clone(),
        cfg: cfg.clone(),
    });
    let accum = accumulate_units(&shared, 0, units_for(cfg.mode, draws));
    report(&shared, accum, true)
}

/// First adaptive round, in units. Rounds double from here (capped), so
/// easy systems settle in one or two cheap rounds while hard ones grow
/// toward the budget geometrically — at most ~2× the draws an oracle
/// round size would have needed.
const FIRST_ROUND_UNITS: u64 = 512;
const MAX_ROUND_UNITS: u64 = 65_536;

/// Estimate adaptively: run rounds of draws at consecutive global indices
/// and stop as soon as `stop` is satisfied (or `max_draws` is exhausted).
///
/// Because units are indexed consecutively from 0, an adaptive run's first
/// `N` draws are *the same draws* a fixed-`N` run would make — adaptivity
/// changes only where the sequence stops.
pub fn estimate_adaptive(
    model: &DrawModel,
    cfg: &WcdfpConfig,
    stop: &Stopping,
    max_draws: u64,
) -> WcdfpReport {
    let shared = Arc::new(Shared {
        model: model.clone(),
        cfg: cfg.clone(),
    });
    let max_units = units_for(cfg.mode, max_draws);
    let mut accum = WcdfpAccum::new(cfg.mode, n_jobs_of(&shared.model));
    let mut done = 0u64;
    let mut round = FIRST_ROUND_UNITS;
    let mut converged = false;
    while done < max_units {
        let count = round.min(max_units - done);
        let part = accumulate_units(&shared, done, count);
        accum.merge(&part);
        done += count;
        let estimates = accum.estimates(stop.confidence, cfg.ci);
        if stop.converged(&estimates) {
            converged = true;
            break;
        }
        round = (round * 2).min(MAX_ROUND_UNITS);
    }
    report(&shared, accum, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::distributions::Dist;
    use rta_model::jobshop::ShopArrivals;
    use rta_model::{SchedulerKind, SystemBuilder};

    fn small_shop() -> ShopConfig {
        ShopConfig {
            stages: 2,
            procs_per_stage: 2,
            n_jobs: 4,
            scheduler: SchedulerKind::Spp,
            utilization: 0.5,
            arrivals: ShopArrivals::Bursty {
                deadline: Dist::Exponential { mean: 6.0 },
            },
            x_min: 0.25,
            ticks_per_unit: 100,
        }
    }

    fn draws() -> u64 {
        if cfg!(debug_assertions) {
            200
        } else {
            1000
        }
    }

    fn jitter_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "J1",
            Time(11),
            ArrivalPattern::PeriodicJitter {
                period: Time(20),
                jitter: Time(8),
                offset: Time(8),
            },
            vec![(p, Time(6))],
        );
        b.add_job(
            "J2",
            Time(40),
            ArrivalPattern::Periodic {
                period: Time(25),
                offset: Time::ZERO,
            },
            vec![(p, Time(7))],
        );
        b.build().unwrap()
    }

    #[test]
    fn shop_estimates_are_valid_intervals() {
        let model = DrawModel::Shop(small_shop());
        let rep = estimate_fixed(&model, &WcdfpConfig::default(), draws());
        assert_eq!(rep.draws, draws());
        assert_eq!(rep.names, vec!["T1", "T2", "T3", "T4"]);
        assert!(rep.converged);
        for e in &rep.estimates {
            assert!(e.lo <= e.p && e.p <= e.hi, "{e:?}");
            assert_eq!(e.draws, draws());
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let model = DrawModel::Shop(small_shop());
        for mode in [Mode::Plain, Mode::Antithetic, Mode::Stratified(4)] {
            let cfg = WcdfpConfig {
                mode,
                ..WcdfpConfig::default()
            };
            let a = estimate_fixed(&model, &cfg, draws());
            let b = estimate_fixed(&model, &cfg, draws());
            assert_eq!(a.draws, b.draws, "{mode:?}");
            for (x, y) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(x.misses, y.misses, "{mode:?}");
                assert_eq!(x.lo.to_bits(), y.lo.to_bits(), "{mode:?}");
                assert_eq!(x.hi.to_bits(), y.hi.to_bits(), "{mode:?}");
            }
        }
    }

    #[test]
    fn arrivals_model_realizes_jitter() {
        // J1's deadline (12) is shorter than exec(6) + worst jitter
        // collision with J2 on FCFS, but generous realizations exist too:
        // the miss probability must land strictly inside (0, 1).
        let model = DrawModel::Arrivals(jitter_system());
        let rep = estimate_fixed(&model, &WcdfpConfig::default(), draws());
        let e = &rep.estimates[0];
        assert!(e.p > 0.0 && e.p < 1.0, "jitter must matter: {e:?}");
        // J2's slack is large; it should rarely (if ever) miss.
        assert!(rep.estimates[1].p < 0.5);
    }

    #[test]
    fn verdict_path_agrees_with_batch_replication() {
        // The verdict sink sees the same schedules as the SimResult path:
        // per-draw miss decisions must agree with what replicate() reports
        // for the same seeds (responses vs deadlines + incompleteness).
        let shop = small_shop();
        let n = if cfg!(debug_assertions) { 50 } else { 200 };
        let rep = estimate_fixed(
            &DrawModel::Shop(shop.clone()),
            &WcdfpConfig::default(),
            n as u64,
        );
        let batch = crate::batch::replicate(
            &shop,
            &crate::batch::BatchConfig {
                draws: n,
                base_seed: 42,
            },
        );
        // Aggregate check: total completed responses match exactly.
        let verdict_completed: u64 = rep.accum.jobs.iter().map(|j| j.completed).sum();
        let batch_completed: usize = batch.jobs.iter().map(|j| j.samples.len()).sum();
        assert_eq!(verdict_completed, batch_completed as u64);
        // And per-job max response matches the batch max sample.
        for (k, j) in rep.accum.jobs.iter().enumerate() {
            let batch_max = batch.jobs[k].samples.last().map(|t| t.ticks()).unwrap_or(0);
            assert_eq!(j.max_response as i64, batch_max, "job {k}");
        }
    }

    #[test]
    fn verdict_only_config_has_identical_misses() {
        // Turning the sketches off must change nothing about the verdicts:
        // same draws, same per-job miss counts, same intervals.
        let model = DrawModel::Shop(small_shop());
        let full = estimate_fixed(&model, &WcdfpConfig::default(), draws());
        let lean = estimate_fixed(
            &model,
            &WcdfpConfig {
                sketches: false,
                ..WcdfpConfig::default()
            },
            draws(),
        );
        assert_eq!(full.draws, lean.draws);
        for (a, b) in full.estimates.iter().zip(&lean.estimates) {
            assert_eq!(a.misses, b.misses);
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
        // And the lean run really is lean: nothing reached the sketches.
        assert!(lean.accum.jobs.iter().all(|j| j.completed == 0));
        assert!(full.accum.jobs.iter().any(|j| j.completed > 0));
    }

    #[test]
    fn adaptive_stops_early_on_easy_systems() {
        // A single lightly-loaded periodic job never misses: the interval
        // collapses quickly and the run must stop far below the budget.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "easy",
            Time(50),
            ArrivalPattern::Periodic {
                period: Time(20),
                offset: Time::ZERO,
            },
            vec![(p, Time(2))],
        );
        let model = DrawModel::Arrivals(b.build().unwrap());
        let stop = Stopping {
            tolerance: 0.01,
            confidence: 0.95,
            threshold: None,
        };
        let rep = estimate_adaptive(&model, &WcdfpConfig::default(), &stop, 1_000_000);
        assert!(rep.converged);
        assert!(
            rep.draws <= 2 * FIRST_ROUND_UNITS,
            "stopped at {}",
            rep.draws
        );
        assert_eq!(rep.estimates[0].misses, 0);
        assert!(rep.estimates[0].half_width() <= 0.01);
    }

    #[test]
    fn antithetic_and_stratified_count_all_draws() {
        let model = DrawModel::Shop(small_shop());
        let cfg = WcdfpConfig {
            mode: Mode::Antithetic,
            ..WcdfpConfig::default()
        };
        let rep = estimate_fixed(&model, &cfg, 100);
        assert_eq!(rep.draws, 100);
        let cfg = WcdfpConfig {
            mode: Mode::Stratified(8),
            ..WcdfpConfig::default()
        };
        let rep = estimate_fixed(&model, &cfg, 100);
        assert_eq!(rep.draws, 100);
        assert_eq!(rep.accum.strat_draws.iter().sum::<u64>(), 100);
    }
}

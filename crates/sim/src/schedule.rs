//! The event schedule: a calendar queue over typed simulation events.
//!
//! ## Event taxonomy
//!
//! The engine advances through exactly three kinds of events:
//!
//! * [`Event::HopComplete`] — the instance running on a processor finishes
//!   its current hop. Scheduled at dispatch time; invalidated lazily by a
//!   per-processor generation counter when a preemption unseats the
//!   dispatch that scheduled it.
//! * [`Event::Release`] — an instance becomes ready at its current hop
//!   (primary arrival, or a chain advancing under Direct Synchronization).
//! * [`Event::PreemptCheck`] — a processor whose state changed at the
//!   current instant re-evaluates preemption and dispatch. Deduplicated per
//!   processor per instant; carries the arena id of the instance whose
//!   release triggered it (or [`NO_TRIGGER`] for completion-scheduled
//!   checks), so a check with exactly one trigger can test preemption
//!   against that instance alone.
//!
//! ## Ordering
//!
//! Entries are totally ordered by `(time, ord)` where `ord` packs a phase
//! rank into the high bits: completions (rank 0, sub-ordered by processor)
//! before releases (rank 1, sub-ordered by release sequence) before
//! preempt-checks (rank 2, sub-ordered by processor). Draining one instant
//! in pure key order therefore reproduces the classic three-phase timestep
//! — complete, release, redispatch — without any per-instant batching,
//! which is what lets the new core match the retired loop event for event.
//!
//! ## Why a calendar queue
//!
//! A binary heap costs `O(log n)` per operation with a poor cache profile
//! at the sizes the throughput studies run (tens of thousands of pending
//! releases seeded up front). A calendar queue (Brown 1988) buckets events
//! by time so push and pop-min are `O(1)` amortized when, as here, event
//! times are spread roughly uniformly over a known horizon: the engine
//! knows both the horizon and the primary release count at setup and sizes
//! the calendar from them. Same-instant inserts during draining (chain
//! releases, preempt-checks) land in the current bucket and are found by
//! the same scan, so intra-instant ordering needs no special casing.

use crate::arena::InstanceId;
use rta_curves::Time;

/// A simulation event. Carries ids and indices only — never instance
/// payloads — so entries stay `Copy` and 24 bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Event {
    /// Instance `id` becomes ready at its current hop.
    Release(InstanceId),
    /// The instance dispatched on processor `proc` at generation `gen`
    /// finishes. Stale once the processor's generation has moved on.
    HopComplete { proc: u32, gen: u32 },
    /// Processor `proc` re-evaluates preemption and dispatch. `trigger` is
    /// the raw [`InstanceId`] of the release that scheduled the check, or
    /// [`NO_TRIGGER`] when a completion did (a completion frees the
    /// processor, so no preemption test is needed). Meaningful only while
    /// the processor's `multi_trigger` flag is clear — once a second
    /// state change coalesces into the pending check, the full ready set
    /// must be consulted.
    PreemptCheck { proc: u32, trigger: u32 },
}

/// Sentinel `trigger` for [`Event::PreemptCheck`]s scheduled by hop
/// completions rather than releases.
pub(crate) const NO_TRIGGER: u32 = u32::MAX;

/// Phase rank 0: completions drain first at an instant, in processor order.
pub(crate) fn ord_complete(proc: u32) -> u64 {
    proc as u64
}

/// Phase rank 1: releases drain after completions, in sequence order.
pub(crate) fn ord_release(seq: u64) -> u64 {
    debug_assert!(seq < 1 << 56);
    (1 << 56) | seq
}

/// Phase rank 2: preempt-checks drain last, in processor order.
pub(crate) fn ord_check(proc: u32) -> u64 {
    (2 << 56) | proc as u64
}

#[derive(Copy, Clone, Debug)]
struct Entry {
    time: i64,
    ord: u64,
    event: Event,
}

/// A power-of-two calendar queue keyed by `(time, ord)`.
pub(crate) struct Calendar {
    buckets: Vec<Vec<Entry>>,
    /// Bucket width is `2^shift` ticks.
    shift: u32,
    /// `buckets.len() - 1`; bucket index is `(day & mask)`.
    mask: usize,
    /// The "day" (time >> shift) the cursor is currently draining.
    day: i64,
    len: usize,
}

impl Default for Calendar {
    /// An unsized calendar; [`Calendar::reset`] must run before any push.
    fn default() -> Calendar {
        Calendar {
            buckets: Vec::new(),
            shift: 0,
            mask: 0,
            day: 0,
            len: 0,
        }
    }
}

impl Calendar {
    /// Size the calendar for ~`expected` events spread over `[0, horizon]`:
    /// bucket count is the next power of two at or above `expected`
    /// (clamped to `[64, 2^20]`) and bucket width approximates
    /// `horizon / buckets`, so one bucket holds O(1) events.
    #[cfg(test)]
    pub fn with_profile(horizon: Time, expected: usize) -> Calendar {
        let mut cal = Calendar::default();
        cal.reset(horizon, expected);
        cal
    }

    /// Re-profile for a new run, recycling the bucket allocations when the
    /// bucket count is unchanged (the common case for repeated draws of
    /// one workload shape).
    pub fn reset(&mut self, horizon: Time, expected: usize) {
        let nbuckets = expected.next_power_of_two().clamp(64, 1 << 20);
        if self.buckets.len() == nbuckets {
            self.buckets.iter_mut().for_each(Vec::clear);
        } else {
            self.buckets.clear();
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        let span = horizon.ticks().max(1) as u64;
        let width = (span / nbuckets as u64).max(1);
        // Round the width down to a power of two so bucketing is a shift.
        self.shift = 63 - width.leading_zeros();
        self.mask = nbuckets - 1;
        self.day = 0;
        self.len = 0;
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Insert an event. `time` must be nonnegative and at or after the time
    /// of the most recently popped entry (the engine only schedules at the
    /// present or in the future).
    pub fn push(&mut self, time: Time, ord: u64, event: Event) {
        let t = time.ticks();
        debug_assert!(t >= 0);
        debug_assert!(t >> self.shift >= self.day, "push into the past");
        let b = ((t >> self.shift) as usize) & self.mask;
        self.buckets[b].push(Entry {
            time: t,
            ord,
            event,
        });
        self.len += 1;
    }

    /// Remove and return the minimum entry by `(time, ord)`.
    pub fn pop_min(&mut self) -> Option<(Time, Event)> {
        if self.len == 0 {
            return None;
        }
        let mut rotations = 0usize;
        loop {
            let b = (self.day as usize) & self.mask;
            let mut best: Option<(usize, (i64, u64))> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if e.time >> self.shift != self.day {
                    continue; // a later rotation's event sharing this bucket
                }
                let key = (e.time, e.ord);
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
            if let Some((i, _)) = best {
                let e = self.buckets[b].swap_remove(i);
                self.len -= 1;
                return Some((Time(e.time), e.event));
            }
            self.day += 1;
            rotations += 1;
            if rotations > self.mask {
                // A full rotation found nothing: the pending events are
                // sparse. Jump the cursor straight to the earliest day.
                self.day = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| e.time >> self.shift)
                    .min()
                    .expect("len > 0");
                rotations = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn release(seq: u64) -> Event {
        Event::Release(InstanceId(seq as u32))
    }

    #[test]
    fn pops_in_time_then_ord_order() {
        let mut cal = Calendar::with_profile(Time(1000), 16);
        // Same instant, all three phases, pushed out of order.
        cal.push(
            Time(10),
            ord_check(0),
            Event::PreemptCheck {
                proc: 0,
                trigger: NO_TRIGGER,
            },
        );
        cal.push(Time(10), ord_release(3), release(3));
        cal.push(
            Time(10),
            ord_complete(1),
            Event::HopComplete { proc: 1, gen: 0 },
        );
        cal.push(
            Time(10),
            ord_complete(0),
            Event::HopComplete { proc: 0, gen: 0 },
        );
        cal.push(Time(10), ord_release(2), release(2));
        cal.push(Time(5), ord_release(9), release(9));
        assert_eq!(cal.len(), 6);
        let order: Vec<(Time, Event)> = std::iter::from_fn(|| cal.pop_min()).collect();
        assert_eq!(cal.len(), 0);
        assert_eq!(
            order,
            vec![
                (Time(5), release(9)),
                (Time(10), Event::HopComplete { proc: 0, gen: 0 }),
                (Time(10), Event::HopComplete { proc: 1, gen: 0 }),
                (Time(10), release(2)),
                (Time(10), release(3)),
                (
                    Time(10),
                    Event::PreemptCheck {
                        proc: 0,
                        trigger: NO_TRIGGER,
                    }
                ),
            ]
        );
    }

    #[test]
    fn matches_sorted_order_on_scattered_times() {
        // Deterministic pseudo-random times far beyond the bucket span to
        // exercise wrap-around and the sparse-jump path.
        let mut cal = Calendar::with_profile(Time(512), 8);
        let mut expected = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for seq in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = (x % 100_000) as i64;
            cal.push(Time(t), ord_release(seq), release(seq));
            expected.push((t, ord_release(seq)));
        }
        expected.sort_unstable();
        let popped: Vec<(Time, Event)> = std::iter::from_fn(|| cal.pop_min()).collect();
        assert_eq!(popped.len(), expected.len());
        for ((t, _), (et, _)) in popped.iter().zip(&expected) {
            assert_eq!(t.ticks(), *et);
        }
    }

    #[test]
    fn same_instant_inserts_during_drain_are_seen() {
        let mut cal = Calendar::with_profile(Time(100), 4);
        cal.push(
            Time(10),
            ord_complete(0),
            Event::HopComplete { proc: 0, gen: 0 },
        );
        let (t, _) = cal.pop_min().unwrap();
        // A chain release created while handling the completion at t=10.
        cal.push(t, ord_release(0), release(0));
        cal.push(
            t,
            ord_check(0),
            Event::PreemptCheck {
                proc: 0,
                trigger: 0,
            },
        );
        assert_eq!(cal.pop_min(), Some((Time(10), release(0))));
        assert_eq!(
            cal.pop_min(),
            Some((
                Time(10),
                Event::PreemptCheck {
                    proc: 0,
                    trigger: 0,
                }
            ))
        );
        assert_eq!(cal.pop_min(), None);
    }
}

//! The indexed discrete-event engine.
//!
//! Instances live in a flat [`InstanceArena`]; the schedule itself needs no
//! general-purpose priority queue, because only two kinds of event ever sit
//! in the *future*:
//!
//! * **primary releases** — known in full before the run starts, so they
//!   are materialized once as a `(time, seq)` array, stable-sorted by time
//!   (the input is one sorted run per job, which the stable sort merges in
//!   near-linear time), and consumed by a cursor;
//! * **hop completions** — at most one live per processor (a processor
//!   runs one instance at a time), held in a per-processor `complete_at`
//!   slot that a preemption simply overwrites. No queue, no stale entries,
//!   no generation counters.
//!
//! Everything else — chain releases under Direct Synchronization,
//! preemption/dispatch re-checks — happens at the instant being drained
//! and goes straight to the target processor's ready queue or onto the
//! instant's dirty-processor list.
//!
//! ## Ordering
//!
//! Each instant drains in the classic three-phase order the retired loop
//! used (and `tests/oracle.rs` pins event for event against
//! [`crate::legacy`]): completions in processor order, then releases in
//! release-sequence order, then one preemption/dispatch check per
//! processor whose state changed. Two facts make the flat structures
//! equivalent to a totally-ordered event queue:
//!
//! * a dispatch decision on one processor never affects another processor
//!   at the same instant (a dispatch schedules a completion strictly in
//!   the future, since executions are positive), so the phase-3 checks
//!   can run in any deterministic order;
//! * policies pick by `(priority-key, hop_release, seq)` — a total order —
//!   so the *insertion* order of a ready queue is immaterial, and a chain
//!   release may be enqueued during the completion phase even though the
//!   retired loop formally processed it in the release phase. When the
//!   coalescing could matter (two or more state changes on one processor
//!   at one instant) the `multi_trigger` flag already forces the check to
//!   consult the full ready set.
//!
//! Processors whose state did not change at an instant are never visited —
//! a processor with no completion and no arrival either keeps running
//! (nothing new to preempt it: its ready set is unchanged) or is idle with
//! an empty ready queue (dispatch never leaves work queued on an idle
//! processor), so skipping it cannot change the schedule.

use crate::arena::{InstanceArena, InstanceId, InstanceState};
use crate::result::SimResult;
use rta_core::policy::{policy_for, FastPath, ReadyInstance, ReadySet, SimScheduler};
use rta_curves::Time;
use rta_model::{Job, JobId, ProcessorId, SchedulerKind, SubjobRef, TaskSystem};

/// What a simulation run reports to its caller. The single event loop is
/// generic over this, so the full-trace path ([`SimResult`] via
/// [`ResultObserver`]) and the verdict-only Monte-Carlo path
/// ([`crate::wcdfp`]) share one schedule byte for byte — the observer only
/// chooses what to *record*, never what *happens*.
pub(crate) trait Observer {
    /// Called once per job in index order, before any event runs, with the
    /// job's primary release times for this run.
    fn begin_job(&mut self, job: &Job, times: &[Time]);

    /// A hop of `inst` completed at `t` (`inst` still holds its pre-advance
    /// state); `last` is true when this was the chain's final hop.
    fn hop_complete(&mut self, id: InstanceId, inst: &InstanceState, t: Time, last: bool);

    /// `inst`'s subjob was served on its processor over `[from, to)`.
    #[cfg(feature = "trace")]
    fn service(&mut self, subjob: rta_model::SubjobRef, from: Time, to: Time);
}

/// The [`Observer`] behind [`SimEngine::simulate_into`]: records everything
/// into a recycled [`SimResult`].
struct ResultObserver<'a> {
    out: &'a mut SimResult,
}

impl Observer for ResultObserver<'_> {
    fn begin_job(&mut self, job: &Job, times: &[Time]) {
        self.out
            .hop_completions
            .push(vec![vec![None; job.subjobs.len()]; times.len()]);
        self.out.releases.push(times.to_vec());
    }

    fn hop_complete(&mut self, _id: InstanceId, inst: &InstanceState, t: Time, _last: bool) {
        #[cfg(feature = "trace")]
        self.out.hop_records.push(crate::result::HopRecord {
            job: inst.job,
            m: inst.m,
            hop: inst.hop,
            release: inst.hop_release,
            start: inst.started,
            finish: t,
        });
        self.out.hop_completions[inst.job.0][inst.m as usize - 1][inst.hop as usize] = Some(t);
    }

    #[cfg(feature = "trace")]
    fn service(&mut self, subjob: rta_model::SubjobRef, from: Time, to: Time) {
        self.out
            .service_intervals
            .entry(subjob)
            .or_default()
            .push((from, to));
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Instances released in `[0, window]` are simulated.
    pub window: Time,
    /// Hard stop: instances not completed by this time are reported as
    /// incomplete (matches the analysis convention).
    pub horizon: Time,
}

impl SimConfig {
    /// Window/horizon matching the defaults of `rta-model::horizon` (and
    /// hence of the analyses), so simulation and analysis cover the same
    /// instances.
    pub fn defaults_for(sys: &TaskSystem) -> SimConfig {
        let window = rta_model::horizon::default_arrival_window(
            sys,
            rta_model::horizon::DEFAULT_WINDOW_CYCLES,
        );
        SimConfig {
            window,
            horizon: rta_model::horizon::analysis_horizon(sys, window),
        }
    }
}

/// `trigger` value for a dirty processor whose pending check was caused by
/// a hop completion rather than by a single identifiable release.
const NO_TRIGGER: u32 = u32::MAX;

/// A processor's `complete_at` when nothing is dispatched on it.
const IDLE: i64 = i64::MAX;

/// Placeholder for `running_view` while nothing is dispatched.
const NO_VIEW: ReadyInstance = ReadyInstance {
    subjob: SubjobRef {
        job: JobId(0),
        index: 0,
    },
    hop_release: Time(0),
    seq: 0,
    prio: u32::MAX,
};

/// Per-processor run state. Discipline logic lives behind
/// [`SimScheduler`]; the engine owns the queues.
struct ProcState {
    scheduler: Box<dyn SimScheduler>,
    /// The [`SchedulerKind`] `scheduler` was built for, so a rerun on a
    /// processor of the same kind can [`SimScheduler::reset`] the existing
    /// box instead of reallocating.
    kind: SchedulerKind,
    /// The scheduler's declared [`FastPath`], cached at setup so the
    /// per-decision dispatch below runs inline for the static shapes.
    fast: FastPath,
    /// Ready instances, by arena id. Order is insertion order; policies
    /// select by index through the views buffer.
    ready: Vec<InstanceId>,
    /// Policy-facing views of `ready`, maintained in lockstep (an
    /// instance's view fields only change while it is *running*, never
    /// while it is queued, so a pushed view stays valid until dispatch).
    views: Vec<ReadyInstance>,
    running: Option<(InstanceId, Time)>, // (instance, dispatched at)
    /// The running instance's view, captured at dispatch (its fields are
    /// stable while it runs), so preemption checks rebuild nothing.
    /// Meaningful only while `running` is `Some`.
    running_view: ReadyInstance,
    /// Whether this processor is already on the current instant's
    /// dirty list.
    dirty: bool,
    /// Arena id of the release that marked it dirty, or [`NO_TRIGGER`].
    /// Meaningful only while `multi_trigger` is clear — with exactly one
    /// new arrival, that instance is the only possible preemptor.
    trigger: u32,
    /// Set when a second state change coalesces into the pending check:
    /// `trigger` no longer names the only change, so the check must
    /// consult the full ready set.
    multi_trigger: bool,
}

/// The policy-facing view of one instance, with its subjob's priority
/// cached so policy selection loops stay pointer-free.
fn view(sys: &TaskSystem, inst: &InstanceState) -> ReadyInstance {
    let subjob = inst.subjob();
    ReadyInstance {
        subjob,
        hop_release: inst.hop_release,
        seq: inst.seq,
        prio: sys.subjob(subjob).priority.unwrap_or(u32::MAX),
    }
}

/// Mark `proc` for a phase-3 check at the instant being drained.
fn mark(procs: &mut [ProcState], dirty: &mut Vec<u32>, proc: usize, trigger: u32) {
    let p = &mut procs[proc];
    if !p.dirty {
        p.dirty = true;
        p.trigger = trigger;
        dirty.push(proc as u32);
    } else {
        p.multi_trigger = true;
    }
}

/// One subjob's hot fields, flattened so the event loop never chases
/// `sys.job()`/`sys.subjob()` double-indexed loads: job `k`'s hop `j` is
/// `subs[sub_off[k] + j]`, and hops of one job are contiguous, so a chain
/// advance reads the *next* hop at `si + 1`.
struct SubInfo {
    proc: u32,
    prio: u32,
    exec: Time,
    last: bool,
}

/// A reusable simulation workspace: the arena, the release table and the
/// per-processor queues survive across runs, so a Monte-Carlo driver pays
/// the allocations once per thread, not once per draw.
#[derive(Default)]
pub struct SimEngine {
    arena: InstanceArena,
    procs: Vec<ProcState>,
    /// Flattened per-subjob dispatch fields (rebuilt each run).
    subs: Vec<SubInfo>,
    /// Job `k`'s subjobs start at `subs[sub_off[k]]`.
    sub_off: Vec<u32>,
    /// Primary releases as `(time, seq)`, sorted by time (seq-stable).
    order: Vec<(i64, u32)>,
    /// Per-processor pending completion time ([`IDLE`] when none), hoisted
    /// out of [`ProcState`] so the per-instant scans touch one cache line.
    completes: Vec<i64>,
    /// Processors dirtied at the instant being drained.
    dirty: Vec<u32>,
    /// Release-table scratch: job `k`'s primary releases are
    /// `rel_flat[rel_off[k]..rel_off[k + 1]]`. Filled by [`run_observed`],
    /// kept flat so Monte-Carlo drivers can also hand in their own
    /// randomized tables without per-job allocations.
    rel_flat: Vec<Time>,
    rel_off: Vec<usize>,
    rel_tmp: Vec<Time>,
}

impl SimEngine {
    /// A fresh workspace.
    pub fn new() -> SimEngine {
        SimEngine::default()
    }

    /// Run one simulation, writing the outcome into `out` (whose buffers
    /// are recycled). Equivalent to [`simulate`] but allocation-amortized
    /// across repeated runs.
    pub fn simulate_into(&mut self, sys: &TaskSystem, cfg: &SimConfig, out: &mut SimResult) {
        sys.validate(true).expect("system must be valid");

        out.releases.clear();
        out.hop_completions.clear();
        out.horizon = cfg.horizon;
        #[cfg(feature = "trace")]
        {
            out.service_intervals.clear();
            out.hop_records.clear();
        }
        self.run_observed(sys, cfg, &mut ResultObserver { out });
    }

    /// Run one simulation with the default release tables (each job's
    /// [`rta_model::ArrivalPattern`] evaluated over `cfg.window`), reporting
    /// to `obs`.
    pub(crate) fn run_observed<O: Observer>(
        &mut self,
        sys: &TaskSystem,
        cfg: &SimConfig,
        obs: &mut O,
    ) {
        // The scratch moves out and back so `run_with_releases` can borrow
        // the tables while taking `&mut self`.
        let mut flat = std::mem::take(&mut self.rel_flat);
        let mut off = std::mem::take(&mut self.rel_off);
        let mut tmp = std::mem::take(&mut self.rel_tmp);
        flat.clear();
        off.clear();
        off.push(0);
        for job in sys.jobs() {
            job.arrival.release_times_into(cfg.window, &mut tmp);
            flat.extend_from_slice(&tmp);
            off.push(flat.len());
        }
        self.run_with_releases(sys, cfg, &off, &flat, obs);
        self.rel_flat = flat;
        self.rel_off = off;
        self.rel_tmp = tmp;
    }

    /// Run one simulation whose primary release tables are given explicitly
    /// (job `k` releases at `flat[off[k]..off[k + 1]]`, each table sorted
    /// ascending), reporting to `obs`. This is the entry the Monte-Carlo
    /// arrival-model path uses to inject randomized releases.
    pub(crate) fn run_with_releases<O: Observer>(
        &mut self,
        sys: &TaskSystem,
        cfg: &SimConfig,
        off: &[usize],
        flat: &[Time],
        obs: &mut O,
    ) {
        debug_assert_eq!(off.len(), sys.jobs().len() + 1);
        self.arena.clear();
        self.order.clear();
        self.dirty.clear();
        self.completes.clear();
        self.completes.resize(sys.processors().len(), IDLE);

        // Primary releases in job-then-instance order: `seq` order is the
        // deterministic tie-break every policy bottoms out in, and the
        // arena id of primary instance `seq` is `seq` itself. The same
        // pass flattens each subjob's dispatch fields into `subs`.
        self.subs.clear();
        self.sub_off.clear();
        let mut seq: u64 = 0;
        for (k, job) in sys.jobs().iter().enumerate() {
            self.sub_off.push(self.subs.len() as u32);
            for (j, sub) in job.subjobs.iter().enumerate() {
                self.subs.push(SubInfo {
                    proc: sub.processor.0 as u32,
                    prio: sub.priority.unwrap_or(u32::MAX),
                    exec: sub.exec,
                    last: j + 1 == job.subjobs.len(),
                });
            }
            let times = &flat[off[k]..off[k + 1]];
            obs.begin_job(job, times);
            for (i, &t) in times.iter().enumerate() {
                self.arena.push(InstanceState {
                    job: JobId(k),
                    m: (i + 1) as u32,
                    hop: 0,
                    remaining: job.subjobs[0].exec,
                    hop_release: t,
                    seq,
                    #[cfg(feature = "trace")]
                    started: Time(-1),
                });
                self.order.push((t.ticks(), seq as u32));
                seq += 1;
            }
        }
        // Sorting the full `(time, seq)` pair gives exactly the
        // stable-by-time order (`seq` ascends within the input), without a
        // stable sort's per-run merge allocation.
        self.order.sort_unstable();

        // Start-of-run schedulers (stateful cursors must restart): reuse
        // the existing box when the kind matches and the scheduler can
        // reset itself, else build afresh. Recycle the queues either way.
        self.procs.truncate(sys.processors().len());
        for (i, p) in self.procs.iter_mut().enumerate() {
            let kind = sys.processors()[i].scheduler;
            if p.kind != kind || !p.scheduler.reset(sys, ProcessorId(i)) {
                p.scheduler = policy_for(kind).sim_scheduler(sys, ProcessorId(i));
                p.kind = kind;
            }
            p.fast = p.scheduler.fast_path();
            p.ready.clear();
            p.views.clear();
            p.running = None;
            p.dirty = false;
            p.multi_trigger = false;
        }
        for i in self.procs.len()..sys.processors().len() {
            let kind = sys.processors()[i].scheduler;
            let scheduler = policy_for(kind).sim_scheduler(sys, ProcessorId(i));
            let fast = scheduler.fast_path();
            self.procs.push(ProcState {
                scheduler,
                kind,
                fast,
                ready: Vec::new(),
                views: Vec::new(),
                running: None,
                running_view: NO_VIEW,
                dirty: false,
                trigger: NO_TRIGGER,
                multi_trigger: false,
            });
        }

        let SimEngine {
            arena,
            procs,
            order,
            dirty,
            completes,
            subs,
            sub_off,
            ..
        } = self;
        let horizon = cfg.horizon.ticks();
        let mut cursor = 0usize;
        loop {
            // The next instant: the earliest pending completion or primary
            // release. (Chain releases and checks never outlive an instant.)
            let mut cmin = IDLE;
            for &c in completes.iter() {
                cmin = cmin.min(c);
            }
            let t = cmin.min(order.get(cursor).map_or(IDLE, |e| e.0));
            if t == IDLE || t > horizon {
                break;
            }
            let tt = Time(t);

            // Phase 1: hop completions, in processor order (skipped
            // outright when the instant is release-only).
            for pi in 0..if cmin == t { procs.len() } else { 0 } {
                if completes[pi] != t {
                    continue;
                }
                completes[pi] = IDLE;
                let p = &mut procs[pi];
                let (id, _at) = p.running.take().expect("completion without a dispatch");
                let inst = &arena[id];
                debug_assert_eq!(_at + inst.remaining, tt);
                debug_assert_eq!(sys.subjob(inst.subjob()).processor.0, pi);
                #[cfg(feature = "trace")]
                if _at < tt {
                    obs.service(inst.subjob(), _at, tt);
                }
                let si = (sub_off[inst.job.0] + inst.hop) as usize;
                let last = subs[si].last;
                obs.hop_complete(id, inst, tt, last);
                if !last {
                    // Direct Synchronization: the next hop becomes ready at
                    // this very instant, on its own processor.
                    let nxt = &subs[si + 1];
                    let inst = &mut arena[id];
                    inst.hop += 1;
                    inst.remaining = nxt.exec;
                    inst.hop_release = tt;
                    inst.seq = seq;
                    #[cfg(feature = "trace")]
                    {
                        inst.started = Time(-1);
                    }
                    seq += 1;
                    let v = ReadyInstance {
                        subjob: inst.subjob(),
                        hop_release: tt,
                        seq: inst.seq,
                        prio: nxt.prio,
                    };
                    let target = nxt.proc as usize;
                    procs[target].ready.push(id);
                    procs[target].views.push(v);
                    mark(procs, dirty, target, id.0);
                }
                // The freed processor only needs a check when something is
                // queued for it. If a release lands here later this same
                // instant, its own mark triggers the dispatch — and with
                // the processor idle the check consults the full ready set
                // regardless of the recorded trigger.
                if !procs[pi].ready.is_empty() {
                    mark(procs, dirty, pi, NO_TRIGGER);
                }
            }

            // Phase 2: primary releases at this instant, in `seq` order.
            while let Some(&(rt, s)) = order.get(cursor) {
                if rt != t {
                    break;
                }
                cursor += 1;
                let id = InstanceId(s);
                let inst = &arena[id];
                let info = &subs[sub_off[inst.job.0] as usize]; // primaries are at hop 0
                let v = ReadyInstance {
                    subjob: inst.subjob(),
                    hop_release: inst.hop_release,
                    seq: inst.seq,
                    prio: info.prio,
                };
                let target = info.proc as usize;
                procs[target].ready.push(id);
                procs[target].views.push(v);
                mark(procs, dirty, target, s);
            }

            // Phase 3: one preemption/dispatch check per dirtied processor.
            // Checks never dirty a processor (a dispatch completes strictly
            // later), so the list is fixed by now.
            for &d in dirty.iter() {
                let pi = d as usize;
                let p = &mut procs[pi];
                p.dirty = false;
                let trigger = p.trigger;
                let multi = std::mem::take(&mut p.multi_trigger);
                if let Some((id, at)) = p.running {
                    let wants = match p.fast {
                        FastPath::PrioMin { preemptive } => {
                            let rp = p.running_view.prio;
                            preemptive && p.views.iter().any(|v| v.prio < rp)
                        }
                        FastPath::FifoMin => false,
                        FastPath::Dynamic => {
                            // With exactly one release since the last
                            // decision, that instance is the only possible
                            // preemptor: every other ready instance already
                            // declined against this running instance (or
                            // lost the dispatch that seated it), and
                            // `preempts` is an any-exists test, so the
                            // one-element view is equivalent to the full
                            // set.
                            !p.ready.is_empty()
                                && if multi || trigger == NO_TRIGGER {
                                    p.scheduler.preempts(
                                        sys,
                                        &p.running_view,
                                        &ReadySet::new(&p.views),
                                    )
                                } else {
                                    let tv = [view(sys, &arena[InstanceId(trigger)])];
                                    p.scheduler
                                        .preempts(sys, &p.running_view, &ReadySet::new(&tv))
                                }
                        }
                    };
                    if wants {
                        #[cfg(feature = "trace")]
                        if at < tt {
                            obs.service(arena[id].subjob(), at, tt);
                        }
                        let inst = &mut arena[id];
                        inst.remaining -= tt - at;
                        debug_assert!(inst.remaining > Time::ZERO);
                        p.ready.push(id);
                        p.views.push(p.running_view);
                        p.running = None;
                        completes[pi] = IDLE;
                    }
                }
                if p.running.is_none() && !p.views.is_empty() {
                    let pick = match p.fast {
                        FastPath::PrioMin { .. } => {
                            let mut bi = 0;
                            for i in 1..p.views.len() {
                                let (a, b) = (&p.views[i], &p.views[bi]);
                                if (a.prio, a.hop_release, a.seq) < (b.prio, b.hop_release, b.seq) {
                                    bi = i;
                                }
                            }
                            Some(bi)
                        }
                        FastPath::FifoMin => {
                            let mut bi = 0;
                            for i in 1..p.views.len() {
                                let (a, b) = (&p.views[i], &p.views[bi]);
                                if (a.hop_release, a.subjob.job.0, a.seq)
                                    < (b.hop_release, b.subjob.job.0, b.seq)
                                {
                                    bi = i;
                                }
                            }
                            Some(bi)
                        }
                        FastPath::Dynamic => p.scheduler.pick_idx(sys, &ReadySet::new(&p.views)),
                    };
                    if let Some(i) = pick {
                        let id = p.ready.swap_remove(i);
                        p.running_view = p.views.swap_remove(i);
                        debug_assert!(p.ready.iter().zip(&p.views).all(|(&r, v)| {
                            let w = view(sys, &arena[r]);
                            (w.subjob, w.hop_release, w.seq) == (v.subjob, v.hop_release, v.seq)
                        }));
                        p.running = Some((id, tt));
                        #[cfg(feature = "trace")]
                        if arena[id].started < Time::ZERO {
                            arena[id].started = tt;
                        }
                        completes[pi] = t + arena[id].remaining.ticks();
                    }
                }
            }
            dirty.clear();
        }
    }
}

/// Run one simulation in a fresh workspace.
pub fn simulate(sys: &TaskSystem, cfg: &SimConfig) -> SimResult {
    let mut out = SimResult::default();
    SimEngine::new().simulate_into(sys, cfg, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SubjobRef, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    fn cfg(window: i64, horizon: i64) -> SimConfig {
        SimConfig {
            window: Time(window),
            horizon: Time(horizon),
        }
    }

    #[test]
    fn single_job_runs_back_to_back() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(10), periodic(10), vec![(p, Time(4))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = simulate(&sys, &cfg(30, 100));
        assert_eq!(r.instances(JobId(0)), 4);
        for m in 1..=4 {
            assert_eq!(r.response(JobId(0), m), Some(Time(4)), "m={m}");
        }
    }

    #[test]
    fn spp_preemption() {
        // T2 (low prio, τ=6) starts at 0; T1 (high prio, τ=2) arrives at 2:
        // preempts, T2 finishes at 10.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2), Time(5)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T1 instances run immediately on arrival.
        assert_eq!(r.response(JobId(0), 1), Some(Time(2)));
        assert_eq!(r.response(JobId(0), 2), Some(Time(2)));
        // T2: 6 exec + 4 preemption = completes at 10.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(10)));
        // Observed service of T2 has a hole during preemptions.
        #[cfg(feature = "trace")]
        {
            let s = r.observed_service(SubjobRef { job: t2, index: 0 });
            assert_eq!(s.eval(Time(2)), 2);
            assert_eq!(s.eval(Time(4)), 2);
            assert_eq!(s.eval(Time(5)), 3);
            assert_eq!(s.eval(Time(7)), 3);
            assert_eq!(s.eval(Time(10)), 6);
        }
    }

    #[test]
    fn spnp_does_not_preempt() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(1)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T2 blocks T1 for its whole execution.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(8)));
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(3)]),
            vec![(p, Time(2))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T2 first (arrived at 0), then T1 at 6.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(8)));
    }

    #[test]
    fn chain_release_cascades_same_instant() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            periodic(50),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = simulate(&sys, &cfg(100, 400));
        // Hop 2 starts the instant hop 1 completes.
        assert_eq!(r.hop_completions[0][0][0], Some(Time(3)));
        assert_eq!(r.hop_completions[0][0][1], Some(Time(7)));
    }

    #[test]
    fn overload_leaves_instances_incomplete() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(10), periodic(10), vec![(p, Time(8))]);
        let t2 = b.add_job("T2", Time(10), periodic(10), vec![(p, Time(8))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(100, 120));
        assert!(r.wcrt(JobId(1)).is_none(), "T2 must starve");
        // T1 itself stays fine.
        assert_eq!(r.wcrt(JobId(0)), Some(Time(8)));
    }

    #[test]
    fn backlogged_instances_of_one_subjob_are_fifo() {
        // Period 3, exec 5: instances pile up; each must complete in
        // release order, back to back.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t = b.add_job("T1", Time(100), periodic(3), vec![(p, Time(5))]);
        b.set_priority(SubjobRef { job: t, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(12, 200));
        // Releases at 0,3,6,9,12: completions at 5,10,15,20,25.
        for m in 1..=5 {
            assert_eq!(r.completion(JobId(0), m), Some(Time(5 * m as i64)), "m={m}");
        }
    }

    #[test]
    fn fcfs_tie_break_is_deterministic_by_job_index() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(4))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(10, 100));
        // Simultaneous arrivals: the lower job index goes first.
        assert_eq!(r.completion(JobId(0), 1), Some(Time(4)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(10)));
    }

    #[test]
    fn iwrr_interleaves_backlogged_flows_by_weight() {
        // T1 (w=2, τ=2) releases 3 instances at 0; T2 (w=1, τ=3) releases
        // 2 at 0. Rounds serve T1, T2, T1 (cycle 2), so the timeline is
        // T1 [0,2) T2 [2,5) T1 [5,7) | T1 [7,9) T2 [9,12).
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Iwrr);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0), Time(0), Time(0)]),
            vec![(p, Time(2))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0), Time(0)]),
            vec![(p, Time(3))],
        );
        b.set_weight(SubjobRef { job: t1, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(2)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(5)));
        assert_eq!(r.completion(JobId(0), 2), Some(Time(7)));
        assert_eq!(r.completion(JobId(0), 3), Some(Time(9)));
        assert_eq!(r.completion(JobId(1), 2), Some(Time(12)));
    }

    #[test]
    fn mixed_schedulers_along_one_chain() {
        // SPP first hop, FCFS second: the chain crosses policies intact.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
        let t1 = b.add_job(
            "T1",
            Time(100),
            periodic(20),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job("T2", Time(100), periodic(20), vec![(p2, Time(6))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(20, 200));
        // T2 starts on P2 at 0; T1's hop 2 arrives at 3, waits until 6.
        assert_eq!(r.hop_completions[0][0][0], Some(Time(3)));
        assert_eq!(r.hop_completions[0][0][1], Some(Time(10)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn observed_utilization_aggregates_processor_busy_time() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(3))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(5)]),
            vec![(p, Time(2))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(20, 100));
        let u = r.observed_utilization(&sys, rta_model::ProcessorId(0));
        // Busy [0,3) and [5,7).
        assert_eq!(u.eval(Time(0)), 0);
        assert_eq!(u.eval(Time(3)), 3);
        assert_eq!(u.eval(Time(5)), 3);
        assert_eq!(u.eval(Time(7)), 5);
        assert_eq!(u.eval(Time(50)), 5);
    }

    #[test]
    fn completion_beats_preemption_at_same_instant() {
        // T2 completes exactly when T1 arrives: no preemption of a finished
        // instance, T1 starts at the same instant.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(4)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(4))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 100));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(4)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(6)));
    }

    #[test]
    fn coalesced_check_consults_the_full_ready_set() {
        // Two releases at the same instant coalesce into one PreemptCheck
        // whose `trigger` names only the first. The first (T1a) is lower
        // priority than the running T2 and would not preempt on its own;
        // the second (T1b) must still get its preemption.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1a = b.add_job(
            "T1a",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2)]),
            vec![(p, Time(1))],
        );
        let t1b = b.add_job(
            "T1b",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2)]),
            vec![(p, Time(1))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(10))],
        );
        b.set_priority(SubjobRef { job: t1a, index: 0 }, 3);
        b.set_priority(SubjobRef { job: t1b, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T1b preempts T2 at 2 and finishes at 3; T2 resumes and finishes
        // at 11; T1a (lowest priority) runs last.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(3)));
        assert_eq!(r.completion(JobId(2), 1), Some(Time(11)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(12)));
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_runs() {
        // One engine, two different systems back to back: results must
        // match fresh single-run engines (workspace recycling is benign).
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job("T1", Time(100), periodic(7), vec![(p, Time(3))]);
        let sys_a = b.build().unwrap();

        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t = b.add_job(
            "T1",
            Time(100),
            periodic(10),
            vec![(p1, Time(2)), (p2, Time(5))],
        );
        b.set_priority(SubjobRef { job: t, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t, index: 1 }, 1);
        let sys_b = b.build().unwrap();

        let c = cfg(40, 200);
        let mut engine = SimEngine::new();
        let mut out = SimResult::default();
        engine.simulate_into(&sys_a, &c, &mut out);
        assert_eq!(out, simulate(&sys_a, &c));
        engine.simulate_into(&sys_b, &c, &mut out);
        assert_eq!(out, simulate(&sys_b, &c));
        engine.simulate_into(&sys_a, &c, &mut out);
        assert_eq!(out, simulate(&sys_a, &c));
    }
}

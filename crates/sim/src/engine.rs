//! The indexed discrete-event engine.
//!
//! Instances live in a flat [`InstanceArena`]; the [`Calendar`] schedule
//! carries typed [`Event`]s holding ids and processor indices only. One
//! `pop_min` loop replaces the retired three-phase timestep: the phase
//! ranks baked into the event keys (see [`crate::schedule`]) make pure
//! pop order reproduce it exactly, which `tests/oracle.rs` pins against
//! the retired loop (kept as [`crate::legacy`]) event for event.
//!
//! Processors whose state did not change at an instant are never visited —
//! the retired loop re-examined every processor at every event time, but a
//! processor with no completion and no arrival either keeps running
//! (nothing new to preempt it: its ready set is unchanged) or is idle with
//! an empty ready queue (dispatch never leaves work queued on an idle
//! processor), so skipping it cannot change the schedule.

use crate::arena::{InstanceArena, InstanceId, InstanceState};
use crate::result::SimResult;
use crate::schedule::{ord_check, ord_complete, ord_release, Calendar, Event, NO_TRIGGER};
use rta_core::policy::{policy_for, ReadyInstance, ReadySet, SimScheduler};
use rta_curves::Time;
use rta_model::{JobId, ProcessorId, TaskSystem};

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Instances released in `[0, window]` are simulated.
    pub window: Time,
    /// Hard stop: instances not completed by this time are reported as
    /// incomplete (matches the analysis convention).
    pub horizon: Time,
}

impl SimConfig {
    /// Window/horizon matching the defaults of `rta-model::horizon` (and
    /// hence of the analyses), so simulation and analysis cover the same
    /// instances.
    pub fn defaults_for(sys: &TaskSystem) -> SimConfig {
        let window = rta_model::horizon::default_arrival_window(
            sys,
            rta_model::horizon::DEFAULT_WINDOW_CYCLES,
        );
        SimConfig {
            window,
            horizon: rta_model::horizon::analysis_horizon(sys, window),
        }
    }
}

/// Per-processor run state. Discipline logic lives behind
/// [`SimScheduler`]; the engine owns the queues.
struct ProcState {
    scheduler: Box<dyn SimScheduler>,
    /// Ready instances, by arena id. Order is insertion order; policies
    /// select by index through the views buffer.
    ready: Vec<InstanceId>,
    /// Policy-facing views of `ready`, rebuilt in place per decision.
    views: Vec<ReadyInstance>,
    running: Option<(InstanceId, Time)>, // (instance, dispatched at)
    /// Dispatch generation: bumped on every dispatch and preemption, so a
    /// pending [`Event::HopComplete`] from an unseated dispatch is
    /// recognized as stale when it pops.
    run_gen: u32,
    /// Whether a [`Event::PreemptCheck`] is already scheduled for this
    /// processor at the instant being drained.
    check_pending: bool,
    /// Set when a second state change coalesces into the pending check:
    /// its `trigger` no longer names the only new arrival, so the check
    /// must consult the full ready set.
    multi_trigger: bool,
}

/// Rebuild the policy-facing views of `ready` in the scratch buffer.
fn fill_views(views: &mut Vec<ReadyInstance>, ready: &[InstanceId], arena: &InstanceArena) {
    views.clear();
    views.extend(ready.iter().map(|&id| view(&arena[id])));
}

/// The policy-facing view of one instance.
fn view(inst: &InstanceState) -> ReadyInstance {
    ReadyInstance {
        subjob: inst.subjob(),
        hop_release: inst.hop_release,
        seq: inst.seq,
    }
}

/// A reusable simulation workspace: the arena, the calendar and the
/// per-processor queues survive across runs, so a Monte-Carlo driver pays
/// the allocations once per thread, not once per draw.
#[derive(Default)]
pub struct SimEngine {
    cal: Calendar,
    arena: InstanceArena,
    procs: Vec<ProcState>,
}

impl SimEngine {
    /// A fresh workspace.
    pub fn new() -> SimEngine {
        SimEngine::default()
    }

    /// Run one simulation, writing the outcome into `out` (whose buffers
    /// are recycled). Equivalent to [`simulate`] but allocation-amortized
    /// across repeated runs.
    pub fn simulate_into(&mut self, sys: &TaskSystem, cfg: &SimConfig, out: &mut SimResult) {
        sys.validate(true).expect("system must be valid");

        self.arena.clear();
        out.releases.clear();
        out.hop_completions.clear();
        out.horizon = cfg.horizon;
        #[cfg(feature = "trace")]
        {
            out.service_intervals.clear();
            out.hop_records.clear();
        }

        // Primary releases in job-then-instance order: `seq` order is the
        // deterministic tie-break every policy bottoms out in.
        let mut expected_events = 0usize;
        for job in sys.jobs() {
            let times = job.arrival.release_times(cfg.window);
            expected_events += times.len() * job.subjobs.len();
            out.hop_completions
                .push(vec![vec![None; job.subjobs.len()]; times.len()]);
            out.releases.push(times);
        }
        self.cal.reset(cfg.horizon, expected_events);
        let mut seq: u64 = 0;
        for (k, times) in out.releases.iter().enumerate() {
            let job = &sys.jobs()[k];
            for (i, &t) in times.iter().enumerate() {
                let id = self.arena.push(InstanceState {
                    job: JobId(k),
                    m: (i + 1) as u32,
                    hop: 0,
                    remaining: job.subjobs[0].exec,
                    hop_release: t,
                    seq,
                    #[cfg(feature = "trace")]
                    started: Time(-1),
                });
                self.cal.push(t, ord_release(seq), Event::Release(id));
                seq += 1;
            }
        }

        // Fresh schedulers (stateful cursors must restart), recycled queues.
        self.procs.truncate(sys.processors().len());
        for (i, p) in self.procs.iter_mut().enumerate() {
            p.scheduler =
                policy_for(sys.processors()[i].scheduler).sim_scheduler(sys, ProcessorId(i));
            p.ready.clear();
            p.views.clear();
            p.running = None;
            p.run_gen = 0;
            p.check_pending = false;
            p.multi_trigger = false;
        }
        for i in self.procs.len()..sys.processors().len() {
            self.procs.push(ProcState {
                scheduler: policy_for(sys.processors()[i].scheduler)
                    .sim_scheduler(sys, ProcessorId(i)),
                ready: Vec::new(),
                views: Vec::new(),
                running: None,
                run_gen: 0,
                check_pending: false,
                multi_trigger: false,
            });
        }

        let SimEngine { cal, arena, procs } = self;
        while let Some((t, ev)) = cal.pop_min() {
            if t > cfg.horizon {
                break;
            }
            match ev {
                Event::HopComplete { proc, gen } => {
                    let p = &mut procs[proc as usize];
                    if p.run_gen != gen {
                        continue; // unseated by a preemption: stale
                    }
                    let (id, _at) = p.running.take().expect("generation matched");
                    let inst = &arena[id];
                    debug_assert_eq!(_at + inst.remaining, t);
                    debug_assert_eq!(sys.subjob(inst.subjob()).processor.0, proc as usize);
                    #[cfg(feature = "trace")]
                    {
                        if _at < t {
                            out.service_intervals
                                .entry(inst.subjob())
                                .or_default()
                                .push((_at, t));
                        }
                        out.hop_records.push(crate::result::HopRecord {
                            job: inst.job,
                            m: inst.m,
                            hop: inst.hop,
                            release: inst.hop_release,
                            start: inst.started,
                            finish: t,
                        });
                    }
                    out.hop_completions[inst.job.0][inst.m as usize - 1][inst.hop as usize] =
                        Some(t);
                    let job = sys.job(inst.job);
                    if (inst.hop as usize) + 1 < job.subjobs.len() {
                        // Direct Synchronization: the next hop releases at
                        // this very instant; its Release event sorts after
                        // the remaining completions of this instant.
                        let inst = &mut arena[id];
                        inst.hop += 1;
                        inst.remaining = job.subjobs[inst.hop as usize].exec;
                        inst.hop_release = t;
                        inst.seq = seq;
                        #[cfg(feature = "trace")]
                        {
                            inst.started = Time(-1);
                        }
                        cal.push(t, ord_release(seq), Event::Release(id));
                        seq += 1;
                    }
                    let p = &mut procs[proc as usize];
                    if !p.check_pending {
                        p.check_pending = true;
                        cal.push(
                            t,
                            ord_check(proc),
                            Event::PreemptCheck {
                                proc,
                                trigger: NO_TRIGGER,
                            },
                        );
                    } else {
                        p.multi_trigger = true;
                    }
                }
                Event::Release(id) => {
                    let pidx = sys.subjob(arena[id].subjob()).processor.0;
                    let p = &mut procs[pidx];
                    p.ready.push(id);
                    if !p.check_pending {
                        p.check_pending = true;
                        let proc = pidx as u32;
                        cal.push(
                            t,
                            ord_check(proc),
                            Event::PreemptCheck {
                                proc,
                                trigger: id.0,
                            },
                        );
                    } else {
                        p.multi_trigger = true;
                    }
                }
                Event::PreemptCheck { proc, trigger } => {
                    let p = &mut procs[proc as usize];
                    p.check_pending = false;
                    let multi = std::mem::take(&mut p.multi_trigger);
                    if let Some((id, at)) = p.running {
                        if !p.ready.is_empty() {
                            let running_view = view(&arena[id]);
                            // With exactly one release since the last
                            // decision, that instance is the only possible
                            // preemptor: every other ready instance already
                            // declined against this running instance (or
                            // lost the dispatch that seated it), and
                            // `preempts` is an any-exists test, so the
                            // one-element view is equivalent to the full
                            // set.
                            let wants = if multi || trigger == NO_TRIGGER {
                                fill_views(&mut p.views, &p.ready, arena);
                                p.scheduler
                                    .preempts(sys, &running_view, &ReadySet::new(&p.views))
                            } else {
                                let tv = [view(&arena[InstanceId(trigger)])];
                                p.scheduler
                                    .preempts(sys, &running_view, &ReadySet::new(&tv))
                            };
                            if wants {
                                #[cfg(feature = "trace")]
                                if at < t {
                                    out.service_intervals
                                        .entry(arena[id].subjob())
                                        .or_default()
                                        .push((at, t));
                                }
                                let inst = &mut arena[id];
                                inst.remaining -= t - at;
                                debug_assert!(inst.remaining > Time::ZERO);
                                p.ready.push(id);
                                p.running = None;
                                p.run_gen = p.run_gen.wrapping_add(1);
                            }
                        }
                    }
                    if p.running.is_none() && !p.ready.is_empty() {
                        fill_views(&mut p.views, &p.ready, arena);
                        if let Some(i) = p.scheduler.pick_idx(sys, &ReadySet::new(&p.views)) {
                            let id = p.ready.swap_remove(i);
                            p.running = Some((id, t));
                            p.run_gen = p.run_gen.wrapping_add(1);
                            #[cfg(feature = "trace")]
                            if arena[id].started < Time::ZERO {
                                arena[id].started = t;
                            }
                            cal.push(
                                t + arena[id].remaining,
                                ord_complete(proc),
                                Event::HopComplete {
                                    proc,
                                    gen: p.run_gen,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Run one simulation in a fresh workspace.
pub fn simulate(sys: &TaskSystem, cfg: &SimConfig) -> SimResult {
    let mut out = SimResult::default();
    SimEngine::new().simulate_into(sys, cfg, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SubjobRef, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    fn cfg(window: i64, horizon: i64) -> SimConfig {
        SimConfig {
            window: Time(window),
            horizon: Time(horizon),
        }
    }

    #[test]
    fn single_job_runs_back_to_back() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(10), periodic(10), vec![(p, Time(4))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = simulate(&sys, &cfg(30, 100));
        assert_eq!(r.instances(JobId(0)), 4);
        for m in 1..=4 {
            assert_eq!(r.response(JobId(0), m), Some(Time(4)), "m={m}");
        }
    }

    #[test]
    fn spp_preemption() {
        // T2 (low prio, τ=6) starts at 0; T1 (high prio, τ=2) arrives at 2:
        // preempts, T2 finishes at 10.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2), Time(5)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T1 instances run immediately on arrival.
        assert_eq!(r.response(JobId(0), 1), Some(Time(2)));
        assert_eq!(r.response(JobId(0), 2), Some(Time(2)));
        // T2: 6 exec + 4 preemption = completes at 10.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(10)));
        // Observed service of T2 has a hole during preemptions.
        #[cfg(feature = "trace")]
        {
            let s = r.observed_service(SubjobRef { job: t2, index: 0 });
            assert_eq!(s.eval(Time(2)), 2);
            assert_eq!(s.eval(Time(4)), 2);
            assert_eq!(s.eval(Time(5)), 3);
            assert_eq!(s.eval(Time(7)), 3);
            assert_eq!(s.eval(Time(10)), 6);
        }
    }

    #[test]
    fn spnp_does_not_preempt() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(1)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T2 blocks T1 for its whole execution.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(8)));
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(3)]),
            vec![(p, Time(2))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T2 first (arrived at 0), then T1 at 6.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(8)));
    }

    #[test]
    fn chain_release_cascades_same_instant() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            periodic(50),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = simulate(&sys, &cfg(100, 400));
        // Hop 2 starts the instant hop 1 completes.
        assert_eq!(r.hop_completions[0][0][0], Some(Time(3)));
        assert_eq!(r.hop_completions[0][0][1], Some(Time(7)));
    }

    #[test]
    fn overload_leaves_instances_incomplete() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(10), periodic(10), vec![(p, Time(8))]);
        let t2 = b.add_job("T2", Time(10), periodic(10), vec![(p, Time(8))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(100, 120));
        assert!(r.wcrt(JobId(1)).is_none(), "T2 must starve");
        // T1 itself stays fine.
        assert_eq!(r.wcrt(JobId(0)), Some(Time(8)));
    }

    #[test]
    fn backlogged_instances_of_one_subjob_are_fifo() {
        // Period 3, exec 5: instances pile up; each must complete in
        // release order, back to back.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t = b.add_job("T1", Time(100), periodic(3), vec![(p, Time(5))]);
        b.set_priority(SubjobRef { job: t, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(12, 200));
        // Releases at 0,3,6,9,12: completions at 5,10,15,20,25.
        for m in 1..=5 {
            assert_eq!(r.completion(JobId(0), m), Some(Time(5 * m as i64)), "m={m}");
        }
    }

    #[test]
    fn fcfs_tie_break_is_deterministic_by_job_index() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(4))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(10, 100));
        // Simultaneous arrivals: the lower job index goes first.
        assert_eq!(r.completion(JobId(0), 1), Some(Time(4)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(10)));
    }

    #[test]
    fn iwrr_interleaves_backlogged_flows_by_weight() {
        // T1 (w=2, τ=2) releases 3 instances at 0; T2 (w=1, τ=3) releases
        // 2 at 0. Rounds serve T1, T2, T1 (cycle 2), so the timeline is
        // T1 [0,2) T2 [2,5) T1 [5,7) | T1 [7,9) T2 [9,12).
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Iwrr);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0), Time(0), Time(0)]),
            vec![(p, Time(2))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0), Time(0)]),
            vec![(p, Time(3))],
        );
        b.set_weight(SubjobRef { job: t1, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(2)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(5)));
        assert_eq!(r.completion(JobId(0), 2), Some(Time(7)));
        assert_eq!(r.completion(JobId(0), 3), Some(Time(9)));
        assert_eq!(r.completion(JobId(1), 2), Some(Time(12)));
    }

    #[test]
    fn mixed_schedulers_along_one_chain() {
        // SPP first hop, FCFS second: the chain crosses policies intact.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
        let t1 = b.add_job(
            "T1",
            Time(100),
            periodic(20),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job("T2", Time(100), periodic(20), vec![(p2, Time(6))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(20, 200));
        // T2 starts on P2 at 0; T1's hop 2 arrives at 3, waits until 6.
        assert_eq!(r.hop_completions[0][0][0], Some(Time(3)));
        assert_eq!(r.hop_completions[0][0][1], Some(Time(10)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn observed_utilization_aggregates_processor_busy_time() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(3))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(5)]),
            vec![(p, Time(2))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(20, 100));
        let u = r.observed_utilization(&sys, rta_model::ProcessorId(0));
        // Busy [0,3) and [5,7).
        assert_eq!(u.eval(Time(0)), 0);
        assert_eq!(u.eval(Time(3)), 3);
        assert_eq!(u.eval(Time(5)), 3);
        assert_eq!(u.eval(Time(7)), 5);
        assert_eq!(u.eval(Time(50)), 5);
    }

    #[test]
    fn completion_beats_preemption_at_same_instant() {
        // T2 completes exactly when T1 arrives: no preemption of a finished
        // instance, T1 starts at the same instant.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(4)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(4))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 100));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(4)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(6)));
    }

    #[test]
    fn coalesced_check_consults_the_full_ready_set() {
        // Two releases at the same instant coalesce into one PreemptCheck
        // whose `trigger` names only the first. The first (T1a) is lower
        // priority than the running T2 and would not preempt on its own;
        // the second (T1b) must still get its preemption.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1a = b.add_job(
            "T1a",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2)]),
            vec![(p, Time(1))],
        );
        let t1b = b.add_job(
            "T1b",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2)]),
            vec![(p, Time(1))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(10))],
        );
        b.set_priority(SubjobRef { job: t1a, index: 0 }, 3);
        b.set_priority(SubjobRef { job: t1b, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T1b preempts T2 at 2 and finishes at 3; T2 resumes and finishes
        // at 11; T1a (lowest priority) runs last.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(3)));
        assert_eq!(r.completion(JobId(2), 1), Some(Time(11)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(12)));
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_runs() {
        // One engine, two different systems back to back: results must
        // match fresh single-run engines (workspace recycling is benign).
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job("T1", Time(100), periodic(7), vec![(p, Time(3))]);
        let sys_a = b.build().unwrap();

        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t = b.add_job(
            "T1",
            Time(100),
            periodic(10),
            vec![(p1, Time(2)), (p2, Time(5))],
        );
        b.set_priority(SubjobRef { job: t, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t, index: 1 }, 1);
        let sys_b = b.build().unwrap();

        let c = cfg(40, 200);
        let mut engine = SimEngine::new();
        let mut out = SimResult::default();
        engine.simulate_into(&sys_a, &c, &mut out);
        assert_eq!(out, simulate(&sys_a, &c));
        engine.simulate_into(&sys_b, &c, &mut out);
        assert_eq!(out, simulate(&sys_b, &c));
        engine.simulate_into(&sys_a, &c, &mut out);
        assert_eq!(out, simulate(&sys_a, &c));
    }
}

//! The event-driven simulation engine.

use crate::result::SimResult;
use rta_core::policy::{policy_for, ReadyInstance, SimScheduler};
use rta_curves::Time;
use rta_model::{JobId, ProcessorId, SubjobRef, TaskSystem};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Instances released in `[0, window]` are simulated.
    pub window: Time,
    /// Hard stop: instances not completed by this time are reported as
    /// incomplete (matches the analysis convention).
    pub horizon: Time,
}

impl SimConfig {
    /// Window/horizon matching the defaults of `rta-model::horizon` (and
    /// hence of the analyses), so simulation and analysis cover the same
    /// instances.
    pub fn defaults_for(sys: &TaskSystem) -> SimConfig {
        let window = rta_model::horizon::default_arrival_window(
            sys,
            rta_model::horizon::DEFAULT_WINDOW_CYCLES,
        );
        SimConfig {
            window,
            horizon: rta_model::horizon::analysis_horizon(sys, window),
        }
    }
}

/// A live instance working through its chain.
#[derive(Clone, Debug)]
struct Instance {
    job: JobId,
    m: usize, // 1-based instance index
    hop: usize,
    remaining: Time,
    hop_release: Time,
    seq: u64, // global release sequence for deterministic tie-breaks
}

/// The policy-facing view of an [`Instance`].
fn view(inst: &Instance) -> ReadyInstance {
    ReadyInstance {
        subjob: SubjobRef {
            job: inst.job,
            index: inst.hop,
        },
        hop_release: inst.hop_release,
        seq: inst.seq,
    }
}

/// Per-processor run state: the policy's dispatcher plus the queues. All
/// discipline-specific logic lives behind [`SimScheduler`], obtained from
/// the processor's [`rta_core::policy::ServicePolicy`].
struct Proc {
    scheduler: Box<dyn SimScheduler>,
    ready: Vec<Instance>,
    running: Option<(Instance, Time)>, // (instance, started_at)
    /// Policy-facing views of `ready`, rebuilt in place per decision —
    /// reusing one buffer keeps the scheduling hot path allocation-free.
    views: Vec<ReadyInstance>,
}

impl Proc {
    fn fill_views(&mut self) {
        self.views.clear();
        self.views.extend(self.ready.iter().map(view));
    }

    /// Pick the index of the next ready instance per policy.
    fn pick(&mut self, sys: &TaskSystem) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        self.fill_views();
        self.scheduler.pick(sys, &self.views)
    }

    /// Would any ready instance preempt the running one?
    fn preempts(&mut self, sys: &TaskSystem, running: &Instance) -> bool {
        if self.ready.is_empty() {
            return false;
        }
        self.fill_views();
        self.scheduler.preempts(sys, &view(running), &self.views)
    }
}

/// Run the simulation.
pub fn simulate(sys: &TaskSystem, cfg: &SimConfig) -> SimResult {
    sys.validate(true).expect("system must be valid");
    let njobs = sys.jobs().len();

    // Primary releases.
    let mut releases: Vec<Vec<Time>> = Vec::with_capacity(njobs);
    let mut heap: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
    let mut pending: HashMap<u64, Instance> = HashMap::new();
    let mut seq: u64 = 0;
    for (k, job) in sys.jobs().iter().enumerate() {
        let times = job.arrival.release_times(cfg.window);
        for (i, &t) in times.iter().enumerate() {
            let inst = Instance {
                job: JobId(k),
                m: i + 1,
                hop: 0,
                remaining: job.subjobs[0].exec,
                hop_release: t,
                seq,
            };
            heap.push(Reverse((t, seq)));
            pending.insert(seq, inst);
            seq += 1;
        }
        releases.push(times);
    }

    let mut hop_completions: Vec<Vec<Vec<Option<Time>>>> = sys
        .jobs()
        .iter()
        .enumerate()
        .map(|(k, job)| vec![vec![None; job.subjobs.len()]; releases[k].len()])
        .collect();
    let mut service_intervals: HashMap<SubjobRef, Vec<(Time, Time)>> = HashMap::new();

    let mut procs: Vec<Proc> = sys
        .processors()
        .iter()
        .enumerate()
        .map(|(i, p)| Proc {
            scheduler: policy_for(p.scheduler).sim_scheduler(sys, ProcessorId(i)),
            ready: Vec::new(),
            running: None,
            views: Vec::new(),
        })
        .collect();

    let mut record_interval = |r: SubjobRef, from: Time, to: Time| {
        if from < to {
            service_intervals.entry(r).or_default().push((from, to));
        }
    };

    loop {
        // Next event time: earliest pending release or earliest completion.
        let next_release = heap.peek().map(|Reverse((t, _))| *t);
        let next_completion = procs
            .iter()
            .filter_map(|p| p.running.as_ref().map(|(inst, at)| *at + inst.remaining))
            .min();
        let t = match (next_release, next_completion) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        if t > cfg.horizon {
            break;
        }

        // 1. Completions at t.
        for (pidx, p) in procs.iter_mut().enumerate() {
            let done = matches!(&p.running, Some((inst, at)) if *at + inst.remaining == t);
            if !done {
                continue;
            }
            let (mut inst, at) = p.running.take().expect("checked");
            let r = SubjobRef {
                job: inst.job,
                index: inst.hop,
            };
            debug_assert_eq!(sys.subjob(r).processor.0, pidx);
            record_interval(r, at, t);
            hop_completions[inst.job.0][inst.m - 1][inst.hop] = Some(t);
            let job = sys.job(inst.job);
            if inst.hop + 1 < job.subjobs.len() {
                // Direct synchronization: release the next hop immediately.
                inst.hop += 1;
                inst.remaining = job.subjobs[inst.hop].exec;
                inst.hop_release = t;
                inst.seq = seq;
                heap.push(Reverse((t, seq)));
                pending.insert(seq, inst);
                seq += 1;
            }
        }

        // 2. Releases at t.
        while matches!(heap.peek(), Some(Reverse((rt, _))) if *rt == t) {
            let Reverse((_, s)) = heap.pop().expect("peeked");
            let inst = pending.remove(&s).expect("pending");
            let r = SubjobRef {
                job: inst.job,
                index: inst.hop,
            };
            let pidx = sys.subjob(r).processor.0;
            procs[pidx].ready.push(inst);
        }

        // 3. Re-dispatch.
        for p in procs.iter_mut() {
            // Preemption (SPP only).
            if let Some((inst, at)) = p.running.take() {
                if p.preempts(sys, &inst) {
                    let r = SubjobRef {
                        job: inst.job,
                        index: inst.hop,
                    };
                    record_interval(r, at, t);
                    let mut inst = inst;
                    inst.remaining -= t - at;
                    debug_assert!(inst.remaining > Time::ZERO);
                    p.ready.push(inst);
                } else {
                    p.running = Some((inst, at));
                }
            }
            if p.running.is_none() {
                if let Some(i) = p.pick(sys) {
                    let inst = p.ready.swap_remove(i);
                    p.running = Some((inst, t));
                }
            }
        }
    }

    SimResult {
        releases,
        hop_completions,
        service_intervals,
        horizon: cfg.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    fn cfg(window: i64, horizon: i64) -> SimConfig {
        SimConfig {
            window: Time(window),
            horizon: Time(horizon),
        }
    }

    #[test]
    fn single_job_runs_back_to_back() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(10), periodic(10), vec![(p, Time(4))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = simulate(&sys, &cfg(30, 100));
        assert_eq!(r.instances(JobId(0)), 4);
        for m in 1..=4 {
            assert_eq!(r.response(JobId(0), m), Some(Time(4)), "m={m}");
        }
    }

    #[test]
    fn spp_preemption() {
        // T2 (low prio, τ=6) starts at 0; T1 (high prio, τ=2) arrives at 2:
        // preempts, T2 finishes at 10.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(2), Time(5)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T1 instances run immediately on arrival.
        assert_eq!(r.response(JobId(0), 1), Some(Time(2)));
        assert_eq!(r.response(JobId(0), 2), Some(Time(2)));
        // T2: 6 exec + 4 preemption = completes at 10.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(10)));
        // Observed service of T2 has a hole during preemptions.
        let s = r.observed_service(SubjobRef { job: t2, index: 0 });
        assert_eq!(s.eval(Time(2)), 2);
        assert_eq!(s.eval(Time(4)), 2);
        assert_eq!(s.eval(Time(5)), 3);
        assert_eq!(s.eval(Time(7)), 3);
        assert_eq!(s.eval(Time(10)), 6);
    }

    #[test]
    fn spnp_does_not_preempt() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(1)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T2 blocks T1 for its whole execution.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(8)));
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(3)]),
            vec![(p, Time(2))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        // T2 first (arrived at 0), then T1 at 6.
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(8)));
    }

    #[test]
    fn chain_release_cascades_same_instant() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            periodic(50),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = simulate(&sys, &cfg(100, 400));
        // Hop 2 starts the instant hop 1 completes.
        assert_eq!(r.hop_completions[0][0][0], Some(Time(3)));
        assert_eq!(r.hop_completions[0][0][1], Some(Time(7)));
    }

    #[test]
    fn overload_leaves_instances_incomplete() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(10), periodic(10), vec![(p, Time(8))]);
        let t2 = b.add_job("T2", Time(10), periodic(10), vec![(p, Time(8))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(100, 120));
        assert!(r.wcrt(JobId(1)).is_none(), "T2 must starve");
        // T1 itself stays fine.
        assert_eq!(r.wcrt(JobId(0)), Some(Time(8)));
    }

    #[test]
    fn backlogged_instances_of_one_subjob_are_fifo() {
        // Period 3, exec 5: instances pile up; each must complete in
        // release order, back to back.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t = b.add_job("T1", Time(100), periodic(3), vec![(p, Time(5))]);
        b.set_priority(SubjobRef { job: t, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(12, 200));
        // Releases at 0,3,6,9,12: completions at 5,10,15,20,25.
        for m in 1..=5 {
            assert_eq!(r.completion(JobId(0), m), Some(Time(5 * m as i64)), "m={m}");
        }
    }

    #[test]
    fn fcfs_tie_break_is_deterministic_by_job_index() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(4))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(6))],
        );
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(10, 100));
        // Simultaneous arrivals: the lower job index goes first.
        assert_eq!(r.completion(JobId(0), 1), Some(Time(4)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(10)));
    }

    #[test]
    fn iwrr_interleaves_backlogged_flows_by_weight() {
        // T1 (w=2, τ=2) releases 3 instances at 0; T2 (w=1, τ=3) releases
        // 2 at 0. Rounds serve T1, T2, T1 (cycle 2), so the timeline is
        // T1 [0,2) T2 [2,5) T1 [5,7) | T1 [7,9) T2 [9,12).
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Iwrr);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0), Time(0), Time(0)]),
            vec![(p, Time(2))],
        );
        b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0), Time(0)]),
            vec![(p, Time(3))],
        );
        b.set_weight(SubjobRef { job: t1, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 200));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(2)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(5)));
        assert_eq!(r.completion(JobId(0), 2), Some(Time(7)));
        assert_eq!(r.completion(JobId(0), 3), Some(Time(9)));
        assert_eq!(r.completion(JobId(1), 2), Some(Time(12)));
    }

    #[test]
    fn mixed_schedulers_along_one_chain() {
        // SPP first hop, FCFS second: the chain crosses policies intact.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
        let t1 = b.add_job(
            "T1",
            Time(100),
            periodic(20),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job("T2", Time(100), periodic(20), vec![(p2, Time(6))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(20, 200));
        // T2 starts on P2 at 0; T1's hop 2 arrives at 3, waits until 6.
        assert_eq!(r.hop_completions[0][0][0], Some(Time(3)));
        assert_eq!(r.hop_completions[0][0][1], Some(Time(10)));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(6)));
    }

    #[test]
    fn observed_utilization_aggregates_processor_busy_time() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(3))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(5)]),
            vec![(p, Time(2))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(20, 100));
        let u = r.observed_utilization(&sys, rta_model::ProcessorId(0));
        // Busy [0,3) and [5,7).
        assert_eq!(u.eval(Time(0)), 0);
        assert_eq!(u.eval(Time(3)), 3);
        assert_eq!(u.eval(Time(5)), 3);
        assert_eq!(u.eval(Time(7)), 5);
        assert_eq!(u.eval(Time(50)), 5);
    }

    #[test]
    fn completion_beats_preemption_at_same_instant() {
        // T2 completes exactly when T1 arrives: no preemption of a finished
        // instance, T1 starts at the same instant.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Trace(vec![Time(4)]),
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(4))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = simulate(&sys, &cfg(50, 100));
        assert_eq!(r.completion(JobId(1), 1), Some(Time(4)));
        assert_eq!(r.completion(JobId(0), 1), Some(Time(6)));
    }
}

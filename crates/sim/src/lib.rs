//! # rta-sim — discrete-event simulator for distributed job chains
//!
//! Simulates the exact system model of the ICPP'98 paper: jobs as chains of
//! subjobs over processors running SPP, SPNP, FCFS or IWRR schedulers, with
//! the Direct Synchronization protocol (an instance's completion on hop `j`
//! releases hop `j+1` immediately).
//!
//! The simulator is the workspace's ground truth:
//!
//! * for all-SPP systems, simulated response times must **equal** the exact
//!   analysis of `rta-core` (Theorem 1) on the same trace;
//! * for SPNP/FCFS/IWRR systems, simulated responses must lie **at or
//!   below** the Theorem 4 bounds;
//! * recorded per-subjob service intervals reconstruct observed service
//!   functions, which must be bracketed by the analytic bounds at the first
//!   hop (exact arrivals) and must match the exact Theorem 3 curves on SPP.
//!
//! The engine is an indexed discrete-event core (see DESIGN.md §4f): a
//! sorted primary-release table and one pending-completion slot per
//! processor, instances in a flat arena, per-processor ready queues
//! feeding zero-allocation policy decisions. It is exact on
//! the integer tick lattice — no quantum loop, no floating point.
//!
//! ## Features
//!
//! * `trace` — record per-subjob serving intervals and per-hop
//!   release/start/finish records ([`SimResult::observed_service`],
//!   [`SimResult::observed_utilization`], `SimResult::hop_records`).
//!   Off by default: the hot path then records completion times only.
//!
//! ## Monte-Carlo replication
//!
//! [`batch`] replicates bursty arrival draws across the worker pool with
//! per-thread engine workspaces, producing per-job empirical response-time
//! distributions and the observed-vs-analytic tightness gap per policy.
//! [`wcdfp`] is its verdict-only sibling: the same event loop behind a
//! counters-only observer, streaming per-job deadline-failure probability
//! estimates (confidence intervals, P² sketches, adaptive stopping)
//! without materializing a result per draw.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod engine;
mod result;

pub mod batch;
pub mod wcdfp;

#[doc(hidden)]
pub mod legacy;

pub use engine::{simulate, SimConfig, SimEngine};
#[cfg(feature = "trace")]
pub use result::HopRecord;
pub use result::SimResult;

//! # rta-sim — discrete-event simulator for distributed job chains
//!
//! Simulates the exact system model of the ICPP'98 paper: jobs as chains of
//! subjobs over processors running SPP, SPNP or FCFS schedulers, with the
//! Direct Synchronization protocol (an instance's completion on hop `j`
//! releases hop `j+1` immediately).
//!
//! The simulator is the workspace's ground truth:
//!
//! * for all-SPP systems, simulated response times must **equal** the exact
//!   analysis of `rta-core` (Theorem 1) on the same trace;
//! * for SPNP/FCFS systems, simulated responses must lie **at or below**
//!   the Theorem 4 bounds;
//! * recorded per-subjob service intervals reconstruct observed service
//!   functions, which must be bracketed by the analytic bounds at the first
//!   hop (exact arrivals) and must match the exact Theorem 3 curves on SPP.
//!
//! The engine is event-driven and exact on the integer tick lattice — no
//! quantum loop, no floating point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod result;

pub use engine::{simulate, SimConfig};
pub use result::SimResult;

//! Simulation results and observed-curve reconstruction.
//!
//! The hot path records completion times only. Service intervals and
//! per-hop trace records — everything needed to *reconstruct observed
//! curves* rather than check response times — sit behind the `trace`
//! feature so throughput runs pay nothing for them.

use rta_curves::Time;
use rta_model::JobId;

#[cfg(feature = "trace")]
use rta_curves::{Curve, Segment};
#[cfg(feature = "trace")]
use rta_model::SubjobRef;
#[cfg(feature = "trace")]
use std::collections::HashMap;

/// One completed hop of one instance (`trace` feature): when it was
/// released at the hop, when it first got the processor, and when it
/// finished. Records appear in completion order.
#[cfg(feature = "trace")]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HopRecord {
    /// The job the instance belongs to.
    pub job: JobId,
    /// 1-based instance index.
    pub m: u32,
    /// 0-based hop (subjob index).
    pub hop: u32,
    /// Release time at this hop.
    pub release: Time,
    /// First dispatch time at this hop.
    pub start: Time,
    /// Completion time of this hop.
    pub finish: Time,
}

/// Outcome of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Release time of each analyzed instance, per job: `releases[k][m-1]`.
    pub releases: Vec<Vec<Time>>,
    /// Per-hop completion times: `hop_completions[k][m-1][j]`; `None` when
    /// the hop did not complete before the simulation horizon.
    pub hop_completions: Vec<Vec<Vec<Option<Time>>>>,
    /// Serving intervals `(from, to)` per subjob, in time order.
    #[cfg(feature = "trace")]
    pub service_intervals: HashMap<SubjobRef, Vec<(Time, Time)>>,
    /// Per-hop release/start/finish records, in completion order.
    #[cfg(feature = "trace")]
    pub hop_records: Vec<HopRecord>,
    /// The simulation horizon that was used.
    pub horizon: Time,
}

impl Default for SimResult {
    /// An empty result, ready to be filled by
    /// [`crate::SimEngine::simulate_into`].
    fn default() -> SimResult {
        SimResult {
            releases: Vec::new(),
            hop_completions: Vec::new(),
            #[cfg(feature = "trace")]
            service_intervals: HashMap::new(),
            #[cfg(feature = "trace")]
            hop_records: Vec::new(),
            horizon: Time::ZERO,
        }
    }
}

impl SimResult {
    /// End-to-end completion time of instance `m` (1-based) of a job.
    pub fn completion(&self, job: JobId, m: usize) -> Option<Time> {
        let hops = &self.hop_completions[job.0][m - 1];
        hops.last().copied().flatten()
    }

    /// End-to-end response time of instance `m` (1-based) of a job.
    pub fn response(&self, job: JobId, m: usize) -> Option<Time> {
        self.completion(job, m)
            .map(|c| c - self.releases[job.0][m - 1])
    }

    /// Number of analyzed instances of a job.
    pub fn instances(&self, job: JobId) -> usize {
        self.releases[job.0].len()
    }

    /// Worst observed end-to-end response of a job; `None` if any instance
    /// did not complete.
    pub fn wcrt(&self, job: JobId) -> Option<Time> {
        let mut worst = Time::ZERO;
        for m in 1..=self.instances(job) {
            worst = worst.max(self.response(job, m)?);
        }
        Some(worst)
    }

    /// Reconstruct the observed service function of a subjob from its
    /// serving intervals: slope 1 while serving, flat elsewhere.
    #[cfg(feature = "trace")]
    pub fn observed_service(&self, r: SubjobRef) -> Curve {
        let mut segs: Vec<Segment> = Vec::new();
        let mut acc: i64 = 0;
        if let Some(intervals) = self.service_intervals.get(&r) {
            for &(from, to) in intervals {
                debug_assert!(from <= to);
                if from == to {
                    continue;
                }
                // Contiguous intervals and intervals starting at 0 would
                // duplicate the previous breakpoint — replace it instead.
                if segs.last().map(|s| s.start) == Some(from) {
                    segs.pop();
                } else if segs.is_empty() && from > Time::ZERO {
                    segs.push(Segment::new(Time::ZERO, 0, 0));
                }
                segs.push(Segment::new(from, acc, 1));
                acc += (to - from).ticks();
                segs.push(Segment::new(to, acc, 0));
            }
        }
        if segs.is_empty() {
            segs.push(Segment::new(Time::ZERO, 0, 0));
        }
        Curve::from_segments(segs)
    }

    /// Observed utilization function of a processor (Definition 7): total
    /// busy time over `[0, t]`, reconstructed from the serving intervals of
    /// every subjob the system maps to it.
    ///
    /// For any work-conserving scheduler this must equal the Theorem 7
    /// utilization function computed from the exact aggregate workload —
    /// an invariant checked by the integration tests.
    #[cfg(feature = "trace")]
    pub fn observed_utilization(
        &self,
        sys: &rta_model::TaskSystem,
        p: rta_model::ProcessorId,
    ) -> Curve {
        let mut intervals: Vec<(Time, Time)> = sys
            .subjobs_on(p)
            .into_iter()
            .filter_map(|r| self.service_intervals.get(&r))
            .flatten()
            .copied()
            .collect();
        intervals.sort();
        // Serving intervals of one processor never overlap; merge adjacent.
        let mut segs: Vec<Segment> = Vec::new();
        let mut acc = 0i64;
        for (from, to) in intervals {
            if from == to {
                continue;
            }
            if segs.last().map(|s| s.start) == Some(from) {
                segs.pop();
            } else if segs.is_empty() && from > Time::ZERO {
                segs.push(Segment::new(Time::ZERO, 0, 0));
            }
            segs.push(Segment::new(from, acc, 1));
            acc += (to - from).ticks();
            segs.push(Segment::new(to, acc, 0));
        }
        if segs.is_empty() {
            segs.push(Segment::new(Time::ZERO, 0, 0));
        }
        Curve::from_segments(segs)
    }

    /// Observed departure (completion-count) curve of a subjob — available
    /// without the `trace` feature: it needs completion times only.
    pub fn observed_departures(&self, r: rta_model::SubjobRef) -> rta_curves::Curve {
        let mut times: Vec<Time> = self.hop_completions[r.job.0]
            .iter()
            .filter_map(|inst| inst.get(r.index).copied().flatten())
            .collect();
        times.sort();
        rta_curves::Curve::from_event_times(&times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The `..default()` covers the trace-gated fields; without `trace`
    // every field is explicit and the update is (harmlessly) redundant.
    #[allow(clippy::needless_update)]
    fn responses_and_wcrt_from_completions() {
        let res = SimResult {
            releases: vec![vec![Time(0), Time(10)]],
            hop_completions: vec![vec![
                vec![Some(Time(4)), Some(Time(9))],
                vec![Some(Time(12)), Some(Time(17))],
            ]],
            horizon: Time(20),
            ..SimResult::default()
        };
        assert_eq!(res.completion(JobId(0), 1), Some(Time(9)));
        assert_eq!(res.response(JobId(0), 1), Some(Time(9)));
        assert_eq!(res.response(JobId(0), 2), Some(Time(7)));
        assert_eq!(res.wcrt(JobId(0)), Some(Time(9)));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn observed_service_from_intervals() {
        let mut service_intervals = HashMap::new();
        let r = SubjobRef {
            job: JobId(0),
            index: 0,
        };
        service_intervals.insert(r, vec![(Time(2), Time(5)), (Time(8), Time(9))]);
        let res = SimResult {
            releases: vec![vec![Time(0)]],
            hop_completions: vec![vec![vec![Some(Time(9))]]],
            service_intervals,
            horizon: Time(20),
            ..SimResult::default()
        };
        let s = res.observed_service(r);
        assert_eq!(s.eval(Time(2)), 0);
        assert_eq!(s.eval(Time(4)), 2);
        assert_eq!(s.eval(Time(5)), 3);
        assert_eq!(s.eval(Time(8)), 3);
        assert_eq!(s.eval(Time(9)), 4);
        assert_eq!(s.eval(Time(100)), 4);
        assert_eq!(res.response(JobId(0), 1), Some(Time(9)));
        assert_eq!(res.wcrt(JobId(0)), Some(Time(9)));
    }
}

//! The retired three-phase simulation loop, kept verbatim as the oracle
//! for the indexed event core.
//!
//! `tests/oracle.rs` pins [`crate::simulate`] to this implementation —
//! same seeds, same tie-break order, identical [`SimResult`]s — across
//! every registered policy. The loop is excluded from the public API and
//! the docs; it exists only so the pinning test keeps running.

use crate::result::SimResult;
use rta_core::policy::{policy_for, ReadyInstance, ReadySet, SimScheduler};
use rta_curves::Time;
use rta_model::{JobId, ProcessorId, SubjobRef, TaskSystem};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::engine::SimConfig;

/// A live instance working through its chain.
#[derive(Clone, Debug)]
struct Instance {
    job: JobId,
    m: usize, // 1-based instance index
    hop: usize,
    remaining: Time,
    hop_release: Time,
    seq: u64, // global release sequence for deterministic tie-breaks
    #[cfg(feature = "trace")]
    started: Time, // first dispatch at the current hop; Time(-1) until then
}

/// The policy-facing view of an [`Instance`].
fn view(sys: &TaskSystem, inst: &Instance) -> ReadyInstance {
    let subjob = SubjobRef {
        job: inst.job,
        index: inst.hop,
    };
    ReadyInstance {
        subjob,
        hop_release: inst.hop_release,
        seq: inst.seq,
        prio: sys.subjob(subjob).priority.unwrap_or(u32::MAX),
    }
}

/// Per-processor run state: the policy's dispatcher plus the queues.
struct Proc {
    scheduler: Box<dyn SimScheduler>,
    ready: Vec<Instance>,
    running: Option<(Instance, Time)>, // (instance, started_at)
    /// Policy-facing views of `ready`, rebuilt in place per decision.
    views: Vec<ReadyInstance>,
}

impl Proc {
    fn fill_views(&mut self, sys: &TaskSystem) {
        self.views.clear();
        self.views.extend(self.ready.iter().map(|i| view(sys, i)));
    }

    /// Pick the index of the next ready instance per policy.
    fn pick(&mut self, sys: &TaskSystem) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        self.fill_views(sys);
        self.scheduler.pick_idx(sys, &ReadySet::new(&self.views))
    }

    /// Would any ready instance preempt the running one?
    fn preempts(&mut self, sys: &TaskSystem, running: &Instance) -> bool {
        if self.ready.is_empty() {
            return false;
        }
        self.fill_views(sys);
        self.scheduler
            .preempts(sys, &view(sys, running), &ReadySet::new(&self.views))
    }
}

/// Run the simulation through the retired loop.
pub fn simulate(sys: &TaskSystem, cfg: &SimConfig) -> SimResult {
    sys.validate(true).expect("system must be valid");
    let njobs = sys.jobs().len();

    // Primary releases.
    let mut releases: Vec<Vec<Time>> = Vec::with_capacity(njobs);
    let mut heap: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
    let mut pending: HashMap<u64, Instance> = HashMap::new();
    let mut seq: u64 = 0;
    for (k, job) in sys.jobs().iter().enumerate() {
        let times = job.arrival.release_times(cfg.window);
        for (i, &t) in times.iter().enumerate() {
            let inst = Instance {
                job: JobId(k),
                m: i + 1,
                hop: 0,
                remaining: job.subjobs[0].exec,
                hop_release: t,
                seq,
                #[cfg(feature = "trace")]
                started: Time(-1),
            };
            heap.push(Reverse((t, seq)));
            pending.insert(seq, inst);
            seq += 1;
        }
        releases.push(times);
    }

    let mut out = SimResult {
        hop_completions: sys
            .jobs()
            .iter()
            .enumerate()
            .map(|(k, job)| vec![vec![None; job.subjobs.len()]; releases[k].len()])
            .collect(),
        releases,
        #[cfg(feature = "trace")]
        service_intervals: HashMap::new(),
        #[cfg(feature = "trace")]
        hop_records: Vec::new(),
        horizon: cfg.horizon,
    };

    let mut procs: Vec<Proc> = sys
        .processors()
        .iter()
        .enumerate()
        .map(|(i, p)| Proc {
            scheduler: policy_for(p.scheduler).sim_scheduler(sys, ProcessorId(i)),
            ready: Vec::new(),
            running: None,
            views: Vec::new(),
        })
        .collect();

    loop {
        // Next event time: earliest pending release or earliest completion.
        let next_release = heap.peek().map(|Reverse((t, _))| *t);
        let next_completion = procs
            .iter()
            .filter_map(|p| p.running.as_ref().map(|(inst, at)| *at + inst.remaining))
            .min();
        let t = match (next_release, next_completion) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        if t > cfg.horizon {
            break;
        }

        // 1. Completions at t.
        for (pidx, p) in procs.iter_mut().enumerate() {
            let done = matches!(&p.running, Some((inst, at)) if *at + inst.remaining == t);
            if !done {
                continue;
            }
            let (mut inst, at) = p.running.take().expect("checked");
            let r = SubjobRef {
                job: inst.job,
                index: inst.hop,
            };
            debug_assert_eq!(sys.subjob(r).processor.0, pidx);
            #[cfg(feature = "trace")]
            {
                if at < t {
                    out.service_intervals.entry(r).or_default().push((at, t));
                }
                out.hop_records.push(crate::result::HopRecord {
                    job: inst.job,
                    m: inst.m as u32,
                    hop: inst.hop as u32,
                    release: inst.hop_release,
                    start: inst.started,
                    finish: t,
                });
            }
            #[cfg(not(feature = "trace"))]
            let _ = at;
            out.hop_completions[inst.job.0][inst.m - 1][inst.hop] = Some(t);
            let job = sys.job(inst.job);
            if inst.hop + 1 < job.subjobs.len() {
                // Direct synchronization: release the next hop immediately.
                inst.hop += 1;
                inst.remaining = job.subjobs[inst.hop].exec;
                inst.hop_release = t;
                inst.seq = seq;
                #[cfg(feature = "trace")]
                {
                    inst.started = Time(-1);
                }
                heap.push(Reverse((t, seq)));
                pending.insert(seq, inst);
                seq += 1;
            }
        }

        // 2. Releases at t.
        while matches!(heap.peek(), Some(Reverse((rt, _))) if *rt == t) {
            let Reverse((_, s)) = heap.pop().expect("peeked");
            let inst = pending.remove(&s).expect("pending");
            let r = SubjobRef {
                job: inst.job,
                index: inst.hop,
            };
            let pidx = sys.subjob(r).processor.0;
            procs[pidx].ready.push(inst);
        }

        // 3. Re-dispatch.
        for p in procs.iter_mut() {
            // Preemption (SPP only).
            if let Some((inst, at)) = p.running.take() {
                if p.preempts(sys, &inst) {
                    #[cfg(feature = "trace")]
                    if at < t {
                        let r = SubjobRef {
                            job: inst.job,
                            index: inst.hop,
                        };
                        out.service_intervals.entry(r).or_default().push((at, t));
                    }
                    let mut inst = inst;
                    inst.remaining -= t - at;
                    debug_assert!(inst.remaining > Time::ZERO);
                    p.ready.push(inst);
                } else {
                    p.running = Some((inst, at));
                }
            }
            if p.running.is_none() {
                if let Some(i) = p.pick(sys) {
                    #[allow(unused_mut)]
                    let mut inst = p.ready.swap_remove(i);
                    #[cfg(feature = "trace")]
                    if inst.started < Time::ZERO {
                        inst.started = t;
                    }
                    p.running = Some((inst, t));
                }
            }
        }
    }

    out
}

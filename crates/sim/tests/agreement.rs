//! Simulator ↔ analysis agreement.
//!
//! These tests are the workspace's ground-truth check of the ICPP'98
//! theorems as implemented:
//!
//! * Theorem 1/2/3 (exact SPP): simulated per-instance end-to-end response
//!   times must **equal** the analysis on the same trace, and the observed
//!   service functions must equal the analytic Theorem 3 curves tick by
//!   tick.
//! * Theorem 4/5/6 (SPNP) and 7/8/9 (FCFS): simulated responses must never
//!   exceed the end-to-end bounds where those are sound (conservative SPNP
//!   variant; FCFS at the first hop), and the approximation quality of the
//!   remaining paths (paper-verbatim SPNP, multi-hop FCFS) is measured and
//!   pinned — see DESIGN.md §5.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::{analyze_bounds, analyze_exact_spp, AnalysisConfig, SpnpAvailability};
use rta_curves::Time;
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{distributions::Dist, JobId, SchedulerKind, TaskSystem};
use rta_sim::{simulate, SimConfig};

fn shop(scheduler: SchedulerKind, stages: usize, utilization: f64, bursty: bool) -> ShopConfig {
    ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler,
        utilization,
        arrivals: if bursty {
            ShopArrivals::Bursty {
                deadline: Dist::Exponential { mean: 6.0 },
            }
        } else {
            ShopArrivals::Periodic {
                deadline_factor: 2.0 * stages as f64,
            }
        },
        x_min: 0.25,
        ticks_per_unit: 100,
    }
}

fn prepared(cfg: &ShopConfig, seed: u64) -> TaskSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = generate(cfg, &mut rng).expect("valid shop");
    if cfg.scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

fn resolved(sys: &TaskSystem) -> (AnalysisConfig, SimConfig) {
    let acfg = AnalysisConfig::default();
    let (window, horizon) = acfg.resolve(sys);
    (acfg, SimConfig { window, horizon })
}

#[test]
fn exact_spp_equals_simulation_periodic() {
    for seed in 0..60 {
        for (stages, util) in [(1, 0.4), (1, 0.8), (2, 0.5), (3, 0.6), (2, 0.9)] {
            let sys = prepared(&shop(SchedulerKind::Spp, stages, util, false), seed);
            let (acfg, scfg) = resolved(&sys);
            let report = analyze_exact_spp(&sys, &acfg).unwrap();
            let sim = simulate(&sys, &scfg);
            for (k, jr) in report.jobs.iter().enumerate() {
                let job = JobId(k);
                assert_eq!(jr.responses.len(), sim.instances(job), "seed {seed}");
                for m in 1..=sim.instances(job) {
                    assert_eq!(
                        jr.responses[m - 1],
                        sim.response(job, m),
                        "seed {seed} stages {stages} util {util} job {k} instance {m}"
                    );
                }
            }
        }
    }
}

#[test]
fn exact_spp_equals_simulation_bursty() {
    for seed in 100..140 {
        for (stages, util) in [(1, 0.6), (2, 0.5), (3, 0.7)] {
            let sys = prepared(&shop(SchedulerKind::Spp, stages, util, true), seed);
            let (acfg, scfg) = resolved(&sys);
            let report = analyze_exact_spp(&sys, &acfg).unwrap();
            let sim = simulate(&sys, &scfg);
            for (k, jr) in report.jobs.iter().enumerate() {
                let job = JobId(k);
                for m in 1..=sim.instances(job) {
                    assert_eq!(
                        jr.responses[m - 1],
                        sim.response(job, m),
                        "seed {seed} stages {stages} job {k} instance {m}"
                    );
                }
            }
        }
    }
}

#[cfg(feature = "trace")]
#[test]
fn exact_spp_service_curves_match_observed() {
    for seed in 0..20 {
        let sys = prepared(&shop(SchedulerKind::Spp, 2, 0.7, false), seed);
        let (acfg, scfg) = resolved(&sys);
        let report = analyze_exact_spp(&sys, &acfg).unwrap();
        let sim = simulate(&sys, &scfg);
        for (i, r) in sys.all_subjobs().enumerate() {
            let analytic = &report.curves[i].service;
            let observed = sim.observed_service(r);
            // Compare on a coarse grid plus all analytic breakpoints.
            let mut points: Vec<Time> = analytic
                .breakpoints()
                .filter(|t| *t <= scfg.horizon)
                .collect();
            points.extend((0..=20).map(|i| scfg.horizon * i / 20));
            for t in points {
                assert_eq!(
                    analytic.eval(t),
                    observed.eval(t),
                    "seed {seed} subjob {r} at t={t}"
                );
            }
        }
    }
}

/// Count (violations, instances, worst excess ratio) of simulated responses
/// above the analysis bound.
fn violation_stats(
    scheduler: SchedulerKind,
    variant: SpnpAvailability,
    seeds: std::ops::Range<u64>,
    cases: &[(usize, f64)],
    bursty: bool,
) -> (usize, usize, f64) {
    let (mut bad, mut total) = (0usize, 0usize);
    let mut worst_ratio = 0f64;
    for seed in seeds {
        for &(stages, util) in cases {
            let sys = prepared(&shop(scheduler, stages, util, bursty), seed);
            let acfg = AnalysisConfig {
                spnp_availability: variant,
                ..Default::default()
            };
            let (window, horizon) = acfg.resolve(&sys);
            let report = analyze_bounds(&sys, &acfg).unwrap();
            let sim = simulate(&sys, &SimConfig { window, horizon });
            for (k, jb) in report.jobs.iter().enumerate() {
                let Some(bound) = jb.e2e_bound else { continue };
                let job = JobId(k);
                for m in 1..=sim.instances(job) {
                    if let Some(resp) = sim.response(job, m) {
                        total += 1;
                        if resp > bound {
                            bad += 1;
                            worst_ratio =
                                worst_ratio.max(resp.ticks() as f64 / bound.ticks().max(1) as f64);
                        }
                    }
                }
            }
        }
    }
    (bad, total, worst_ratio)
}

#[test]
fn all_policies_bounds_dominate_bursty_single_stage() {
    // Registry-driven: every policy the kernel layer registers must produce
    // end-to-end bounds that dominate simulation on a bursty single-stage
    // shop. Single-stage because that is where every discipline's bound is
    // sound — multi-hop FCFS/IWRR chains are documented approximations
    // (measured by the *_is_a_good_approximation tests below).
    for policy in rta_core::policy::all_policies() {
        let kind = policy.kind();
        let (bad, total, worst) = violation_stats(
            kind,
            SpnpAvailability::Conservative,
            0..10,
            &[(1, 0.6)],
            true,
        );
        assert!(total > 0, "{kind:?}: no bounded instances simulated");
        assert_eq!(
            bad, 0,
            "{kind:?}: {bad}/{total} bursty instances exceeded the bound (worst {worst:.3}×)"
        );
    }
}

#[test]
fn spnp_conservative_bounds_dominate_simulation() {
    // With the conservative availability increments the SPNP bounds are
    // sound at every stage count we exercise.
    let (bad, total, _) = violation_stats(
        SchedulerKind::Spnp,
        SpnpAvailability::Conservative,
        0..40,
        &[(1, 0.5), (2, 0.6), (3, 0.4)],
        false,
    );
    assert!(total > 3_000, "coverage: {total}");
    assert_eq!(bad, 0, "{bad}/{total} violations");
}

#[test]
fn spp_bounds_dominate_simulation() {
    // The bounds path treats SPP as SPNP with zero blocking; its Theorem 4
    // sums must still dominate the true (simulated = exact) responses.
    let (bad, total, _) = violation_stats(
        SchedulerKind::Spp,
        SpnpAvailability::Conservative,
        0..40,
        &[(1, 0.5), (2, 0.6), (3, 0.4)],
        false,
    );
    assert!(total > 3_000, "coverage: {total}");
    assert_eq!(bad, 0, "{bad}/{total} violations");
}

#[test]
fn fcfs_bounds_dominate_simulation_single_stage() {
    // At the first hop arrivals are exact, so the Theorem 8 frontier
    // argument is a true pointwise bound.
    let (bad, total, _) = violation_stats(
        SchedulerKind::Fcfs,
        SpnpAvailability::Conservative,
        0..60,
        &[(1, 0.4), (1, 0.7), (1, 0.9)],
        false,
    );
    assert!(total > 3_000, "coverage: {total}");
    assert_eq!(bad, 0, "{bad}/{total} violations");
}

#[test]
fn as_printed_spnp_variant_can_underestimate() {
    // Regression-documented finding: Equations 16–19 taken verbatim (one
    // availability curve at both ends of the busy-period candidate) are not
    // a sound lower service bound — interference increments are
    // under-counted. This is why `SpnpAvailability::Conservative` is the
    // default. The paper frames SPNP/App as an approximation (Abstract:
    // "gives a good approximation"); we quantify it.
    let (bad, total, ratio) = violation_stats(
        SchedulerKind::Spnp,
        SpnpAvailability::AsPrinted,
        0..25,
        &[(1, 0.5), (2, 0.6)],
        false,
    );
    assert!(
        bad > 0,
        "expected the verbatim variant to underestimate somewhere"
    );
    // …but it remains a statistically *good* approximation: violations are
    // rare. (Their magnitude is unbounded in adversarial corners — another
    // reason the conservative variant is the default.)
    assert!((bad as f64) < 0.25 * total as f64, "{bad}/{total}");
    assert!(ratio >= 1.0);
}

#[test]
fn fcfs_multi_stage_is_a_good_approximation() {
    // Downstream of hop 1 the FCFS analysis is envelope-relative (the
    // paper's framing); timing anomalies can push a few instances past the
    // bound. Quantify and pin the approximation quality.
    let (bad, total, ratio) = violation_stats(
        SchedulerKind::Fcfs,
        SpnpAvailability::Conservative,
        0..40,
        &[(2, 0.6), (3, 0.4)],
        false,
    );
    assert!(total > 2_000, "coverage: {total}");
    assert!(
        (bad as f64) < 0.05 * total as f64,
        "violation rate too high: {bad}/{total}"
    );
    assert!(ratio < 1.8, "worst excess ratio {ratio}");
}

#[test]
fn iwrr_bounds_dominate_simulation_single_stage() {
    // The policy-seam proof: IWRR reaches the analysis and the simulator
    // purely through `rta_core::policy` — neither driver names it. At the
    // first hop arrivals are exact, so the strict-service-curve bound
    // (quantum per complete round, convolved over the busy period) must
    // dominate every simulated response.
    let (bad, total, _) = violation_stats(
        SchedulerKind::Iwrr,
        SpnpAvailability::Conservative,
        0..40,
        &[(1, 0.4), (1, 0.6), (1, 0.8)],
        false,
    );
    assert!(total > 3_000, "coverage: {total}");
    assert_eq!(bad, 0, "{bad}/{total} violations");
}

#[test]
fn iwrr_bounds_dominate_simulation_bursty_single_stage() {
    let (bad, total, _) = violation_stats(
        SchedulerKind::Iwrr,
        SpnpAvailability::Conservative,
        300..330,
        &[(1, 0.5)],
        true,
    );
    assert!(total > 500, "coverage: {total}");
    assert_eq!(bad, 0, "{bad}/{total} violations");
}

#[test]
fn iwrr_weighted_bounds_dominate_simulation() {
    // Non-unit weights stretch the round and quantum differently per flow;
    // the analytic guarantee must still dominate observed responses.
    for seed in 0..25u64 {
        let mut sys = prepared(&shop(SchedulerKind::Iwrr, 1, 0.6, false), seed);
        let subjobs: Vec<_> = sys.all_subjobs().collect();
        for r in subjobs {
            sys.set_weight(r, Some(r.job.0 as u32 % 3 + 1));
        }
        let (acfg, scfg) = resolved(&sys);
        let report = analyze_bounds(&sys, &acfg).unwrap();
        let sim = simulate(&sys, &scfg);
        for (k, jb) in report.jobs.iter().enumerate() {
            let Some(bound) = jb.e2e_bound else { continue };
            let job = JobId(k);
            for m in 1..=sim.instances(job) {
                if let Some(resp) = sim.response(job, m) {
                    assert!(
                        resp <= bound,
                        "seed {seed} job {k} instance {m}: simulated {resp} > bound {bound}"
                    );
                }
            }
        }
    }
}

#[test]
fn iwrr_multi_stage_is_a_good_approximation() {
    // Downstream hops are envelope-relative, as for FCFS; quantify and pin
    // the approximation quality of the round-robin pipeline.
    let (bad, total, ratio) = violation_stats(
        SchedulerKind::Iwrr,
        SpnpAvailability::Conservative,
        0..25,
        &[(2, 0.5)],
        false,
    );
    assert!(total > 500, "coverage: {total}");
    assert!(
        (bad as f64) <= 0.05 * total as f64,
        "violation rate too high: {bad}/{total}"
    );
    assert!(ratio < 1.8, "worst excess ratio {ratio}");
}

#[test]
fn nc_composition_bound_dominates_simulation() {
    // The pay-bursts-once composition (rta_core::nc) must dominate the
    // simulated responses on uniform-τ pipelines with competing local jobs.
    use rta_model::{ArrivalPattern, SystemBuilder};
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(7_000 + seed);
        use rand::Rng;
        let hops = rng.gen_range(1..4usize);
        let tau = rng.gen_range(3..9i64);
        let burst = rng.gen_range(1..5usize);
        let gap = rng.gen_range(0..4i64);
        let mut b = SystemBuilder::new();
        let procs: Vec<_> = (0..hops)
            .map(|i| b.add_processor(format!("P{}", i + 1), SchedulerKind::Spp))
            .collect();
        let times: Vec<Time> = (0..burst).map(|i| Time(i as i64 * (1 + gap))).collect();
        b.add_job(
            "flow",
            Time(100_000),
            ArrivalPattern::Trace(times),
            procs.iter().map(|p| (*p, Time(tau))).collect(),
        );
        // A competing local job on each hop.
        for (i, p) in procs.iter().enumerate() {
            b.add_job(
                format!("local{i}"),
                Time(100_000),
                ArrivalPattern::Periodic {
                    period: Time(40),
                    offset: Time::ZERO,
                },
                vec![(*p, Time(rng.gen_range(1..6)))],
            );
        }
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(200)),
            ..Default::default()
        };
        let Some(nc) = rta_core::nc::e2e_composition_bound(&sys, &cfg, JobId(0)).unwrap() else {
            continue;
        };
        let (window, horizon) = cfg.resolve(&sys);
        let sim = simulate(&sys, &SimConfig { window, horizon });
        for m in 1..=sim.instances(JobId(0)) {
            if let Some(resp) = sim.response(JobId(0), m) {
                assert!(
                    resp <= nc,
                    "seed {seed}: simulated {resp} > composition bound {nc}"
                );
            }
        }
    }
}

#[test]
fn bursty_bounds_quality() {
    for scheduler in [SchedulerKind::Spnp, SchedulerKind::Fcfs] {
        let (bad, total, ratio) = violation_stats(
            scheduler,
            SpnpAvailability::Conservative,
            300..330,
            &[(2, 0.5)],
            true,
        );
        assert!(total > 1_000, "coverage: {total}");
        assert!(
            (bad as f64) <= 0.05 * total as f64,
            "{scheduler}: violation rate {bad}/{total}"
        );
        assert!(ratio < 1.6, "{scheduler}: worst excess ratio {ratio}");
    }
}

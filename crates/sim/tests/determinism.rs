//! Replay determinism: the same seed must reproduce the same simulation
//! bit for bit — across repeated runs, across engine-workspace reuse, and
//! across however many worker threads the batch layer uses (draw `i` is
//! seeded `base_seed + i`, so thread assignment cannot leak into results).
//! Under the `trace` feature the full trace (serving intervals and hop
//! records) is part of the pinned state via `SimResult`'s `PartialEq`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::AnalysisConfig;
use rta_model::distributions::Dist;
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig, ShopSampler};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::SchedulerKind;
use rta_sim::batch::{replicate, replicate_with_bounds, BatchConfig};
use rta_sim::{simulate, SimConfig, SimEngine, SimResult};

fn bursty_shop(scheduler: SchedulerKind) -> ShopConfig {
    ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler,
        utilization: 0.7,
        arrivals: ShopArrivals::Bursty {
            deadline: Dist::Exponential { mean: 6.0 },
        },
        x_min: 0.25,
        ticks_per_unit: 100,
    }
}

#[test]
fn same_seed_same_result_bit_for_bit() {
    for kind in [
        SchedulerKind::Spp,
        SchedulerKind::Spnp,
        SchedulerKind::Fcfs,
        SchedulerKind::Iwrr,
    ] {
        for seed in 0..5u64 {
            let cfg = bursty_shop(kind);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sys = generate(&cfg, &mut rng).expect("valid shop");
            if kind.uses_priorities() {
                assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
            }
            let (window, horizon) = AnalysisConfig::default().resolve(&sys);
            let scfg = SimConfig { window, horizon };
            let a = simulate(&sys, &scfg);
            let b = simulate(&sys, &scfg);
            assert_eq!(a, b, "{kind:?} seed {seed}: repeated runs diverged");
        }
    }
}

#[test]
fn reused_engine_workspace_matches_fresh_runs() {
    // One engine simulating different draws back to back must produce
    // exactly what fresh single-use runs produce — leftover calendar
    // buckets, arena slots, or scheduler state must never leak.
    let cfg = bursty_shop(SchedulerKind::Spp);
    let mut sampler = ShopSampler::new(cfg).expect("valid shop shape");
    let mut engine = SimEngine::new();
    let mut out = SimResult::default();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = sampler.sample(&mut rng).expect("valid draw");
        assign_priorities(sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let (window, horizon) = AnalysisConfig::default().resolve(sys);
        let scfg = SimConfig { window, horizon };
        engine.simulate_into(sys, &scfg, &mut out);
        assert_eq!(
            out,
            simulate(sys, &scfg),
            "seed {seed}: reused workspace diverged from a fresh run"
        );
    }
}

/// The sequential oracle for [`replicate`]: one draw at a time, in draw
/// order, using the same per-draw seeding rule.
fn sequential_oracle(shop: &ShopConfig, cfg: &BatchConfig) -> Vec<SimResult> {
    let mut sampler = ShopSampler::new(shop.clone()).expect("valid shop shape");
    (0..cfg.draws)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(cfg.base_seed + i as u64);
            let sys = sampler.sample(&mut rng).expect("valid draw");
            if sys
                .processors()
                .iter()
                .any(|p| p.scheduler.uses_priorities())
            {
                assign_priorities(sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
            }
            let (window, horizon) = AnalysisConfig::default().resolve(sys);
            simulate(sys, &SimConfig { window, horizon })
        })
        .collect()
}

#[test]
fn batch_samples_match_sequential_oracle() {
    // The batch layer distributes draws over the worker pool; its merged
    // per-job samples must equal a by-hand sequential replication of the
    // same seeds, independent of how many threads the pool happens to use.
    let shop = bursty_shop(SchedulerKind::Spp);
    let cfg = BatchConfig {
        draws: 12,
        base_seed: 99,
    };
    let report = replicate(&shop, &cfg);
    let oracle = sequential_oracle(&shop, &cfg);

    for k in 0..shop.n_jobs {
        let job = rta_model::JobId(k);
        let mut expected: Vec<_> = oracle
            .iter()
            .flat_map(|res| (1..=res.instances(job)).filter_map(|m| res.response(job, m)))
            .collect();
        expected.sort_unstable();
        assert_eq!(
            report.jobs[k].samples, expected,
            "job {k}: batch samples diverged from the sequential oracle"
        );
        let incomplete: usize = oracle
            .iter()
            .map(|res| {
                (1..=res.instances(job))
                    .filter(|&m| res.response(job, m).is_none())
                    .count()
            })
            .sum();
        assert_eq!(report.jobs[k].incomplete, incomplete);
    }
}

#[test]
fn repeated_batch_runs_are_identical() {
    let shop = bursty_shop(SchedulerKind::Fcfs);
    let cfg = BatchConfig {
        draws: 8,
        base_seed: 7,
    };
    assert_eq!(replicate(&shop, &cfg), replicate(&shop, &cfg));
    assert_eq!(
        replicate_with_bounds(&shop, &cfg),
        replicate_with_bounds(&shop, &cfg)
    );
}

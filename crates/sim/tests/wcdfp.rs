//! Integration gates for the streaming WCDFP estimator.
//!
//! Three standing claims are pinned here rather than in unit tests because
//! they cross the public API boundary exactly as callers do:
//!
//! 1. **Merge determinism** — the worker-pool fold of [`estimate_fixed`]
//!    produces an accumulator *bit-identical* to the single-threaded
//!    reference fold [`accumulate_range`], in every sampling mode
//!    (property-tested over draw counts and seeds). This is what makes
//!    `BENCH_wcdfp.json` numbers and daemon responses reproducible
//!    regardless of pool size.
//! 2. **Adaptive soundness** — an adaptive run's interval never excludes
//!    the point estimate of a much larger fixed-budget run on the same
//!    draw sequence.
//! 3. **Golden smoke** — a 2 000-draw run on a pinned two-job jitter
//!    system produces pinned miss counts and intervals (the same
//!    invocation `scripts/check.sh` replays).

use proptest::prelude::*;
use rta_core::wcdfp::{Mode, Stopping, WcdfpAccum};
use rta_curves::Time;
use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder, TaskSystem};
use rta_sim::wcdfp::{accumulate_range, estimate_adaptive, estimate_fixed, DrawModel, WcdfpConfig};

/// Two jobs on one FCFS processor; J1's jitter window makes its verdict
/// genuinely random draw to draw, J2 is comfortable. Identical to the
/// system the unit tests use, rebuilt here through the public API.
fn jitter_system() -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Fcfs);
    b.add_job(
        "J1",
        Time(11),
        ArrivalPattern::PeriodicJitter {
            period: Time(20),
            jitter: Time(8),
            offset: Time(8),
        },
        vec![(p, Time(6))],
    );
    b.add_job(
        "J2",
        Time(40),
        ArrivalPattern::Periodic {
            period: Time(25),
            offset: Time::ZERO,
        },
        vec![(p, Time(7))],
    );
    b.build().unwrap()
}

/// Units folded for a given draw budget — mirrors the library's private
/// rounding (antithetic draws come in pairs).
fn units_for(mode: Mode, draws: u64) -> u64 {
    match mode {
        Mode::Antithetic => draws.div_ceil(2),
        _ => draws,
    }
}

/// The sequential reference: fold every unit in one workspace, in order.
fn sequential_accum(model: &DrawModel, cfg: &WcdfpConfig, draws: u64) -> WcdfpAccum {
    let n_jobs = match model {
        DrawModel::Arrivals(sys) => sys.jobs().len(),
        DrawModel::Shop(shop) => shop.n_jobs,
    };
    let mut accum = WcdfpAccum::new(cfg.mode, n_jobs);
    accumulate_range(model, cfg, 0, units_for(cfg.mode, draws), &mut accum);
    accum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pool-folded accumulators are indistinguishable from the sequential
    /// fold: every counter, every sketch marker, bit for bit. `PartialEq`
    /// on `WcdfpAccum` compares all of them (P² state included).
    #[test]
    fn pool_fold_is_bit_identical_to_sequential_fold(
        draws in 1u64..40,
        seed in 0u64..1000,
        mode_ix in 0usize..3,
        sketches in any::<bool>(),
    ) {
        let mode = [Mode::Plain, Mode::Antithetic, Mode::Stratified(4)][mode_ix];
        let cfg = WcdfpConfig {
            mode,
            base_seed: seed,
            sketches,
            ..WcdfpConfig::default()
        };
        let model = DrawModel::Arrivals(jitter_system());
        let pooled = estimate_fixed(&model, &cfg, draws);
        let sequential = sequential_accum(&model, &cfg, draws);
        prop_assert_eq!(&pooled.accum, &sequential);
        // The derived intervals are a pure function of the accumulator,
        // but pin them too — they are what callers actually consume.
        let seq_estimates = sequential.estimates(cfg.confidence, cfg.ci);
        for (a, b) in pooled.estimates.iter().zip(&seq_estimates) {
            prop_assert_eq!(a.misses, b.misses);
            prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
            prop_assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            prop_assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
    }
}

/// An adaptive run that stops early must still be *consistent* with the
/// estimate a large fixed budget converges to: its interval may be wider,
/// but it must contain the fixed run's point estimate for every job.
/// Deterministic seeding makes this a pinned regression test, not a
/// statistical coin flip.
#[test]
fn adaptive_interval_never_excludes_fixed_estimate() {
    let model = DrawModel::Arrivals(jitter_system());
    let cfg = WcdfpConfig::default();
    let stop = Stopping {
        tolerance: 0.05,
        confidence: 0.95,
        threshold: None,
    };
    let fixed_budget: u64 = if cfg!(debug_assertions) {
        4_000
    } else {
        100_000
    };
    let adaptive = estimate_adaptive(&model, &cfg, &stop, fixed_budget);
    assert!(adaptive.converged, "tolerance 0.05 must be reachable");
    assert!(
        adaptive.draws < fixed_budget,
        "early stop must actually stop early"
    );
    let fixed = estimate_fixed(&model, &cfg, fixed_budget);
    for ((name, a), f) in adaptive
        .names
        .iter()
        .zip(&adaptive.estimates)
        .zip(&fixed.estimates)
    {
        assert!(
            a.lo <= f.p && f.p <= a.hi,
            "{name}: adaptive [{:.4}, {:.4}] excludes fixed point {:.4}",
            a.lo,
            a.hi,
            f.p
        );
    }
}

/// 2 000-draw golden smoke, pinned end to end. The numbers are a plain
/// Wilson readout of the pinned miss counters, so any drift means the
/// draw sequence, the engine, or the interval math changed.
#[test]
fn golden_smoke_2000_draws() {
    let model = DrawModel::Arrivals(jitter_system());
    let rep = estimate_fixed(&model, &WcdfpConfig::default(), 2_000);
    assert_eq!(rep.names, vec!["J1", "J2"]);
    assert_eq!(rep.draws, 2_000);
    let misses: Vec<u64> = rep.estimates.iter().map(|e| e.misses).collect();
    assert_eq!(misses, vec![588, 0]);
    let j1 = &rep.estimates[0];
    assert_eq!(j1.p, 0.294);
    assert!(
        (j1.lo - 0.274_443_321_382_680_07).abs() < 1e-12,
        "{}",
        j1.lo
    );
    assert!((j1.hi - 0.314_346_502_098_467_3).abs() < 1e-12, "{}", j1.hi);
    let j2 = &rep.estimates[1];
    assert_eq!(j2.p, 0.0);
    assert!(j2.hi < 0.002, "{}", j2.hi);
    // Sketch side of the same run: every J1 instance completed (a missed
    // deadline still finishes executing under FCFS), and the response
    // sketches bracket the exec-time floor and the observed maximum.
    let j1a = &rep.accum.jobs[0];
    assert_eq!(j1a.completed, 12_000);
    assert_eq!(j1a.max_response, 12.0);
    let p50 = j1a.p50.value().unwrap();
    let p99 = j1a.p99.value().unwrap();
    assert!((6.0..=7.0).contains(&p50), "{p50}");
    assert!((11.0..=12.0).contains(&p99), "{p99}");
}

//! Event-core ↔ legacy-loop oracle.
//!
//! The calendar-queue event core replaced a three-phase timestep loop that
//! the agreement suite had validated against the ICPP'98 theorems. That
//! loop is kept (as `rta_sim::legacy`) purely so these tests can pin the
//! new core **event for event** against it: same seeds, same tie-break
//! order, bit-identical [`rta_sim::SimResult`] — releases, every per-hop
//! completion time, and (under the `trace` feature, via full-struct
//! `PartialEq`) every serving interval and hop record.
//!
//! Coverage: all four registered scheduler kinds × {periodic, bursty}
//! arrivals × many generator seeds, several stage counts and utilizations,
//! plus hand-built mixed-scheduler systems exercising cross-processor
//! chains and simultaneous releases.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_curves::Time;
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, SchedulerKind, SubjobRef, SystemBuilder, TaskSystem};
use rta_sim::{legacy, simulate, SimConfig};

const KINDS: [SchedulerKind; 4] = [
    SchedulerKind::Spp,
    SchedulerKind::Spnp,
    SchedulerKind::Fcfs,
    SchedulerKind::Iwrr,
];

fn prepared(cfg: &ShopConfig, seed: u64) -> TaskSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = generate(cfg, &mut rng).expect("valid shop");
    if cfg.scheduler.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    sys
}

fn assert_identical(sys: &TaskSystem, label: &str) {
    let acfg = rta_core::AnalysisConfig::default();
    let (window, horizon) = acfg.resolve(sys);
    let cfg = SimConfig { window, horizon };
    let new = simulate(sys, &cfg);
    let old = legacy::simulate(sys, &cfg);
    assert_eq!(new, old, "{label}: event core diverged from legacy loop");
}

#[test]
fn shops_match_legacy_across_policies_and_arrivals() {
    for kind in KINDS {
        for bursty in [false, true] {
            for (stages, util) in [(1usize, 0.6f64), (2, 0.7), (3, 0.5)] {
                for seed in 0..8u64 {
                    let cfg = ShopConfig {
                        stages,
                        procs_per_stage: 2,
                        n_jobs: 5,
                        scheduler: kind,
                        utilization: util,
                        arrivals: if bursty {
                            ShopArrivals::Bursty {
                                deadline: rta_model::distributions::Dist::Exponential { mean: 6.0 },
                            }
                        } else {
                            ShopArrivals::Periodic {
                                deadline_factor: 2.0 * stages as f64,
                            }
                        },
                        x_min: 0.25,
                        ticks_per_unit: 100,
                    };
                    let sys = prepared(&cfg, seed);
                    assert_identical(
                        &sys,
                        &format!(
                            "{kind:?} stages={stages} util={util} bursty={bursty} seed={seed}"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn mixed_scheduler_chain_matches_legacy() {
    // Two jobs crossing an SPP processor and an FCFS processor in opposite
    // order, plus a bursty interferer — exercises chain releases landing on
    // a different discipline and same-instant completion/release ordering.
    let mut b = SystemBuilder::new();
    let p0 = b.add_processor("spp", SchedulerKind::Spp);
    let p1 = b.add_processor("fcfs", SchedulerKind::Fcfs);
    let a = b.add_job(
        "a",
        Time(40),
        ArrivalPattern::Periodic {
            period: Time(20),
            offset: Time(0),
        },
        vec![(p0, Time(4)), (p1, Time(3))],
    );
    let c = b.add_job(
        "c",
        Time(50),
        ArrivalPattern::Periodic {
            period: Time(25),
            offset: Time(2),
        },
        vec![(p1, Time(5)), (p0, Time(2))],
    );
    b.add_job(
        "bursty",
        Time(60),
        ArrivalPattern::Hyperbolic {
            x: 0.3,
            ticks_per_unit: 10,
        },
        vec![(p0, Time(3))],
    );
    b.set_priority(SubjobRef { job: a, index: 0 }, 1);
    b.set_priority(SubjobRef { job: c, index: 1 }, 2);
    b.set_priority(
        SubjobRef {
            job: rta_model::JobId(2),
            index: 0,
        },
        3,
    );
    let sys = b.build().unwrap();
    assert_identical(&sys, "mixed spp/fcfs chains");
}

#[test]
fn simultaneous_releases_match_legacy() {
    // Every job released at t=0 with identical periods: maximal same-instant
    // contention, so any tie-break divergence between the cores shows up.
    for kind in KINDS {
        let mut b = SystemBuilder::new();
        let p0 = b.add_processor("p0", kind);
        let p1 = b.add_processor("p1", kind);
        for k in 0..4 {
            let job = b.add_job(
                format!("j{k}"),
                Time(100),
                ArrivalPattern::Periodic {
                    period: Time(10),
                    offset: Time(0),
                },
                vec![(p0, Time(2)), (p1, Time(2))],
            );
            if kind.uses_priorities() {
                b.set_priority(SubjobRef { job, index: 0 }, k as u32 + 1);
                b.set_priority(SubjobRef { job, index: 1 }, k as u32 + 1);
            }
        }
        let sys = b.build().unwrap();
        assert_identical(&sys, &format!("{kind:?} simultaneous releases"));
    }
}

//! # rta-model — distributed real-time system model and workload generators
//!
//! This crate provides the system model of Li, Bettati & Zhao (ICPP 1998,
//! Section 3) and the random workload generators of its evaluation
//! (Section 5.1):
//!
//! * a system of `m` processors and `n` independent jobs, each job a chain
//!   of subjobs executed on a sequence of processors ([`TaskSystem`],
//!   [`Job`], [`Subjob`], [`Processor`]);
//! * per-processor scheduling algorithms: preemptive static priority (SPP),
//!   non-preemptive static priority (SPNP), and FCFS ([`SchedulerKind`]) —
//!   heterogeneous mixes are allowed;
//! * arrival patterns: periodic, the paper's hyperbolic bursty stream
//!   (Equation 27), burst trains, sporadic envelopes, and explicit traces
//!   ([`arrival::ArrivalPattern`]);
//! * priority assignment policies, including the relative-deadline-monotonic
//!   rule of Equation 24 ([`priority::PriorityPolicy`]);
//! * the job-shop generator of Section 5.1 with the periodic (Eq. 25/26) and
//!   aperiodic (Eq. 27/28) parameterizations ([`jobshop`]);
//! * analysis-horizon selection ([`horizon`]).
//!
//! Continuous quantities are quantized to the integer tick lattice **once**,
//! at construction time (release times rounded down, execution times rounded
//! up — both conservative); everything downstream is exact integer math.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod distributions;
pub mod horizon;
mod ids;
pub mod jobshop;
pub mod priority;
mod system;

pub use arrival::ArrivalPattern;
pub use ids::{JobId, ProcessorId, SubjobRef};
pub use system::{Job, ModelError, Processor, SchedulerKind, Subjob, SystemBuilder, TaskSystem};

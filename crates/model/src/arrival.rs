//! Arrival patterns: how instances of a job are released over time.
//!
//! Section 3.1 of the paper removes the classical periodicity assumption:
//! instances may be released at arbitrary instants. The analysis consumes an
//! *arrival function* (a counting curve); this module generates the concrete
//! release-time sequences for the pattern families used in the paper and its
//! evaluation, plus a few standard bursty families.

use rta_curves::{Curve, Time};

/// Release-time pattern of a job's first subjob.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// Strictly periodic releases `t_m = offset + (m−1)·period` — the
    /// classical model (Figure 1 top; Equation 25 with `offset = 0`).
    Periodic {
        /// Inter-release time in ticks (≥ 1).
        period: Time,
        /// Release time of the first instance.
        offset: Time,
    },
    /// The paper's bursty aperiodic stream (Equation 27):
    /// `t_m = (1/x)·√(x² + (m−1)²) − 1` time units.
    ///
    /// Early instances are released nearly simultaneously (the inter-release
    /// gap starts near zero) and the stream asymptotically settles to period
    /// `1/x` — a burst followed by a sustained rate.
    Hyperbolic {
        /// The rate parameter `x ∈ (0, 1)`.
        x: f64,
        /// Ticks per model-time unit used for quantization.
        ticks_per_unit: i64,
    },
    /// Periodic trains of dense bursts: every `train_period`, `burst_len`
    /// instances are released `intra_gap` apart.
    BurstTrain {
        /// Instances per burst (≥ 1).
        burst_len: u32,
        /// Gap between instances inside a burst.
        intra_gap: Time,
        /// Start-to-start distance between bursts (must exceed the burst
        /// extent).
        train_period: Time,
        /// Release time of the first burst.
        offset: Time,
    },
    /// Worst-case sporadic envelope: the densest stream permitted by a
    /// minimum inter-arrival separation, i.e. periodic at `min_gap` — the
    /// classical transformation (i) from the paper's introduction.
    SporadicEnvelope {
        /// Minimum inter-arrival separation (≥ 1 tick).
        min_gap: Time,
    },
    /// Periodic releases with bounded release jitter, realized as the
    /// classical worst-case (densest) pattern: a maximally-delayed first
    /// instance followed by on-time successors,
    /// `t_m = offset + max(0, (m−1)·period − jitter)`, so the count in any
    /// interval matches the jitter arrival bound `⌈(Δ + J)/T⌉` (Tindell et
    /// al., the paper's reference \[9\]).
    PeriodicJitter {
        /// Nominal period (≥ 1 tick).
        period: Time,
        /// Maximum release jitter `J ≥ 0`.
        jitter: Time,
        /// Release time of the (delayed) first instance.
        offset: Time,
    },
    /// An explicit, sorted release-time trace.
    Trace(Vec<Time>),
}

impl ArrivalPattern {
    /// All release times in `[0, window]`, sorted.
    pub fn release_times(&self, window: Time) -> Vec<Time> {
        let mut out = Vec::new();
        self.release_times_into(window, &mut out);
        out
    }

    /// [`ArrivalPattern::release_times`] writing into a caller-provided
    /// buffer (cleared first), so hot re-analysis paths can reuse its
    /// capacity across calls.
    pub fn release_times_into(&self, window: Time, out: &mut Vec<Time>) {
        out.clear();
        match self {
            ArrivalPattern::Periodic { period, offset } => {
                assert!(*period >= Time::ONE, "period must be at least one tick");
                let mut t = *offset;
                while t <= window {
                    out.push(t);
                    t += *period;
                }
            }
            ArrivalPattern::Hyperbolic { x, ticks_per_unit } => {
                assert!(*x > 0.0 && *x < 1.0, "Eq. 27 requires x in (0,1)");
                let mut m: u64 = 1;
                loop {
                    let i = (m - 1) as f64;
                    let units = (x * x + i * i).sqrt() / x - 1.0;
                    // Floor: releasing earlier is the conservative direction.
                    let t = Time::from_units_floor(units, *ticks_per_unit).max(Time::ZERO);
                    if t > window {
                        break;
                    }
                    out.push(t);
                    m += 1;
                }
            }
            ArrivalPattern::BurstTrain {
                burst_len,
                intra_gap,
                train_period,
                offset,
            } => {
                assert!(*burst_len >= 1);
                let extent = *intra_gap * (*burst_len as i64 - 1);
                assert!(
                    *train_period > extent,
                    "bursts must not overlap: train_period must exceed the burst extent"
                );
                let mut start = *offset;
                'outer: loop {
                    for i in 0..*burst_len {
                        let t = start + *intra_gap * i as i64;
                        if t > window {
                            break 'outer;
                        }
                        out.push(t);
                    }
                    start += *train_period;
                    if start > window {
                        break;
                    }
                }
            }
            ArrivalPattern::SporadicEnvelope { min_gap } => ArrivalPattern::Periodic {
                period: *min_gap,
                offset: Time::ZERO,
            }
            .release_times_into(window, out),
            ArrivalPattern::PeriodicJitter {
                period,
                jitter,
                offset,
            } => {
                assert!(*period >= Time::ONE, "period must be at least one tick");
                assert!(*jitter >= Time::ZERO, "jitter must be nonnegative");
                let mut m: i64 = 0;
                loop {
                    let t = *offset + (*period * m - *jitter).max(Time::ZERO);
                    if t > window {
                        break;
                    }
                    out.push(t);
                    m += 1;
                }
            }
            ArrivalPattern::Trace(times) => {
                debug_assert!(
                    times.windows(2).all(|w| w[0] <= w[1]),
                    "trace must be sorted"
                );
                out.extend(times.iter().copied().filter(|t| *t <= window));
            }
        }
    }

    /// The arrival function `f_arr` (Definition 1) on `[0, window]` as a
    /// counting curve.
    pub fn arrival_curve(&self, window: Time) -> Curve {
        Curve::from_event_times(&self.release_times(window))
    }

    /// The classical transformation (i) of the paper's introduction:
    /// abstract this pattern into its sporadic envelope — periodic at the
    /// minimum inter-arrival separation observed over `window`.
    ///
    /// The transformed pattern dominates the original pointwise (it
    /// releases at least as many instances by every instant), so analyzing
    /// it is conservative — and, as the paper argues, typically much more
    /// pessimistic than analyzing the bursty pattern directly. Returns
    /// `None` when fewer than two releases fall inside the window or two
    /// releases coincide (no finite positive separation exists).
    pub fn sporadic_envelope(&self, window: Time) -> Option<ArrivalPattern> {
        let times = self.release_times(window);
        let min_gap = times.windows(2).map(|w| w[1] - w[0]).min()?;
        (min_gap > Time::ZERO).then_some(ArrivalPattern::SporadicEnvelope { min_gap })
    }

    /// Nominal long-run period in ticks, where one exists (used by
    /// rate-monotonic priority assignment and utilization accounting).
    pub fn nominal_period(&self, ticks_per_unit_hint: i64) -> Option<Time> {
        match self {
            ArrivalPattern::Periodic { period, .. } => Some(*period),
            ArrivalPattern::Hyperbolic { x, ticks_per_unit } => {
                let _ = ticks_per_unit_hint;
                Some(Time::from_units(1.0 / x, *ticks_per_unit))
            }
            ArrivalPattern::BurstTrain {
                burst_len,
                train_period,
                ..
            } => Some(Time(train_period.ticks() / *burst_len as i64)),
            ArrivalPattern::SporadicEnvelope { min_gap } => Some(*min_gap),
            ArrivalPattern::PeriodicJitter { period, .. } => Some(*period),
            ArrivalPattern::Trace(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_release_times() {
        let p = ArrivalPattern::Periodic {
            period: Time(10),
            offset: Time(3),
        };
        assert_eq!(
            p.release_times(Time(35)),
            vec![Time(3), Time(13), Time(23), Time(33)]
        );
        let c = p.arrival_curve(Time(35));
        assert_eq!(c.count_at(Time(2)), 0);
        assert_eq!(c.count_at(Time(33)), 4);
    }

    #[test]
    fn hyperbolic_starts_at_zero_and_settles_to_period() {
        let x = 0.5;
        let tpu = 1000;
        let p = ArrivalPattern::Hyperbolic {
            x,
            ticks_per_unit: tpu,
        };
        let ts = p.release_times(Time(20_000));
        // Eq. 27 with m = 1: t = (1/x)·√(x²) − 1 = 0.
        assert_eq!(ts[0], Time::ZERO);
        // Early gaps are compressed below the asymptotic period 1/x = 2
        // (first gap = (1/x)·√(x²+1) − 1 ≈ (1−x)·period for small x), and
        // gaps are strictly increasing toward the period.
        let gaps: Vec<i64> = ts.windows(2).map(|w| (w[1] - w[0]).ticks()).collect();
        assert!(gaps[0] < 2 * tpu, "first gap {} below period", gaps[0]);
        assert!(
            gaps.windows(2).all(|g| g[0] <= g[1]),
            "gaps widen monotonically: {gaps:?}"
        );
        // Late gaps approach 1/x = 2 units = 2000 ticks.
        let late_gap = *gaps.last().unwrap();
        assert!(
            (late_gap - 2000).abs() <= 5,
            "late gap {late_gap} should approach the period"
        );
    }

    #[test]
    fn hyperbolic_dominates_periodic_counts() {
        // Eq. 27 releases every instance no later than the periodic stream
        // of the same rate (√(x²+i²) ≤ i + x), so its arrival curve
        // dominates pointwise — the burst front-loads work.
        let tpu = 1000;
        let p = ArrivalPattern::Hyperbolic {
            x: 0.9,
            ticks_per_unit: tpu,
        };
        let period = Time::from_units(1.0 / 0.9, tpu);
        let per = ArrivalPattern::Periodic {
            period,
            offset: Time::ZERO,
        };
        let w = Time(12_000);
        let (cb, cp) = (p.arrival_curve(w), per.arrival_curve(w));
        let mut strictly = false;
        for t in (0..=w.ticks()).step_by(97) {
            let (nb, np) = (cb.count_at(Time(t)), cp.count_at(Time(t)));
            assert!(nb >= np, "bursty count must dominate at t={t}");
            strictly |= nb > np;
        }
        assert!(strictly, "burst must be strictly ahead somewhere");
    }

    #[test]
    fn burst_train_pattern() {
        let p = ArrivalPattern::BurstTrain {
            burst_len: 3,
            intra_gap: Time(2),
            train_period: Time(20),
            offset: Time(1),
        };
        assert_eq!(
            p.release_times(Time(25)),
            vec![Time(1), Time(3), Time(5), Time(21), Time(23), Time(25)]
        );
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_burst_train_rejected() {
        let p = ArrivalPattern::BurstTrain {
            burst_len: 5,
            intra_gap: Time(10),
            train_period: Time(20),
            offset: Time::ZERO,
        };
        let _ = p.release_times(Time(100));
    }

    #[test]
    fn sporadic_envelope_is_dense_periodic() {
        let s = ArrivalPattern::SporadicEnvelope { min_gap: Time(7) };
        assert_eq!(s.release_times(Time(20)), vec![Time(0), Time(7), Time(14)]);
    }

    #[test]
    fn periodic_jitter_worst_case_pattern() {
        let p = ArrivalPattern::PeriodicJitter {
            period: Time(10),
            jitter: Time(4),
            offset: Time::ZERO,
        };
        // First instance maximally delayed, the rest on time relative to it:
        // t = 0, 6, 16, 26, …
        assert_eq!(
            p.release_times(Time(30)),
            vec![Time(0), Time(6), Time(16), Time(26)]
        );
        // Counts match the classical jitter bound: releases in the
        // half-open window [0, Δ+1) number ⌈(Δ + 1 + J)/T⌉.
        let c = p.arrival_curve(Time(100));
        for d in 0i64..=60 {
            let classic = ((d + 1 + 4) as f64 / 10.0).ceil() as i64;
            assert_eq!(c.count_at(Time(d)), classic, "Δ={d}");
        }
        // Zero jitter degenerates to plain periodic.
        let plain = ArrivalPattern::PeriodicJitter {
            period: Time(10),
            jitter: Time::ZERO,
            offset: Time(2),
        };
        assert_eq!(
            plain.release_times(Time(25)),
            vec![Time(2), Time(12), Time(22)]
        );
    }

    #[test]
    fn sporadic_envelope_transformation_dominates() {
        // The paper's motivating comparison: transforming a bursty stream
        // into its sporadic envelope inflates the arrival function.
        let bursty = ArrivalPattern::Trace(vec![Time(0), Time(3), Time(4), Time(20)]);
        let env = bursty.sporadic_envelope(Time(30)).unwrap();
        assert_eq!(env, ArrivalPattern::SporadicEnvelope { min_gap: Time(1) });
        let (cb, ce) = (bursty.arrival_curve(Time(30)), env.arrival_curve(Time(30)));
        for t in 0..=30 {
            assert!(ce.count_at(Time(t)) >= cb.count_at(Time(t)), "t={t}");
        }
        // Degenerate cases yield no transformation.
        assert_eq!(
            ArrivalPattern::Trace(vec![Time(5)]).sporadic_envelope(Time(30)),
            None
        );
        assert_eq!(
            ArrivalPattern::Trace(vec![Time(5), Time(5)]).sporadic_envelope(Time(30)),
            None
        );
    }

    #[test]
    fn trace_is_window_filtered() {
        let t = ArrivalPattern::Trace(vec![Time(1), Time(4), Time(40)]);
        assert_eq!(t.release_times(Time(10)), vec![Time(1), Time(4)]);
    }

    #[test]
    fn nominal_periods() {
        assert_eq!(
            ArrivalPattern::Periodic {
                period: Time(10),
                offset: Time::ZERO
            }
            .nominal_period(1),
            Some(Time(10))
        );
        assert_eq!(
            ArrivalPattern::Hyperbolic {
                x: 0.5,
                ticks_per_unit: 1000
            }
            .nominal_period(1),
            Some(Time(2000))
        );
        assert_eq!(ArrivalPattern::Trace(vec![]).nominal_period(1), None);
    }
}

//! The distributed real-time system: processors, jobs, subjob chains.

use crate::arrival::ArrivalPattern;
use crate::ids::{JobId, ProcessorId, SubjobRef};
use rta_curves::Time;

/// Scheduling algorithm run by a processor (Section 3.2).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum SchedulerKind {
    /// Static-priority preemptive.
    Spp,
    /// Static-priority non-preemptive.
    Spnp,
    /// First-come-first-served.
    Fcfs,
    /// Interleaved weighted round-robin (non-preemptive, per-subjob
    /// weights; Tabatabaee, Le Boudec & Boyer).
    Iwrr,
}

impl SchedulerKind {
    /// Whether subjobs on this processor need priorities assigned.
    pub fn uses_priorities(self) -> bool {
        matches!(self, SchedulerKind::Spp | SchedulerKind::Spnp)
    }

    /// Whether subjobs on this processor consume per-subjob weights.
    pub fn uses_weights(self) -> bool {
        matches!(self, SchedulerKind::Iwrr)
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::Spp => write!(f, "SPP"),
            SchedulerKind::Spnp => write!(f, "SPNP"),
            SchedulerKind::Fcfs => write!(f, "FCFS"),
            SchedulerKind::Iwrr => write!(f, "IWRR"),
        }
    }
}

/// A processor `P_i`.
#[derive(Clone, Debug)]
pub struct Processor {
    /// Human-readable name.
    pub name: String,
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
}

/// A subjob `T_{k,j}`: one hop of a job's chain.
#[derive(Clone, Debug)]
pub struct Subjob {
    /// The processor `P(k,j)` this hop executes on.
    pub processor: ProcessorId,
    /// Execution time `τ_{k,j}` in ticks (≥ 1).
    pub exec: Time,
    /// Static priority `φ_{k,j}` on the processor — **smaller is higher**,
    /// as in the paper. `None` until a priority policy has run (FCFS-only
    /// systems may leave priorities unassigned).
    pub priority: Option<u32>,
    /// Service weight `w_{k,j}` for weighted round-robin disciplines.
    /// `None` means the default weight of 1; ignored by SPP/SPNP/FCFS.
    pub weight: Option<u32>,
}

impl Subjob {
    /// Effective round-robin weight (defaults to 1 when unassigned).
    pub fn weight(&self) -> u32 {
        self.weight.unwrap_or(1)
    }
}

/// A job `T_k`: a chain of subjobs with an end-to-end deadline and an
/// arrival pattern for its first subjob.
#[derive(Clone, Debug)]
pub struct Job {
    /// Human-readable name.
    pub name: String,
    /// End-to-end (relative) deadline `D_k` in ticks.
    pub deadline: Time,
    /// Release pattern of the first subjob.
    pub arrival: ArrivalPattern,
    /// The chain `T_{k,1}, …, T_{k,n_k}` (nonempty).
    pub subjobs: Vec<Subjob>,
}

impl Job {
    /// Total execution demand `Σ_j τ_{k,j}` of one instance.
    pub fn total_exec(&self) -> Time {
        self.subjobs.iter().map(|s| s.exec).sum()
    }
}

/// Errors raised during system construction or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A subjob references a processor that does not exist.
    UnknownProcessor {
        /// The offending subjob.
        subjob: SubjobRef,
    },
    /// A job has an empty subjob chain.
    EmptyChain {
        /// The offending job.
        job: JobId,
    },
    /// A subjob has a non-positive execution time.
    NonPositiveExec {
        /// The offending subjob.
        subjob: SubjobRef,
    },
    /// A job has a non-positive deadline.
    NonPositiveDeadline {
        /// The offending job.
        job: JobId,
    },
    /// The system contains no jobs.
    NoJobs,
    /// Two subjobs on the same static-priority processor share a priority
    /// level (the analysis requires a strict order).
    DuplicatePriority {
        /// The processor on which the collision occurs.
        processor: ProcessorId,
        /// The colliding priority value.
        priority: u32,
    },
    /// A subjob on a static-priority processor has no priority assigned.
    MissingPriority {
        /// The offending subjob.
        subjob: SubjobRef,
    },
    /// Rate-monotonic assignment needs a nominal period, but the job's
    /// arrival pattern (e.g. an explicit trace) has none.
    NoNominalPeriod {
        /// The offending job.
        job: JobId,
    },
    /// A subjob on a weighted round-robin processor has weight zero —
    /// such a flow would never be served.
    ZeroWeight {
        /// The offending subjob.
        subjob: SubjobRef,
    },
    /// A burst-train arrival whose burst extent `intra_gap · (burst_len − 1)`
    /// reaches its `train_period`, so consecutive trains would overlap.
    OverlappingBursts {
        /// The offending job.
        job: JobId,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownProcessor { subjob } => {
                write!(f, "subjob {subjob} references an unknown processor")
            }
            ModelError::EmptyChain { job } => write!(f, "job {job} has no subjobs"),
            ModelError::NonPositiveExec { subjob } => {
                write!(f, "subjob {subjob} has a non-positive execution time")
            }
            ModelError::NonPositiveDeadline { job } => {
                write!(f, "job {job} has a non-positive deadline")
            }
            ModelError::NoJobs => write!(f, "system contains no jobs"),
            ModelError::DuplicatePriority {
                processor,
                priority,
            } => {
                write!(f, "duplicate priority {priority} on processor {processor}")
            }
            ModelError::MissingPriority { subjob } => {
                write!(
                    f,
                    "subjob {subjob} on a static-priority processor has no priority"
                )
            }
            ModelError::NoNominalPeriod { job } => {
                write!(
                    f,
                    "job {job} has no nominal period for rate-monotonic assignment"
                )
            }
            ModelError::ZeroWeight { subjob } => {
                write!(
                    f,
                    "subjob {subjob} on a weighted round-robin processor has weight zero"
                )
            }
            ModelError::OverlappingBursts { job } => {
                write!(
                    f,
                    "job {job} has a burst train whose extent reaches its train period"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A validated distributed real-time system (Section 3).
#[derive(Clone, Debug)]
pub struct TaskSystem {
    processors: Vec<Processor>,
    jobs: Vec<Job>,
    ticks_per_unit: i64,
}

impl TaskSystem {
    /// All processors.
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// All jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Mutable access to jobs — used by priority-assignment policies.
    pub(crate) fn jobs_mut(&mut self) -> &mut [Job] {
        &mut self.jobs
    }

    /// Quantization factor recorded at construction (reporting only).
    pub fn ticks_per_unit(&self) -> i64 {
        self.ticks_per_unit
    }

    /// Look up a processor.
    pub fn processor(&self, id: ProcessorId) -> &Processor {
        &self.processors[id.0]
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.0]
    }

    /// Look up a subjob.
    pub fn subjob(&self, r: SubjobRef) -> &Subjob {
        &self.jobs[r.job.0].subjobs[r.index]
    }

    /// Iterator over all subjob references.
    pub fn all_subjobs(&self) -> impl Iterator<Item = SubjobRef> + '_ {
        self.jobs.iter().enumerate().flat_map(|(k, job)| {
            (0..job.subjobs.len()).map(move |j| SubjobRef {
                job: JobId(k),
                index: j,
            })
        })
    }

    /// All subjobs assigned to a processor.
    pub fn subjobs_on(&self, p: ProcessorId) -> Vec<SubjobRef> {
        self.all_subjobs()
            .filter(|r| self.subjob(*r).processor == p)
            .collect()
    }

    /// Subjobs on the same processor as `r` with **strictly higher** priority
    /// (smaller `φ`), per the summations in Theorems 3, 5 and 6.
    pub fn higher_priority_peers(&self, r: SubjobRef) -> Vec<SubjobRef> {
        let s = self.subjob(r);
        let phi = s.priority.expect("priorities must be assigned");
        self.all_subjobs()
            .filter(|o| {
                let os = self.subjob(*o);
                *o != r && os.processor == s.processor && os.priority.expect("assigned") < phi
            })
            .collect()
    }

    /// Maximum execution time of strictly lower-priority subjobs on the same
    /// processor: the blocking term `b_{k,j}` of Equation 15. Zero when no
    /// lower-priority subjob exists. Allocation-free — this sits on the
    /// warm re-analysis path.
    pub fn blocking_time(&self, r: SubjobRef) -> Time {
        let s = self.subjob(r);
        let phi = s.priority.expect("priorities must be assigned");
        self.all_subjobs()
            .filter(|o| {
                let os = self.subjob(*o);
                *o != r && os.processor == s.processor && os.priority.expect("assigned") > phi
            })
            .map(|o| self.subjob(o).exec)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Long-run utilization of a processor, where every job on it has a
    /// nominal period: `Σ τ/ρ`. `None` if some pattern has no period.
    pub fn utilization_on(&self, p: ProcessorId) -> Option<f64> {
        let mut u = 0.0;
        for r in self.subjobs_on(p) {
            let job = self.job(r.job);
            let period = job.arrival.nominal_period(self.ticks_per_unit)?;
            u += self.subjob(r).exec.ticks() as f64 / period.ticks() as f64;
        }
        Some(u)
    }

    /// A copy of the system with every execution time scaled by `factor`
    /// (rounded up, at least one tick) — the workhorse of sensitivity
    /// analysis. Priorities, deadlines and arrival patterns are unchanged.
    pub fn with_scaled_exec(&self, factor: f64) -> TaskSystem {
        assert!(factor > 0.0 && factor.is_finite());
        let mut out = self.clone();
        for job in &mut out.jobs {
            for s in &mut job.subjobs {
                let scaled = (s.exec.ticks() as f64 * factor).ceil() as i64;
                s.exec = Time(scaled.max(1));
            }
        }
        out
    }

    /// Overwrite every execution time in place with `base`'s scaled by
    /// `factor` (rounded up, at least one tick) — the allocation-free
    /// counterpart of [`TaskSystem::with_scaled_exec`] for bisection loops
    /// that re-scale one buffer from the same base system every step.
    ///
    /// `self` and `base` must have identical job/subjob shape (as produced
    /// by cloning `base` once up front).
    pub fn assign_scaled_exec(&mut self, base: &TaskSystem, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        assert_eq!(self.jobs.len(), base.jobs.len(), "shape mismatch");
        for (job, base_job) in self.jobs.iter_mut().zip(&base.jobs) {
            assert_eq!(job.subjobs.len(), base_job.subjobs.len(), "shape mismatch");
            for (s, base_s) in job.subjobs.iter_mut().zip(&base_job.subjobs) {
                let scaled = (base_s.exec.ticks() as f64 * factor).ceil() as i64;
                s.exec = Time(scaled.max(1));
            }
        }
    }

    /// Set (or clear) the priority of one subjob. The caller is responsible
    /// for re-validating before analysis — duplicate priorities on a
    /// static-priority processor are caught by [`TaskSystem::validate`].
    pub fn set_priority(&mut self, r: SubjobRef, priority: Option<u32>) {
        self.jobs[r.job.0].subjobs[r.index].priority = priority;
    }

    /// Set (or clear) the round-robin weight of one subjob. Zero weights on
    /// a weighted processor are caught by [`TaskSystem::validate`].
    pub fn set_weight(&mut self, r: SubjobRef, weight: Option<u32>) {
        self.jobs[r.job.0].subjobs[r.index].weight = weight;
    }

    /// Replace one job's arrival pattern (e.g. to grow a burst train while
    /// sweeping a schedulability region). Overlapping burst trains are
    /// caught by [`TaskSystem::validate`].
    pub fn set_arrival(&mut self, id: JobId, arrival: ArrivalPattern) {
        self.jobs[id.0].arrival = arrival;
    }

    /// Append a job to the system; returns its id. Existing job ids (and
    /// therefore subjob enumeration order of existing jobs) are unchanged.
    pub fn push_job(&mut self, job: Job) -> JobId {
        self.jobs.push(job);
        JobId(self.jobs.len() - 1)
    }

    /// Remove a job; later job ids shift down by one. Returns the removed
    /// job. Panics if the id is out of range.
    pub fn remove_job(&mut self, id: JobId) -> Job {
        self.jobs.remove(id.0)
    }

    /// Validate structural invariants; called by the builder and again by
    /// analyses that require priorities.
    pub fn validate(&self, require_priorities: bool) -> Result<(), ModelError> {
        if self.jobs.is_empty() {
            return Err(ModelError::NoJobs);
        }
        for (k, job) in self.jobs.iter().enumerate() {
            let job_id = JobId(k);
            if job.subjobs.is_empty() {
                return Err(ModelError::EmptyChain { job: job_id });
            }
            if job.deadline <= Time::ZERO {
                return Err(ModelError::NonPositiveDeadline { job: job_id });
            }
            if let ArrivalPattern::BurstTrain {
                burst_len,
                intra_gap,
                train_period,
                ..
            } = job.arrival
            {
                if intra_gap * (burst_len.max(1) as i64 - 1) >= train_period {
                    return Err(ModelError::OverlappingBursts { job: job_id });
                }
            }
            for (j, s) in job.subjobs.iter().enumerate() {
                let r = SubjobRef {
                    job: job_id,
                    index: j,
                };
                if s.processor.0 >= self.processors.len() {
                    return Err(ModelError::UnknownProcessor { subjob: r });
                }
                if s.exec <= Time::ZERO {
                    return Err(ModelError::NonPositiveExec { subjob: r });
                }
                if self.processors[s.processor.0].scheduler.uses_weights() && s.weight == Some(0) {
                    return Err(ModelError::ZeroWeight { subjob: r });
                }
            }
        }
        if require_priorities {
            // Allocation-free duplicate detection (validate runs on every
            // warm re-analysis): for each priority-scheduled processor,
            // check each subjob's φ against all earlier subjobs on the
            // same processor. Quadratic in the per-processor subjob count,
            // which is small; error order matches the map-based scan this
            // replaces (first missing or duplicating subjob in enumeration
            // order wins).
            for (p, proc) in self.processors.iter().enumerate() {
                if !proc.scheduler.uses_priorities() {
                    continue;
                }
                let pid = ProcessorId(p);
                for r in self.all_subjobs() {
                    if self.subjob(r).processor != pid {
                        continue;
                    }
                    let Some(phi) = self.subjob(r).priority else {
                        return Err(ModelError::MissingPriority { subjob: r });
                    };
                    for o in self.all_subjobs() {
                        if o == r {
                            break;
                        }
                        let os = self.subjob(o);
                        if os.processor == pid && os.priority == Some(phi) {
                            return Err(ModelError::DuplicatePriority {
                                processor: pid,
                                priority: phi,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Incremental constructor for [`TaskSystem`].
#[derive(Default)]
pub struct SystemBuilder {
    processors: Vec<Processor>,
    jobs: Vec<Job>,
    ticks_per_unit: i64,
}

impl SystemBuilder {
    /// Start an empty system with the default quantization.
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            processors: Vec::new(),
            jobs: Vec::new(),
            ticks_per_unit: rta_curves::DEFAULT_TICKS_PER_UNIT,
        }
    }

    /// Record the tick quantization used when the model was built.
    pub fn ticks_per_unit(mut self, tpu: i64) -> SystemBuilder {
        assert!(tpu >= 1);
        self.ticks_per_unit = tpu;
        self
    }

    /// Add a processor; returns its id.
    pub fn add_processor(
        &mut self,
        name: impl Into<String>,
        scheduler: SchedulerKind,
    ) -> ProcessorId {
        self.processors.push(Processor {
            name: name.into(),
            scheduler,
        });
        ProcessorId(self.processors.len() - 1)
    }

    /// Add a job as a chain of `(processor, execution time)` hops, with
    /// priorities unassigned; returns its id.
    pub fn add_job(
        &mut self,
        name: impl Into<String>,
        deadline: Time,
        arrival: ArrivalPattern,
        chain: Vec<(ProcessorId, Time)>,
    ) -> JobId {
        let subjobs = chain
            .into_iter()
            .map(|(processor, exec)| Subjob {
                processor,
                exec,
                priority: None,
                weight: None,
            })
            .collect();
        self.jobs.push(Job {
            name: name.into(),
            deadline,
            arrival,
            subjobs,
        });
        JobId(self.jobs.len() - 1)
    }

    /// Set an explicit priority on a subjob (smaller = higher).
    pub fn set_priority(&mut self, r: SubjobRef, priority: u32) -> &mut SystemBuilder {
        self.jobs[r.job.0].subjobs[r.index].priority = Some(priority);
        self
    }

    /// Set an explicit round-robin weight on a subjob (≥ 1).
    pub fn set_weight(&mut self, r: SubjobRef, weight: u32) -> &mut SystemBuilder {
        self.jobs[r.job.0].subjobs[r.index].weight = Some(weight);
        self
    }

    /// Finalize: validate structure (priorities may still be unassigned).
    pub fn build(self) -> Result<TaskSystem, ModelError> {
        let sys = TaskSystem {
            processors: self.processors,
            jobs: self.jobs,
            ticks_per_unit: self.ticks_per_unit,
        };
        sys.validate(false)?;
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_proc_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(50),
                offset: Time::ZERO,
            },
            vec![(p1, Time(10)), (p2, Time(5))],
        );
        let t2 = b.add_job(
            "T2",
            Time(200),
            ArrivalPattern::Periodic {
                period: Time(100),
                offset: Time::ZERO,
            },
            vec![(p1, Time(20))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        b.build().unwrap()
    }

    #[test]
    fn builder_and_lookups() {
        let sys = two_proc_system();
        assert_eq!(sys.processors().len(), 2);
        assert_eq!(sys.jobs().len(), 2);
        assert_eq!(sys.subjobs_on(ProcessorId(0)).len(), 2);
        assert_eq!(sys.subjobs_on(ProcessorId(1)).len(), 1);
        assert_eq!(sys.job(JobId(0)).total_exec(), Time(15));
        assert!(sys.validate(true).is_ok());
    }

    #[test]
    fn higher_priority_peers_and_blocking() {
        let sys = two_proc_system();
        let t1p1 = SubjobRef {
            job: JobId(0),
            index: 0,
        };
        let t2p1 = SubjobRef {
            job: JobId(1),
            index: 0,
        };
        assert!(sys.higher_priority_peers(t1p1).is_empty());
        assert_eq!(sys.higher_priority_peers(t2p1), vec![t1p1]);
        // T1's subjob on P1 can be blocked by T2's (lower-priority, exec 20).
        assert_eq!(sys.blocking_time(t1p1), Time(20));
        assert_eq!(sys.blocking_time(t2p1), Time::ZERO);
    }

    #[test]
    fn utilization_accounting() {
        let sys = two_proc_system();
        // P1: 10/50 + 20/100 = 0.4; P2: 5/50 = 0.1.
        assert!((sys.utilization_on(ProcessorId(0)).unwrap() - 0.4).abs() < 1e-12);
        assert!((sys.utilization_on(ProcessorId(1)).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_systems() {
        let b = SystemBuilder::new();
        assert_eq!(b.build().unwrap_err(), ModelError::NoJobs);

        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(0))],
        );
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::NonPositiveExec { .. }
        ));

        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time::ZERO,
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::NonPositiveDeadline { .. }
        ));
    }

    #[test]
    fn priority_validation() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        let t2 = b.add_job(
            "T2",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 3);
        let sys = b.build().unwrap();
        // Missing priority on T2.
        assert!(matches!(
            sys.validate(true).unwrap_err(),
            ModelError::MissingPriority { subjob } if subjob.job == t2
        ));
        // FCFS processors do not need priorities.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        assert!(b.build().unwrap().validate(true).is_ok());
    }

    #[test]
    fn duplicate_priorities_rejected() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        let t1 = b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        let t2 = b.add_job(
            "T2",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 1);
        let sys = b.build().unwrap();
        assert!(matches!(
            sys.validate(true).unwrap_err(),
            ModelError::DuplicatePriority { priority: 1, .. }
        ));
    }

    #[test]
    fn scheduler_kind_properties() {
        assert!(SchedulerKind::Spp.uses_priorities());
        assert!(SchedulerKind::Spnp.uses_priorities());
        assert!(!SchedulerKind::Fcfs.uses_priorities());
        assert!(!SchedulerKind::Iwrr.uses_priorities());
        assert!(SchedulerKind::Iwrr.uses_weights());
        assert!(!SchedulerKind::Fcfs.uses_weights());
        assert_eq!(SchedulerKind::Fcfs.to_string(), "FCFS");
        assert_eq!(SchedulerKind::Iwrr.to_string(), "IWRR");
    }

    #[test]
    fn weights_default_and_validate() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Iwrr);
        let t1 = b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        let t2 = b.add_job(
            "T2",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(5),
                offset: Time::ZERO,
            },
            vec![(p, Time(1))],
        );
        b.set_weight(SubjobRef { job: t2, index: 0 }, 3);
        let sys = b.build().unwrap();
        // Unassigned weight defaults to 1; IWRR needs no priorities.
        assert_eq!(sys.subjob(SubjobRef { job: t1, index: 0 }).weight(), 1);
        assert_eq!(sys.subjob(SubjobRef { job: t2, index: 0 }).weight(), 3);
        assert!(sys.validate(true).is_ok());
        // An explicit zero weight on a weighted processor is rejected.
        let mut sys = sys;
        sys.set_weight(SubjobRef { job: t1, index: 0 }, Some(0));
        assert!(matches!(
            sys.validate(false).unwrap_err(),
            ModelError::ZeroWeight { subjob } if subjob.job == t1
        ));
    }
}

//! Priority assignment policies.
//!
//! The analysis accepts arbitrary priority assignments (Section 3.2); the
//! evaluation uses the *relative deadline monotonic* rule of Equation 24:
//! each subjob gets the sub-deadline
//! `D_{i,j} = τ_{i,j} / (Σ_k τ_{i,k}) · D_i`, and subjobs on a processor are
//! prioritized by increasing sub-deadline. Classical deadline-monotonic and
//! rate-monotonic policies are provided as alternatives.
//!
//! All policies produce a **strict** priority order per processor (the
//! theorems sum over strictly-higher-priority peers), breaking ties by
//! `(job index, hop index)`.

use crate::ids::{JobId, SubjobRef};
use crate::system::{ModelError, TaskSystem};
use rta_curves::Time;

/// A priority assignment policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PriorityPolicy {
    /// Equation 24: sub-deadline proportional to the hop's share of the
    /// chain's total execution time; smaller sub-deadline = higher priority.
    RelativeDeadlineMonotonic,
    /// Smaller end-to-end deadline = higher priority (same order on every
    /// processor a job visits).
    DeadlineMonotonic,
    /// Smaller nominal period = higher priority. Fails with
    /// [`ModelError::NoNominalPeriod`] if a job's pattern has no period.
    RateMonotonic,
}

/// Assign priorities on every static-priority processor of the system
/// according to `policy`, then validate the result.
///
/// FCFS processors are skipped. Existing priorities are overwritten.
pub fn assign_priorities(sys: &mut TaskSystem, policy: PriorityPolicy) -> Result<(), ModelError> {
    rank_priorities(sys, policy)?;
    sys.validate(true)
}

/// [`assign_priorities`] without the closing structural re-validation —
/// for hot Monte-Carlo loops that re-rank a system already validated once
/// (a sampler redraw changes deadlines and arrival parameters, never the
/// topology the validation checks).
pub fn rank_priorities(sys: &mut TaskSystem, policy: PriorityPolicy) -> Result<(), ModelError> {
    // One pass over the subjobs (not one per processor — this runs per
    // Monte-Carlo draw): collect every subjob on a priority-scheduled
    // processor, sort once with the processor leading the key, and assign
    // ranks within each processor run. Equivalent to the per-processor
    // sorts: grouping by processor first leaves the per-processor order
    // `(key, job, index)` unchanged.
    let mut entries: Vec<(u32, i128, SubjobRef)> = Vec::new();
    for (ji, job) in sys.jobs().iter().enumerate() {
        // Hoist the per-job parts of the key out of the subjob loop, and
        // defer fallible ones (rate-monotonic needs a nominal period) until
        // a subjob actually lands on a priority-scheduled processor.
        let mut per_job: Option<(i128, i128)> = None; // RDM: (D·10⁶, Στ)
        for (si, s) in job.subjobs.iter().enumerate() {
            if !sys.processor(s.processor).scheduler.uses_priorities() {
                continue;
            }
            let r = SubjobRef {
                job: JobId(ji),
                index: si,
            };
            let k = match policy {
                PriorityPolicy::RelativeDeadlineMonotonic => {
                    // D_{i,j} = τ_{i,j}·D_i / Στ. The denominator differs
                    // per job, so exact cross-multiplied comparison is
                    // unavailable pairwise; compare the scaled integer
                    // τ_{i,j}·D_i·10⁶ / Στ instead, whose resolution (one
                    // millionth of a tick) exceeds any realistic
                    // sub-deadline gap.
                    let (num_d, total) = *per_job.get_or_insert_with(|| {
                        let total = job.total_exec().ticks() as i128;
                        debug_assert!(total > 0);
                        ((job.deadline.ticks() as i128) * 1_000_000, total)
                    });
                    let num = (s.exec.ticks() as i128) * num_d;
                    // Same quotient either way; the i64 path uses the
                    // hardware divider instead of the 128-bit soft-div
                    // libcall, which dominates this function's cost in the
                    // Monte-Carlo re-ranking loop.
                    match i64::try_from(num) {
                        Ok(n) => (n / total as i64) as i128,
                        Err(_) => num / total,
                    }
                }
                PriorityPolicy::DeadlineMonotonic => job.deadline.ticks() as i128,
                PriorityPolicy::RateMonotonic => match per_job {
                    Some((p, _)) => p,
                    None => {
                        let period: Time = job
                            .arrival
                            .nominal_period(sys.ticks_per_unit())
                            .ok_or(ModelError::NoNominalPeriod { job: JobId(ji) })?;
                        per_job = Some((period.ticks() as i128, 0));
                        period.ticks() as i128
                    }
                },
            };
            entries.push((s.processor.0 as u32, k, r));
        }
    }
    entries.sort_unstable_by_key(|&(p, k, r)| (p, k, r.job.0, r.index));
    let mut proc = u32::MAX;
    let mut rank = 0u32;
    for &(p, _, r) in &entries {
        if p != proc {
            proc = p;
            rank = 0;
        }
        rank += 1;
        sys.jobs_mut()[r.job.0].subjobs[r.index].priority = Some(rank);
    }
    Ok(())
}

/// The Equation 24 sub-deadline of a subjob, in ticks (rounded down).
pub fn sub_deadline(sys: &TaskSystem, r: SubjobRef) -> Time {
    let job = sys.job(r.job);
    let s = sys.subjob(r);
    let total = job.total_exec().ticks() as i128;
    let d = (s.exec.ticks() as i128) * (job.deadline.ticks() as i128) / total;
    Time(d as i64)
}

/// Proportional-deadline split: each hop's sub-deadline, useful for
/// reporting; sums to ≤ the end-to-end deadline (rounding down per hop).
pub fn sub_deadlines(sys: &TaskSystem, job: JobId) -> Vec<Time> {
    (0..sys.job(job).subjobs.len())
        .map(|j| sub_deadline(sys, SubjobRef { job, index: j }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalPattern;
    use crate::ids::ProcessorId;
    use crate::system::{SchedulerKind, SystemBuilder};

    fn sys_three_jobs(scheduler: SchedulerKind) -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", scheduler);
        let p2 = b.add_processor("P2", scheduler);
        // T1: deadline 100, chain exec 10+30 ⇒ sub-deadlines 25, 75.
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(50),
                offset: Time::ZERO,
            },
            vec![(p1, Time(10)), (p2, Time(30))],
        );
        // T2: deadline 60, single hop on P1 ⇒ sub-deadline 60.
        b.add_job(
            "T2",
            Time(60),
            ArrivalPattern::Periodic {
                period: Time(60),
                offset: Time::ZERO,
            },
            vec![(p1, Time(20))],
        );
        // T3: deadline 40, single hop on P2 ⇒ sub-deadline 40.
        b.add_job(
            "T3",
            Time(40),
            ArrivalPattern::Periodic {
                period: Time(20),
                offset: Time::ZERO,
            },
            vec![(p2, Time(5))],
        );
        b.build().unwrap()
    }

    #[test]
    fn relative_deadline_monotonic_matches_eq24() {
        let mut sys = sys_three_jobs(SchedulerKind::Spp);
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        // P1: T1 hop 0 sub-deadline 25 < T2's 60 ⇒ T1 higher.
        let t1p1 = SubjobRef {
            job: JobId(0),
            index: 0,
        };
        let t2p1 = SubjobRef {
            job: JobId(1),
            index: 0,
        };
        assert!(sys.subjob(t1p1).priority < sys.subjob(t2p1).priority);
        // P2: T3 sub-deadline 40 < T1 hop 1's 75 ⇒ T3 higher.
        let t1p2 = SubjobRef {
            job: JobId(0),
            index: 1,
        };
        let t3p2 = SubjobRef {
            job: JobId(2),
            index: 0,
        };
        assert!(sys.subjob(t3p2).priority < sys.subjob(t1p2).priority);
        assert!(sys.validate(true).is_ok());
    }

    #[test]
    fn sub_deadline_values() {
        let sys = sys_three_jobs(SchedulerKind::Spp);
        assert_eq!(
            sub_deadline(
                &sys,
                SubjobRef {
                    job: JobId(0),
                    index: 0
                }
            ),
            Time(25)
        );
        assert_eq!(
            sub_deadline(
                &sys,
                SubjobRef {
                    job: JobId(0),
                    index: 1
                }
            ),
            Time(75)
        );
        assert_eq!(sub_deadlines(&sys, JobId(0)), vec![Time(25), Time(75)]);
    }

    #[test]
    fn deadline_monotonic_orders_by_end_to_end_deadline() {
        let mut sys = sys_three_jobs(SchedulerKind::Spnp);
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        // P1: T2 (D=60) higher than T1 (D=100).
        assert!(
            sys.subjob(SubjobRef {
                job: JobId(1),
                index: 0
            })
            .priority
                < sys
                    .subjob(SubjobRef {
                        job: JobId(0),
                        index: 0
                    })
                    .priority
        );
    }

    #[test]
    fn rate_monotonic_orders_by_period() {
        let mut sys = sys_three_jobs(SchedulerKind::Spp);
        assign_priorities(&mut sys, PriorityPolicy::RateMonotonic).unwrap();
        // P2: T3 period 20 < T1 period 50.
        assert!(
            sys.subjob(SubjobRef {
                job: JobId(2),
                index: 0
            })
            .priority
                < sys
                    .subjob(SubjobRef {
                        job: JobId(0),
                        index: 1
                    })
                    .priority
        );
    }

    #[test]
    fn fcfs_processors_are_skipped() {
        let mut sys = sys_three_jobs(SchedulerKind::Fcfs);
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        for r in sys.subjobs_on(ProcessorId(0)) {
            assert_eq!(sys.subjob(r).priority, None);
        }
    }

    #[test]
    fn priorities_are_strict_per_processor() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        // Identical jobs: tie must be broken deterministically.
        for i in 0..4 {
            b.add_job(
                format!("T{i}"),
                Time(50),
                ArrivalPattern::Periodic {
                    period: Time(50),
                    offset: Time::ZERO,
                },
                vec![(p, Time(10))],
            );
        }
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let mut prios: Vec<u32> = sys
            .subjobs_on(ProcessorId(0))
            .into_iter()
            .map(|r| sys.subjob(r).priority.unwrap())
            .collect();
        prios.sort();
        assert_eq!(prios, vec![1, 2, 3, 4]);
    }
}

//! Typed identifiers for processors, jobs and subjobs.

use std::fmt;

/// Index of a processor in a [`crate::TaskSystem`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessorId(pub usize);

/// Index of a job in a [`crate::TaskSystem`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub usize);

/// A subjob `T_{k,j}`: the `index`-th hop (0-based) of job `job`.
///
/// The paper writes `T_{k,j}` with `j` 1-based; this library uses 0-based
/// indices internally and 1-based names in display output.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SubjobRef {
    /// The owning job `T_k`.
    pub job: JobId,
    /// 0-based position in the job's chain.
    pub index: usize,
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

impl fmt::Display for SubjobRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{},{}", self.job.0 + 1, self.index + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ProcessorId(0).to_string(), "P1");
        assert_eq!(JobId(2).to_string(), "T3");
        assert_eq!(
            SubjobRef {
                job: JobId(1),
                index: 0
            }
            .to_string(),
            "T2,1"
        );
    }
}

//! Random distributions for workload generation.
//!
//! The evaluation draws uniform variates (periods, weights), exponential
//! deadlines, and — for the Figure 4 grid, which varies deadline *variance*
//! independently of the mean — gamma-distributed deadlines. The offline
//! `rand` crate provides only uniform primitives, so exponential and gamma
//! sampling (Marsaglia–Tsang, with Box–Muller normals) are implemented here.

use rand::Rng;

/// A parametric distribution over nonnegative reals.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Dist {
    /// Point mass at `v`.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform(f64, f64),
    /// Exponential with the given mean (variance = mean²).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Gamma parameterized by mean and variance.
    ///
    /// `Gamma { mean: m, variance: m² }` coincides with
    /// `Exponential { mean: m }`; lowering the variance below `m²`
    /// concentrates the distribution, raising it spreads it — exactly the
    /// two axes the Figure 4 panel grid sweeps.
    Gamma {
        /// Mean of the distribution.
        mean: f64,
        /// Variance of the distribution.
        variance: f64,
    },
    /// A gamma variate on top of a deterministic floor: `shift + Γ`.
    ///
    /// Used for the Figure 4 deadline grid: the floor keeps a minimum
    /// feasible deadline, so sweeping the noise variance changes the tail
    /// without collapsing the distribution onto zero — consistent with the
    /// paper's observation that deadline variance has little effect on
    /// admission probability.
    ShiftedGamma {
        /// Deterministic floor.
        shift: f64,
        /// Mean of the gamma noise (total mean = `shift + mean`).
        mean: f64,
        /// Variance of the gamma noise (= variance of the total).
        variance: f64,
    },
}

impl Dist {
    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform(lo, hi) => {
                assert!(hi > lo, "empty uniform support");
                rng.gen_range(lo..hi)
            }
            Dist::Exponential { mean } => sample_exponential(rng, mean),
            Dist::Gamma { mean, variance } => {
                assert!(
                    mean > 0.0 && variance > 0.0,
                    "gamma needs positive parameters"
                );
                // mean = k·θ, variance = k·θ² ⇒ θ = var/mean, k = mean²/var.
                let theta = variance / mean;
                let k = mean * mean / variance;
                sample_gamma(rng, k) * theta
            }
            Dist::ShiftedGamma {
                shift,
                mean,
                variance,
            } => shift + Dist::Gamma { mean, variance }.sample(rng),
        }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform(lo, hi) => 0.5 * (lo + hi),
            Dist::Exponential { mean } => mean,
            Dist::Gamma { mean, .. } => mean,
            Dist::ShiftedGamma { shift, mean, .. } => shift + mean,
        }
    }

    /// Theoretical variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Dist::Constant(_) => 0.0,
            Dist::Uniform(lo, hi) => (hi - lo) * (hi - lo) / 12.0,
            Dist::Exponential { mean } => mean * mean,
            Dist::Gamma { variance, .. } => variance,
            Dist::ShiftedGamma { variance, .. } => variance,
        }
    }
}

/// Exponential variate via inversion.
fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential needs a positive mean");
    // gen::<f64>() ∈ [0,1); guard against ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Standard normal variate via Box–Muller.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma(shape k, scale 1) via Marsaglia & Tsang (2000), with the standard
/// `U^{1/k}` boost for shape < 1.
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, k: f64) -> f64 {
    assert!(k > 0.0, "gamma needs a positive shape");
    if k < 1.0 {
        // Γ(k) = Γ(k+1) · U^{1/k}
        let u: f64 = 1.0 - rng.gen::<f64>();
        return sample_gamma(rng, k + 1.0) * u.powf(1.0 / k);
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = 1.0 - rng.gen::<f64>();
        // Squeeze, then full acceptance test.
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(d: Dist, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn constant_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Dist::Constant(4.2).sample(&mut rng), 4.2);
        for _ in 0..100 {
            let x = Dist::Uniform(2.0, 3.0).sample(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
        let (m, v) = moments(Dist::Uniform(0.0, 1.0), 40_000, 7);
        assert!((m - 0.5).abs() < 0.01, "uniform mean {m}");
        assert!((v - 1.0 / 12.0).abs() < 0.005, "uniform variance {v}");
    }

    #[test]
    fn exponential_moments() {
        let (m, v) = moments(Dist::Exponential { mean: 3.0 }, 60_000, 11);
        assert!((m - 3.0).abs() < 0.1, "exp mean {m}");
        assert!((v - 9.0).abs() < 0.6, "exp variance {v}");
    }

    #[test]
    fn gamma_moments_high_shape() {
        let d = Dist::Gamma {
            mean: 4.0,
            variance: 2.0,
        }; // shape 8
        let (m, v) = moments(d, 60_000, 13);
        assert!((m - 4.0).abs() < 0.05, "gamma mean {m}");
        assert!((v - 2.0).abs() < 0.15, "gamma variance {v}");
    }

    #[test]
    fn gamma_moments_low_shape() {
        let d = Dist::Gamma {
            mean: 1.0,
            variance: 4.0,
        }; // shape 0.25
        let (m, v) = moments(d, 120_000, 17);
        assert!((m - 1.0).abs() < 0.05, "gamma mean {m}");
        assert!((v - 4.0).abs() < 0.5, "gamma variance {v}");
    }

    #[test]
    fn gamma_with_variance_mean_squared_matches_exponential_moments() {
        let g = Dist::Gamma {
            mean: 2.0,
            variance: 4.0,
        };
        let (m, v) = moments(g, 60_000, 19);
        assert!((m - 2.0).abs() < 0.08, "mean {m}");
        assert!((v - 4.0).abs() < 0.4, "variance {v}");
    }

    #[test]
    fn shifted_gamma_moments_and_floor() {
        let d = Dist::ShiftedGamma {
            shift: 4.0,
            mean: 4.0,
            variance: 8.0,
        };
        assert_eq!(d.mean(), 8.0);
        assert_eq!(d.variance(), 8.0);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5_000 {
            assert!(d.sample(&mut rng) >= 4.0, "floor must hold");
        }
        let (m, v) = moments(d, 60_000, 37);
        assert!((m - 8.0).abs() < 0.08, "mean {m}");
        assert!((v - 8.0).abs() < 0.6, "variance {v}");
    }

    #[test]
    fn samples_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(23);
        for d in [
            Dist::Exponential { mean: 0.5 },
            Dist::Gamma {
                mean: 0.5,
                variance: 0.1,
            },
            Dist::Gamma {
                mean: 0.2,
                variance: 1.0,
            },
        ] {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn theoretical_moments_exposed() {
        assert_eq!(Dist::Uniform(0.0, 2.0).mean(), 1.0);
        assert_eq!(Dist::Exponential { mean: 3.0 }.variance(), 9.0);
        assert_eq!(
            Dist::Gamma {
                mean: 2.0,
                variance: 5.0
            }
            .variance(),
            5.0
        );
        assert_eq!(Dist::Constant(1.0).variance(), 0.0);
    }
}

//! The Section 5.1 job-shop workload generator.
//!
//! The evaluation simulates "the execution of jobs in a job shop. The shop
//! consists of a sequence of stages, each of which contains a number of
//! processors. All jobs traverse the stages of the shop in the same order,
//! and each job is assigned to execute on one processor in each stage"
//! (Figure 2 shows 4 stages × 2 processors).
//!
//! * **Periodic runs** (Figure 3): release times follow Eq. 25
//!   (`t_m = (m−1)/x`, `x ~ U(0,1)`), execution times follow Eq. 26, and
//!   deadlines are a multiple of the period.
//! * **Aperiodic runs** (Figure 4): release times follow the bursty Eq. 27,
//!   execution times follow Eq. 28 (identical in form to Eq. 26), and
//!   deadlines are drawn from a distribution (exponential in the paper;
//!   gamma here so the Figure 4 grid can vary variance independently of the
//!   mean — see DESIGN.md).
//!
//! **The `Utilization` knob.** Equation 26 as printed,
//! `τ = U·w·ρ / Σ(w·ρ)`, normalizes the *sum of execution times* per
//! processor to `U` time units — which, with periods of a few units, puts
//! the actual processor utilization `Σ τ/ρ` far below the figure's 0–1
//! x-axis and admits everything. The figures are only consistent with a
//! **rate normalization**, `τ = U·w·ρ / Σ w`, which makes every
//! processor's utilization exactly `U`; we implement that reading and
//! record the substitution in DESIGN.md §5. Periods are drawn with `x`
//! clamped to `[x_min, 1)` to bound the analysis horizon; the paper's
//! unbounded `U(0,1)` tail adds arbitrarily long periods that cannot
//! change who wins, only how long runs take.

use crate::arrival::ArrivalPattern;
use crate::distributions::Dist;
use crate::ids::ProcessorId;
use crate::system::{ModelError, SchedulerKind, SystemBuilder, TaskSystem};
use rand::Rng;
use rta_curves::Time;

/// Deadline/arrival parameterization of a shop run.
#[derive(Clone, Debug, PartialEq)]
pub enum ShopArrivals {
    /// Eq. 25 periodic releases; `D_k = deadline_factor · period_k`.
    Periodic {
        /// Multiple of the period used as the end-to-end deadline.
        deadline_factor: f64,
    },
    /// Eq. 27 bursty releases; `D_k` drawn from `deadline` (model units).
    Bursty {
        /// Distribution of end-to-end deadlines, in model-time units.
        deadline: Dist,
    },
}

/// Configuration of one random job-shop system.
#[derive(Clone, Debug, PartialEq)]
pub struct ShopConfig {
    /// Number of stages each job traverses.
    pub stages: usize,
    /// Processors per stage.
    pub procs_per_stage: usize,
    /// Number of jobs.
    pub n_jobs: usize,
    /// Scheduler on every processor.
    pub scheduler: SchedulerKind,
    /// The `Utilization` knob of Eq. 26/28.
    pub utilization: f64,
    /// Arrival/deadline parameterization.
    pub arrivals: ShopArrivals,
    /// Lower clamp on the period parameter `x ~ U(x_min, 1)`.
    pub x_min: f64,
    /// Tick quantization.
    pub ticks_per_unit: i64,
}

impl ShopConfig {
    /// A small default shop mirroring Figure 2: 4 stages × 2 processors,
    /// 6 jobs, SPP, periodic arrivals with deadline = 4 periods.
    pub fn figure2_default() -> ShopConfig {
        ShopConfig {
            stages: 4,
            procs_per_stage: 2,
            n_jobs: 6,
            scheduler: SchedulerKind::Spp,
            utilization: 0.5,
            arrivals: ShopArrivals::Periodic {
                deadline_factor: 4.0,
            },
            x_min: 0.1,
            ticks_per_unit: 10_000,
        }
    }
}

/// Generate one random job-shop system per Section 5.1. Priorities are left
/// unassigned; run a [`crate::priority::PriorityPolicy`] afterwards for
/// static-priority schedulers.
pub fn generate<R: Rng + ?Sized>(cfg: &ShopConfig, rng: &mut R) -> Result<TaskSystem, ModelError> {
    assert!(cfg.stages >= 1 && cfg.procs_per_stage >= 1 && cfg.n_jobs >= 1);
    assert!(cfg.utilization > 0.0);
    assert!(cfg.x_min > 0.0 && cfg.x_min < 1.0);
    let tpu = cfg.ticks_per_unit;

    let mut b = SystemBuilder::new().ticks_per_unit(tpu);
    let mut procs = Vec::with_capacity(cfg.stages * cfg.procs_per_stage);
    for s in 0..cfg.stages {
        for p in 0..cfg.procs_per_stage {
            procs.push(b.add_processor(format!("S{}P{}", s + 1, p + 1), cfg.scheduler));
        }
    }

    // Pass 1: draw per-job rate parameters, processor assignments, weights.
    struct Draft {
        x: f64,
        assignment: Vec<ProcessorId>, // one processor per stage
        weights: Vec<f64>,            // w_{k,j} per stage
    }
    let drafts: Vec<Draft> = (0..cfg.n_jobs)
        .map(|_| {
            let x = rng.gen_range(cfg.x_min..1.0);
            let assignment = (0..cfg.stages)
                .map(|s| procs[s * cfg.procs_per_stage + rng.gen_range(0..cfg.procs_per_stage)])
                .collect();
            let weights = (0..cfg.stages)
                .map(|_| rng.gen::<f64>().max(1e-9))
                .collect();
            Draft {
                x,
                assignment,
                weights,
            }
        })
        .collect();

    // Pass 2: per-processor weight sums Σ_{(l,i) on P} w_{l,i} (the rate
    // normalization — see the module docs).
    let mut denom = vec![0.0f64; procs.len()];
    for d in &drafts {
        for (j, p) in d.assignment.iter().enumerate() {
            denom[p.0] += d.weights[j];
        }
    }

    // Pass 3: materialize jobs with Eq. 26/28 execution times.
    for (k, d) in drafts.iter().enumerate() {
        let period_units = 1.0 / d.x;
        let chain: Vec<(ProcessorId, Time)> = d
            .assignment
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let tau_units = (d.weights[j] * period_units) / denom[p.0] * cfg.utilization;
                // Ceil: never underestimate demand; at least one tick.
                let tau = Time::from_units_ceil(tau_units, tpu).max(Time::ONE);
                (*p, tau)
            })
            .collect();

        let (arrival, deadline) = match &cfg.arrivals {
            ShopArrivals::Periodic { deadline_factor } => {
                let period = Time::from_units(period_units, tpu).max(Time::ONE);
                let deadline = Time::from_units(deadline_factor * period_units, tpu).max(Time::ONE);
                (
                    ArrivalPattern::Periodic {
                        period,
                        offset: Time::ZERO,
                    },
                    deadline,
                )
            }
            ShopArrivals::Bursty { deadline } => {
                let d_units = deadline.sample(rng);
                (
                    ArrivalPattern::Hyperbolic {
                        x: d.x,
                        ticks_per_unit: tpu,
                    },
                    Time::from_units(d_units, tpu).max(Time::ONE),
                )
            }
        };
        b.add_job(format!("T{}", k + 1), deadline, arrival, chain);
    }

    b.build()
}

/// Draws successive random job-shop systems into one reusable
/// [`TaskSystem`] allocation — the batched counterpart of [`generate`].
///
/// A Monte-Carlo admission sweep evaluates thousands of draws whose
/// *shape* (processor grid, job count, chain lengths, names) never
/// changes; only rates, routes and execution times do. [`generate`]
/// rebuilds the Strings and Vecs of that shape on every draw; a sampler
/// builds the shape once and overwrites the numeric fields in place.
///
/// `sample` is draw-for-draw identical to `generate`: starting from the
/// same RNG state it consumes the same random values in the same order and
/// produces the same system (pinned by the `sampler_matches_generate`
/// test). One sampler serves one thread; give each worker of a parallel
/// sweep its own.
pub struct ShopSampler {
    cfg: ShopConfig,
    sys: TaskSystem,
    /// Per-draw scratch: rate parameters `x_k`.
    x: Vec<f64>,
    /// Flattened `n_jobs × stages` processor index per hop.
    assign: Vec<usize>,
    /// Flattened `n_jobs × stages` weights `w_{k,j}`.
    weights: Vec<f64>,
    /// Per-processor weight sums `Σ w` (the Eq. 26 denominator).
    denom: Vec<f64>,
}

impl ShopSampler {
    /// Build the shape template for `cfg` (placeholder numeric values,
    /// overwritten by the first [`ShopSampler::sample`]).
    pub fn new(cfg: ShopConfig) -> Result<ShopSampler, ModelError> {
        assert!(cfg.stages >= 1 && cfg.procs_per_stage >= 1 && cfg.n_jobs >= 1);
        assert!(cfg.utilization > 0.0);
        assert!(cfg.x_min > 0.0 && cfg.x_min < 1.0);
        let mut b = SystemBuilder::new().ticks_per_unit(cfg.ticks_per_unit);
        let mut procs = Vec::with_capacity(cfg.stages * cfg.procs_per_stage);
        for s in 0..cfg.stages {
            for p in 0..cfg.procs_per_stage {
                procs.push(b.add_processor(format!("S{}P{}", s + 1, p + 1), cfg.scheduler));
            }
        }
        for k in 0..cfg.n_jobs {
            b.add_job(
                format!("T{}", k + 1),
                Time::ONE,
                ArrivalPattern::Periodic {
                    period: Time::ONE,
                    offset: Time::ZERO,
                },
                (0..cfg.stages)
                    .map(|s| (procs[s * cfg.procs_per_stage], Time::ONE))
                    .collect(),
            );
        }
        let sys = b.build()?;
        let hops = cfg.n_jobs * cfg.stages;
        Ok(ShopSampler {
            sys,
            x: Vec::with_capacity(cfg.n_jobs),
            assign: Vec::with_capacity(hops),
            weights: Vec::with_capacity(hops),
            denom: vec![0.0; cfg.stages * cfg.procs_per_stage],
            cfg,
        })
    }

    /// The configuration the sampler draws from.
    pub fn config(&self) -> &ShopConfig {
        &self.cfg
    }

    /// Draw the next system. The returned reference is valid until the
    /// next call; priorities are reset to unassigned, exactly as
    /// [`generate`] leaves them.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<&mut TaskSystem, ModelError> {
        let cfg = &self.cfg;
        let tpu = cfg.ticks_per_unit;
        let stages = cfg.stages;

        // Pass 1 — identical draw order to `generate`: per job, the rate
        // parameter, then the per-stage assignments, then the weights.
        self.x.clear();
        self.assign.clear();
        self.weights.clear();
        for _ in 0..cfg.n_jobs {
            self.x.push(rng.gen_range(cfg.x_min..1.0));
            for s in 0..stages {
                self.assign
                    .push(s * cfg.procs_per_stage + rng.gen_range(0..cfg.procs_per_stage));
            }
            for _ in 0..stages {
                self.weights.push(rng.gen::<f64>().max(1e-9));
            }
        }

        // Pass 2 — per-processor weight sums.
        self.denom.iter_mut().for_each(|d| *d = 0.0);
        for (i, &p) in self.assign.iter().enumerate() {
            self.denom[p] += self.weights[i];
        }

        // Pass 3 — overwrite the template in place (Eq. 26/28).
        for (k, job) in self.sys.jobs_mut().iter_mut().enumerate() {
            let x = self.x[k];
            let period_units = 1.0 / x;
            for (j, sub) in job.subjobs.iter_mut().enumerate() {
                let p = self.assign[k * stages + j];
                let tau_units =
                    (self.weights[k * stages + j] * period_units) / self.denom[p] * cfg.utilization;
                sub.processor = ProcessorId(p);
                sub.exec = Time::from_units_ceil(tau_units, tpu).max(Time::ONE);
                sub.priority = None;
                sub.weight = None;
            }
            let (arrival, deadline) = match &cfg.arrivals {
                ShopArrivals::Periodic { deadline_factor } => (
                    ArrivalPattern::Periodic {
                        period: Time::from_units(period_units, tpu).max(Time::ONE),
                        offset: Time::ZERO,
                    },
                    Time::from_units(deadline_factor * period_units, tpu).max(Time::ONE),
                ),
                ShopArrivals::Bursty { deadline } => {
                    let d_units = deadline.sample(rng);
                    (
                        ArrivalPattern::Hyperbolic {
                            x,
                            ticks_per_unit: tpu,
                        },
                        Time::from_units(d_units, tpu).max(Time::ONE),
                    )
                }
            };
            job.arrival = arrival;
            job.deadline = deadline;
        }
        self.sys.validate(false)?;
        Ok(&mut self.sys)
    }
}

/// The exact Figure 2 topology with the paper's two example routes:
/// `T1 → P1, P3, P5, P7` and `T2 → P1, P4, P5, P8`, with caller-provided
/// execution times, periods and deadlines (in ticks).
#[allow(clippy::too_many_arguments)]
pub fn figure2_system(
    scheduler: SchedulerKind,
    t1_execs: [Time; 4],
    t1_period: Time,
    t1_deadline: Time,
    t2_execs: [Time; 4],
    t2_period: Time,
    t2_deadline: Time,
) -> Result<TaskSystem, ModelError> {
    let mut b = SystemBuilder::new();
    let ps: Vec<ProcessorId> = (0..8)
        .map(|i| b.add_processor(format!("P{}", i + 1), scheduler))
        .collect();
    let route1 = [ps[0], ps[2], ps[4], ps[6]];
    let route2 = [ps[0], ps[3], ps[4], ps[7]];
    b.add_job(
        "T1",
        t1_deadline,
        ArrivalPattern::Periodic {
            period: t1_period,
            offset: Time::ZERO,
        },
        route1.iter().zip(t1_execs).map(|(p, e)| (*p, e)).collect(),
    );
    b.add_job(
        "T2",
        t2_deadline,
        ArrivalPattern::Periodic {
            period: t2_period,
            offset: Time::ZERO,
        },
        route2.iter().zip(t2_execs).map(|(p, e)| (*p, e)).collect(),
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_valid_systems() {
        let cfg = ShopConfig::figure2_default();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let sys = generate(&cfg, &mut rng).unwrap();
            assert_eq!(sys.processors().len(), 8);
            assert_eq!(sys.jobs().len(), 6);
            for job in sys.jobs() {
                assert_eq!(job.subjobs.len(), 4);
                assert!(job.deadline > Time::ZERO);
            }
            assert!(sys.validate(false).is_ok());
        }
    }

    #[test]
    fn sampler_matches_generate() {
        // Draw-for-draw fidelity: from the same RNG state, the in-place
        // sampler and the allocating generator must produce identical
        // systems — including across reuse of one sampler, and for the
        // bursty parameterization (which consumes extra deadline draws).
        let configs = [
            ShopConfig::figure2_default(),
            ShopConfig {
                arrivals: ShopArrivals::Bursty {
                    deadline: Dist::Exponential { mean: 8.0 },
                },
                scheduler: SchedulerKind::Fcfs,
                ..ShopConfig::figure2_default()
            },
        ];
        for cfg in configs {
            let mut sampler = ShopSampler::new(cfg.clone()).unwrap();
            for seed in 0..25u64 {
                let want = generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
                let got = sampler.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
                assert_eq!(
                    format!("{got:?}"),
                    format!("{want:?}"),
                    "seed {seed} diverged"
                );
            }
        }
    }

    #[test]
    fn eq26_normalizes_rate_utilization_per_processor() {
        // Σ_{(k,j) on P} τ_{k,j}/ρ_k ≈ Utilization on every processor that
        // received at least one subjob (the rate reading of Eq. 26).
        let cfg = ShopConfig {
            utilization: 0.7,
            n_jobs: 12,
            ..ShopConfig::figure2_default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let sys = generate(&cfg, &mut rng).unwrap();
        for p in 0..sys.processors().len() {
            if sys.subjobs_on(ProcessorId(p)).is_empty() {
                continue;
            }
            let u = sys.utilization_on(ProcessorId(p)).unwrap();
            // Ceil-quantization inflates each term by < 1 tick.
            assert!((u - 0.7).abs() < 0.01, "processor {p} utilization {u}");
        }
    }

    #[test]
    fn jobs_traverse_stages_in_order() {
        let cfg = ShopConfig::figure2_default();
        let mut rng = StdRng::seed_from_u64(3);
        let sys = generate(&cfg, &mut rng).unwrap();
        for job in sys.jobs() {
            for (j, s) in job.subjobs.iter().enumerate() {
                let stage = s.processor.0 / cfg.procs_per_stage;
                assert_eq!(stage, j, "hop {j} must be in stage {j}");
            }
        }
    }

    #[test]
    fn periodic_and_bursty_modes() {
        let mut rng = StdRng::seed_from_u64(9);
        let per = generate(&ShopConfig::figure2_default(), &mut rng).unwrap();
        assert!(matches!(
            per.jobs()[0].arrival,
            ArrivalPattern::Periodic { .. }
        ));
        let cfg = ShopConfig {
            arrivals: ShopArrivals::Bursty {
                deadline: Dist::Exponential { mean: 8.0 },
            },
            ..ShopConfig::figure2_default()
        };
        let bur = generate(&cfg, &mut rng).unwrap();
        assert!(matches!(
            bur.jobs()[0].arrival,
            ArrivalPattern::Hyperbolic { .. }
        ));
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = ShopConfig::figure2_default();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(1234)).unwrap();
        let b = generate(&cfg, &mut StdRng::seed_from_u64(1234)).unwrap();
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(ja.deadline, jb.deadline);
            for (sa, sb) in ja.subjobs.iter().zip(&jb.subjobs) {
                assert_eq!(sa.exec, sb.exec);
                assert_eq!(sa.processor, sb.processor);
            }
        }
    }

    #[test]
    fn figure2_topology() {
        let sys = figure2_system(
            SchedulerKind::Spp,
            [Time(10); 4],
            Time(100),
            Time(400),
            [Time(20); 4],
            Time(200),
            Time(800),
        )
        .unwrap();
        assert_eq!(sys.processors().len(), 8);
        // T1 and T2 share P1 (stage 1) and P5 (stage 3).
        let shared: Vec<usize> = (0..8)
            .filter(|p| sys.subjobs_on(ProcessorId(*p)).len() == 2)
            .collect();
        assert_eq!(shared, vec![0, 4]);
    }
}

//! Analysis-horizon selection.
//!
//! The theorems quantify over every instance `m ≥ 0`; a computation must cut
//! off somewhere. The horizon policy used throughout this workspace:
//!
//! 1. pick an **arrival window** `W` — instances released in `[0, W]` are
//!    analyzed;
//! 2. run the analysis on `[0, H]` with `H = W + max deadline + pad`.
//!
//! Every instance released within the window must either complete by its
//! absolute deadline (which is `≤ H`) or miss it — so the admission decision
//! for the considered instances is exact regardless of the cutoff, and an
//! instance whose completion cannot be proven inside `H` is (conservatively)
//! a deadline miss.
//!
//! For synchronous periodic job sets the critical instant is at time zero,
//! so a window of a few periods captures the worst case; for the paper's
//! bursty streams (Eq. 27) the dense burst — and hence the worst response —
//! is at the very beginning.

use crate::system::TaskSystem;
use rta_curves::Time;

/// Default number of longest-periods an arrival window spans.
pub const DEFAULT_WINDOW_CYCLES: i64 = 4;

/// An arrival window covering `cycles` multiples of the longest nominal
/// period in the system (falling back to the largest deadline for patterns
/// without a period, e.g. traces).
pub fn default_arrival_window(sys: &TaskSystem, cycles: i64) -> Time {
    assert!(cycles >= 1);
    let tpu = sys.ticks_per_unit();
    let max_period = sys
        .jobs()
        .iter()
        .filter_map(|j| j.arrival.nominal_period(tpu))
        .max();
    let max_deadline = sys
        .jobs()
        .iter()
        .map(|j| j.deadline)
        .max()
        .unwrap_or(Time::ONE);
    match max_period {
        Some(p) => p * cycles,
        None => max_deadline * cycles,
    }
}

/// The analysis horizon for a given arrival window: the window plus the
/// largest deadline plus one full round of everyone's execution time (a
/// generous drain pad — completions relevant to the admission decision all
/// occur before `window + max deadline`).
pub fn analysis_horizon(sys: &TaskSystem, window: Time) -> Time {
    let max_deadline = sys
        .jobs()
        .iter()
        .map(|j| j.deadline)
        .max()
        .unwrap_or(Time::ZERO);
    let total_exec: Time = sys.jobs().iter().map(|j| j.total_exec()).sum();
    window + max_deadline + total_exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalPattern;
    use crate::system::{SchedulerKind, SystemBuilder};

    fn sys() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(80),
            ArrivalPattern::Periodic {
                period: Time(30),
                offset: Time::ZERO,
            },
            vec![(p, Time(5))],
        );
        b.add_job(
            "T2",
            Time(40),
            ArrivalPattern::Periodic {
                period: Time(50),
                offset: Time::ZERO,
            },
            vec![(p, Time(10))],
        );
        b.build().unwrap()
    }

    #[test]
    fn window_spans_longest_period() {
        assert_eq!(default_arrival_window(&sys(), 4), Time(200));
        assert_eq!(default_arrival_window(&sys(), 1), Time(50));
    }

    #[test]
    fn horizon_covers_window_plus_deadline_plus_drain() {
        let s = sys();
        let h = analysis_horizon(&s, Time(200));
        assert_eq!(h, Time(200 + 80 + 15));
    }

    #[test]
    fn trace_only_system_falls_back_to_deadline() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(70),
            ArrivalPattern::Trace(vec![Time(0), Time(5)]),
            vec![(p, Time(3))],
        );
        let s = b.build().unwrap();
        assert_eq!(default_arrival_window(&s, 2), Time(140));
    }
}

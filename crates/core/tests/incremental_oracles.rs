//! Oracle tests for the incremental re-analysis engine: every reuse
//! mechanism (dirty-cone curve caching, warm-started fixpoints, verdict
//! memoization) must be **bit-identical** to a cold start under the same
//! configuration, for random systems and random deltas.

use proptest::prelude::*;
use rta_core::fixpoint::{analyze_with_loops, analyze_with_loops_seeded};
use rta_core::holistic::{analyze_holistic, analyze_holistic_seeded};
use rta_core::sensitivity::Oracle;
use rta_core::{analyze_exact_spp, AnalysisConfig, AnalysisSession, ExactReport};
use rta_curves::Time;
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{
    ArrivalPattern, Job, JobId, ProcessorId, SchedulerKind, Subjob, SystemBuilder, TaskSystem,
};

/// One random job: period, hop executions, and a processor choice.
/// Two-hop jobs always route P0→P1 so the interference graph stays acyclic
/// (exact analysis rejects cycles by design; the fixpoint tests cover
/// them); `forward` picks the processor of single-hop jobs.
#[derive(Clone, Debug)]
struct JobSpec {
    period: i64,
    execs: Vec<i64>,
    forward: bool,
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (
            20i64..81,
            prop::collection::vec(1i64..9, 1..3),
            any::<bool>(),
        )
            .prop_map(|(period, execs, forward)| JobSpec {
                period,
                execs,
                forward,
            }),
        2..5,
    )
}

fn arb_bursty_jobs() -> impl Strategy<Value = Vec<(JobSpec, Vec<i64>)>> {
    prop::collection::vec(
        (
            (
                20i64..81,
                prop::collection::vec(1i64..9, 1..3),
                any::<bool>(),
            )
                .prop_map(|(period, execs, forward)| JobSpec {
                    period,
                    execs,
                    forward,
                }),
            // Burst release times; empty → the job stays periodic.
            prop::collection::vec(0i64..120, 0..6),
        ),
        2..5,
    )
}

/// Like [`build_sys`], but jobs with a non-empty burst list release along
/// an `ArrivalPattern::Trace` instead of periodically.
fn build_bursty_sys(specs: &[(JobSpec, Vec<i64>)]) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p0 = b.add_processor("P0", SchedulerKind::Spp);
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    for (k, (s, burst)) in specs.iter().enumerate() {
        let route: Vec<_> = s
            .execs
            .iter()
            .enumerate()
            .map(|(h, &c)| {
                let p = if s.execs.len() > 1 {
                    if h == 0 {
                        p0
                    } else {
                        p1
                    }
                } else if s.forward {
                    p0
                } else {
                    p1
                };
                (p, Time(c))
            })
            .collect();
        let pattern = if burst.is_empty() {
            ArrivalPattern::Periodic {
                period: Time(s.period),
                offset: Time::ZERO,
            }
        } else {
            let mut ts: Vec<Time> = burst.iter().map(|&t| Time(t)).collect();
            ts.sort_unstable();
            ArrivalPattern::Trace(ts)
        };
        b.add_job(format!("T{k}"), Time(2 * s.period), pattern, route);
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

fn build_sys(specs: &[JobSpec]) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p0 = b.add_processor("P0", SchedulerKind::Spp);
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    for (k, s) in specs.iter().enumerate() {
        let route: Vec<_> = s
            .execs
            .iter()
            .enumerate()
            .map(|(h, &c)| {
                let p = if s.execs.len() > 1 {
                    if h == 0 {
                        p0
                    } else {
                        p1
                    }
                } else if s.forward {
                    p0
                } else {
                    p1
                };
                (p, Time(c))
            })
            .collect();
        b.add_job(
            format!("T{k}"),
            Time(2 * s.period),
            ArrivalPattern::Periodic {
                period: Time(s.period),
                offset: Time::ZERO,
            },
            route,
        );
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

/// Full structural equality of exact reports: rendered summary plus every
/// arrival/service/departure curve.
fn assert_reports_identical(cold: &ExactReport, warm: &ExactReport) {
    assert_eq!(format!("{cold}"), format!("{warm}"));
    assert_eq!(cold.curves.len(), warm.curves.len());
    for (a, b) in cold.curves.iter().zip(warm.curves.iter()) {
        assert_eq!(a.arrival, b.arrival);
        assert_eq!(a.service, b.service);
        assert_eq!(a.departure, b.departure);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scale sweeps through one session match per-step cold analyses.
    #[test]
    fn scale_sweep_matches_cold(
        specs in arb_jobs(),
        factors in prop::collection::vec(0.4f64..2.5, 1..5),
    ) {
        let sys = build_sys(&specs);
        let cfg = AnalysisConfig::default();
        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        for &f in &factors {
            session.scale_exec(f);
            let warm = session.analyze_exact().unwrap();
            let cold = analyze_exact_spp(&sys.with_scaled_exec(f), &cfg).unwrap();
            assert_reports_identical(&cold, &warm);
        }
    }

    /// Swapping two priorities on one processor re-analyzes (through the
    /// dirty cone) to exactly the cold result.
    #[test]
    fn priority_swap_matches_cold(specs in arb_jobs(), pick in 0usize..64) {
        let sys = build_sys(&specs);
        let cfg = AnalysisConfig::default();
        let on_p0 = sys.subjobs_on(ProcessorId(0));
        if on_p0.len() < 2 {
            return Ok(());
        }
        let a = on_p0[pick % on_p0.len()];
        let b = on_p0[(pick + 1) % on_p0.len()];
        let (pa, pb) = (sys.subjob(a).priority, sys.subjob(b).priority);

        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        session.analyze_exact().unwrap();
        session.set_priority(a, pb);
        session.set_priority(b, pa);
        let warm = session.analyze_exact().unwrap();

        let mut cold_sys = sys.clone();
        cold_sys.set_priority(a, pb);
        cold_sys.set_priority(b, pa);
        let cold = analyze_exact_spp(&cold_sys, &cfg).unwrap();
        assert_reports_identical(&cold, &warm);
    }

    /// Adding then removing a job round-trips bit-for-bit through the
    /// session's row-based curve cache.
    #[test]
    fn add_remove_job_matches_cold(specs in arb_jobs(), exec in 1i64..9, period in 30i64..91) {
        let sys = build_sys(&specs);
        let cfg = AnalysisConfig::default();
        let new_job = Job {
            name: "TX".into(),
            deadline: Time(2 * period),
            arrival: ArrivalPattern::Periodic { period: Time(period), offset: Time::ZERO },
            subjobs: vec![Subjob {
                processor: ProcessorId(0),
                exec: Time(exec),
                priority: Some(1000), // below every generated priority
                weight: None,
            }],
        };

        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        session.analyze_exact().unwrap();
        let id = session.add_job(new_job.clone());
        prop_assert_eq!(id, JobId(specs.len()));
        let warm = session.analyze_exact().unwrap();
        let mut cold_sys = sys.clone();
        cold_sys.push_job(new_job);
        assert_reports_identical(&analyze_exact_spp(&cold_sys, &cfg).unwrap(), &warm);

        session.remove_job(id);
        let warm = session.analyze_exact().unwrap();
        assert_reports_identical(&analyze_exact_spp(&sys, &cfg).unwrap(), &warm);
    }

    /// A fixpoint warm-started from its own converged solution — or from a
    /// *different* scale's solution under a pinned frame — reproduces the
    /// cold bounds exactly.
    #[test]
    fn warm_fixpoint_matches_cold(specs in arb_jobs(), factor in 0.5f64..2.0) {
        let sys = build_sys(&specs);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(400)),
            horizon: Some(Time(1600)),
            ..AnalysisConfig::default()
        };
        let rounds = 24;
        let cold = analyze_with_loops(&sys, &cfg, rounds).unwrap();
        let (_, seed) = analyze_with_loops_seeded(&sys, &cfg, rounds, None).unwrap();
        let (warm, _) = analyze_with_loops_seeded(&sys, &cfg, rounds, Some(&seed)).unwrap();
        prop_assert_eq!(format!("{cold}"), format!("{warm}"));

        // Cross-scale warm start: seed from the base system, analyze the
        // scaled one.
        let scaled = sys.with_scaled_exec(factor);
        let cold2 = analyze_with_loops(&scaled, &cfg, rounds).unwrap();
        let (warm2, _) = analyze_with_loops_seeded(&scaled, &cfg, rounds, Some(&seed)).unwrap();
        prop_assert_eq!(format!("{cold2}"), format!("{warm2}"));
    }

    /// Holistic analysis warm-started from below (a uniformly scaled-down
    /// system) converges to the cold solution exactly.
    #[test]
    fn warm_holistic_from_below_matches_cold(specs in arb_jobs(), shrink in 0.3f64..1.0) {
        let sys = build_sys(&specs);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(400)),
            horizon: Some(Time(1600)),
            ..AnalysisConfig::default()
        };
        let small = sys.with_scaled_exec(shrink); // ceil(s·c) ≤ c for c ≥ 1
        let (_, seed) = analyze_holistic_seeded(&small, &cfg, None).unwrap();
        let cold = analyze_holistic(&sys, &cfg).unwrap();
        let (warm, _) = analyze_holistic_seeded(&sys, &cfg, Some(&seed)).unwrap();
        prop_assert_eq!(format!("{cold}"), format!("{warm}"));
    }

    /// Bursty (trace-release) workloads through a warm session: scale
    /// sweeps and a priority swap stay bit-identical to cold analyses.
    /// Bursts stress the dirty cone differently from periodic releases —
    /// arrival curves are irregular steps, so any stale cached curve shows
    /// up immediately as a divergent service or departure function.
    #[test]
    fn bursty_session_matches_cold(
        specs in arb_bursty_jobs(),
        factors in prop::collection::vec(0.4f64..2.5, 1..4),
        pick in 0usize..64,
    ) {
        let sys = build_bursty_sys(&specs);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(240)),
            ..AnalysisConfig::default()
        };
        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        for &f in &factors {
            session.scale_exec(f);
            let warm = session.analyze_exact().unwrap();
            let cold = analyze_exact_spp(&sys.with_scaled_exec(f), &cfg).unwrap();
            assert_reports_identical(&cold, &warm);
        }

        // Follow the sweep with a priority swap on P0 (if it hosts ≥ 2
        // subjobs) so the cone re-analysis also runs on bursty curves.
        let on_p0 = sys.subjobs_on(ProcessorId(0));
        if on_p0.len() >= 2 {
            let last = *factors.last().unwrap();
            let a = on_p0[pick % on_p0.len()];
            let b = on_p0[(pick + 1) % on_p0.len()];
            let (pa, pb) = (sys.subjob(a).priority, sys.subjob(b).priority);
            session.set_priority(a, pb);
            session.set_priority(b, pa);
            let warm = session.analyze_exact().unwrap();

            let mut cold_sys = sys.with_scaled_exec(last);
            cold_sys.set_priority(a, pb);
            cold_sys.set_priority(b, pa);
            let cold = analyze_exact_spp(&cold_sys, &cfg).unwrap();
            assert_reports_identical(&cold, &warm);
        }
    }

    /// The session bisection (verdict memo + in-place scaling) lands on the
    /// same critical scale as a hand-rolled cold bisection.
    #[test]
    fn session_bisection_matches_cold_bisection(specs in arb_jobs()) {
        let sys = build_sys(&specs);
        let cfg = AnalysisConfig::default();
        let iters = 10;

        // Cold reference: clone + full analysis per probe.
        let probe = |f: f64| -> bool {
            analyze_exact_spp(&sys.with_scaled_exec(f), &cfg)
                .map(|r| r.all_schedulable())
                .unwrap_or(false)
        };
        let cold = {
            let (mut lo, mut hi) = (1.0 / 64.0, 64.0);
            if !probe(lo) {
                None
            } else if probe(hi) {
                Some(hi)
            } else {
                for _ in 0..iters {
                    let mid = 0.5 * (lo + hi);
                    if probe(mid) { lo = mid } else { hi = mid }
                }
                Some(lo)
            }
        };

        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        let warm = session.critical_scaling(Oracle::Exact, iters).unwrap();
        prop_assert_eq!(cold, warm);
    }
}

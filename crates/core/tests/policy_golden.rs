//! Golden equivalence: the policy-trait drivers must be *bit-identical* to
//! the pre-refactor enum-dispatch paths.
//!
//! Before the [`rta_core::policy`] layer existed, `analyze_bounds` matched
//! on [`SchedulerKind`] directly — SPP/SPNP through `spnp_bounds`, FCFS
//! through a per-processor `FcfsProcessor` slot map — and
//! `analyze_exact_spp` called `spp::exact_service` inline. Those kernels
//! are still public, so this suite *reimplements the old dispatch verbatim*
//! on top of them and checks that the trait drivers produce the same
//! reports curve-for-curve and tick-for-tick, on deterministic job-shop /
//! bursty fixtures and on randomized systems. Any divergence means the
//! refactor changed analysis results, not just code shape.

use std::collections::HashMap;

use proptest::prelude::*;
use rta_core::depgraph::{evaluation_order, SubjobIndex};
use rta_core::fcfs::FcfsProcessor;
use rta_core::spnp::{spnp_bounds, ServiceBounds};
use rta_core::spp::exact_service;
use rta_core::{analyze_bounds, analyze_exact_spp, AnalysisConfig};
use rta_curves::{Curve, CurveCursor, Time};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, JobId, SchedulerKind, SubjobRef, SystemBuilder, TaskSystem};

// ---------------------------------------------------------------------------
// The legacy (pre-refactor) bounds pass: explicit enum dispatch.
// ---------------------------------------------------------------------------

struct LegacyNode {
    arr_env: Curve,
    bounds: ServiceBounds,
    dep_lower: Curve,
    arr_next: Curve,
}

/// What `compute_nodes` looked like before the `ServicePolicy` seam: a
/// `match` on the scheduler kind, with the FCFS slot map built at the first
/// subjob of each FCFS processor.
fn legacy_compute_nodes(sys: &TaskSystem, cfg: &AnalysisConfig) -> Vec<LegacyNode> {
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);
    let order = evaluation_order(sys, &idx).expect("acyclic fixture");

    let mut nodes: Vec<Option<LegacyNode>> = Vec::with_capacity(idx.len());
    nodes.resize_with(idx.len(), || None);
    let mut fcfs: HashMap<usize, FcfsProcessor> = HashMap::new();

    let arr_env_of = |nodes: &[Option<LegacyNode>], r: SubjobRef| -> Curve {
        if r.index == 0 {
            sys.job(r.job).arrival.arrival_curve(window)
        } else {
            let pred = SubjobRef {
                job: r.job,
                index: r.index - 1,
            };
            nodes[idx.index(pred)]
                .as_ref()
                .expect("dependency order")
                .arr_next
                .clone()
        }
    };

    for i in order {
        let r = idx.subjob(i);
        let subjob = sys.subjob(r);
        let tau = subjob.exec;
        let arr_env = arr_env_of(&nodes, r);
        let workload = arr_env.scale(tau.ticks());

        let bounds = match sys.processor(subjob.processor).scheduler {
            kind @ (SchedulerKind::Spp | SchedulerKind::Spnp) => {
                let hp = sys.higher_priority_peers(r);
                let hp_lower: Vec<&Curve> = hp
                    .iter()
                    .map(|h| &nodes[idx.index(*h)].as_ref().expect("order").bounds.lower)
                    .collect();
                let hp_upper: Vec<&Curve> = hp
                    .iter()
                    .map(|h| &nodes[idx.index(*h)].as_ref().expect("order").bounds.upper)
                    .collect();
                let blocking = if kind == SchedulerKind::Spnp {
                    sys.blocking_time(r)
                } else {
                    Time::ZERO
                };
                spnp_bounds(
                    &workload,
                    &hp_lower,
                    &hp_upper,
                    blocking,
                    cfg.spnp_availability,
                )
                .expect("paired peer slices")
            }
            SchedulerKind::Fcfs => {
                let proc = fcfs.entry(subjob.processor.0).or_insert_with(|| {
                    let peers = sys.subjobs_on(subjob.processor);
                    let workloads: Vec<Curve> = peers
                        .iter()
                        .map(|&o| arr_env_of(&nodes, o).scale(sys.subjob(o).exec.ticks()))
                        .collect();
                    let refs: Vec<&Curve> = workloads.iter().collect();
                    FcfsProcessor::new(&refs, horizon).expect("fcfs slot map")
                });
                proc.service_bounds(&workload, tau).expect("fcfs bounds")
            }
            other => panic!("legacy dispatch has no arm for {other:?}"),
        };

        let dep_lower = bounds.lower.floor_div(tau.ticks(), horizon).unwrap();
        let arr_next = bounds.upper.floor_div(tau.ticks(), horizon).unwrap();
        nodes[i] = Some(LegacyNode {
            arr_env,
            bounds,
            dep_lower,
            arr_next,
        });
    }
    nodes
        .into_iter()
        .map(|n| n.expect("all computed"))
        .collect()
}

/// Legacy `analyze_bounds`: Eq. 12 hop delays summed per Eq. 11.
fn legacy_bounds(sys: &TaskSystem, cfg: &AnalysisConfig) -> Vec<(Vec<Option<Time>>, Option<Time>)> {
    let (window, _) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);
    let nodes = legacy_compute_nodes(sys, cfg);

    let mut out = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let n_instances = job.arrival.release_times(window).len() as i64;
        let mut hop_delays = Vec::with_capacity(job.subjobs.len());
        for j in 0..job.subjobs.len() {
            let node = &nodes[idx.index(SubjobRef {
                job: JobId(k),
                index: j,
            })];
            let mut arr_cur = CurveCursor::new(&node.arr_env);
            let mut dep_cur = CurveCursor::new(&node.dep_lower);
            let mut d = Some(Time::ZERO);
            for m in 1..=n_instances {
                d = match (d, arr_cur.inverse_at(m), dep_cur.inverse_at(m)) {
                    (Some(d), Some(early), Some(late)) => Some(d.max(late - early)),
                    _ => None,
                };
            }
            hop_delays.push(d);
        }
        let e2e = hop_delays
            .iter()
            .try_fold(Time::ZERO, |acc, d| d.map(|d| acc + d));
        out.push((hop_delays, e2e));
    }
    out
}

/// Legacy `analyze_exact_spp`: Theorem 3 service functions called inline,
/// Theorem 1 responses read off the chain ends. Returns per-subjob
/// (arrival, service, departure) curves plus per-job responses.
#[allow(clippy::type_complexity)]
fn legacy_exact(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
) -> (
    Vec<(Curve, Curve, Curve)>,
    Vec<(Vec<Option<Time>>, Option<Time>)>,
) {
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);
    let order = evaluation_order(sys, &idx).expect("acyclic fixture");

    let mut curves: Vec<Option<(Curve, Curve, Curve)>> = vec![None; idx.len()];
    for i in order {
        let r = idx.subjob(i);
        let subjob = sys.subjob(r);
        assert_eq!(
            sys.processor(subjob.processor).scheduler,
            SchedulerKind::Spp,
            "legacy exact path is SPP-only"
        );
        let arrival = if r.index == 0 {
            sys.job(r.job).arrival.arrival_curve(window)
        } else {
            let pred = SubjobRef {
                job: r.job,
                index: r.index - 1,
            };
            curves[idx.index(pred)].as_ref().expect("order").2.clone()
        };
        let workload = arrival.scale(subjob.exec.ticks());
        let hp = sys.higher_priority_peers(r);
        let hp_services: Vec<&Curve> = hp
            .iter()
            .map(|h| &curves[idx.index(*h)].as_ref().expect("order").1)
            .collect();
        let service = exact_service(&workload, &hp_services);
        let departure = service.floor_div(subjob.exec.ticks(), horizon).unwrap();
        curves[i] = Some((arrival, service, departure));
    }
    let curves: Vec<(Curve, Curve, Curve)> = curves
        .into_iter()
        .map(|c| c.expect("all computed"))
        .collect();

    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let first = &curves[idx.index(SubjobRef {
            job: JobId(k),
            index: 0,
        })]
        .0;
        let last = &curves[idx.index(SubjobRef {
            job: JobId(k),
            index: job.subjobs.len() - 1,
        })]
        .2;
        let n = first.total_events();
        let mut arr_cur = CurveCursor::new(first);
        let mut dep_cur = CurveCursor::new(last);
        let mut responses = Vec::new();
        let mut wcrt = Some(Time::ZERO);
        for m in 1..=n {
            let release = arr_cur.inverse_at(m).expect("within window");
            let resp = dep_cur.inverse_at(m).map(|c| c - release);
            wcrt = match (wcrt, resp) {
                (Some(w), Some(r)) => Some(w.max(r)),
                _ => None,
            };
            responses.push(resp);
        }
        if n == 0 {
            wcrt = Some(Time::ZERO);
        }
        jobs.push((responses, wcrt));
    }
    (curves, jobs)
}

// ---------------------------------------------------------------------------
// Comparison helpers.
// ---------------------------------------------------------------------------

fn assert_bounds_golden(sys: &TaskSystem, cfg: &AnalysisConfig) {
    let report = analyze_bounds(sys, cfg).expect("trait driver");
    let golden = legacy_bounds(sys, cfg);
    assert_eq!(report.jobs.len(), golden.len());
    for (k, (hop_delays, e2e)) in golden.iter().enumerate() {
        assert_eq!(
            &report.jobs[k].hop_delays, hop_delays,
            "job {k}: hop delays diverge from the pre-refactor path"
        );
        assert_eq!(
            report.jobs[k].e2e_bound, *e2e,
            "job {k}: e2e bound diverges from the pre-refactor path"
        );
    }
}

fn assert_exact_golden(sys: &TaskSystem, cfg: &AnalysisConfig) {
    let report = analyze_exact_spp(sys, cfg).expect("trait driver");
    let (curves, jobs) = legacy_exact(sys, cfg);
    assert_eq!(report.curves.len(), curves.len());
    for (i, (arrival, service, departure)) in curves.iter().enumerate() {
        assert_eq!(&report.curves[i].arrival, arrival, "node {i}: arrival");
        assert_eq!(&report.curves[i].service, service, "node {i}: service");
        assert_eq!(
            &report.curves[i].departure, departure,
            "node {i}: departure"
        );
    }
    for (k, (responses, wcrt)) in jobs.iter().enumerate() {
        assert_eq!(&report.jobs[k].responses, responses, "job {k}: responses");
        assert_eq!(report.jobs[k].wcrt, *wcrt, "job {k}: wcrt");
    }
}

// ---------------------------------------------------------------------------
// Deterministic fixtures: a heterogeneous job shop and a bursty system.
// ---------------------------------------------------------------------------

fn periodic(p: i64) -> ArrivalPattern {
    ArrivalPattern::Periodic {
        period: Time(p),
        offset: Time::ZERO,
    }
}

/// Three processors (SPP, SPNP, FCFS), four jobs, cross-routed chains —
/// every legacy dispatch arm exercised in one system.
fn jobshop() -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spnp);
    let p3 = b.add_processor("P3", SchedulerKind::Fcfs);
    b.add_job(
        "T1",
        Time(200),
        periodic(40),
        vec![(p1, Time(4)), (p2, Time(5)), (p3, Time(6))],
    );
    b.add_job(
        "T2",
        Time(180),
        ArrivalPattern::PeriodicJitter {
            period: Time(50),
            jitter: Time(7),
            offset: Time(3),
        },
        vec![(p1, Time(3)), (p3, Time(4))],
    );
    b.add_job("T3", Time(150), periodic(60), vec![(p2, Time(7))]);
    b.add_job("T4", Time(220), periodic(70), vec![(p3, Time(8))]);
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

/// Bursty workloads: a trace burst sharing an SPNP hop with a periodic
/// job, then fanning into an FCFS stage.
fn bursty_shop() -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spnp);
    let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
    b.add_job(
        "burst",
        Time(120),
        ArrivalPattern::Trace(vec![Time(0), Time(1), Time(2), Time(3), Time(55), Time(90)]),
        vec![(p1, Time(4)), (p2, Time(3))],
    );
    b.add_job("steady", Time(100), periodic(25), vec![(p1, Time(6))]);
    b.add_job("tail", Time(100), periodic(30), vec![(p2, Time(5))]);
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

#[test]
fn jobshop_bounds_are_bit_identical_to_legacy_dispatch() {
    let sys = jobshop();
    assert_bounds_golden(&sys, &AnalysisConfig::default());
    // Both SPNP availability variants dispatch identically.
    assert_bounds_golden(
        &sys,
        &AnalysisConfig {
            spnp_availability: rta_core::SpnpAvailability::AsPrinted,
            ..Default::default()
        },
    );
}

#[test]
fn bursty_bounds_are_bit_identical_to_legacy_dispatch() {
    let sys = bursty_shop();
    assert_bounds_golden(
        &sys,
        &AnalysisConfig {
            arrival_window: Some(Time(150)),
            ..Default::default()
        },
    );
}

#[test]
fn exact_curves_are_bit_identical_to_legacy_dispatch() {
    // All-SPP two-stage shop with a bursty cross-flow: the exact driver
    // now reaches Theorem 3 through `ServicePolicy::exact_service`.
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    b.add_job(
        "T1",
        Time(90),
        periodic(20),
        vec![(p1, Time(2)), (p2, Time(4))],
    );
    b.add_job(
        "T2",
        Time(110),
        ArrivalPattern::Trace(vec![Time(0), Time(0), Time(2), Time(40)]),
        vec![(p2, Time(3)), (p1, Time(5))],
    );
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    let cfg = AnalysisConfig {
        arrival_window: Some(Time(80)),
        ..Default::default()
    };
    assert_exact_golden(&sys, &cfg);
}

// ---------------------------------------------------------------------------
// Randomized equivalence.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GoldJob {
    /// `None` → periodic at `period`; `Some(ts)` → trace burst.
    burst: Option<Vec<i64>>,
    period: i64,
    /// (processor index, exec) — processor indices strictly increase along
    /// the chain, which keeps the dependency DAG acyclic by construction.
    hops: Vec<(usize, i64)>,
}

const GOLD_PROCS: [SchedulerKind; 3] =
    [SchedulerKind::Spp, SchedulerKind::Spnp, SchedulerKind::Fcfs];

fn arb_gold_jobs() -> impl Strategy<Value = Vec<GoldJob>> {
    let hop = (0usize..GOLD_PROCS.len(), 1i64..7);
    let job = (
        any::<bool>(),
        prop::collection::vec(0i64..50, 1..5),
        20i64..81,
        prop::collection::vec(hop, 1..4),
    )
        .prop_map(|(is_burst, mut burst_ts, period, mut hops)| {
            hops.sort_by_key(|&(p, _)| p);
            hops.dedup_by_key(|&mut (p, _)| p);
            burst_ts.sort_unstable();
            GoldJob {
                burst: is_burst.then_some(burst_ts),
                period,
                hops,
            }
        });
    prop::collection::vec(job, 2..5)
}

fn build_gold_sys(jobs: &[GoldJob]) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let procs: Vec<_> = GOLD_PROCS
        .iter()
        .enumerate()
        .map(|(i, &kind)| b.add_processor(format!("P{i}"), kind))
        .collect();
    for (k, j) in jobs.iter().enumerate() {
        let pattern = match &j.burst {
            Some(ts) => ArrivalPattern::Trace(ts.iter().map(|&t| Time(t)).collect()),
            None => periodic(j.period),
        };
        let hops = j
            .hops
            .iter()
            .map(|&(p, c)| (procs[p], Time(c)))
            .collect::<Vec<_>>();
        // Distinct deadlines make the deadline-monotonic assignment (and
        // hence both dispatch paths) fully deterministic.
        b.add_job(format!("T{k}"), Time(300 + 10 * k as i64), pattern, hops);
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized job shops with bursty and periodic flows across all
    /// three legacy disciplines: trait dispatch never changes a single
    /// hop delay.
    #[test]
    fn random_shop_bounds_match_legacy(jobs in arb_gold_jobs()) {
        let sys = build_gold_sys(&jobs);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(160)),
            ..Default::default()
        };
        assert_bounds_golden(&sys, &cfg);
    }

    /// All-SPP random shops: the exact pass stays curve-identical.
    #[test]
    fn random_spp_exact_matches_legacy(jobs in arb_gold_jobs()) {
        let mut b = SystemBuilder::new();
        let procs: Vec<_> = (0..GOLD_PROCS.len())
            .map(|i| b.add_processor(format!("P{i}"), SchedulerKind::Spp))
            .collect();
        for (k, j) in jobs.iter().enumerate() {
            let pattern = match &j.burst {
                Some(ts) => ArrivalPattern::Trace(ts.iter().map(|&t| Time(t)).collect()),
                None => periodic(j.period),
            };
            let hops = j
                .hops
                .iter()
                .map(|&(p, c)| (procs[p], Time(c)))
                .collect::<Vec<_>>();
            b.add_job(format!("T{k}"), Time(300 + 10 * k as i64), pattern, hops);
        }
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(160)),
            ..Default::default()
        };
        assert_exact_golden(&sys, &cfg);
    }
}

//! Service-layer oracle tests: every verdict the warm
//! [`AdmissionService`] serves (`ADMIT` probes, `SCALE` what-ifs) must
//! equal a **cold** analysis of the equivalent system under the tenant's
//! pinned configuration — for randomized request streams, across all four
//! scheduling policies. This extends `incremental_oracles.rs` (session ==
//! cold) one layer up: service == cold, through the tenant map, rollbacks,
//! and generation plumbing.

use proptest::prelude::*;
use rta_core::fixpoint::analyze_with_loops;
use rta_core::sensitivity::Oracle;
use rta_core::service::{AdmissionService, ServiceConfig, ServiceError};
use rta_core::{analyze_bounds, analyze_exact_spp, AnalysisConfig, AnalysisError};
use rta_curves::Time;
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{
    ArrivalPattern, Job, ProcessorId, SchedulerKind, Subjob, SystemBuilder, TaskSystem,
};

const POLICIES: [SchedulerKind; 4] = [
    SchedulerKind::Spp,
    SchedulerKind::Spnp,
    SchedulerKind::Fcfs,
    SchedulerKind::Iwrr,
];

/// A two-processor base system of `kind` with `specs` acyclic jobs
/// (two-hop jobs always route P0→P1).
fn base_system(kind: SchedulerKind, specs: &[(i64, Vec<i64>, bool)]) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p0 = b.add_processor("P0", kind);
    let p1 = b.add_processor("P1", kind);
    for (k, (period, execs, forward)) in specs.iter().enumerate() {
        let hops: Vec<(ProcessorId, Time)> = if execs.len() == 2 {
            vec![(p0, Time(execs[0])), (p1, Time(execs[1]))]
        } else {
            vec![(if *forward { p0 } else { p1 }, Time(execs[0]))]
        };
        b.add_job(
            format!("T{k}"),
            Time(4 * period),
            ArrivalPattern::Periodic {
                period: Time(*period),
                offset: Time(0),
            },
            hops,
        );
    }
    let mut sys = b.build().unwrap();
    if kind.uses_priorities() {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    }
    if kind == SchedulerKind::Iwrr {
        for r in sys.all_subjobs().collect::<Vec<_>>() {
            sys.set_weight(r, Some(1 + (r.job.0 as u32 % 3)));
        }
    }
    sys
}

/// Resolve a candidate like the daemon does: lowest-priority slot per
/// processor for priority policies, a fixed weight for IWRR.
fn candidate(sys: &TaskSystem, name: &str, execs: &[i64], period: i64) -> Job {
    let subjobs = execs
        .iter()
        .enumerate()
        .map(|(i, &exec)| {
            let pid = ProcessorId(i % sys.processors().len());
            let kind = sys.processor(pid).scheduler;
            let priority = kind.uses_priorities().then(|| {
                1 + sys
                    .subjobs_on(pid)
                    .into_iter()
                    .filter_map(|r| sys.subjob(r).priority)
                    .max()
                    .unwrap_or(0)
            });
            Subjob {
                processor: pid,
                exec: Time(exec),
                priority,
                weight: (kind == SchedulerKind::Iwrr).then_some(2),
            }
        })
        .collect();
    Job {
        name: name.to_string(),
        deadline: Time(4 * period),
        arrival: ArrivalPattern::Periodic {
            period: Time(period),
            offset: Time(0),
        },
        subjobs,
    }
}

/// The cold reference: one fresh analysis under the tenant's pinned
/// configuration, using the tenant's own oracle.
fn cold_verdict(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    oracle: Oracle,
) -> Result<bool, AnalysisError> {
    match oracle {
        Oracle::Exact => Ok(analyze_exact_spp(sys, cfg)?.all_schedulable()),
        Oracle::Bounds => Ok(analyze_bounds(sys, cfg)?.all_schedulable()),
        Oracle::Loops { max_rounds } => {
            Ok(analyze_with_loops(sys, cfg, max_rounds)?.all_schedulable())
        }
    }
}

/// One randomized op against a warm tenant.
#[derive(Clone, Debug)]
enum Op {
    Admit { execs: Vec<i64>, period: i64 },
    RemoveOldest,
    Scale { percent: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (prop::collection::vec(1i64..9, 1..3), 20i64..81)
                .prop_map(|(execs, period)| Op::Admit { execs, period }),
            Just(Op::RemoveOldest),
            (50u64..200).prop_map(|percent| Op::Scale { percent }),
        ],
        1..8,
    )
}

fn run_stream(kind: SchedulerKind, specs: &[(i64, Vec<i64>, bool)], ops: &[Op]) {
    let mut svc = AdmissionService::new(ServiceConfig::default());
    let tenant = "t";
    svc.load(tenant, base_system(kind, specs)).unwrap();
    let cfg = svc.tenant_config(tenant).unwrap();
    let oracle = svc.tenant_oracle(tenant).unwrap();
    match kind {
        SchedulerKind::Spp => assert_eq!(oracle, Oracle::Exact),
        _ => assert!(matches!(oracle, Oracle::Loops { .. })),
    }

    let mut admitted: Vec<String> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Admit { execs, period } => {
                let name = format!("C{i}");
                let sys = svc.tenant_system(tenant).unwrap();
                let jobs_before = sys.jobs().len();
                let job = candidate(sys, &name, execs, *period);
                let mut cold_sys = sys.clone();
                cold_sys.push_job(job.clone());
                let cold = cold_verdict(&cold_sys, &cfg, oracle);
                match (svc.admit(tenant, job), cold) {
                    (Ok(out), Ok(cold_ok)) => {
                        assert_eq!(
                            out.verdict.admitted(),
                            cold_ok,
                            "{kind:?} warm ADMIT verdict diverged from cold analysis at op {i}"
                        );
                        if out.verdict.admitted() {
                            admitted.push(name);
                        } else {
                            assert_eq!(
                                svc.tenant_system(tenant).unwrap().jobs().len(),
                                jobs_before,
                                "rejected candidate must be rolled back"
                            );
                        }
                    }
                    (Err(ServiceError::Analysis(_)), Err(_)) => {
                        assert_eq!(
                            svc.tenant_system(tenant).unwrap().jobs().len(),
                            jobs_before,
                            "failed candidate must be rolled back"
                        );
                    }
                    (warm, cold) => {
                        panic!("{kind:?} warm/cold disagree at op {i}: {warm:?} vs {cold:?}")
                    }
                }
            }
            Op::RemoveOldest => {
                if let Some(name) = admitted.first().cloned() {
                    svc.remove(tenant, &name).unwrap();
                    admitted.remove(0);
                }
            }
            Op::Scale { percent } => {
                let factor = *percent as f64 / 100.0;
                match svc.scale(tenant, factor) {
                    Ok(out) => {
                        let cold = cold_verdict(svc.tenant_system(tenant).unwrap(), &cfg, oracle)
                            .expect("warm scale succeeded, cold must too");
                        assert_eq!(
                            out.schedulable,
                            Some(cold),
                            "{kind:?} warm SCALE verdict diverged from cold analysis at op {i}"
                        );
                    }
                    Err(ServiceError::Analysis(_)) => {
                        cold_verdict(svc.tenant_system(tenant).unwrap(), &cfg, oracle)
                            .expect_err("warm scale failed, cold must too");
                    }
                    Err(e) => panic!("unexpected scale error: {e}"),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random request streams against every policy: warm verdicts are the
    /// cold verdicts, bit for bit, and rejections leave no residue.
    #[test]
    fn warm_verdicts_match_cold_analysis(
        specs in prop::collection::vec(
            (20i64..81, prop::collection::vec(1i64..9, 1..3), any::<bool>()),
            2..5,
        ),
        ops in arb_ops(),
    ) {
        for kind in POLICIES {
            run_stream(kind, &specs, &ops);
        }
    }
}

/// Deterministic spot check: an obviously hopeless candidate is rejected
/// and an obviously light one admitted, matching cold analysis, for every
/// policy.
#[test]
fn admit_extremes_match_cold() {
    for kind in POLICIES {
        let specs = vec![(40i64, vec![4, 4], true), (60i64, vec![5], false)];
        let ops = vec![
            Op::Admit {
                execs: vec![1],
                period: 50,
            },
            Op::Admit {
                execs: vec![8, 8],
                period: 20,
            },
            Op::Scale { percent: 160 },
            Op::Admit {
                execs: vec![2, 2],
                period: 40,
            },
        ];
        run_stream(kind, &specs, &ops);
    }
}

//! Policy-conformance property suite: every registered [`ServicePolicy`]
//! must honor the trait's soundness obligations on randomized workloads.
//!
//! The contract a driver relies on (see `DESIGN.md` §4c):
//!
//! * **Zero start** — `S̲(0) = S̄(0) = 0`: no service before time zero.
//! * **Monotone** — both bounds are nondecreasing (cumulative service).
//! * **Causal** — `S̄(t) ≤ min(t, c̄(t))`: a processor cannot serve more
//!   than wall-clock time, nor more work than has arrived.
//! * **Ordered** — `0 ≤ S̲(t) ≤ S̄(t)` everywhere.
//! * **Registry coherence** — `policy_for(p.kind()).kind() == p.kind()`,
//!   and `supports_exact()` implies `exact_service` yields a curve obeying
//!   the same obligations.
//!
//! The suite iterates `all_policies()`, so a future fifth discipline is
//! checked the moment it is registered — adding a policy that violates the
//! seam fails here before any driver test notices.

use proptest::prelude::*;
use rta_core::policy::{all_policies, policy_for, BoundsInputs, PeerInputs, ProcessorContexts};
use rta_core::{AnalysisConfig, SpnpAvailability};
use rta_curves::{Curve, Time};
use rta_model::{ArrivalPattern, ProcessorId, SchedulerKind, SubjobRef, SystemBuilder, TaskSystem};

/// One randomized flow: trace release times and an execution time.
#[derive(Debug, Clone)]
struct Flow {
    releases: Vec<i64>,
    exec: i64,
}

fn arb_flows() -> impl Strategy<Value = Vec<Flow>> {
    prop::collection::vec(
        (prop::collection::vec(0i64..80, 1..6), 1i64..8).prop_map(|(mut releases, exec)| {
            releases.sort_unstable();
            Flow { releases, exec }
        }),
        2..4,
    )
}

/// A single-processor system of single-hop trace jobs under `kind`.
/// Priorities are distinct by construction; weights cycle 1..=3 so the
/// IWRR policy sees a non-trivial weight vector.
fn flow_sys(kind: SchedulerKind, flows: &[Flow]) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P", kind);
    for (k, f) in flows.iter().enumerate() {
        let job = b.add_job(
            format!("T{k}"),
            Time(500),
            ArrivalPattern::Trace(f.releases.iter().map(|&t| Time(t)).collect()),
            vec![(p, Time(f.exec))],
        );
        let r = SubjobRef { job, index: 0 };
        b.set_priority(r, k as u32 + 1);
        b.set_weight(r, k as u32 % 3 + 1);
    }
    b.build().unwrap()
}

fn assert_service_obligations(
    label: &str,
    lower: &Curve,
    upper: &Curve,
    workload: &Curve,
    horizon: Time,
) {
    assert_eq!(lower.eval(Time::ZERO), 0, "{label}: S̲(0) ≠ 0");
    assert_eq!(upper.eval(Time::ZERO), 0, "{label}: S̄(0) ≠ 0");
    assert!(lower.is_nondecreasing(), "{label}: S̲ not monotone");
    assert!(upper.is_nondecreasing(), "{label}: S̄ not monotone");
    for t in (0..=horizon.ticks()).map(Time) {
        let (lo, up) = (lower.eval(t), upper.eval(t));
        assert!(lo >= 0, "{label}: S̲({t:?}) = {lo} < 0");
        assert!(lo <= up, "{label}: S̲({t:?}) = {lo} > S̄ = {up}");
        assert!(
            up <= t.ticks().max(0),
            "{label}: S̄({t:?}) = {up} exceeds wall clock"
        );
        assert!(
            up <= workload.eval(t),
            "{label}: S̄({t:?}) = {up} exceeds arrived work {}",
            workload.eval(t)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every registered policy produces sound service bounds on random
    /// bursty multi-flow workloads, under both SPNP availability variants.
    #[test]
    fn every_policy_produces_sound_service_bounds(flows in arb_flows()) {
        for policy in all_policies() {
            let kind = policy.kind();
            prop_assert_eq!(policy_for(kind).kind(), kind, "registry must round-trip");

            let sys = flow_sys(kind, &flows);
            let cfg = AnalysisConfig {
                arrival_window: Some(Time(120)),
                ..AnalysisConfig::default()
            };
            let (window, horizon) = cfg.resolve(&sys);
            let p = ProcessorId(0);

            // Workloads exactly as the drivers derive them.
            let workload_of = |r: SubjobRef| -> Curve {
                sys.job(r.job)
                    .arrival
                    .arrival_curve(window)
                    .scale(sys.subjob(r).exec.ticks())
            };

            for variant in [SpnpAvailability::Conservative, SpnpAvailability::AsPrinted] {
                let mut ctxs = ProcessorContexts::new();
                if policy.peer_inputs() == PeerInputs::SharedWorkloads {
                    let mut w = |r: SubjobRef| workload_of(r);
                    ctxs.ensure(&sys, p, horizon, &mut w).unwrap();
                }

                // Evaluate flows from highest to lowest priority so the
                // hp service bounds exist when a lower flow needs them.
                let mut order = sys.subjobs_on(p);
                order.sort_by_key(|&r| sys.subjob(r).priority);
                let mut done: Vec<(SubjobRef, Curve, Curve)> = Vec::new();
                for r in order {
                    let workload = workload_of(r);
                    let hp = sys.higher_priority_peers(r);
                    let hp_lower: Vec<&Curve> = hp
                        .iter()
                        .map(|h| &done.iter().find(|(o, _, _)| o == h).expect("priority order").1)
                        .collect();
                    let hp_upper: Vec<&Curve> = hp
                        .iter()
                        .map(|h| &done.iter().find(|(o, _, _)| o == h).expect("priority order").2)
                        .collect();
                    let bounds = policy
                        .service_bounds(&BoundsInputs {
                            workload: &workload,
                            tau: sys.subjob(r).exec,
                            weight: sys.subjob(r).weight(),
                            blocking: policy.blocking(&sys, r),
                            hp_lower: &hp_lower,
                            hp_upper: &hp_upper,
                            variant,
                            ctx: ctxs.get(p),
                            horizon,
                            processor: p,
                        })
                        .unwrap();
                    let label = format!("{kind:?}/{variant:?}/{r:?}");
                    assert_service_obligations(&label, &bounds.lower, &bounds.upper, &workload, horizon);
                    done.push((r, bounds.lower, bounds.upper));
                }
            }

            // Exact-capable policies: the exact service function obeys the
            // same obligations (checked flow-by-flow, peers folded in).
            if policy.supports_exact() {
                let mut order = sys.subjobs_on(p);
                order.sort_by_key(|&r| sys.subjob(r).priority);
                let mut services: Vec<(SubjobRef, Curve)> = Vec::new();
                for r in order {
                    let workload = workload_of(r);
                    let hp = sys.higher_priority_peers(r);
                    let hp_services: Vec<&Curve> = hp
                        .iter()
                        .map(|h| &services.iter().find(|(o, _)| o == h).expect("order").1)
                        .collect();
                    let exact = policy
                        .exact_service(&workload, &hp_services)
                        .expect("supports_exact ⇒ Some");
                    let label = format!("{kind:?}/exact/{r:?}");
                    assert_service_obligations(&label, &exact, &exact, &workload, horizon);
                    services.push((r, exact));
                }
            } else {
                prop_assert!(policy.exact_service(&Curve::zero(), &[]).is_none());
            }
        }
    }
}

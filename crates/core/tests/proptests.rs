//! Property-based tests of the service-function machinery on random
//! workload curves.

use proptest::prelude::*;
use rta_core::spnp::spnp_bounds;
use rta_core::spp::{availability, exact_service, service_from_availability};
use rta_core::SpnpAvailability;
use rta_curves::{Curve, Time};

const HORIZON: i64 = 80;

/// Random workload curve: sorted arrival times × a small execution time.
fn arb_workload() -> impl Strategy<Value = (Curve, i64)> {
    (prop::collection::vec(0i64..60, 0..8), 1i64..6).prop_map(|(mut ts, tau)| {
        ts.sort();
        let times: Vec<Time> = ts.into_iter().map(Time).collect();
        (Curve::from_event_times(&times).scale(tau), tau)
    })
}

proptest! {
    /// Theorem 3 invariants: 0 ≤ S ≤ min(t, c), S nondecreasing, and the
    /// workload is eventually fully served when the processor is otherwise
    /// idle.
    #[test]
    fn exact_service_invariants((c, _tau) in arb_workload()) {
        let s = exact_service(&c, &[]);
        prop_assert!(s.is_nondecreasing());
        for t in 0..=HORIZON {
            let t = Time(t);
            let v = s.eval(t);
            prop_assert!(v >= 0);
            prop_assert!(v <= t.ticks());
            prop_assert!(v <= c.eval(t));
        }
        // All demand issued by HORIZON/2 is served by HORIZON (idle server,
        // demand ≤ HORIZON/2 total by construction: ≤ 8 events × 5 ticks).
        let demand = c.eval(Time(HORIZON / 2));
        prop_assert!(s.eval(Time(HORIZON + 60)) >= demand);
    }

    /// Two-level exact service: the processor is conserved — the sum of
    /// services never exceeds elapsed time, and equals the Theorem 7
    /// utilization of the combined workload.
    #[test]
    fn two_level_work_conservation((c1, _t1) in arb_workload(), (c2, _t2) in arb_workload()) {
        let hp = exact_service(&c1, &[]);
        let lp = exact_service(&c2, &[&hp]);
        let g = c1.add(&c2);
        let g_prev = g.shift_right(Time(1), 0);
        let u = Curve::identity()
            .add(&g_prev.sub(&Curve::identity()).running_min())
            .min_with(&Curve::identity());
        for t in 0..=HORIZON {
            let t = Time(t);
            let total = hp.eval(t) + lp.eval(t);
            prop_assert!(total <= t.ticks().max(0));
            prop_assert_eq!(total, u.eval(t).max(0), "t={}", t);
        }
    }

    /// The generic min-form with the trivial availability bounds of
    /// Definition 6 brackets the exact service.
    #[test]
    fn trivial_availability_bounds_bracket((c, _tau) in arb_workload()) {
        let exact = exact_service(&c, &[]);
        // Upper availability t (idle processor) reproduces the exact
        // service; lower availability 0 yields the zero service.
        let with_upper = service_from_availability(&Curve::identity(), &c);
        let with_lower = service_from_availability(&Curve::zero(), &c).clamp_min(0);
        for t in 0..=HORIZON {
            let t = Time(t);
            prop_assert_eq!(with_upper.eval(t), exact.eval(t));
            prop_assert!(with_lower.eval(t) <= exact.eval(t));
        }
    }

    /// SPNP bounds: lower ≤ upper pointwise, both within [0, min(t, c̄)],
    /// both nondecreasing, for both variants and random blocking.
    #[test]
    fn spnp_bounds_sanity(
        (c, _tau) in arb_workload(),
        (hp_c, _ht) in arb_workload(),
        b in 0i64..12,
        conservative in any::<bool>(),
    ) {
        let variant = if conservative {
            SpnpAvailability::Conservative
        } else {
            SpnpAvailability::AsPrinted
        };
        let hp = spnp_bounds(&hp_c, &[], &[], Time(b), variant).unwrap();
        let me = spnp_bounds(&c, &[&hp.lower], &[&hp.upper], Time(b), variant).unwrap();
        prop_assert!(me.lower.is_nondecreasing());
        prop_assert!(me.upper.is_nondecreasing());
        for t in 0..=HORIZON {
            let t = Time(t);
            prop_assert!(me.lower.eval(t) <= me.upper.eval(t), "t={}", t);
            prop_assert!(me.lower.eval(t) >= 0);
            prop_assert!(me.lower.eval(t) <= c.eval(t));
            prop_assert!(me.upper.eval(t) <= t.ticks().max(0));
        }
        // No blocking during the guaranteed-zero prefix.
        if b > 0 {
            prop_assert_eq!(me.lower.eval(Time(b)), 0);
        }
    }

    /// With no interference and no blocking, both SPNP variants collapse to
    /// the exact service function.
    #[test]
    fn spnp_degenerates_to_exact((c, _tau) in arb_workload()) {
        let exact = exact_service(&c, &[]);
        for variant in [SpnpAvailability::AsPrinted, SpnpAvailability::Conservative] {
            let bounds = spnp_bounds(&c, &[], &[], Time::ZERO, variant).unwrap();
            for t in 0..=HORIZON {
                let t = Time(t);
                prop_assert_eq!(bounds.lower.eval(t), exact.eval(t), "lower {:?} t={}", variant, t);
                prop_assert_eq!(bounds.upper.eval(t), exact.eval(t), "upper {:?} t={}", variant, t);
            }
        }
    }

    /// Availability of Equation 10 is exactly the complement of the summed
    /// services.
    #[test]
    fn availability_complements_services((c1, _a) in arb_workload(), (c2, _b) in arb_workload()) {
        let s1 = exact_service(&c1, &[]);
        let s2 = exact_service(&c2, &[&s1]);
        let a = availability(&[&s1, &s2]);
        for t in 0..=HORIZON {
            let t = Time(t);
            prop_assert_eq!(a.eval(t), t.ticks() - s1.eval(t) - s2.eval(t));
        }
    }
}

//! Driver-level oracle for the SoA analysis pipeline: for every scheduling
//! policy and both workload shapes from the paper's evaluation (periodic
//! job-shop, Eq. 25; bursty, Eq. 27), the default entry point — whose warm
//! rounds run entirely on structure-of-arrays curve buffers — must produce
//! a report **bit-identical** to `analyze_with_loops_aos_reference`, the
//! retained array-of-structs path that never touches the SoA iterates.
//!
//! `tests/soa_kernels.rs` (rta-curves) pins each SoA kernel to its AoS
//! oracle; this test pins the composition end to end, through ingest,
//! fixpoint rounds, and report assembly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_core::fixpoint::{analyze_with_loops, analyze_with_loops_aos_reference};
use rta_core::{AnalysisConfig, AnalysisSession};
use rta_model::distributions::Dist;
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{SchedulerKind, TaskSystem};

const POLICIES: [SchedulerKind; 4] = [
    SchedulerKind::Spp,
    SchedulerKind::Spnp,
    SchedulerKind::Fcfs,
    SchedulerKind::Iwrr,
];

fn shop(scheduler: SchedulerKind, arrivals: ShopArrivals, seed: u64) -> TaskSystem {
    let cfg = ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler,
        utilization: 0.6,
        arrivals,
        x_min: 0.2,
        ticks_per_unit: 8,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

fn periodic() -> ShopArrivals {
    ShopArrivals::Periodic {
        deadline_factor: 4.0,
    }
}

fn bursty() -> ShopArrivals {
    ShopArrivals::Bursty {
        deadline: Dist::Exponential { mean: 6.0 },
    }
}

/// The two paths must agree on the whole report: window, horizon, every
/// hop delay, every end-to-end bound. `BoundsReport` has no `Eq` impl, so
/// the comparison goes through `Debug`, which prints every field.
fn assert_reports_identical(sys: &TaskSystem, label: &str) {
    let cfg = AnalysisConfig::default();
    let soa = analyze_with_loops(sys, &cfg, 8).unwrap();
    let aos = analyze_with_loops_aos_reference(sys, &cfg, 8).unwrap();
    assert_eq!(format!("{soa:?}"), format!("{aos:?}"), "{label}");
}

#[test]
fn soa_pipeline_matches_aos_reference_on_periodic_shops() {
    for (i, kind) in POLICIES.into_iter().enumerate() {
        let sys = shop(kind, periodic(), 42 + i as u64);
        assert_reports_identical(&sys, &format!("{kind:?} periodic"));
    }
}

#[test]
fn soa_pipeline_matches_aos_reference_on_bursty_shops() {
    for (i, kind) in POLICIES.into_iter().enumerate() {
        let sys = shop(kind, bursty(), 1042 + i as u64);
        assert_reports_identical(&sys, &format!("{kind:?} bursty"));
    }
}

/// Warm sessions reuse SoA iterate buffers across calls; every warm report
/// must still match the cold AoS reference bit for bit.
#[test]
fn warm_session_matches_aos_reference() {
    for kind in POLICIES {
        let sys = shop(kind, periodic(), 7);
        let cfg = AnalysisConfig::default();
        let aos = analyze_with_loops_aos_reference(&sys, &cfg, 8).unwrap();
        let (w, h) = cfg.resolve(&sys);
        let pinned = AnalysisConfig {
            arrival_window: Some(w),
            horizon: Some(h),
            ..AnalysisConfig::default()
        };
        let mut session = AnalysisSession::pinned(sys, pinned);
        for pass in 0..3 {
            let warm = session.analyze_with_loops(8).unwrap();
            assert_eq!(
                format!("{warm:?}"),
                format!("{aos:?}"),
                "{kind:?} warm pass {pass}"
            );
        }
    }
}

//! Aperiodic servers — the paper's Introduction, transformation (ii):
//! "having servers, which look like periodic jobs to the rest of the
//! system, execute the non-periodic jobs."
//!
//! A server reserves `budget` `Θ` units of processor time every `period`
//! `Π`; the rest of the system sees one periodic job `(Θ, Π)`, and the
//! bursty stream is served from the reservation. The guaranteed service of
//! such a reservation is the classical **supply bound function** of the
//! periodic resource model `Γ(Π, Θ)` (Shin & Lee, RTSS 2003):
//!
//! ```text
//! sbf(t) = k·Θ + max(0, t − (Π − Θ) − k·Π − (Π − Θ))   with k = ⌊(t − (Π − Θ))/Π⌋
//!        = 0 for t ≤ Π − Θ
//! ```
//!
//! — a slope-{0,1} staircase that drops straight into this library's
//! service-function machinery: the bursty job's response bound is the
//! horizontal deviation between its workload and `⌊sbf/τ⌋` departures,
//! exactly the Theorem 4 shape with the server's supply as the service
//! lower bound.
//!
//! This makes the paper's motivating comparison concrete: the same bursty
//! stream analyzed (a) directly on a shared processor with the paper's
//! method vs. (b) through a server reservation — see
//! `tests/transformations.rs::server_transformation_tradeoff`.
//!
//! ```
//! use rta_core::server::PeriodicServer;
//! use rta_curves::{Curve, Time};
//!
//! // 30% of a processor: 3 ticks of budget every 10.
//! let srv = PeriodicServer::new(Time(10), Time(3));
//! assert!((srv.bandwidth() - 0.3).abs() < 1e-12);
//!
//! // A 3-tick instance released at t = 0 is served, worst case, by the
//! // end of the first post-blackout budget chunk.
//! let arr = Curve::from_event_times(&[Time(0)]);
//! let bound = srv.response_bound(&arr, Time(3), Time(200)).unwrap();
//! assert_eq!(bound, Time(17));
//! ```

use rta_curves::{Curve, Segment, Time};

/// A periodic processor reservation `Γ(Π, Θ)`: `budget` units of service
/// every `period`, delivered anywhere inside the period.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PeriodicServer {
    /// Replenishment period `Π` (ticks, ≥ 1).
    pub period: Time,
    /// Budget `Θ` per period (ticks, `1 ≤ Θ ≤ Π`).
    pub budget: Time,
}

impl PeriodicServer {
    /// Construct, validating `1 ≤ Θ ≤ Π`.
    pub fn new(period: Time, budget: Time) -> PeriodicServer {
        assert!(budget >= Time::ONE && budget <= period, "need 1 ≤ Θ ≤ Π");
        PeriodicServer { period, budget }
    }

    /// Long-run fraction of the processor reserved.
    pub fn bandwidth(&self) -> f64 {
        self.budget.ticks() as f64 / self.period.ticks() as f64
    }

    /// The worst-case supply bound function on `[0, horizon]`:
    /// zero for `t ≤ Π − Θ` (the budget may have just been exhausted as
    /// early as possible and replenished as late as possible), then `Θ`
    /// units delivered per period, each period's delivery as late as
    /// possible — a staircase of slope-1 ramps.
    pub fn supply_curve(&self, horizon: Time) -> Curve {
        let pi = self.period.ticks();
        let theta = self.budget.ticks();
        let blackout = pi - theta;
        // Worst phasing: a full budget ends right at 0, the next budget is
        // delivered as late as possible: the k-th chunk (k ≥ 1) is the
        // slope-1 ramp on [blackout + (k−1)·Π + (Π − Θ) … +Θ], i.e. starting
        // at blackout + k·Π − Θ… equivalently 2·blackout + (k−1)·Π.
        let mut segs = vec![Segment::new(Time::ZERO, 0, 0)];
        let mut k: i64 = 0;
        loop {
            let ramp_start = 2 * blackout + k * pi;
            if ramp_start > horizon.ticks() {
                break;
            }
            let supplied = k * theta;
            if ramp_start == 0 {
                // Θ = Π: the reservation is the whole processor.
                return Curve::identity();
            }
            segs.push(Segment::new(Time(ramp_start), supplied, 1));
            segs.push(Segment::new(Time(ramp_start + theta), supplied + theta, 0));
            k += 1;
        }
        Curve::from_segments(segs)
    }

    /// Worst-case response bound for a stream of `τ`-sized instances with
    /// arrival function `arrival`, served FIFO from this reservation:
    /// the horizontal deviation between arrivals and the supply's
    /// departures. `None` if some instance is not served within `horizon`.
    pub fn response_bound(&self, arrival: &Curve, tau: Time, horizon: Time) -> Option<Time> {
        let workload = arrival.scale(tau.ticks());
        // Supply is capacity, service is capped by demand: the served work
        // is the Theorem-3 min-form with the supply as availability.
        let service = crate::spp::service_from_availability(&self.supply_curve(horizon), &workload)
            .clamp_min(0)
            .running_max();
        let dep = service.floor_div(tau.ticks(), horizon).ok()?;
        let n = arrival.total_events();
        let mut worst = Time::ZERO;
        for m in 1..=n {
            let a = arrival.event_time(m).expect("within curve");
            let c = dep.event_time(m)?;
            worst = worst.max(c - a);
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supply_curve_matches_shin_lee_landmarks() {
        // Γ(Π=10, Θ=3): blackout 7, first ramp at 14.
        let s = PeriodicServer::new(Time(10), Time(3)).supply_curve(Time(100));
        assert_eq!(s.eval(Time(0)), 0);
        assert_eq!(s.eval(Time(13)), 0);
        assert_eq!(s.eval(Time(14)), 0);
        assert_eq!(s.eval(Time(15)), 1);
        assert_eq!(s.eval(Time(17)), 3);
        assert_eq!(s.eval(Time(24)), 3); // next ramp at 24
        assert_eq!(s.eval(Time(27)), 6);
        // Long-run slope = bandwidth.
        let far = s.eval(Time(97));
        assert!((far as f64 / 97.0 - 0.3).abs() < 0.1);
    }

    #[test]
    fn full_budget_is_the_whole_processor() {
        let s = PeriodicServer::new(Time(10), Time(10)).supply_curve(Time(50));
        assert_eq!(s, Curve::identity());
    }

    #[test]
    fn supply_is_sound_versus_any_phase() {
        // Simulate every budget placement (contiguous Θ anywhere in each
        // period, chosen adversarially per period = latest possible): the
        // sbf must lower-bound the windowed delivery from any start phase.
        let srv = PeriodicServer::new(Time(8), Time(3));
        let sbf = srv.supply_curve(Time(80));
        // Concrete adversarial supply: budget at the very start of each
        // period — the worst window begins right after a budget chunk.
        // Delivery function from phase φ: chunks at [kΠ, kΠ+Θ).
        let delivered = |from: i64, to: i64| -> i64 {
            // work delivered in [from, to) with chunks at [8k, 8k+3)
            let mut acc = 0;
            let mut k = from.div_euclid(8) - 1;
            while 8 * k < to {
                let (s, e) = (8 * k, 8 * k + 3);
                acc += (e.min(to) - s.max(from)).max(0);
                k += 1;
            }
            acc
        };
        for start in 0..16 {
            for span in 0..=60 {
                assert!(
                    sbf.eval(Time(span)) <= delivered(start, start + span),
                    "window [{start}, {}): sbf too optimistic",
                    start + span
                );
            }
        }
    }

    #[test]
    fn response_bound_single_instance() {
        // One 3-tick instance into Γ(10, 3): worst case waits the double
        // blackout (14) then is served within one ramp: completes by 17.
        let srv = PeriodicServer::new(Time(10), Time(3));
        let arr = Curve::from_event_times(&[Time(0)]);
        let d = srv.response_bound(&arr, Time(3), Time(200)).unwrap();
        assert_eq!(d, Time(17));
    }

    #[test]
    fn response_bound_burst_spans_periods() {
        // Three 3-tick instances at once: 9 units at Θ=3 per Π=10 ⇒ the
        // last one needs three budget chunks.
        let srv = PeriodicServer::new(Time(10), Time(3));
        let arr = Curve::from_event_times(&[Time(0), Time(0), Time(0)]);
        let d = srv.response_bound(&arr, Time(3), Time(200)).unwrap();
        // Chunks end at 17, 27, 37 in the worst phasing.
        assert_eq!(d, Time(37));
    }

    #[test]
    fn response_bound_unserved_within_horizon() {
        let srv = PeriodicServer::new(Time(10), Time(1));
        let arr = Curve::from_event_times(&[Time(0); 20]);
        // 20 × 5 = 100 units at 1 unit per 10 ticks: needs ~1000 ticks.
        assert_eq!(srv.response_bound(&arr, Time(5), Time(100)), None);
    }

    #[test]
    fn bigger_budget_never_hurts() {
        let arr = Curve::from_event_times(&[Time(0), Time(4), Time(11)]);
        let small = PeriodicServer::new(Time(10), Time(2))
            .response_bound(&arr, Time(2), Time(400))
            .unwrap();
        let large = PeriodicServer::new(Time(10), Time(5))
            .response_bound(&arr, Time(2), Time(400))
            .unwrap();
        assert!(large <= small, "{large:?} > {small:?}");
    }
}

//! Exact end-to-end analysis for all-SPP systems (Section 4.1).
//!
//! One topological pass over the subjob dependency DAG computes, per
//! subjob, the exact arrival function (first hop: the job's pattern; later
//! hops: the predecessor's departure function, per the direct
//! synchronization protocol `f_{k,j,dep} = f_{k,j+1,arr}`), the exact SPP
//! service function (Theorem 3), and the departure function (Theorem 2).
//! Theorem 1 then reads off the exact worst-case end-to-end response time:
//!
//! ```text
//! d_k = max_m ( f⁻¹_{k,n_k,dep}(m) − f⁻¹_{k,1,arr}(m) )
//! ```

use crate::config::AnalysisConfig;
use crate::depgraph::{evaluation_order, SubjobIndex};
use crate::error::AnalysisError;
use crate::policy::policy_for;
use crate::report::{ExactReport, JobReport, SubjobCurves};
use rta_curves::{Curve, CurveCursor, Time};
use rta_model::{JobId, TaskSystem};

/// Check that every processor's policy has an exact theory (today: SPP
/// only, per Theorem 3) — the precondition shared by the exact analysis
/// and [`crate::AnalysisSession`].
pub(crate) fn require_exact_capable(sys: &TaskSystem) -> Result<(), AnalysisError> {
    for (p, proc) in sys.processors().iter().enumerate() {
        if !policy_for(proc.scheduler).supports_exact() {
            return Err(AnalysisError::NotAllSpp {
                processor: rta_model::ProcessorId(p),
            });
        }
    }
    Ok(())
}

/// Compute the arrival/service/departure curves of one subjob from the
/// curves of its dependencies (predecessor hop and higher-priority peers),
/// which must already be present in `curves`. `hop0_arrival` optionally
/// supplies a precomputed pattern curve for first hops (the session's
/// interned pattern cache); it must equal what
/// `arrival.arrival_curve(window)` would build.
pub(crate) fn subjob_node_curves(
    sys: &TaskSystem,
    idx: &SubjobIndex,
    i: usize,
    window: Time,
    horizon: Time,
    curves: &[Option<SubjobCurves>],
    hop0_arrival: Option<Curve>,
) -> Result<SubjobCurves, AnalysisError> {
    let r = idx.subjob(i);
    let subjob = sys.subjob(r);
    let arrival: Curve = if r.index == 0 {
        hop0_arrival.unwrap_or_else(|| sys.job(r.job).arrival.arrival_curve(window))
    } else {
        let pred = rta_model::SubjobRef {
            job: r.job,
            index: r.index - 1,
        };
        curves[idx.index(pred)]
            .as_ref()
            .expect("dependency order")
            .departure
            .clone()
    };
    let workload = arrival.scale(subjob.exec.ticks());
    let hp: Vec<usize> = sys
        .higher_priority_peers(r)
        .into_iter()
        .map(|h| idx.index(h))
        .collect();
    let hp_services: Vec<&Curve> = hp
        .iter()
        .map(|&h| &curves[h].as_ref().expect("dependency order").service)
        .collect();
    let service = policy_for(sys.processor(subjob.processor).scheduler)
        .exact_service(&workload, &hp_services)
        .ok_or(AnalysisError::NotAllSpp {
            processor: subjob.processor,
        })?;
    let departure = service.floor_div(subjob.exec.ticks(), horizon)?;
    Ok(SubjobCurves {
        arrival,
        service,
        departure,
    })
}

/// Theorem-1 report for one job, read off the first hop's arrival and the
/// last hop's departure curves.
pub(crate) fn job_report(
    job_id: JobId,
    deadline: Time,
    first_arrival: &Curve,
    last_departure: &Curve,
) -> JobReport {
    let n_instances = first_arrival.total_events();
    let mut responses = Vec::with_capacity(n_instances as usize);
    let mut wcrt = Some(Time::ZERO);
    // Resumable cursors make the instance sweep amortized O(1) per m.
    let mut arr_cur = CurveCursor::new(first_arrival);
    let mut dep_cur = CurveCursor::new(last_departure);
    for m in 1..=n_instances {
        let release = arr_cur.inverse_at(m).expect("instance within window");
        let resp = dep_cur.inverse_at(m).map(|c| c - release);
        wcrt = match (wcrt, resp) {
            (Some(w), Some(r)) => Some(w.max(r)),
            _ => None,
        };
        responses.push(resp);
    }
    if n_instances == 0 {
        wcrt = Some(Time::ZERO);
    }
    JobReport {
        job: job_id,
        responses,
        wcrt,
        deadline,
    }
}

/// Assemble the per-job Theorem-1 reports from a complete dense curve set.
pub(crate) fn assemble_exact_report(
    sys: &TaskSystem,
    idx: &SubjobIndex,
    curves: Vec<SubjobCurves>,
    window: Time,
    horizon: Time,
) -> ExactReport {
    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let job_id = JobId(k);
        let first = idx.index(rta_model::SubjobRef {
            job: job_id,
            index: 0,
        });
        let last = idx.index(rta_model::SubjobRef {
            job: job_id,
            index: job.subjobs.len() - 1,
        });
        jobs.push(job_report(
            job_id,
            job.deadline,
            &curves[first].arrival,
            &curves[last].departure,
        ));
    }
    ExactReport {
        window,
        horizon,
        jobs,
        curves,
    }
}

/// Run the exact SPP analysis.
///
/// Requires every processor to use [`rta_model::SchedulerKind::Spp`] (the
/// only policy with [`crate::policy::ServicePolicy::supports_exact`]) and the subjob
/// dependency relation to be acyclic (no Section 6 loops — see
/// [`crate::fixpoint`] for those).
pub fn analyze_exact_spp(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
) -> Result<ExactReport, AnalysisError> {
    sys.validate(true)?;
    require_exact_capable(sys)?;
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);
    let order = evaluation_order(sys, &idx)?;

    let mut curves: Vec<Option<SubjobCurves>> = vec![None; idx.len()];
    for i in order {
        curves[i] = Some(subjob_node_curves(
            sys, &idx, i, window, horizon, &curves, None,
        )?);
    }
    let curves: Vec<SubjobCurves> = curves
        .into_iter()
        .map(|c| c.expect("all computed"))
        .collect();
    Ok(assemble_exact_report(sys, &idx, curves, window, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SubjobRef, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    #[test]
    fn single_job_single_hop() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(10), periodic(20), vec![(p, Time(4))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        assert_eq!(r.jobs[0].wcrt, Some(Time(4)));
        assert!(r.all_schedulable());
        // Every analyzed instance responds in exactly τ.
        assert!(r.jobs[0].responses.iter().all(|x| *x == Some(Time(4))));
    }

    #[test]
    fn two_jobs_one_processor_classic_interference() {
        // Classic example: T1 (C=2, T=5), T2 (C=3, T=10), synchronous.
        // R1 = 2; R2 = 5 (T2 runs in [2,5), completing as T1 re-arrives).
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(5), periodic(5), vec![(p, Time(2))]);
        let t2 = b.add_job("T2", Time(10), periodic(10), vec![(p, Time(3))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        assert_eq!(r.jobs[0].wcrt, Some(Time(2)));
        assert_eq!(r.jobs[1].wcrt, Some(Time(5)));
        assert!(r.all_schedulable());
    }

    #[test]
    fn pipeline_adds_hop_latencies_when_uncontended() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let p3 = b.add_processor("P3", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            periodic(50),
            vec![(p1, Time(4)), (p2, Time(6)), (p3, Time(2))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        assert_eq!(r.jobs[0].wcrt, Some(Time(12)));
    }

    #[test]
    fn unschedulable_when_wcrt_exceeds_deadline() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(5), periodic(5), vec![(p, Time(2))]);
        let t2 = b.add_job("T2", Time(4), periodic(10), vec![(p, Time(3))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        assert!(r.jobs[0].schedulable());
        assert!(!r.jobs[1].schedulable()); // WCRT 5 > 4
        assert!(!r.all_schedulable());
    }

    #[test]
    fn overload_reports_unresolved_instances() {
        // Utilization 1.2 on one processor: the backlog grows without
        // bound, so late instances cannot complete within the horizon.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(10), periodic(10), vec![(p, Time(6))]);
        let t2 = b.add_job("T2", Time(10), periodic(10), vec![(p, Time(6))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        // T2 falls further and further behind while the overload lasts.
        assert!(!r.jobs[1].schedulable());
        let resp = &r.jobs[1].responses;
        // The backlog compounds across the first instances (arrivals keep
        // coming every period while only 4 of every 10 ticks are left over).
        assert!(resp[1] > resp[0], "backlog must compound: {resp:?}");
        assert!(resp.iter().flatten().any(|r| *r > Time(10)));
    }

    #[test]
    fn rejects_non_spp_processors() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job("T1", Time(10), periodic(10), vec![(p, Time(2))]);
        let sys = b.build().unwrap();
        assert!(matches!(
            analyze_exact_spp(&sys, &AnalysisConfig::default()),
            Err(AnalysisError::NotAllSpp { .. })
        ));
    }

    #[test]
    fn bursty_arrivals_are_analyzed_directly() {
        // The headline capability: no periodicity assumption anywhere.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(30),
            ArrivalPattern::Trace(vec![Time(0), Time(1), Time(2), Time(50)]),
            vec![(p, Time(5))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        let sys = b.build().unwrap();
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(60)),
            ..Default::default()
        };
        let r = analyze_exact_spp(&sys, &cfg).unwrap();
        // Burst of 3 at t=0,1,2 with τ=5: completions at 5, 10, 15 ⇒
        // responses 5, 9, 13. The isolated instance at 50 responds in 5.
        assert_eq!(
            r.jobs[0].responses,
            vec![Some(Time(5)), Some(Time(9)), Some(Time(13)), Some(Time(5))]
        );
        assert_eq!(r.jobs[0].wcrt, Some(Time(13)));
        let _ = t1;
    }

    #[test]
    fn hop_level_accessors_decompose_the_chain() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            periodic(50),
            vec![(p1, Time(4)), (p2, Time(6))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        // Instance 1: hop 1 completes at 4, hop 2 at 10.
        assert_eq!(r.hop_completion(0, 1), Some(Time(4)));
        assert_eq!(r.hop_completion(1, 1), Some(Time(10)));
        // Sojourns 4 and 6 sum to the end-to-end response.
        let sojourns = r.hop_sojourns(0, 2, 1);
        assert_eq!(sojourns, vec![Some(Time(4)), Some(Time(6))]);
        assert_eq!(r.jobs[0].responses[0], Some(Time(10)));
    }

    #[test]
    fn chained_job_contends_downstream() {
        // T1: P1→P2. T2 single hop on P2 with higher priority there.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(20),
            vec![(p1, Time(2)), (p2, Time(4))],
        );
        let t2 = b.add_job("T2", Time(20), periodic(20), vec![(p2, Time(3))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 1);
        let sys = b.build().unwrap();
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        // T1 instance: hop 1 done at 2. On P2, T2 (released at 0, τ=3) has
        // already run [0,3); T1's hop 2 runs [3,7) ⇒ e2e response 7.
        assert_eq!(r.jobs[0].wcrt, Some(Time(7)));
        assert_eq!(r.jobs[1].wcrt, Some(Time(3)));
    }
}

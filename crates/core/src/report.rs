//! Analysis result types.

use rta_curves::{Curve, Time};
use rta_model::JobId;

/// The three cumulative functions of one subjob from an exact analysis.
#[derive(Clone, Debug)]
pub struct SubjobCurves {
    /// Arrival function `f_arr` (Definition 1).
    pub arrival: Curve,
    /// Service function `S` (Definition 4).
    pub service: Curve,
    /// Departure function `f_dep = ⌊S/τ⌋` (Theorem 2).
    pub departure: Curve,
}

/// Per-job outcome of the exact analysis (Theorem 1).
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// End-to-end response time of each analyzed instance (`None` when the
    /// instance provably cannot be shown complete within the horizon — a
    /// conservative deadline miss).
    pub responses: Vec<Option<Time>>,
    /// Worst-case end-to-end response time over the analyzed instances;
    /// `None` if any instance is unresolved.
    pub wcrt: Option<Time>,
    /// The job's end-to-end deadline.
    pub deadline: Time,
}

impl JobReport {
    /// All analyzed instances resolved and within the deadline.
    pub fn schedulable(&self) -> bool {
        matches!(self.wcrt, Some(w) if w <= self.deadline)
    }
}

/// Result of the exact SPP analysis.
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// Arrival window used (instances released in `[0, window]`).
    pub window: Time,
    /// Analysis horizon used.
    pub horizon: Time,
    /// Per-job results, indexed by job id.
    pub jobs: Vec<JobReport>,
    /// Per-subjob curves in `TaskSystem::all_subjobs()` order.
    pub curves: Vec<SubjobCurves>,
}

impl ExactReport {
    /// Whether every job meets its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.jobs.iter().all(JobReport::schedulable)
    }

    /// Completion time of instance `m` (1-based) at a given hop, read off
    /// the hop's departure function. `None` when the instance does not
    /// provably complete that hop within the horizon.
    ///
    /// `subjob_index` is the position in `TaskSystem::all_subjobs()` order
    /// (job-major), i.e. the same indexing as [`ExactReport::curves`].
    pub fn hop_completion(&self, subjob_index: usize, m: i64) -> Option<Time> {
        self.curves[subjob_index].departure.event_time(m)
    }

    /// Per-hop sojourn times of instance `m` of a job: time from arrival at
    /// each hop to its completion there. Uses the dense subjob indexing of
    /// [`ExactReport::curves`]; `first_subjob_index` is the index of the
    /// job's hop 0.
    pub fn hop_sojourns(
        &self,
        first_subjob_index: usize,
        n_hops: usize,
        m: i64,
    ) -> Vec<Option<Time>> {
        (0..n_hops)
            .map(|j| {
                let i = first_subjob_index + j;
                let arr = self.curves[i].arrival.event_time(m)?;
                let dep = self.curves[i].departure.event_time(m)?;
                Some(dep - arr)
            })
            .collect()
    }
}

/// Per-job outcome of the approximate (bounds) analysis (Theorem 4).
#[derive(Clone, Debug)]
pub struct JobBound {
    /// The job.
    pub job: JobId,
    /// Per-hop worst-case delay bounds `d_{k,j}` (Equation 12); `None` when
    /// a hop's delay is unbounded within the horizon.
    pub hop_delays: Vec<Option<Time>>,
    /// End-to-end bound `Σ_j d_{k,j}` (Equation 11); `None` if any hop is
    /// unbounded.
    pub e2e_bound: Option<Time>,
    /// The job's end-to-end deadline.
    pub deadline: Time,
}

impl JobBound {
    /// Bounded and within the deadline.
    pub fn schedulable(&self) -> bool {
        matches!(self.e2e_bound, Some(d) if d <= self.deadline)
    }
}

/// Result of the approximate (bounds) analysis.
#[derive(Clone, Debug)]
pub struct BoundsReport {
    /// Arrival window used.
    pub window: Time,
    /// Analysis horizon used.
    pub horizon: Time,
    /// Per-job results, indexed by job id.
    pub jobs: Vec<JobBound>,
}

impl BoundsReport {
    /// Whether every job's bound meets its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.jobs.iter().all(JobBound::schedulable)
    }
}

impl std::fmt::Display for ExactReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "exact analysis (window {}, horizon {})",
            self.window, self.horizon
        )?;
        for j in &self.jobs {
            writeln!(
                f,
                "  {}: {} instances, WCRT {} / deadline {} -> {}",
                j.job,
                j.responses.len(),
                j.wcrt
                    .map_or("unresolved".into(), |t| t.ticks().to_string()),
                j.deadline,
                if j.schedulable() { "ok" } else { "MISS" }
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for BoundsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "bounds analysis (window {}, horizon {})",
            self.window, self.horizon
        )?;
        for j in &self.jobs {
            let hops: Vec<String> = j
                .hop_delays
                .iter()
                .map(|d| d.map_or("∞".into(), |t| t.ticks().to_string()))
                .collect();
            writeln!(
                f,
                "  {}: hops [{}] -> e2e ≤ {} / deadline {} -> {}",
                j.job,
                hops.join(", "),
                j.e2e_bound.map_or("∞".into(), |t| t.ticks().to_string()),
                j.deadline,
                if j.schedulable() { "ok" } else { "MISS" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render_readably() {
        let exact = ExactReport {
            window: Time(100),
            horizon: Time(200),
            jobs: vec![JobReport {
                job: JobId(0),
                responses: vec![Some(Time(7))],
                wcrt: Some(Time(7)),
                deadline: Time(10),
            }],
            curves: vec![],
        };
        let s = exact.to_string();
        assert!(s.contains("T1") && s.contains("WCRT 7") && s.contains("ok"));

        let bounds = BoundsReport {
            window: Time(100),
            horizon: Time(200),
            jobs: vec![JobBound {
                job: JobId(1),
                hop_delays: vec![Some(Time(3)), None],
                e2e_bound: None,
                deadline: Time(10),
            }],
        };
        let s = bounds.to_string();
        assert!(s.contains("T2") && s.contains("∞") && s.contains("MISS"));
    }

    #[test]
    fn job_report_schedulability() {
        let mut r = JobReport {
            job: JobId(0),
            responses: vec![Some(Time(5)), Some(Time(9))],
            wcrt: Some(Time(9)),
            deadline: Time(10),
        };
        assert!(r.schedulable());
        r.deadline = Time(8);
        assert!(!r.schedulable());
        r.wcrt = None;
        assert!(!r.schedulable());
    }

    #[test]
    fn job_bound_schedulability() {
        let b = JobBound {
            job: JobId(1),
            hop_delays: vec![Some(Time(3)), Some(Time(4))],
            e2e_bound: Some(Time(7)),
            deadline: Time(7),
        };
        assert!(b.schedulable());
        let unbounded = JobBound {
            e2e_bound: None,
            ..b
        };
        assert!(!unbounded.schedulable());
    }
}

//! Batched scenario engine for Monte-Carlo sweeps.
//!
//! The Section 5 experiments are *ensembles*: 1,000 random job sets per
//! admission point, one schedulability verdict each; or one bisection per
//! sampled system for sensitivity curves. Scenarios are independent, so the
//! natural shape is a parallel map — but a naive map pays per-scenario
//! setup (thread dispatch, allocator churn, cold fixpoint workspaces) that
//! dwarfs the analysis itself for the paper-sized four-job shops.
//!
//! [`BatchAnalyzer`] packages the batched evaluation discipline:
//!
//! * scenarios fan out over the persistent worker pool with **chunk-granular
//!   result messages** ([`crate::par::pool_map_stateful`]), so channel
//!   traffic is per-participant, not per-scenario;
//! * each participating thread carries **one private state value** across
//!   all the scenarios it processes ([`BatchAnalyzer::run`]) — typically a
//!   scenario generator plus reusable buffers — while the fixpoint and
//!   holistic drivers transparently reuse their thread-local workspaces
//!   ([`crate::fixpoint`], [`crate::holistic`]), so steady-state scenario
//!   evaluation allocates almost nothing;
//! * results are index-ordered and deterministic: a verdict depends only on
//!   its scenario index, never on which worker ran it or on the states of
//!   scenarios that happened to share its thread.
//!
//! Cross-scenario *seeding* is deliberately **not** attempted: warm-starting
//! scenario `i+1`'s fixpoint from scenario `i`'s converged bounds would be
//! unsound (the soundness arguments in [`crate::fixpoint::LoopSeed`] and
//! [`crate::holistic::HolisticSeed`] are per-system, from-below) and would
//! make results depend on scheduling order. Within one scenario, though,
//! [`BatchAnalyzer::critical_scaling`] drives the whole bisection through a
//! single [`AnalysisSession`], so the ~30 probes per scenario reuse curves,
//! seeds and memoized verdicts exactly like the sequential engine.

use std::sync::Arc;

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::par::pool_map_stateful;
use crate::sensitivity::Oracle;
use crate::session::AnalysisSession;
use rta_model::TaskSystem;

/// Runs ensembles of independent analysis scenarios over the persistent
/// worker pool with per-thread state reuse.
///
/// One analyzer holds the [`AnalysisConfig`] shared by every scenario; the
/// scenario *systems* are supplied per call (owned, or produced on the
/// worker by a generator passed to [`BatchAnalyzer::run`]).
#[derive(Clone, Debug)]
pub struct BatchAnalyzer {
    cfg: AnalysisConfig,
}

impl BatchAnalyzer {
    /// An analyzer applying `cfg` to every scenario.
    pub fn new(cfg: AnalysisConfig) -> BatchAnalyzer {
        BatchAnalyzer { cfg }
    }

    /// The configuration applied to every scenario.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// Evaluate `eval(state, 0), …, eval(state, n-1)` in parallel, where
    /// each participating thread builds `state` once via
    /// `init(&config)` and reuses it for every scenario it claims.
    ///
    /// This is the generic entry point for sweeps whose scenarios are
    /// *generated*, not pre-built — the admission experiments derive job
    /// set `i` from a seed inside `eval`, so no `Vec<TaskSystem>` ever
    /// materializes. Determinism contract: the returned `Vec` is
    /// index-ordered, and results are reproducible iff `eval`'s output
    /// depends on `state` only through value-independent reuse (buffers,
    /// caches), not accumulation — see
    /// [`pool_map_stateful`](crate::par::pool_map_stateful).
    pub fn run<S, T, I, F>(&self, n: usize, init: I, eval: F) -> Vec<T>
    where
        T: Send + 'static,
        I: Fn(&AnalysisConfig) -> S + Send + Sync + 'static,
        F: Fn(&mut S, usize) -> T + Send + Sync + 'static,
    {
        let cfg = self.cfg.clone();
        pool_map_stateful(n, move || init(&cfg), eval)
    }

    /// Schedulability verdict for each system under `oracle`.
    ///
    /// Each scenario is decided by a fresh [`AnalysisSession`] created on
    /// the worker that claims it, so verdicts are bit-identical to calling
    /// [`AnalysisSession::schedulable`] per system sequentially.
    pub fn schedulable(
        &self,
        systems: Vec<TaskSystem>,
        oracle: Oracle,
    ) -> Vec<Result<bool, AnalysisError>> {
        let systems = Arc::new(systems);
        let n = systems.len();
        let cfg = self.cfg.clone();
        pool_map_stateful(
            n,
            || (),
            move |(), i| AnalysisSession::new(systems[i].clone(), cfg.clone()).schedulable(oracle),
        )
    }

    /// The critical execution-time scaling factor of each system (see
    /// [`crate::sensitivity::critical_scaling`]), one bisection per
    /// scenario, each driven by its own warm [`AnalysisSession`].
    pub fn critical_scaling(
        &self,
        systems: Vec<TaskSystem>,
        oracle: Oracle,
        iterations: u32,
    ) -> Vec<Result<Option<f64>, AnalysisError>> {
        let systems = Arc::new(systems);
        let n = systems.len();
        let cfg = self.cfg.clone();
        pool_map_stateful(
            n,
            || (),
            move |(), i| {
                AnalysisSession::new(systems[i].clone(), cfg.clone())
                    .critical_scaling(oracle, iterations)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    /// One SPP processor, one job with C = `exec`, T = D = 100.
    fn sys(exec: i64) -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(100),
                offset: Time::ZERO,
            },
            vec![(p, Time(exec))],
        );
        let mut s = b.build().unwrap();
        assign_priorities(&mut s, PriorityPolicy::DeadlineMonotonic).unwrap();
        s
    }

    #[test]
    fn batched_verdicts_match_sequential_sessions() {
        let execs: Vec<i64> = (1..40).map(|k| k * 5).collect();
        let systems: Vec<TaskSystem> = execs.iter().map(|&e| sys(e)).collect();
        let batch = BatchAnalyzer::new(AnalysisConfig::default());
        let got = batch.schedulable(systems.clone(), Oracle::Exact);
        for (s, r) in systems.into_iter().zip(got) {
            let want = AnalysisSession::new(s.clone(), AnalysisConfig::default())
                .schedulable(Oracle::Exact)
                .unwrap();
            assert_eq!(r.unwrap(), want, "exec {:?}", s.jobs()[0].subjobs[0].exec);
        }
    }

    #[test]
    fn batched_scaling_matches_free_function() {
        let systems: Vec<TaskSystem> = [20, 50, 150].iter().map(|&e| sys(e)).collect();
        let batch = BatchAnalyzer::new(AnalysisConfig::default());
        let got = batch.critical_scaling(systems.clone(), Oracle::Exact, 16);
        for (s, r) in systems.iter().zip(got) {
            let want =
                crate::sensitivity::critical_scaling(s, batch.config(), Oracle::Exact, 16).unwrap();
            assert_eq!(r.unwrap(), want);
        }
    }

    #[test]
    fn generated_scenarios_reuse_thread_state() {
        // Scenario i is "one job with C = i + 1"; the per-thread state is a
        // scratch Vec proving reuse does not leak across scenarios.
        let batch = BatchAnalyzer::new(AnalysisConfig::default());
        let verdicts = batch.run(
            60,
            |cfg| (cfg.clone(), Vec::<u8>::new()),
            |(cfg, buf), i| {
                buf.push(i as u8); // deliberate cross-scenario dirt
                AnalysisSession::new(sys(i as i64 + 1), cfg.clone())
                    .schedulable(Oracle::Exact)
                    .unwrap()
            },
        );
        for (i, v) in verdicts.into_iter().enumerate() {
            assert_eq!(v, i < 100, "scenario {i}");
        }
    }

    #[test]
    fn errors_are_reported_per_scenario() {
        // Exact oracle rejects FCFS processors; only that scenario errors.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(100),
                offset: Time::ZERO,
            },
            vec![(p, Time(10))],
        );
        let fcfs = b.build().unwrap();
        let batch = BatchAnalyzer::new(AnalysisConfig::default());
        let got = batch.schedulable(vec![sys(10), fcfs, sys(20)], Oracle::Exact);
        assert!(got[0].as_ref().is_ok_and(|&v| v));
        assert!(got[1].is_err());
        assert!(got[2].as_ref().is_ok_and(|&v| v));
    }
}

//! Incremental re-analysis sessions.
//!
//! The paper's Section 5 experiments are *sweeps*: `critical_scaling` runs
//! ~30 bisection steps that each re-analyze a system differing only by a
//! uniform execution-time scale, and the admission experiments analyze
//! 1,000 randomly drawn sets per point. A cold call of
//! [`crate::analyze_exact_spp`] rebuilds every curve from scratch, so sweep
//! cost is `runs × full analysis` even though consecutive runs share almost
//! all structure. [`AnalysisSession`] amortizes that cost:
//!
//! * **Dirty-cone invalidation** — the session keeps the per-subjob
//!   arrival/service/departure curves of its last exact analysis. A delta
//!   ([`AnalysisSession::set_priority`], [`AnalysisSession::add_job`],
//!   [`AnalysisSession::remove_job`], [`AnalysisSession::scale_exec`])
//!   marks only the directly-affected subjobs; at the next analysis the
//!   marks are closed over the forward dependency edges
//!   ([`crate::depgraph::DirtyCone`]) and **only the cone recomputes** —
//!   clean subjobs reuse their cached curves verbatim, which is exact
//!   because their inputs are bit-identical.
//! * **Warm-started fixpoints** — the session carries the converged
//!   [`crate::fixpoint::LoopSeed`] / [`crate::holistic::HolisticSeed`]
//!   across runs, and hands them back to the seeded drivers when sound (see
//!   those types for the respective soundness arguments).
//! * **Verdict memoization** — execution times are quantized to ticks, so a
//!   narrowing bisection re-visits *identical* systems once `λ` steps fall
//!   below one tick; schedulability verdicts are cached on the execution
//!   vector (bounded FIFO) and repeated probes cost a hash lookup.
//! * **Interned pattern curves** — hop-0 arrival curves live in a
//!   [`CurveArena`], so jobs sharing a pattern (and repeated re-analyses)
//!   share one structural copy.
//!
//! ## Frames
//!
//! The default ([`AnalysisSession::new`]) resolves the analysis frame
//! `(window, horizon)` from the *current* system on every run, exactly like
//! the free analysis functions — bit-compatible, but execution-time deltas
//! move the horizon and force full recomputes. A pinned session
//! ([`AnalysisSession::pinned`]) resolves the frame once, from the initial
//! system, and reuses it for every run: caches and seeds stay valid across
//! scale deltas. Verdicts under a pinned frame are still sound (an
//! undersized horizon can only leave instances unresolved, which reads as
//! unschedulable), and they are bit-identical to a cold analysis *given the
//! same pinned configuration*.

use std::collections::{HashMap, VecDeque};

use crate::config::AnalysisConfig;
use crate::depgraph::{evaluation_order, DepGraph, DirtyCone, SubjobIndex};
use crate::error::AnalysisError;
use crate::exact::{assemble_exact_report, job_report, require_exact_capable, subjob_node_curves};
use crate::fixpoint::{analyze_with_loops_seeded, LoopSeed};
use crate::holistic::{analyze_holistic_seeded, HolisticSeed};
use crate::report::{BoundsReport, ExactReport, SubjobCurves};
use crate::sensitivity::Oracle;
use rta_curves::{Curve, CurveArena, CurveId, Time};
use rta_model::{ArrivalPattern, Job, JobId, SubjobRef, TaskSystem};

/// Counters describing how much work a session reused vs. recomputed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Analyses run (any oracle), excluding memoized verdicts.
    pub analyses: u64,
    /// Exact-analysis subjob nodes recomputed (inside a dirty cone).
    pub subjobs_recomputed: u64,
    /// Exact-analysis subjob nodes reused verbatim from the cache.
    pub subjobs_reused: u64,
    /// Schedulability verdicts answered from the memo table.
    pub verdict_hits: u64,
    /// Schedulability verdicts that required an analysis.
    pub verdict_misses: u64,
    /// Fixpoint runs that started from a carried seed.
    pub warm_starts: u64,
}

/// Bound on the verdict memo table (FIFO eviction).
const VERDICT_MEMO_CAPACITY: usize = 1024;

type VerdictKey = (u8, u64, Vec<i64>);

/// A stateful re-analysis engine over one evolving [`TaskSystem`].
///
/// See the [module docs](self) for the reuse machinery. The system given at
/// construction also serves as the *scaling base*:
/// Structure-dependent exact-path machinery, rebuilt only when a delta
/// changes what it is derived from (see the field docs on
/// [`AnalysisSession::structure`]).
struct StructureCache {
    idx: SubjobIndex,
    order: Vec<usize>,
    graph: DepGraph,
}

/// [`AnalysisSession::scale_exec`] always scales from it, never
/// cumulatively.
pub struct AnalysisSession {
    base: TaskSystem,
    current: TaskSystem,
    cfg: AnalysisConfig,
    /// Frame fixed at construction (pinned mode); `None` = resolve per run.
    pinned: Option<(Time, Time)>,
    /// Frame of the cached exact curves; a frame change dirties everything.
    cached_frame: Option<(Time, Time)>,
    /// Cached exact curves and direct-dirty marks, rows parallel to jobs.
    curves: Vec<Vec<Option<SubjobCurves>>>,
    dirty: Vec<Vec<bool>>,
    arena: CurveArena,
    /// Interned hop-0 pattern curves keyed by `(job index, window)`.
    pattern_cache: HashMap<(usize, Time), CurveId>,
    /// Subjob index, evaluation order and dependency graph of the exact
    /// path. These depend only on chains, processor assignment and
    /// priorities — never on execution times or arrival patterns — so
    /// exec/arrival deltas keep them; priority and job-set deltas drop
    /// them.
    structure: Option<StructureCache>,
    /// Per-job exact schedulability verdicts, invalidated by the dirty
    /// cone whenever a job's curves are recomputed.
    job_sched: Vec<Option<bool>>,
    loop_seed: Option<LoopSeed>,
    /// Holistic seed plus the execution vector it was computed under (the
    /// from-below gate needs pointwise comparison).
    holistic_seed: Option<(HolisticSeed, Vec<i64>)>,
    verdicts: HashMap<VerdictKey, bool>,
    verdict_order: VecDeque<VerdictKey>,
    stats: SessionStats,
}

impl AnalysisSession {
    /// Open a session that resolves the analysis frame from the current
    /// system on every run — bit-compatible with the free analysis
    /// functions under the same `cfg`.
    pub fn new(sys: TaskSystem, cfg: AnalysisConfig) -> AnalysisSession {
        Self::build(sys, cfg, false)
    }

    /// Open a session whose frame is resolved **once**, from `sys`, and
    /// pinned for every subsequent run, keeping curve caches and fixpoint
    /// seeds valid across execution-time deltas. See the module docs for
    /// the soundness trade.
    pub fn pinned(sys: TaskSystem, cfg: AnalysisConfig) -> AnalysisSession {
        Self::build(sys, cfg, true)
    }

    fn build(sys: TaskSystem, cfg: AnalysisConfig, pin: bool) -> AnalysisSession {
        let pinned = pin.then(|| cfg.resolve(&sys));
        let n_jobs = sys.jobs().len();
        let rows: Vec<Vec<Option<SubjobCurves>>> = sys
            .jobs()
            .iter()
            .map(|j| vec![None; j.subjobs.len()])
            .collect();
        let dirty = sys
            .jobs()
            .iter()
            .map(|j| vec![true; j.subjobs.len()])
            .collect();
        AnalysisSession {
            base: sys.clone(),
            current: sys,
            cfg,
            pinned,
            cached_frame: None,
            curves: rows,
            dirty,
            arena: CurveArena::new(),
            pattern_cache: HashMap::new(),
            structure: None,
            job_sched: vec![None; n_jobs],
            loop_seed: None,
            holistic_seed: None,
            verdicts: HashMap::new(),
            verdict_order: VecDeque::new(),
            stats: SessionStats::default(),
        }
    }

    /// The system in its current (post-delta) state.
    pub fn system(&self) -> &TaskSystem {
        &self.current
    }

    /// The analysis configuration, with the pinned frame applied if any.
    pub fn config(&self) -> AnalysisConfig {
        match self.pinned {
            Some((w, h)) => AnalysisConfig {
                arrival_window: Some(w),
                horizon: Some(h),
                ..self.cfg.clone()
            },
            None => self.cfg.clone(),
        }
    }

    /// Reuse/recompute counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Interning statistics of the session's curve arena.
    pub fn arena_stats(&self) -> rta_curves::intern::ArenaStats {
        self.arena.stats()
    }

    fn frame(&self) -> (Time, Time) {
        self.pinned
            .unwrap_or_else(|| self.cfg.resolve(&self.current))
    }

    fn exec_vector(&self) -> Vec<i64> {
        self.current
            .jobs()
            .iter()
            .flat_map(|j| j.subjobs.iter().map(|s| s.exec.ticks()))
            .collect()
    }

    // ---- deltas ---------------------------------------------------------

    fn mark_all_dirty(&mut self) {
        for row in &mut self.dirty {
            row.iter_mut().for_each(|d| *d = true);
        }
    }

    fn mark_processor_dirty(&mut self, p: rta_model::ProcessorId) {
        for r in self.current.subjobs_on(p) {
            self.dirty[r.job.0][r.index] = true;
        }
    }

    /// Structural deltas invalidate anything keyed on the old structure.
    fn forget_structural_caches(&mut self) {
        self.verdicts.clear();
        self.verdict_order.clear();
        self.loop_seed = None;
        self.holistic_seed = None;
        self.pattern_cache.clear();
    }

    /// Scale every execution time from the **base** system by `factor`
    /// (ceil, at least one tick), in place — no system clone per step.
    /// Every workload curve depends on its execution time, so when any
    /// execution time moves the whole cone is dirty; the cross-run reuse
    /// for that case comes from verdict memoization, carried fixpoint
    /// seeds and interned pattern curves. When quantization maps `factor`
    /// onto the execution vector already in place (re-probing a scale, or
    /// a bisection step below one tick), nothing an analysis depends on
    /// has changed and every cached curve stays clean.
    pub fn scale_exec(&mut self, factor: f64) {
        let before = self.exec_vector();
        self.current.assign_scaled_exec(&self.base, factor);
        if self.exec_vector() != before {
            self.mark_all_dirty();
        }
    }

    /// Set (or clear) one subjob's priority. Dirties every subjob on that
    /// processor (any priority move can reorder its peers' interference
    /// sets); downstream propagation happens at the next analysis.
    pub fn set_priority(&mut self, r: SubjobRef, priority: Option<u32>) {
        self.current.set_priority(r, priority);
        self.mark_processor_dirty(self.current.subjob(r).processor);
        self.structure = None; // priorities shape the interference edges
        self.forget_structural_caches();
    }

    /// Replace one job's arrival pattern (e.g. grow its burst train while
    /// walking a schedulability region). Unlike a priority move, an
    /// arrival delta leaves the dependency graph intact — only the job's
    /// hop-0 envelope changes — so just the job's own subjobs are marked;
    /// the next analysis closes the influence cone over the graph (chain
    /// successors plus every lower-priority peer on the job's processors),
    /// and everything outside it keeps its cached curves. A lowest-priority
    /// burst source therefore invalidates nothing but itself.
    ///
    /// The cache invalidation is similarly narrow: verdict memos are keyed
    /// on execution vectors only, so they must all go, and the carried
    /// fixpoint seeds are dropped conservatively — but pattern curves are
    /// keyed per job, so only the edited job's envelopes are evicted and
    /// every other job's interned envelope survives the delta. This is
    /// what makes an inner burst-axis walk of
    /// [`crate::sensitivity::region::explore_region`] cheap: probe after
    /// probe, the unedited jobs' curves and verdicts are reused verbatim.
    pub fn set_arrival(&mut self, id: JobId, arrival: ArrivalPattern) {
        self.current.set_arrival(id, arrival);
        for d in &mut self.dirty[id.0] {
            *d = true;
        }
        self.verdicts.clear();
        self.verdict_order.clear();
        self.loop_seed = None;
        self.holistic_seed = None;
        self.pattern_cache.retain(|&(job, _), _| job != id.0);
    }

    /// Append a job. Existing jobs keep their ids; subjobs sharing a
    /// processor with the new job are dirtied. The job also joins the
    /// *scaling base* at its given execution times (even if the session is
    /// currently scaled), so later [`AnalysisSession::scale_exec`] calls
    /// treat it like any resident job: `scale_exec(1.0)` restores the exec
    /// it was admitted with.
    pub fn add_job(&mut self, job: Job) -> JobId {
        let procs: Vec<_> = job.subjobs.iter().map(|s| s.processor).collect();
        self.base.push_job(job.clone());
        let id = self.current.push_job(job);
        let hops = self.current.job(id).subjobs.len();
        self.curves.push(vec![None; hops]);
        self.dirty.push(vec![true; hops]);
        self.job_sched.push(None);
        for p in procs {
            self.mark_processor_dirty(p);
        }
        self.structure = None;
        self.forget_structural_caches();
        id
    }

    /// Remove a job; later job ids shift down by one. Subjobs sharing a
    /// processor with the removed job are dirtied. The job leaves the
    /// scaling base too, keeping base and current shape-aligned for
    /// [`AnalysisSession::scale_exec`].
    pub fn remove_job(&mut self, id: JobId) -> Job {
        self.base.remove_job(id);
        let removed = self.current.remove_job(id);
        self.curves.remove(id.0);
        self.dirty.remove(id.0);
        self.job_sched.remove(id.0);
        for s in &removed.subjobs {
            self.mark_processor_dirty(s.processor);
        }
        self.structure = None;
        self.forget_structural_caches();
        removed
    }

    // ---- exact analysis -------------------------------------------------

    /// Hop-0 arrival curve of job `k`, via the interned pattern cache.
    fn pattern_curve(&mut self, k: usize, window: Time) -> Curve {
        if let Some(&id) = self.pattern_cache.get(&(k, window)) {
            return self.arena.get(id).clone();
        }
        let c = self.current.jobs()[k].arrival.arrival_curve(window);
        let id = self.arena.intern_ref(&c);
        self.pattern_cache.insert((k, window), id);
        c
    }

    /// Bring the cached curve set up to date: close the dirty marks over
    /// the dependency graph and recompute exactly the cone. On success the
    /// structure cache is guaranteed present (callers read the index from
    /// it).
    fn refresh_exact_curves(&mut self) -> Result<(Time, Time), AnalysisError> {
        self.current.validate(true)?;
        require_exact_capable(&self.current)?;
        let (window, horizon) = self.frame();
        if self.cached_frame != Some((window, horizon)) {
            self.mark_all_dirty();
            self.cached_frame = Some((window, horizon));
        }
        let sc = match self.structure.take() {
            Some(sc) => sc,
            None => {
                let idx = SubjobIndex::new(&self.current);
                let order = evaluation_order(&self.current, &idx)?;
                let graph = DepGraph::new(&self.current, &idx);
                StructureCache { idx, order, graph }
            }
        };
        let idx = &sc.idx;
        let order = &sc.order;

        let mut cone = DirtyCone::clean(idx.len());
        for (i, &r) in idx.refs().iter().enumerate() {
            if self.dirty[r.job.0][r.index] || self.curves[r.job.0][r.index].is_none() {
                cone.mark(i);
            }
        }
        cone.propagate(&sc.graph);

        // A job whose curves are about to be recomputed loses its cached
        // verdict; everything outside the cone keeps it.
        for (i, &r) in idx.refs().iter().enumerate() {
            if cone.is_dirty(i) {
                self.job_sched[r.job.0] = None;
            }
        }

        // Pre-resolve pattern curves for dirty first hops (needs `&mut
        // self` for the arena, so it happens before the rows are detached).
        let mut hop0: HashMap<usize, Curve> = HashMap::new();
        for (i, &r) in idx.refs().iter().enumerate() {
            if r.index == 0 && cone.is_dirty(i) {
                let c = self.pattern_curve(r.job.0, window);
                hop0.insert(r.job.0, c);
            }
        }

        // Move clean entries into the dense working set; recompute the cone
        // in topological order; move everything back.
        let mut rows = std::mem::take(&mut self.curves);
        let mut dense: Vec<Option<SubjobCurves>> = idx
            .refs()
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if cone.is_dirty(i) {
                    None
                } else {
                    rows[r.job.0][r.index].take()
                }
            })
            .collect();
        let mut result = Ok(());
        for &i in order {
            if !cone.is_dirty(i) {
                self.stats.subjobs_reused += 1;
                continue;
            }
            let r = idx.subjob(i);
            let pattern = (r.index == 0).then(|| hop0.remove(&r.job.0)).flatten();
            match subjob_node_curves(&self.current, idx, i, window, horizon, &dense, pattern) {
                Ok(c) => dense[i] = Some(c),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            self.stats.subjobs_recomputed += 1;
        }
        if result.is_ok() {
            for (i, &r) in idx.refs().iter().enumerate() {
                rows[r.job.0][r.index] = dense[i].take();
                self.dirty[r.job.0][r.index] = false;
            }
        } else {
            // Leave the session fully dirty rather than half-updated.
            self.mark_all_dirty();
            self.job_sched.iter_mut().for_each(|v| *v = None);
        }
        self.curves = rows;
        self.structure = Some(sc);
        result.map(|()| (window, horizon))
    }

    /// Exact Theorem-1 analysis of the current system, recomputing only the
    /// dirty cone. Bit-identical to
    /// [`crate::analyze_exact_spp`]`(self.system(), &self.config())`.
    pub fn analyze_exact(&mut self) -> Result<ExactReport, AnalysisError> {
        let (window, horizon) = self.refresh_exact_curves()?;
        self.stats.analyses += 1;
        let idx = &self.structure.as_ref().expect("refreshed").idx;
        let dense: Vec<SubjobCurves> = idx
            .refs()
            .iter()
            .map(|&r| {
                self.curves[r.job.0][r.index]
                    .clone()
                    .expect("refreshed cache is complete")
            })
            .collect();
        Ok(assemble_exact_report(
            &self.current,
            idx,
            dense,
            window,
            horizon,
        ))
    }

    /// All-jobs verdict of the exact path, with per-job verdicts served
    /// from [`AnalysisSession::job_sched`] when the job's curves were
    /// reused verbatim — response-time extraction runs only for jobs the
    /// dirty cone touched.
    fn exact_all_schedulable(&mut self) -> Result<bool, AnalysisError> {
        self.refresh_exact_curves()?;
        self.stats.analyses += 1;
        let idx = &self.structure.as_ref().expect("refreshed").idx;
        for (k, job) in self.current.jobs().iter().enumerate() {
            let v = match self.job_sched[k] {
                Some(v) => v,
                None => {
                    let job_id = JobId(k);
                    let first = idx.index(SubjobRef {
                        job: job_id,
                        index: 0,
                    });
                    let last = idx.index(SubjobRef {
                        job: job_id,
                        index: job.subjobs.len() - 1,
                    });
                    let fr = idx.subjob(first);
                    let lr = idx.subjob(last);
                    let rep = job_report(
                        job_id,
                        job.deadline,
                        &self.curves[fr.job.0][fr.index]
                            .as_ref()
                            .expect("refreshed")
                            .arrival,
                        &self.curves[lr.job.0][lr.index]
                            .as_ref()
                            .expect("refreshed")
                            .departure,
                    );
                    let v = rep.schedulable();
                    self.job_sched[k] = Some(v);
                    v
                }
            };
            if !v {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ---- seeded fixpoint drivers ---------------------------------------

    /// Loop-tolerant bounds analysis, warm-started from the previous run's
    /// converged bounds when the frame matches. Bit-identical to the cold
    /// [`crate::fixpoint::analyze_with_loops`] under the same configuration
    /// whenever `max_rounds` lets the cold run converge (see that module's
    /// warm-start notes).
    pub fn analyze_with_loops(&mut self, max_rounds: usize) -> Result<BoundsReport, AnalysisError> {
        let cfg = self.config();
        let (window, horizon) = self.frame();
        let n = self.current.all_subjobs().count();
        let seed = self
            .loop_seed
            .take()
            .filter(|s| s.matches(window, horizon, n));
        if seed.is_some() {
            self.stats.warm_starts += 1;
        }
        let (report, next) =
            analyze_with_loops_seeded(&self.current, &cfg, max_rounds, seed.as_ref())?;
        self.stats.analyses += 1;
        self.loop_seed = Some(next);
        Ok(report)
    }

    /// Holistic (SPP/S&L) analysis, warm-started when sound: the carried
    /// seed is used only if every execution time it was computed under is
    /// pointwise ≤ the current one (the from-below precondition of
    /// [`HolisticSeed`]) and the frame matches.
    pub fn analyze_holistic(&mut self) -> Result<BoundsReport, AnalysisError> {
        let cfg = self.config();
        let (window, horizon) = self.frame();
        let exec = self.exec_vector();
        let seed = self.holistic_seed.take().filter(|(s, seed_exec)| {
            s.matches(window, horizon, exec.len())
                && seed_exec.len() == exec.len()
                && seed_exec.iter().zip(&exec).all(|(a, b)| a <= b)
        });
        if seed.is_some() {
            self.stats.warm_starts += 1;
        }
        let (report, next) =
            analyze_holistic_seeded(&self.current, &cfg, seed.as_ref().map(|(s, _)| s))?;
        self.stats.analyses += 1;
        self.holistic_seed = Some((next, exec));
        Ok(report)
    }

    // ---- verdicts and sweeps -------------------------------------------

    fn verdict_key(&self, oracle: Oracle) -> VerdictKey {
        let (tag, param) = match oracle {
            Oracle::Exact => (0u8, 0u64),
            Oracle::Bounds => (1, 0),
            Oracle::Loops { max_rounds } => (2, max_rounds as u64),
        };
        (tag, param, self.exec_vector())
    }

    /// Schedulability of the current system under `oracle`, memoized on the
    /// (quantized) execution vector.
    pub fn schedulable(&mut self, oracle: Oracle) -> Result<bool, AnalysisError> {
        let key = self.verdict_key(oracle);
        if let Some(&v) = self.verdicts.get(&key) {
            self.stats.verdict_hits += 1;
            return Ok(v);
        }
        self.stats.verdict_misses += 1;
        let v = match oracle {
            Oracle::Exact => self.exact_all_schedulable()?,
            Oracle::Bounds => {
                let cfg = self.config();
                self.stats.analyses += 1;
                crate::bounds::analyze_bounds(&self.current, &cfg)?.all_schedulable()
            }
            Oracle::Loops { max_rounds } => self.analyze_with_loops(max_rounds)?.all_schedulable(),
        };
        if self.verdicts.len() >= VERDICT_MEMO_CAPACITY {
            if let Some(old) = self.verdict_order.pop_front() {
                self.verdicts.remove(&old);
            }
        }
        self.verdict_order.push_back(key.clone());
        self.verdicts.insert(key, v);
        Ok(v)
    }

    /// Scale from the base system and decide schedulability in one step.
    pub fn schedulable_at_scale(
        &mut self,
        factor: f64,
        oracle: Oracle,
    ) -> Result<bool, AnalysisError> {
        self.scale_exec(factor);
        self.schedulable(oracle)
    }

    /// The largest execution-time scaling factor (within `[1/64, 64]`, to
    /// `iterations` bisection steps) under which the base system stays
    /// schedulable — the incremental engine behind
    /// [`crate::sensitivity::critical_scaling`]. Returns `None` if the
    /// system is unschedulable even at the lower edge.
    pub fn critical_scaling(
        &mut self,
        oracle: Oracle,
        iterations: u32,
    ) -> Result<Option<f64>, AnalysisError> {
        let (mut lo, mut hi) = (1.0 / 64.0, 64.0);
        if !self.schedulable_at_scale(lo, oracle)? {
            return Ok(None);
        }
        if self.schedulable_at_scale(hi, oracle)? {
            return Ok(Some(hi));
        }
        for _ in 0..iterations {
            let mid = 0.5 * (lo + hi);
            if self.schedulable_at_scale(mid, oracle)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, Subjob, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    /// Two processors, three jobs; T3 only touches P2.
    fn pipeline_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(80),
            periodic(40),
            vec![(p1, Time(4)), (p2, Time(6))],
        );
        b.add_job("T2", Time(90), periodic(45), vec![(p1, Time(5))]);
        b.add_job("T3", Time(120), periodic(60), vec![(p2, Time(7))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        sys
    }

    #[test]
    fn first_analysis_matches_cold_function() {
        let sys = pipeline_system();
        let cfg = AnalysisConfig::default();
        let cold = crate::analyze_exact_spp(&sys, &cfg).unwrap();
        let mut session = AnalysisSession::new(sys, cfg);
        let warm = session.analyze_exact().unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
        assert_eq!(cold.curves.len(), warm.curves.len());
        for (a, b) in cold.curves.iter().zip(warm.curves.iter()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.service, b.service);
            assert_eq!(a.departure, b.departure);
        }
    }

    #[test]
    fn clean_reanalysis_recomputes_nothing() {
        let mut session = AnalysisSession::new(pipeline_system(), AnalysisConfig::default());
        session.analyze_exact().unwrap();
        let before = session.stats();
        session.analyze_exact().unwrap();
        let after = session.stats();
        assert_eq!(after.subjobs_recomputed, before.subjobs_recomputed);
        assert_eq!(
            after.subjobs_reused,
            before.subjobs_reused + 4,
            "all four subjobs reused"
        );
    }

    #[test]
    fn priority_delta_recomputes_only_the_cone() {
        let sys = pipeline_system();
        let cfg = AnalysisConfig::default();
        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        session.analyze_exact().unwrap();

        // Swap priorities on P1 (T1 hop 0 and T2). T3 lives on P2 and is
        // downstream of nothing on P1 except through T1's chain.
        let t1h0 = SubjobRef {
            job: JobId(0),
            index: 0,
        };
        let t2h0 = SubjobRef {
            job: JobId(1),
            index: 0,
        };
        let (a, b) = (
            sys.subjob(t1h0).priority.unwrap(),
            sys.subjob(t2h0).priority.unwrap(),
        );
        session.set_priority(t1h0, Some(b));
        session.set_priority(t2h0, Some(a));
        let before = session.stats();
        let warm = session.analyze_exact().unwrap();
        let after = session.stats();

        // Cold oracle on the mutated system.
        let mut cold_sys = sys.clone();
        cold_sys.set_priority(t1h0, Some(b));
        cold_sys.set_priority(t2h0, Some(a));
        let cold = crate::analyze_exact_spp(&cold_sys, &cfg).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
        for (x, y) in cold.curves.iter().zip(warm.curves.iter()) {
            assert_eq!(x.departure, y.departure);
        }

        // The cone is P1's two subjobs plus T1's downstream hop on P2, plus
        // T3 (lower priority than T1 hop 1 on P2): at least T2 alone...
        // here the only subjob that can stay clean is none-or-T3 depending
        // on priorities; assert we did *not* recompute everything while
        // recomputing at least the two P1 subjobs.
        let recomputed = after.subjobs_recomputed - before.subjobs_recomputed;
        assert!(recomputed >= 2, "P1 subjobs must recompute: {recomputed}");
        assert!(
            recomputed <= 4,
            "cone must not exceed the system: {recomputed}"
        );
    }

    #[test]
    fn add_and_remove_job_stay_bit_identical() {
        let sys = pipeline_system();
        let cfg = AnalysisConfig::default();
        let mut session = AnalysisSession::new(sys.clone(), cfg.clone());
        session.analyze_exact().unwrap();

        // Add a low-priority job on P1.
        let new_job = Job {
            name: "T4".into(),
            deadline: Time(200),
            arrival: periodic(100),
            subjobs: vec![Subjob {
                processor: rta_model::ProcessorId(0),
                exec: Time(3),
                priority: Some(99),
                weight: None,
            }],
        };
        let id = session.add_job(new_job.clone());
        let warm = session.analyze_exact().unwrap();
        let mut cold_sys = sys.clone();
        cold_sys.push_job(new_job);
        let cold = crate::analyze_exact_spp(&cold_sys, &cfg).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));

        // Remove it again: back to the original system's results.
        session.remove_job(id);
        let warm = session.analyze_exact().unwrap();
        let cold = crate::analyze_exact_spp(&sys, &cfg).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
    }

    #[test]
    fn verdict_memo_hits_on_repeated_scales() {
        let mut session = AnalysisSession::new(pipeline_system(), AnalysisConfig::default());
        assert!(session.schedulable_at_scale(1.0, Oracle::Exact).unwrap());
        let s1 = session.stats();
        // Identical quantized system: ceil(exec × 0.9999999) == exec.
        assert!(session
            .schedulable_at_scale(0.9999999, Oracle::Exact)
            .unwrap());
        let s2 = session.stats();
        assert_eq!(s2.verdict_hits, s1.verdict_hits + 1);
        assert_eq!(s2.analyses, s1.analyses);
    }

    #[test]
    fn session_critical_scaling_matches_free_function() {
        let sys = pipeline_system();
        let cfg = AnalysisConfig::default();
        let free = crate::sensitivity::critical_scaling(&sys, &cfg, Oracle::Exact, 16)
            .unwrap()
            .unwrap();
        let mut session = AnalysisSession::new(sys, cfg);
        let via_session = session
            .critical_scaling(Oracle::Exact, 16)
            .unwrap()
            .unwrap();
        assert_eq!(free, via_session);
        assert!(session.stats().verdict_hits > 0, "bisection must re-visit");
    }

    #[test]
    fn pinned_frame_keeps_loop_seeds_warm() {
        let sys = pipeline_system();
        let mut session = AnalysisSession::pinned(sys, AnalysisConfig::default());
        let oracle = Oracle::Loops { max_rounds: 8 };
        session.schedulable_at_scale(1.0, oracle).unwrap();
        session.schedulable_at_scale(1.05, oracle).unwrap();
        assert!(
            session.stats().warm_starts >= 1,
            "second probe must warm-start: {:?}",
            session.stats()
        );
    }

    #[test]
    fn pattern_curves_are_interned_once() {
        let mut session = AnalysisSession::pinned(pipeline_system(), AnalysisConfig::default());
        session.analyze_exact().unwrap();
        let after_first = session.arena_stats().curves;
        // Scale delta dirties everything, but the pattern curves are
        // window-keyed and survive; re-interning must not grow the arena.
        session.scale_exec(1.5);
        session.analyze_exact().unwrap();
        assert_eq!(session.arena_stats().curves, after_first);
    }
}

//! Analysis configuration.

use rta_curves::Time;
use rta_model::TaskSystem;

/// Which availability recursion the SPNP lower bound (Theorem 5) uses.
///
/// Equation 17 as printed subtracts the higher-priority subjobs' *lower*
/// service bounds from the availability `B(t)`; the symmetric, manifestly
/// conservative reading subtracts their *upper* bounds. Both are provided —
/// the discrete-event simulator in `rta-sim` validates that the configured
/// variant brackets observed behaviour, and `rta-bench` ships an ablation
/// comparing their tightness.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SpnpAvailability {
    /// Equation 17 verbatim: `B̲(t) = t − b − Σ_hp S̲_h(t)`.
    AsPrinted,
    /// Conservative variant: `B̲(t) = t − b − Σ_hp S̄_h(t)` (and the upper
    /// bound's availability keeps Eq. 19's `Σ S̲_h`).
    #[default]
    Conservative,
}

/// Horizon and variant knobs shared by all analyses.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisConfig {
    /// Arrival-window span in multiples of the longest nominal period, used
    /// when [`AnalysisConfig::arrival_window`] is `None`.
    pub window_cycles: i64,
    /// Explicit arrival window (instances released in `[0, window]` are
    /// analyzed). Overrides `window_cycles`.
    pub arrival_window: Option<Time>,
    /// Explicit analysis horizon. Defaults to
    /// `window + max deadline + Σ exec` (see `rta_model::horizon`).
    pub horizon: Option<Time>,
    /// SPNP availability recursion variant.
    pub spnp_availability: SpnpAvailability,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            window_cycles: rta_model::horizon::DEFAULT_WINDOW_CYCLES,
            arrival_window: None,
            horizon: None,
            spnp_availability: SpnpAvailability::default(),
        }
    }
}

impl AnalysisConfig {
    /// Resolve the `(arrival window, analysis horizon)` pair for a system.
    pub fn resolve(&self, sys: &TaskSystem) -> (Time, Time) {
        let window = self
            .arrival_window
            .unwrap_or_else(|| rta_model::horizon::default_arrival_window(sys, self.window_cycles));
        let horizon = self
            .horizon
            .unwrap_or_else(|| rta_model::horizon::analysis_horizon(sys, window));
        (window, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    #[test]
    fn resolves_defaults_and_overrides() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Periodic {
                period: Time(20),
                offset: Time::ZERO,
            },
            vec![(p, Time(2))],
        );
        let sys = b.build().unwrap();
        let (w, h) = AnalysisConfig::default().resolve(&sys);
        assert_eq!(w, Time(80));
        assert_eq!(h, Time(80 + 10 + 2));

        let cfg = AnalysisConfig {
            arrival_window: Some(Time(100)),
            horizon: Some(Time(500)),
            ..Default::default()
        };
        assert_eq!(cfg.resolve(&sys), (Time(100), Time(500)));
    }
}

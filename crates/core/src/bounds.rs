//! Approximate end-to-end analysis for heterogeneous systems
//! (Section 4.2: Theorem 4, Lemmas 1 and 2).
//!
//! For schedulers whose exact service functions are out of reach (SPNP,
//! FCFS — and SPP hops inside such systems), the analysis propagates
//! *bounds*: an upper-bounded arrival function into each hop, a service
//! bound pair at the hop, a lower-bounded departure function out of it
//! (Lemma 1), and the next hop's upper-bounded arrival function (Lemma 2).
//! The per-hop worst-case delay is the horizontal deviation of Equation 12,
//!
//! ```text
//! d_{k,j} = max_m ( f̲⁻¹_{k,j,dep}(m) − f̄⁻¹_{k,j,arr}(m) )
//! ```
//!
//! and the end-to-end bound is their sum (Equation 11). The bound is
//! *envelope-relative*: each hop is charged as if its arrivals were the
//! earliest the envelope admits, which dominates every conforming trace —
//! the classical network-calculus delay argument (Cruz).

use crate::config::AnalysisConfig;
use crate::depgraph::{evaluation_order, SubjobIndex};
use crate::error::AnalysisError;
use crate::policy::{policy_for, BoundsInputs, PeerInputs, ProcessorContexts};
use crate::report::{BoundsReport, JobBound};
use crate::spnp::ServiceBounds;
use rta_curves::{Curve, CurveCursor, SoaCursor, SoaCurve, Time};
use rta_model::{JobId, SubjobRef, TaskSystem};

/// The per-hop worst-case delay of Equation 12: the maximal horizontal
/// deviation `max_m ( f̲⁻¹_dep(m) − f̄⁻¹_arr(m) )` over the first
/// `n_instances` instances, or `None` if any instance is unresolved within
/// the horizon. The sweep is cursor-based: amortized O(1) per instance.
pub(crate) fn hop_delay(arr_env: &Curve, dep_lower: &Curve, n_instances: i64) -> Option<Time> {
    let mut arr_cur = CurveCursor::new(arr_env);
    let mut dep_cur = CurveCursor::new(dep_lower);
    let mut d = Time::ZERO;
    for m in 1..=n_instances {
        let early = arr_cur.inverse_at(m)?;
        let late = dep_cur.inverse_at(m)?;
        d = d.max(late - early);
    }
    Some(d)
}

/// [`hop_delay`] with the departure bound in structure-of-arrays form, so
/// the fixpoint driver's Eq. 12 sweep reads the `floor_div` result
/// straight out of its workspace SoA buffer without converting back.
/// [`SoaCursor`] is pinned step-identical to [`CurveCursor`], so both
/// sweeps resolve the same instants.
pub(crate) fn hop_delay_soa(
    arr_env: &Curve,
    dep_lower: &SoaCurve,
    n_instances: i64,
) -> Option<Time> {
    let mut arr_cur = CurveCursor::new(arr_env);
    let mut dep_cur = SoaCursor::new(dep_lower);
    let mut d = Time::ZERO;
    for m in 1..=n_instances {
        let early = arr_cur.inverse_at(m)?;
        let late = dep_cur.inverse_at(m)?;
        d = d.max(late - early);
    }
    Some(d)
}

struct NodeData {
    arr_env: Curve,
    bounds: ServiceBounds,
    dep_lower: Curve,
    arr_next: Curve,
}

/// Run the node-computation pass shared by [`analyze_bounds`] and the
/// network-calculus composition ([`crate::nc`]): per-subjob arrival
/// envelopes and service bounds in `SubjobIndex` order.
fn compute_nodes(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    idx: &SubjobIndex,
) -> Result<Vec<NodeData>, AnalysisError> {
    let (window, horizon) = cfg.resolve(sys);
    let order = evaluation_order(sys, idx)?;

    let mut nodes: Vec<Option<NodeData>> = Vec::with_capacity(idx.len());
    nodes.resize_with(idx.len(), || None);
    let mut ctxs = ProcessorContexts::new();

    // Arrival envelope of a subjob whose predecessor (if any) has been
    // processed.
    let arr_env_of = |nodes: &[Option<NodeData>], r: SubjobRef| -> Curve {
        if r.index == 0 {
            sys.job(r.job).arrival.arrival_curve(window)
        } else {
            let pred = SubjobRef {
                job: r.job,
                index: r.index - 1,
            };
            nodes[idx.index(pred)]
                .as_ref()
                .expect("dependency order")
                .arr_next
                .clone()
        }
    };

    for i in order {
        let r = idx.subjob(i);
        let subjob = sys.subjob(r);
        let tau = subjob.exec;
        let arr_env = arr_env_of(&nodes, r);
        let workload = arr_env.scale(tau.ticks());

        let policy = policy_for(sys.processor(subjob.processor).scheduler);

        let (hp_lower, hp_upper): (Vec<&Curve>, Vec<&Curve>) = match policy.peer_inputs() {
            PeerInputs::HigherPriorityServices => {
                let hp = sys.higher_priority_peers(r);
                (
                    hp.iter()
                        .map(|h| &nodes[idx.index(*h)].as_ref().expect("order").bounds.lower)
                        .collect(),
                    hp.iter()
                        .map(|h| &nodes[idx.index(*h)].as_ref().expect("order").bounds.upper)
                        .collect(),
                )
            }
            PeerInputs::SharedWorkloads => {
                let mut workload_of =
                    |o: SubjobRef| arr_env_of(&nodes, o).scale(sys.subjob(o).exec.ticks());
                ctxs.ensure(sys, subjob.processor, horizon, &mut workload_of)?;
                (Vec::new(), Vec::new())
            }
        };
        let bounds = policy.service_bounds(&BoundsInputs {
            workload: &workload,
            tau,
            weight: subjob.weight(),
            blocking: policy.blocking(sys, r),
            hp_lower: &hp_lower,
            hp_upper: &hp_upper,
            variant: cfg.spnp_availability,
            ctx: ctxs.get(subjob.processor),
            horizon,
            processor: subjob.processor,
        })?;

        let dep_lower = bounds.lower.floor_div(tau.ticks(), horizon)?;
        let arr_next = bounds.upper.floor_div(tau.ticks(), horizon)?;
        nodes[i] = Some(NodeData {
            arr_env,
            bounds,
            dep_lower,
            arr_next,
        });
    }
    Ok(nodes
        .into_iter()
        .map(|n| n.expect("all computed"))
        .collect())
}

/// Per-subjob lower service bounds in `SubjobIndex` order — consumed by
/// the network-calculus composition in [`crate::nc`].
pub(crate) fn lower_service_curves(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
) -> Result<Vec<Curve>, AnalysisError> {
    sys.validate(true)?;
    let idx = SubjobIndex::new(sys);
    let nodes = compute_nodes(sys, cfg, &idx)?;
    Ok(nodes.into_iter().map(|n| n.bounds.lower).collect())
}

/// Run the approximate (bounds) analysis on a system whose processors may
/// mix SPP, SPNP and FCFS scheduling.
pub fn analyze_bounds(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
) -> Result<BoundsReport, AnalysisError> {
    sys.validate(true)?;
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);
    let nodes = compute_nodes(sys, cfg, &idx)?;

    // Equations 11 and 12 per job.
    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let job_id = JobId(k);
        let n_instances = job.arrival.release_times(window).len() as i64;
        let mut hop_delays = Vec::with_capacity(job.subjobs.len());
        for j in 0..job.subjobs.len() {
            let node = &nodes[idx.index(SubjobRef {
                job: job_id,
                index: j,
            })];
            hop_delays.push(hop_delay(&node.arr_env, &node.dep_lower, n_instances));
        }
        let e2e_bound = hop_delays
            .iter()
            .try_fold(Time::ZERO, |acc, d| d.map(|d| acc + d));
        jobs.push(JobBound {
            job: job_id,
            hop_delays,
            e2e_bound,
            deadline: job.deadline,
        });
    }

    Ok(BoundsReport {
        window,
        horizon,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::analyze_exact_spp;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    #[test]
    fn single_hop_spp_bound_matches_exact() {
        // On one processor with exact (first-hop) arrivals the bounds method
        // degenerates to the exact service functions.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(5), periodic(5), vec![(p, Time(2))]);
        b.add_job("T2", Time(10), periodic(10), vec![(p, Time(3))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let exact = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            assert!(bound.jobs[k].e2e_bound.unwrap() >= exact.jobs[k].wcrt.unwrap());
        }
        assert_eq!(bound.jobs[0].e2e_bound, Some(Time(2)));
        assert_eq!(bound.jobs[1].e2e_bound, Some(Time(5)));
    }

    #[test]
    fn multi_hop_bound_dominates_exact() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            periodic(20),
            vec![(p1, Time(2)), (p2, Time(4))],
        );
        b.add_job(
            "T2",
            Time(100),
            periodic(25),
            vec![(p2, Time(3)), (p1, Time(5))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let exact = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            let e = exact.jobs[k].wcrt.unwrap();
            let ub = bound.jobs[k].e2e_bound.unwrap();
            assert!(ub >= e, "job {k}: bound {ub:?} < exact {e:?}");
        }
    }

    #[test]
    fn spnp_blocking_inflates_bound() {
        // T1 (high prio, τ=2) can be blocked by T2 (τ=9) under SPNP.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        b.add_job("T1", Time(20), periodic(20), vec![(p, Time(2))]);
        b.add_job("T2", Time(40), periodic(40), vec![(p, Time(9))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        // T1's hop delay includes the 9-tick blocking: ≥ 11.
        assert!(bound.jobs[0].e2e_bound.unwrap() >= Time(11));
    }

    #[test]
    fn fcfs_two_flows() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job("T1", Time(30), periodic(20), vec![(p, Time(4))]);
        b.add_job("T2", Time(30), periodic(20), vec![(p, Time(5))]);
        let sys = b.build().unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        // Simultaneous release: either can wait for the other ⇒ both hop
        // delays ≥ 9 (= 4 + 5), and both bounded within 30.
        for k in 0..2 {
            let d = bound.jobs[k].e2e_bound.unwrap();
            assert!(d >= Time(9), "job {k}: {d:?}");
            assert!(bound.jobs[k].schedulable());
        }
    }

    #[test]
    fn iwrr_two_flows_bounded_without_driver_edits() {
        // IWRR reaches the bounds driver purely through the policy seam:
        // no scheduler-specific code exists in this module.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Iwrr);
        let t1 = b.add_job("T1", Time(60), periodic(20), vec![(p, Time(4))]);
        b.add_job("T2", Time(60), periodic(20), vec![(p, Time(5))]);
        b.set_weight(rta_model::SubjobRef { job: t1, index: 0 }, 2);
        let sys = b.build().unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            let d = bound.jobs[k].e2e_bound.unwrap();
            // A round is L = 2·4 + 1·5 = 13 ticks; service certainly
            // arrives within two rounds plus the instance itself.
            assert!(
                d >= sys
                    .subjob(SubjobRef {
                        job: JobId(k),
                        index: 0
                    })
                    .exec
            );
            assert!(bound.jobs[k].schedulable(), "job {k}: {d:?}");
        }
    }

    #[test]
    fn heterogeneous_pipeline() {
        // SPP → SPNP → FCFS chain plus a competing local job on each hop.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spnp);
        let p3 = b.add_processor("P3", SchedulerKind::Fcfs);
        b.add_job(
            "T1",
            Time(200),
            periodic(40),
            vec![(p1, Time(4)), (p2, Time(5)), (p3, Time(6))],
        );
        b.add_job("T2", Time(200), periodic(50), vec![(p1, Time(3))]);
        b.add_job("T3", Time(200), periodic(60), vec![(p2, Time(7))]);
        b.add_job("T4", Time(200), periodic(70), vec![(p3, Time(8))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        let j = &bound.jobs[0];
        assert_eq!(j.hop_delays.len(), 3);
        assert!(j.hop_delays.iter().all(Option::is_some));
        // Each hop costs at least its own execution time.
        assert!(j.hop_delays[0].unwrap() >= Time(4));
        assert!(j.hop_delays[1].unwrap() >= Time(5));
        assert!(j.hop_delays[2].unwrap() >= Time(6));
        assert!(j.e2e_bound.unwrap() >= Time(15));
    }

    #[test]
    fn overload_yields_unbounded_hop() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(10), periodic(10), vec![(p, Time(7))]);
        b.add_job("T2", Time(10), periodic(10), vec![(p, Time(7))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let bound = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        assert!(!bound.all_schedulable());
    }

    #[test]
    fn variant_choice_is_respected() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        b.add_job("T1", Time(60), periodic(15), vec![(p, Time(3))]);
        b.add_job("T2", Time(60), periodic(20), vec![(p, Time(4))]);
        b.add_job("T3", Time(60), periodic(30), vec![(p, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let printed = analyze_bounds(
            &sys,
            &AnalysisConfig {
                spnp_availability: crate::SpnpAvailability::AsPrinted,
                ..Default::default()
            },
        )
        .unwrap();
        let conserv = analyze_bounds(
            &sys,
            &AnalysisConfig {
                spnp_availability: crate::SpnpAvailability::Conservative,
                ..Default::default()
            },
        )
        .unwrap();
        // The printed variant assumes less interference ⇒ bounds no larger.
        for k in 0..3 {
            let (a, b) = (
                printed.jobs[k].e2e_bound.unwrap(),
                conserv.jobs[k].e2e_bound.unwrap(),
            );
            assert!(a <= b, "job {k}: printed {a:?} > conservative {b:?}");
        }
    }
}

//! Streaming statistics for worst-case deadline-failure probability
//! (WCDFP) estimation.
//!
//! The Monte-Carlo runner in `rta-sim` folds every draw into the
//! [`WcdfpAccum`] defined here: per-job miss **counters** (never stored
//! draws), optional antithetic-pair and per-stratum counters for variance
//! reduction, and P² quantile sketches of the response-time distribution.
//! Everything a verdict depends on — the point estimate and its confidence
//! interval — is derived from the integer counters alone, so accumulators
//! merged across worker threads are *bit-identical* to a sequential fold
//! over the same draws regardless of how the draws were partitioned
//! (integer addition is commutative and associative). Only the P² sketches
//! are partition-dependent (their merge is a count-weighted marker
//! average, documented approximate) and they feed diagnostics, never
//! verdicts or wire responses.
//!
//! Interval machinery: the Wilson score interval (cheap, good coverage for
//! mid-range `p`), the exact Clopper–Pearson interval (used near the
//! boundaries and as the conservative fallback of the variance-reduction
//! modes), the inverse normal CDF (Acklam's rational approximation), and
//! the regularized incomplete beta function (Lentz continued fraction)
//! inverted by bisection. No tables, no external crates.

/// How draws were generated, which decides how counters turn into a
/// confidence interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Independent draws; binomial interval on the miss counter.
    Plain,
    /// Draws come in antithetic pairs (`2k` draws = `k` pairs); the
    /// interval is a normal approximation over the pair means, which are
    /// negatively correlated when the miss indicator responds
    /// monotonically to the underlying uniforms.
    Antithetic,
    /// The first uniform of draw `i` is confined to stratum `i mod K` of
    /// `[0, 1)`; the interval is the stratified-sampling normal
    /// approximation over per-stratum miss rates.
    Stratified(u32),
}

/// Which binomial interval to use for [`Mode::Plain`] estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CiMethod {
    /// Wilson score interval.
    Wilson,
    /// Exact (conservative) Clopper–Pearson interval.
    ClopperPearson,
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error below `1.2e-9` over the open unit interval).
///
/// # Panics
/// Panics when `p` is outside `(0, 1)`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_norm_cdf domain is (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Wilson score interval for `k` successes in `n` Bernoulli trials at the
/// given two-sided confidence level. `n == 0` yields the vacuous `[0, 1]`.
pub fn wilson(k: u64, n: u64, confidence: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = inv_norm_cdf(1.0 - (1.0 - confidence) / 2.0);
    let nf = n as f64;
    let p = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Natural log of the gamma function (Lanczos, g = 7, 9 terms).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0);
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Continued fraction for the incomplete beta function (Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3.0e-16;
    const FPMIN: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
fn betai(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let bt = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

/// Inverse of `I_x(a, b)` in `x` by bisection (monotone, 80 halvings).
fn betai_inv(p: f64, a: f64, b: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if betai(a, b, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Exact Clopper–Pearson interval for `k` successes in `n` trials at the
/// given two-sided confidence level. `n == 0` yields `[0, 1]`.
pub fn clopper_pearson(k: u64, n: u64, confidence: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let alpha = 1.0 - confidence;
    let (kf, nf) = (k as f64, n as f64);
    let lo = if k == 0 {
        0.0
    } else {
        betai_inv(alpha / 2.0, kf, nf - kf + 1.0)
    };
    let hi = if k == n {
        1.0
    } else {
        betai_inv(1.0 - alpha / 2.0, kf + 1.0, nf - kf)
    };
    (lo, hi)
}

/// Streaming quantile sketch (Jain & Chlamtac's P² algorithm): O(1) state,
/// one pass, no stored samples. Exact for the first five observations,
/// then a piecewise-parabolic marker approximation.
#[derive(Clone, Debug, PartialEq)]
pub struct P2Sketch {
    q: f64,
    count: u64,
    /// Marker heights (sorted observations until five are seen).
    heights: [f64; 5],
    /// Actual marker positions (1-based).
    pos: [f64; 5],
    /// Desired marker positions.
    want: [f64; 5],
    /// Desired-position increments per observation.
    incr: [f64; 5],
}

impl P2Sketch {
    /// A sketch tracking the `q`-quantile (`0 < q < 1`).
    pub fn new(q: f64) -> P2Sketch {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Sketch {
            q,
            count: 0,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            incr: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// The tracked quantile parameter.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Exact phase: keep the first five observations sorted.
            let mut i = self.count as usize;
            self.heights[i] = x;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            self.count += 1;
            return;
        }
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (1..4).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };
        for i in (k + 1)..5 {
            self.pos[i] += 1.0;
        }
        // `want[0]` has a zero increment and `want[4]`'s value is never
        // read by the adjustment below, so only the interior markers move.
        for i in 1..4 {
            self.want[i] += self.incr[i];
        }
        self.count += 1;
        for i in 1..4 {
            let d = self.want[i] - self.pos[i];
            // Test the drift before touching the neighbor gaps: markers
            // adjust rarely, and the early exit skips two loads and
            // subtractions per marker on the no-op path.
            if -1.0 < d && d < 1.0 {
                continue;
            }
            let up = self.pos[i + 1] - self.pos[i];
            let down = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && up > 1.0) || (d <= -1.0 && down < -1.0) {
                let s = d.signum();
                let parabolic = self.heights[i]
                    + s / (self.pos[i + 1] - self.pos[i - 1])
                        * ((self.pos[i] - self.pos[i - 1] + s)
                            * (self.heights[i + 1] - self.heights[i])
                            / up
                            + (self.pos[i + 1] - self.pos[i] - s)
                                * (self.heights[i] - self.heights[i - 1])
                                / -down);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        // Linear fallback toward the neighbor in direction s.
                        let j = if s > 0.0 { i + 1 } else { i - 1 };
                        self.heights[i]
                            + s * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
                    };
                self.pos[i] += s;
            }
        }
    }

    /// The current quantile estimate; `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            // Nearest-rank over the exact sorted prefix.
            let n = self.count as usize;
            let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
            return Some(self.heights[rank - 1]);
        }
        Some(self.heights[2])
    }

    /// Merge another sketch tracking the same quantile.
    ///
    /// The merge is **approximate**: once both sides left the exact phase,
    /// marker heights combine as count-weighted averages (positions add).
    /// The result therefore depends on how observations were partitioned —
    /// sketches are diagnostics, never part of pinned or wire output.
    pub fn merge(&mut self, other: &P2Sketch) {
        debug_assert_eq!(self.q, other.q, "merging sketches of different quantiles");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.count < 5 {
            for i in 0..other.count as usize {
                let h = other.heights[i];
                self.observe(h);
            }
            return;
        }
        if self.count < 5 {
            let mut merged = other.clone();
            for i in 0..self.count as usize {
                let h = self.heights[i];
                merged.observe(h);
            }
            *self = merged;
            return;
        }
        let (w1, w2) = (self.count as f64, other.count as f64);
        for i in 0..5 {
            self.heights[i] = (self.heights[i] * w1 + other.heights[i] * w2) / (w1 + w2);
            self.pos[i] += other.pos[i];
            self.want[i] += other.want[i];
        }
        self.count += other.count;
    }
}

/// Per-job streaming counters.
#[derive(Clone, Debug, PartialEq)]
pub struct JobAccum {
    /// Draws in which at least one instance of the job missed its deadline.
    pub misses: u64,
    /// Draws in which some instance was censored by the horizon (release +
    /// deadline past the horizon, outcome unknown) and no other instance
    /// missed. Always 0 under the default analysis horizon.
    pub censored: u64,
    /// Antithetic pairs in which both draws missed.
    pub pair_both: u64,
    /// Antithetic pairs in which exactly one draw missed.
    pub pair_mixed: u64,
    /// Per-stratum miss counts (empty unless [`Mode::Stratified`]).
    pub strat_misses: Vec<u64>,
    /// Completed instances whose response fed the sketches.
    pub completed: u64,
    /// Largest observed end-to-end response (ticks), 0 before any.
    pub max_response: f64,
    /// Median response-time sketch.
    pub p50: P2Sketch,
    /// Tail (99th percentile) response-time sketch.
    pub p99: P2Sketch,
}

impl JobAccum {
    fn new(strata: usize) -> JobAccum {
        JobAccum {
            misses: 0,
            censored: 0,
            pair_both: 0,
            pair_mixed: 0,
            strat_misses: vec![0; strata],
            completed: 0,
            max_response: 0.0,
            p50: P2Sketch::new(0.5),
            p99: P2Sketch::new(0.99),
        }
    }

    fn merge(&mut self, other: &JobAccum) {
        self.misses += other.misses;
        self.censored += other.censored;
        self.pair_both += other.pair_both;
        self.pair_mixed += other.pair_mixed;
        debug_assert_eq!(self.strat_misses.len(), other.strat_misses.len());
        for (a, b) in self.strat_misses.iter_mut().zip(&other.strat_misses) {
            *a += b;
        }
        self.completed += other.completed;
        self.max_response = self.max_response.max(other.max_response);
        self.p50.merge(&other.p50);
        self.p99.merge(&other.p99);
    }
}

/// The point estimate and confidence interval of one job's WCDFP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobEstimate {
    /// Point estimate of the deadline-failure probability.
    pub p: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Miss count behind the estimate.
    pub misses: u64,
    /// Draw count behind the estimate.
    pub draws: u64,
}

impl JobEstimate {
    /// Half the interval width — the quantity the stopping rule tests.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Mergeable accumulator of a whole WCDFP run: global draw counters plus
/// one [`JobAccum`] per job.
#[derive(Clone, Debug, PartialEq)]
pub struct WcdfpAccum {
    /// Sampling mode the counters were produced under.
    pub mode: Mode,
    /// Total draws folded (each antithetic pair contributes two).
    pub draws: u64,
    /// Per-stratum draw counts (empty unless [`Mode::Stratified`]).
    pub strat_draws: Vec<u64>,
    /// Per-job counters.
    pub jobs: Vec<JobAccum>,
}

impl WcdfpAccum {
    /// A fresh accumulator for `n_jobs` jobs under `mode`.
    pub fn new(mode: Mode, n_jobs: usize) -> WcdfpAccum {
        let strata = match mode {
            Mode::Stratified(k) => k as usize,
            _ => 0,
        };
        WcdfpAccum {
            mode,
            draws: 0,
            strat_draws: vec![0; strata],
            jobs: (0..n_jobs).map(|_| JobAccum::new(strata)).collect(),
        }
    }

    /// Fold another accumulator of the same shape into this one. All
    /// verdict-bearing fields are integers, so merging is exact and
    /// order-independent; only the sketches are approximate.
    pub fn merge(&mut self, other: &WcdfpAccum) {
        assert_eq!(
            self.mode, other.mode,
            "merging accumulators of different modes"
        );
        assert_eq!(self.jobs.len(), other.jobs.len(), "job count mismatch");
        self.draws += other.draws;
        for (a, b) in self.strat_draws.iter_mut().zip(&other.strat_draws) {
            *a += b;
        }
        for (a, b) in self.jobs.iter_mut().zip(&other.jobs) {
            a.merge(b);
        }
    }

    /// Fold one independent draw: per-job miss/censor flags, plus the
    /// stratum it was drawn from under [`Mode::Stratified`].
    pub fn record_draw(&mut self, missed: &[bool], censored: &[bool], stratum: Option<u32>) {
        debug_assert_eq!(missed.len(), self.jobs.len());
        self.draws += 1;
        if let Some(s) = stratum {
            self.strat_draws[s as usize] += 1;
        }
        for (k, job) in self.jobs.iter_mut().enumerate() {
            if missed[k] {
                job.misses += 1;
                if let Some(s) = stratum {
                    job.strat_misses[s as usize] += 1;
                }
            } else if censored[k] {
                job.censored += 1;
            }
        }
    }

    /// Fold one antithetic pair (draw A and its antithetic mirror B).
    pub fn record_pair(
        &mut self,
        missed_a: &[bool],
        censored_a: &[bool],
        missed_b: &[bool],
        censored_b: &[bool],
    ) {
        debug_assert_eq!(missed_a.len(), self.jobs.len());
        debug_assert_eq!(missed_b.len(), self.jobs.len());
        self.draws += 2;
        for (k, job) in self.jobs.iter_mut().enumerate() {
            match (missed_a[k], missed_b[k]) {
                (true, true) => {
                    job.misses += 2;
                    job.pair_both += 1;
                }
                (true, false) | (false, true) => {
                    job.misses += 1;
                    job.pair_mixed += 1;
                }
                (false, false) => {}
            }
            if !missed_a[k] && censored_a[k] {
                job.censored += 1;
            }
            if !missed_b[k] && censored_b[k] {
                job.censored += 1;
            }
        }
    }

    /// Fold one completed instance's end-to-end response time (ticks).
    pub fn record_response(&mut self, job: usize, response: f64) {
        let j = &mut self.jobs[job];
        j.completed += 1;
        if response > j.max_response {
            j.max_response = response;
        }
        j.p50.observe(response);
        j.p99.observe(response);
    }

    /// Per-job estimates at the given confidence level. `method` selects
    /// the binomial interval used by [`Mode::Plain`] (and as the fallback
    /// of the variance-reduction modes when their variance estimate
    /// degenerates).
    pub fn estimates(&self, confidence: f64, method: CiMethod) -> Vec<JobEstimate> {
        self.jobs
            .iter()
            .map(|job| self.estimate_job(job, confidence, method))
            .collect()
    }

    fn binomial_ci(&self, k: u64, confidence: f64, method: CiMethod) -> (f64, f64) {
        match method {
            CiMethod::Wilson => wilson(k, self.draws, confidence),
            CiMethod::ClopperPearson => clopper_pearson(k, self.draws, confidence),
        }
    }

    fn estimate_job(&self, job: &JobAccum, confidence: f64, method: CiMethod) -> JobEstimate {
        let n = self.draws;
        let p = if n == 0 {
            0.0
        } else {
            job.misses as f64 / n as f64
        };
        let (lo, hi) = match self.mode {
            Mode::Plain => self.binomial_ci(job.misses, confidence, method),
            Mode::Antithetic => {
                // Pair means take values in {0, ½, 1}; their sample
                // variance bakes in the antithetic covariance term.
                let pairs = n / 2;
                let var = if pairs >= 2 {
                    let sum_sq = job.pair_both as f64 + 0.25 * job.pair_mixed as f64;
                    ((sum_sq - pairs as f64 * p * p) / (pairs as f64 - 1.0)).max(0.0)
                } else {
                    0.0
                };
                if var > 0.0 {
                    let z = inv_norm_cdf(1.0 - (1.0 - confidence) / 2.0);
                    let half = z * (var / pairs as f64).sqrt();
                    ((p - half).max(0.0), (p + half).min(1.0))
                } else {
                    // Degenerate pairs (all identical): fall back to the
                    // conservative exact interval on the raw counter.
                    clopper_pearson(job.misses, n, confidence)
                }
            }
            Mode::Stratified(_) => {
                let any_empty = self.strat_draws.contains(&0);
                let mut var = 0.0;
                if !any_empty && n > 0 {
                    for (s, &ns) in self.strat_draws.iter().enumerate() {
                        let w = ns as f64 / n as f64;
                        let ps = job.strat_misses[s] as f64 / ns as f64;
                        var += w * w * ps * (1.0 - ps) / ns as f64;
                    }
                }
                if var > 0.0 {
                    let z = inv_norm_cdf(1.0 - (1.0 - confidence) / 2.0);
                    let half = z * var.sqrt();
                    ((p - half).max(0.0), (p + half).min(1.0))
                } else {
                    clopper_pearson(job.misses, n, confidence)
                }
            }
        };
        JobEstimate {
            p,
            lo,
            hi,
            misses: job.misses,
            draws: n,
        }
    }
}

/// The adaptive stopping rule: stop when every job's interval is narrow
/// enough, or cleanly separated from a decision threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stopping {
    /// Maximum acceptable CI half-width.
    pub tolerance: f64,
    /// Two-sided confidence level of the intervals (e.g. `0.95`).
    pub confidence: f64,
    /// Optional decision threshold: a job whose whole interval lies on one
    /// side of it is settled even if the interval is still wide.
    pub threshold: Option<f64>,
}

impl Stopping {
    /// Whether every job's estimate satisfies the rule.
    pub fn converged(&self, estimates: &[JobEstimate]) -> bool {
        estimates.iter().all(|e| {
            e.half_width() <= self.tolerance
                || self.threshold.is_some_and(|th| e.hi < th || e.lo > th)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_norm_known_points() {
        assert!((inv_norm_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-7);
        assert!((inv_norm_cdf(0.5)).abs() < 1e-9);
        assert!((inv_norm_cdf(0.995) - 2.575_829_303_548_901).abs() < 1e-7);
        assert!((inv_norm_cdf(0.025) + 1.959_963_984_540_054).abs() < 1e-7);
    }

    #[test]
    fn wilson_matches_reference_values() {
        // k=10, n=100, 95%: the textbook Wilson interval.
        let (lo, hi) = wilson(10, 100, 0.95);
        assert!((lo - 0.0552).abs() < 2e-3, "lo={lo}");
        assert!((hi - 0.1744).abs() < 2e-3, "hi={hi}");
        // Contains the point estimate and stays in [0,1].
        assert!(lo <= 0.1 && 0.1 <= hi);
        let (lo, hi) = wilson(0, 50, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.12);
    }

    #[test]
    fn clopper_pearson_matches_closed_forms() {
        // k=0: hi = 1 - (α/2)^(1/n) exactly.
        let (lo, hi) = clopper_pearson(0, 100, 0.95);
        assert_eq!(lo, 0.0);
        assert!((hi - (1.0 - 0.025f64.powf(0.01))).abs() < 1e-9, "hi={hi}");
        // k=n mirrors k=0.
        let (lo2, hi2) = clopper_pearson(100, 100, 0.95);
        assert_eq!(hi2, 1.0);
        assert!((lo2 - (1.0 - hi)).abs() < 1e-9);
        // Exactness: CP contains the point estimate and is wider than
        // Wilson for small k.
        let (clo, chi) = clopper_pearson(3, 200, 0.95);
        let (wlo, whi) = wilson(3, 200, 0.95);
        assert!(clo <= 0.015 && 0.015 <= chi);
        assert!(chi - clo >= whi - wlo - 1e-12);
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        // Deterministic LCG so the test needs no rand dependency here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut p50 = P2Sketch::new(0.5);
        let mut p99 = P2Sketch::new(0.99);
        for _ in 0..20_000 {
            let x = next();
            p50.observe(x);
            p99.observe(x);
        }
        let v50 = p50.value().unwrap();
        let v99 = p99.value().unwrap();
        assert!((v50 - 0.5).abs() < 0.02, "p50={v50}");
        assert!((v99 - 0.99).abs() < 0.01, "p99={v99}");
    }

    #[test]
    fn p2_exact_below_five_observations() {
        let mut s = P2Sketch::new(0.5);
        assert_eq!(s.value(), None);
        s.observe(3.0);
        s.observe(1.0);
        s.observe(2.0);
        assert_eq!(s.value(), Some(2.0));
    }

    #[test]
    fn p2_merge_approximates_the_union() {
        let mut a = P2Sketch::new(0.5);
        let mut b = P2Sketch::new(0.5);
        let mut full = P2Sketch::new(0.5);
        for i in 0..5000 {
            let x = (i as f64 * 0.618_033_988_749_895).fract();
            if i % 2 == 0 {
                a.observe(x);
            } else {
                b.observe(x);
            }
            full.observe(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), full.count());
        assert!((a.value().unwrap() - full.value().unwrap()).abs() < 0.05);
    }

    #[test]
    fn plain_accumulator_counts_and_estimates() {
        let mut acc = WcdfpAccum::new(Mode::Plain, 2);
        for i in 0..100 {
            let miss = i % 10 == 0; // job 0 misses 10% of draws
            acc.record_draw(&[miss, false], &[false, false], None);
        }
        assert_eq!(acc.draws, 100);
        assert_eq!(acc.jobs[0].misses, 10);
        assert_eq!(acc.jobs[1].misses, 0);
        let est = acc.estimates(0.95, CiMethod::Wilson);
        assert!((est[0].p - 0.1).abs() < 1e-12);
        assert!(est[0].lo <= 0.1 && 0.1 <= est[0].hi);
        assert_eq!(est[1].p, 0.0);
        assert_eq!(est[1].lo, 0.0);
        assert!(est[1].hi > 0.0);
    }

    #[test]
    fn merge_is_exact_on_counters() {
        let mut a = WcdfpAccum::new(Mode::Stratified(4), 1);
        let mut b = WcdfpAccum::new(Mode::Stratified(4), 1);
        let mut seq = WcdfpAccum::new(Mode::Stratified(4), 1);
        for i in 0..40u32 {
            let miss = i % 3 == 0;
            let target = if i < 17 { &mut a } else { &mut b };
            target.record_draw(&[miss], &[false], Some(i % 4));
            seq.record_draw(&[miss], &[false], Some(i % 4));
        }
        a.merge(&b);
        assert_eq!(a.draws, seq.draws);
        assert_eq!(a.strat_draws, seq.strat_draws);
        assert_eq!(a.jobs[0].misses, seq.jobs[0].misses);
        assert_eq!(a.jobs[0].strat_misses, seq.jobs[0].strat_misses);
        // Identical counters ⇒ identical (bit-for-bit) interval bounds.
        let ea = a.estimates(0.95, CiMethod::Wilson);
        let es = seq.estimates(0.95, CiMethod::Wilson);
        assert_eq!(ea[0].lo.to_bits(), es[0].lo.to_bits());
        assert_eq!(ea[0].hi.to_bits(), es[0].hi.to_bits());
    }

    #[test]
    fn antithetic_pairs_shrink_or_match_plain_interval() {
        // Perfectly anticorrelated pairs: every pair has exactly one miss,
        // so the pair means are constant ½ and the variance collapses.
        let mut acc = WcdfpAccum::new(Mode::Antithetic, 1);
        for _ in 0..50 {
            acc.record_pair(&[true], &[false], &[false], &[false]);
        }
        let est = &acc.estimates(0.95, CiMethod::Wilson)[0];
        assert!((est.p - 0.5).abs() < 1e-12);
        // Degenerate variance falls back to Clopper–Pearson on the raw
        // counter — still a valid interval containing p.
        assert!(est.lo <= 0.5 && 0.5 <= est.hi);

        // Mixed pair outcomes: normal interval, narrower than the
        // independent-draw Wilson interval at the same count.
        let mut acc = WcdfpAccum::new(Mode::Antithetic, 1);
        for i in 0..200 {
            match i % 4 {
                0 => acc.record_pair(&[true], &[false], &[true], &[false]),
                1 | 2 => acc.record_pair(&[true], &[false], &[false], &[false]),
                _ => acc.record_pair(&[false], &[false], &[false], &[false]),
            }
        }
        let est = &acc.estimates(0.95, CiMethod::Wilson)[0];
        let (wlo, whi) = wilson(est.misses, est.draws, 0.95);
        assert!(est.lo <= est.p && est.p <= est.hi);
        assert!(est.hi - est.lo <= (whi - wlo) * 1.05);
    }

    #[test]
    fn stratified_estimate_weights_strata() {
        let mut acc = WcdfpAccum::new(Mode::Stratified(2), 1);
        // Stratum 0 always misses, stratum 1 never: p = 0.5 exactly, and
        // the within-stratum variance is zero ⇒ CP fallback, which still
        // contains p.
        for i in 0..100u32 {
            acc.record_draw(&[i % 2 == 0], &[false], Some(i % 2));
        }
        let est = &acc.estimates(0.95, CiMethod::Wilson)[0];
        assert!((est.p - 0.5).abs() < 1e-12);
        assert!(est.lo <= 0.5 && 0.5 <= est.hi);
    }

    #[test]
    fn stopping_rule_tests_half_width_and_threshold() {
        let narrow = JobEstimate {
            p: 0.01,
            lo: 0.005,
            hi: 0.015,
            misses: 10,
            draws: 1000,
        };
        let wide = JobEstimate {
            p: 0.3,
            lo: 0.2,
            hi: 0.4,
            misses: 30,
            draws: 100,
        };
        let stop = Stopping {
            tolerance: 0.01,
            confidence: 0.95,
            threshold: None,
        };
        assert!(stop.converged(&[narrow]));
        assert!(!stop.converged(&[narrow, wide]));
        // A threshold at 0.1 settles `wide` (whole interval above it).
        let stop = Stopping {
            threshold: Some(0.1),
            ..stop
        };
        assert!(stop.converged(&[narrow, wide]));
    }

    #[test]
    fn censored_draws_are_counted_separately() {
        let mut acc = WcdfpAccum::new(Mode::Plain, 1);
        acc.record_draw(&[false], &[true], None);
        acc.record_draw(&[true], &[true], None); // miss wins over censor
        assert_eq!(acc.jobs[0].censored, 1);
        assert_eq!(acc.jobs[0].misses, 1);
    }

    #[test]
    fn responses_feed_sketches_and_max() {
        let mut acc = WcdfpAccum::new(Mode::Plain, 1);
        for r in [10.0, 30.0, 20.0] {
            acc.record_response(0, r);
        }
        assert_eq!(acc.jobs[0].completed, 3);
        assert_eq!(acc.jobs[0].max_response, 30.0);
        assert_eq!(acc.jobs[0].p50.value(), Some(20.0));
    }
}

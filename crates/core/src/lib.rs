//! # rta-core — service-function response time analysis
//!
//! The primary contribution of Li, Bettati & Zhao, *"Response Time Analysis
//! for Distributed Real-Time Systems with Bursty Job Arrivals"* (ICPP 1998):
//! schedulability analysis for distributed systems whose jobs are chains of
//! subjobs with **arbitrary** (periodic, sporadic, bursty) arrival patterns.
//!
//! ## Method map
//!
//! | Paper | Here |
//! |---|---|
//! | Theorem 1 (exact end-to-end WCRT) | [`exact::analyze_exact_spp`] |
//! | Theorem 2 (`f_dep = ⌊S/τ⌋`) | [`rta_curves::Curve::floor_div`] |
//! | Theorem 3 (exact SPP service functions) | [`spp`] |
//! | Theorem 4 + Lemmas 1,2 (additive bounds) | [`bounds::analyze_bounds`] |
//! | Theorems 5,6 + Eq. 15 (SPNP service bounds) | [`spnp`] |
//! | Theorems 7,8,9 (FCFS service bounds) | [`fcfs`] |
//! | Section 5 baseline "SPP/S&L" | [`holistic`] |
//! | Section 6 loop extension (`X = F(X)`) | [`fixpoint`] |
//!
//! The per-discipline kernels plug into the drivers through the
//! [`policy`] layer: a [`policy::ServicePolicy`] per
//! [`rta_model::SchedulerKind`]
//! (SPP, SPNP, FCFS, and the IWRR extension after Tabatabaee, Le Boudec &
//! Boyer) turns peer curves into service bounds, so drivers never match on
//! the discipline.
//!
//! Classical uniprocessor response-time analysis (Joseph & Pandya) and the
//! Liu & Layland utilization bound live in [`classic`] as test oracles.
//!
//! ## Quick example
//!
//! ```
//! use rta_core::{analyze_exact_spp, AnalysisConfig};
//! use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};
//! use rta_model::priority::{assign_priorities, PriorityPolicy};
//! use rta_curves::Time;
//!
//! let mut b = SystemBuilder::new();
//! let p1 = b.add_processor("P1", SchedulerKind::Spp);
//! let p2 = b.add_processor("P2", SchedulerKind::Spp);
//! b.add_job(
//!     "T1",
//!     Time(40),
//!     ArrivalPattern::Periodic { period: Time(20), offset: Time(0) },
//!     vec![(p1, Time(4)), (p2, Time(6))],
//! );
//! b.add_job(
//!     "T2",
//!     Time(60),
//!     ArrivalPattern::Periodic { period: Time(30), offset: Time(0) },
//!     vec![(p1, Time(5))],
//! );
//! let mut sys = b.build().unwrap();
//! assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
//!
//! let report = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
//! assert!(report.all_schedulable());
//! // T1 in isolation at the critical instant: 4 on P1, 6 on P2 ⇒ WCRT 10.
//! assert_eq!(report.jobs[0].wcrt, Some(Time(10)));
//!
//! // Any registered discipline works through the same drivers — e.g. a
//! // weighted round-robin processor needs no priorities at all:
//! use rta_core::analyze_bounds;
//! let mut b = SystemBuilder::new();
//! let p = b.add_processor("P1", SchedulerKind::Iwrr);
//! b.add_job(
//!     "T1",
//!     Time(60),
//!     ArrivalPattern::Periodic { period: Time(20), offset: Time(0) },
//!     vec![(p, Time(4))],
//! );
//! b.add_job(
//!     "T2",
//!     Time(60),
//!     ArrivalPattern::Periodic { period: Time(20), offset: Time(0) },
//!     vec![(p, Time(5))],
//! );
//! let sys = b.build().unwrap();
//! assert!(analyze_bounds(&sys, &AnalysisConfig::default())
//!     .unwrap()
//!     .all_schedulable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bounds;
pub mod classic;
mod config;
pub mod depgraph;
mod error;
pub mod exact;
pub mod fcfs;
pub mod fixpoint;
pub mod holistic;
pub mod nc;
pub mod par;
pub mod policy;
mod report;
pub mod sensitivity;
pub mod server;
pub mod service;
pub mod session;
pub mod spnp;
pub mod spp;
pub mod wcdfp;

pub use batch::BatchAnalyzer;
pub use bounds::analyze_bounds;
pub use config::{AnalysisConfig, SpnpAvailability};
pub use error::AnalysisError;
pub use exact::analyze_exact_spp;
pub use report::{BoundsReport, ExactReport, JobBound, JobReport, SubjobCurves};
pub use service::{AdmissionService, ServiceConfig, ServiceError, Verdict};
pub use session::{AnalysisSession, SessionStats};

//! Network-calculus end-to-end composition — the "pay bursts only once"
//! alternative to Theorem 4.
//!
//! Theorem 4 sums per-hop worst-case delays; network calculus (the paper's
//! refs \[20, 21\], Cruz) instead **convolves** per-hop service guarantees
//! into one end-to-end service curve and takes a single horizontal
//! deviation against the job's arrival envelope. When a job's burst is
//! large relative to its sustained rate, the convolved bound charges the
//! burst once instead of at every hop and can beat the additive bound;
//! with per-hop envelope re-shaping (which Lemma 2 performs) the additive
//! bound can win instead — the `e2e_composition` test and the ablation
//! bench quantify both regimes.
//!
//! Pipeline:
//! 1. run the usual bounds analysis to obtain each hop's guaranteed
//!    service `S̲` for the job of interest;
//! 2. fit the tightest [`RateLatency`] curve under each `S̲` restricted to
//!    the analysis horizon ([`fit_rate_latency`]);
//! 3. convolve the fits along the chain (latencies add, rates min — the
//!    closed form of `RateLatency::then`);
//! 4. bound the end-to-end delay by the horizontal deviation between the
//!    job's first-hop arrival workload and the composed curve.

use crate::config::AnalysisConfig;
use crate::depgraph::{evaluation_order, SubjobIndex};
use crate::error::AnalysisError;
use rta_curves::bounds::RateLatency;
use rta_curves::{Curve, Time};
use rta_model::{JobId, SubjobRef, TaskSystem};

/// Fit the tightest rate-latency curve lying at or below `service` on
/// `[0, horizon]`, given a target sustained `rate ≥ 1`.
///
/// The latency is the smallest `T` with `R·(t − T) ≤ S̲(t)` for every
/// lattice `t ≤ horizon`, i.e. `T = max_t ( t − S̲(t)/R )` (rounded up).
pub fn fit_rate_latency(service: &Curve, rate: i64, horizon: Time) -> RateLatency {
    assert!(rate >= 1);
    let mut latency = Time::ZERO;
    // Candidates: breakpoints and the horizon (the expression t − S/R is
    // piecewise linear in t, so its max sits on a piece boundary).
    let mut candidates: Vec<Time> = service.breakpoints().filter(|t| *t <= horizon).collect();
    candidates.push(horizon);
    // Piece-end candidates too: maxima of t − S(t)/R occur where S is flat.
    let ends: Vec<Time> = service
        .breakpoints()
        .filter(|t| *t > Time::ZERO && *t <= horizon)
        .map(|t| t - Time::ONE)
        .collect();
    candidates.extend(ends);
    for t in candidates {
        if t < Time::ZERO {
            continue;
        }
        // smallest T with R(t − T) ≤ S(t):  T ≥ t − S(t)/R  (exact ceil).
        let s = service.eval(t).max(0);
        let need = t.ticks() - s.div_euclid(rate);
        latency = latency.max(Time(need.max(0)));
    }
    RateLatency { latency, rate }
}

/// End-to-end delay bound for `job` via rate-latency composition.
///
/// Restricted to chains whose hops share one execution time `τ` (instance
/// and work semantics then coincide, so the composed work-unit curve
/// transfers to instances exactly); returns
/// [`AnalysisError::NotAllSpp`]-style errors never — unsupported shapes
/// yield `Ok(None)`:
///
/// * non-uniform `τ` along the chain,
/// * a hop whose guaranteed service never carries the demand.
///
/// The classical FIFO output/delay argument: with per-hop service curves
/// `β_j` the chain guarantees `β = β_1 ⊗ … ⊗ β_n`, and the `m`-th
/// instance, arriving at `a_m`, completes end-to-end by
///
/// ```text
/// min_{1 ≤ i ≤ m} ( a_i + β⁻¹( (m − i + 1)·τ ) )
/// ```
///
/// (pick the busy-start candidate `i`: everything before instance `i` was
/// clear, then `m − i + 1` instances of work flow through `β`). For
/// rate-latency `β`, `β⁻¹(x) = T + ⌈x/R⌉` — the burst pays the latency
/// **once**, not per hop as in Theorem 4's sum.
pub fn e2e_composition_bound(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    job: JobId,
) -> Result<Option<Time>, AnalysisError> {
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);
    let _ = evaluation_order(sys, &idx)?; // cycle check up front
    let lower = crate::bounds::lower_service_curves(sys, cfg)?;

    let jb = &sys.jobs()[job.0];
    let tau = jb.subjobs[0].exec;
    if jb.subjobs.iter().any(|s| s.exec != tau) {
        return Ok(None);
    }

    // Fit each hop and convolve (latencies add, rates min). The fit domain
    // ends where the hop has provably served its entire horizon demand:
    // beyond that, the flatness of S̲ reflects demand exhaustion, not
    // missing service capability, and the delay computation below only
    // queries β at work values within the served total.
    let mut composed: Option<RateLatency> = None;
    for j in 0..jb.subjobs.len() {
        let s_lower = &lower[idx.index(SubjobRef { job, index: j })];
        let total = s_lower.eval(horizon).max(0);
        if total == 0 {
            return Ok(None);
        }
        let t_fit = s_lower.inverse_at(total).unwrap_or(horizon).min(horizon);
        let rate = (total / t_fit.ticks().max(1)).max(1);
        let fit = fit_rate_latency(s_lower, rate, t_fit);
        composed = Some(match composed {
            None => fit,
            Some(prev) => prev.then(&fit),
        });
    }
    let Some(beta) = composed else {
        return Ok(None);
    };
    let beta_inv =
        |work: i64| -> Time { beta.latency + Time((work + beta.rate - 1).div_euclid(beta.rate)) };

    // Departures obey D ≥ A ⊗ β; the m-th instance has left once the
    // convolution clears m·τ, i.e. once *every* candidate
    // A(a_i⁻) + β(t − a_i) = (i−1)τ + β(t − a_i) clears it — the inverse of
    // a min is the max of the candidate inverses.
    let arr = jb.arrival.arrival_curve(window);
    let n_instances = arr.total_events();
    let mut worst = Time::ZERO;
    for m in 1..=n_instances {
        let a_m = arr.event_time(m).expect("within window");
        let mut completion = Time::ZERO;
        for i in 1..=m {
            let a_i = arr.event_time(i).expect("i ≤ m");
            let through = beta_inv((m - i + 1) * tau.ticks());
            completion = completion.max(a_i + through);
        }
        worst = worst.max(completion - a_m);
    }
    Ok(Some(worst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Segment;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    fn pipeline(hops: usize, tau: i64, burst: usize) -> TaskSystem {
        let mut b = SystemBuilder::new();
        let procs: Vec<_> = (0..hops)
            .map(|i| b.add_processor(format!("P{}", i + 1), SchedulerKind::Spp))
            .collect();
        let times: Vec<Time> = (0..burst).map(|i| Time(i as i64)).collect();
        b.add_job(
            "flow",
            Time(10_000),
            ArrivalPattern::Trace(times),
            procs.iter().map(|p| (*p, Time(tau))).collect(),
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        sys
    }

    #[test]
    fn composition_bound_is_valid_and_pays_bursts_once() {
        // A 4-instance burst through 3 idle hops of τ = 10. True worst
        // response (simulated/exact): pipeline fills, last instance sees
        // 3·10 pipeline latency + 3·10 queueing = 60-ish.
        let sys = pipeline(3, 10, 4);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(100)),
            ..Default::default()
        };
        let exact = crate::exact::analyze_exact_spp(&sys, &cfg).unwrap();
        let truth = exact.jobs[0].wcrt.unwrap();
        let nc = e2e_composition_bound(&sys, &cfg, JobId(0))
            .unwrap()
            .unwrap();
        assert!(nc >= truth, "nc bound {nc} < truth {truth}");
        // The additive Theorem 4 bound pays the burst at every hop; the
        // composed bound pays it once and must not be *much* worse.
        let additive = crate::bounds::analyze_bounds(&sys, &cfg).unwrap().jobs[0]
            .e2e_bound
            .unwrap();
        assert!(
            nc <= additive * 2,
            "composed {nc} unreasonably above additive {additive}"
        );
    }

    #[test]
    fn composition_requires_uniform_tau() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(50),
                offset: Time::ZERO,
            },
            vec![(p1, Time(5)), (p2, Time(7))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let cfg = AnalysisConfig::default();
        assert_eq!(e2e_composition_bound(&sys, &cfg, JobId(0)).unwrap(), None);
    }

    #[test]
    fn single_hop_composition_close_to_hop_bound() {
        let sys = pipeline(1, 8, 3);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(100)),
            ..Default::default()
        };
        let exact = crate::exact::analyze_exact_spp(&sys, &cfg).unwrap();
        let truth = exact.jobs[0].wcrt.unwrap(); // 3 instances back to back: 24 − 2
        let nc = e2e_composition_bound(&sys, &cfg, JobId(0))
            .unwrap()
            .unwrap();
        assert!(nc >= truth);
        assert!(nc <= truth + Time(10), "slack too large: {nc} vs {truth}");
    }

    #[test]
    fn fit_is_tight_and_below() {
        // Gated service: nothing for 5, then rate 1.
        let s = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 0),
            Segment::new(Time(5), 0, 1),
        ]);
        let fit = fit_rate_latency(&s, 1, Time(50));
        assert_eq!(
            fit,
            RateLatency {
                latency: Time(5),
                rate: 1
            }
        );
        let f = fit.curve();
        for t in 0..=50 {
            assert!(f.eval(Time(t)) <= s.eval(Time(t)), "t={t}");
        }
    }

    #[test]
    fn fit_handles_plateaus() {
        // Serve 4, pause 6, serve on: latency must absorb the pause.
        let s = Curve::from_segments(vec![
            Segment::new(Time(0), 0, 1),
            Segment::new(Time(4), 4, 0),
            Segment::new(Time(10), 4, 1),
        ]);
        let fit = fit_rate_latency(&s, 1, Time(40));
        let f = fit.curve();
        for t in 0..=40 {
            assert!(f.eval(Time(t)) <= s.eval(Time(t)), "t={t}");
        }
        // The pause forces T ≥ 6.
        assert!(fit.latency >= Time(6));
    }

    #[test]
    fn fit_with_rate_two() {
        let s = Curve::affine(0, 2);
        let fit = fit_rate_latency(&s, 2, Time(30));
        assert_eq!(
            fit,
            RateLatency {
                latency: Time::ZERO,
                rate: 2
            }
        );
    }
}

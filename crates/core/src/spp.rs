//! Exact service functions for preemptive static-priority scheduling
//! (Theorem 3).
//!
//! On an SPP processor the time available to subjob `T_{k,j}` is whatever
//! the strictly-higher-priority subjobs leave over:
//! `A(t) = t − Σ_hp S_h(t)` (Equation 10). The service actually received is
//!
//! ```text
//! S(t) = min( c(t),  min_{0 ≤ s ≤ t} ( A(t) − A(s) + c(s⁻) ) )
//! ```
//!
//! Intuition (Reich's backlog identity): pick the last instant `s` at which
//! the subjob had no pending work; everything that arrived *strictly before*
//! `s` had been served, and after `s` the subjob absorbs all available time.
//! The candidate therefore pairs the availability increment `A(t) − A(s)`
//! with the **left limit** `c(s⁻)` of the workload — an instance released
//! exactly at the busy-period start is served after `s`, not before. (The
//! paper's Equation 9 writes `c(s)`; with Definition 1's right-continuous
//! arrival functions the left limit is the reading under which the theorem
//! is physically consistent — e.g. a single 5-tick instance released at
//! `t = 0` has received exactly 4 ticks of service by `t = 4`, which
//! requires the `c(0⁻) = 0` candidate.) The outer `min` with `c(t)` covers
//! the empty-backlog case. On the tick lattice `c(s⁻) = c(s − 1)` with
//! `c(−1) = 0`.
//!
//! ```
//! use rta_core::spp::exact_service;
//! use rta_curves::{Curve, Time};
//!
//! // Two instances of 4 ticks each, released at 0 and 10, alone on the
//! // processor: served back to back within their periods.
//! let workload = Curve::from_event_times(&[Time(0), Time(10)]).scale(4);
//! let service = exact_service(&workload, &[]);
//! assert_eq!(service.eval(Time(4)), 4);   // first instance done
//! assert_eq!(service.eval(Time(9)), 4);   // idle gap
//! assert_eq!(service.eval(Time(14)), 8);  // second instance done
//!
//! // Departures per Theorem 2.
//! let dep = service.floor_div(4, Time(100)).unwrap();
//! assert_eq!(dep.event_time(2), Some(Time(14)));
//! ```

use rta_curves::{Curve, Time};

/// The availability function `A(t) = t − Σ_h S_h(t)` (Equation 10).
pub fn availability(hp_services: &[&Curve]) -> Curve {
    let mut a = Curve::identity();
    for s in hp_services {
        a = a.sub(s);
    }
    a
}

/// Evaluate the Theorem 3 min-form for a given availability curve:
/// `S(t) = min( c(t), B(t) + min_{0 ≤ s ≤ t} ( c(s⁻) − B(s) ) )`.
///
/// Shared by the exact SPP analysis (with the exact availability) and the
/// SPNP bounds (with blocking-adjusted availabilities).
pub fn service_from_availability(avail: &Curve, workload: &Curve) -> Curve {
    let c_prev = workload.shift_right(Time::ONE, 0);
    let run = c_prev.sub(avail).running_min();
    avail.add(&run).min_with(workload)
}

/// The exact SPP service function of a subjob given the exact service
/// functions of its higher-priority peers and its exact workload curve.
pub fn exact_service(workload: &Curve, hp_services: &[&Curve]) -> Curve {
    let a = availability(hp_services);
    debug_assert!(
        a.is_nondecreasing(),
        "exact SPP availability must be nondecreasing (peers overlap?)"
    );
    let s = service_from_availability(&a, workload);
    debug_assert!(
        s.is_nondecreasing(),
        "exact SPP service must be nondecreasing"
    );
    debug_assert!(
        s.segments().first().map(|x| x.value >= 0).unwrap_or(true),
        "service must be nonnegative"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force corrected Theorem 3 on the lattice.
    fn brute_service(avail: &Curve, c: &Curve, horizon: i64) -> Vec<i64> {
        (0..=horizon)
            .map(|t| {
                let inner = (0..=t)
                    .map(|s| {
                        let c_left = if s == 0 { 0 } else { c.eval(Time(s - 1)) };
                        avail.eval(Time(t)) - avail.eval(Time(s)) + c_left
                    })
                    .min()
                    .unwrap();
                inner.min(c.eval(Time(t)))
            })
            .collect()
    }

    #[test]
    fn highest_priority_gets_everything_it_asks() {
        // Single subjob, arrivals at 0 and 10, τ = 4: S(t) follows t until the
        // backlog drains, then plateaus.
        let arr = Curve::from_event_times(&[Time(0), Time(10)]);
        let c = arr.scale(4);
        let s = exact_service(&c, &[]);
        let expect = brute_service(&Curve::identity(), &c, 20);
        for t in 0..=20 {
            assert_eq!(s.eval(Time(t)), expect[t as usize], "t={t}");
        }
        // Instance 1 served during [0,4), instance 2 during [10,14).
        assert_eq!(s.eval(Time(2)), 2);
        assert_eq!(s.eval(Time(4)), 4);
        assert_eq!(s.eval(Time(9)), 4);
        assert_eq!(s.eval(Time(14)), 8);
    }

    #[test]
    fn partial_service_mid_instance_is_exact() {
        // The boundary case that forces the left-limit reading: one 5-tick
        // instance at t = 0 must show exactly 4 ticks of service at t = 4.
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let s = exact_service(&c, &[]);
        for t in 0..=10 {
            assert_eq!(s.eval(Time(t)), t.min(5), "t={t}");
        }
        let dep = s.floor_div(5, Time(10)).unwrap();
        assert_eq!(dep.event_time(1), Some(Time(5)));
    }

    #[test]
    fn low_priority_is_squeezed() {
        // Hp subjob: arrivals every 10, τ=4 ⇒ serves [0,4), [10,14), …
        let hp_c = Curve::from_event_times(&[Time(0), Time(10)]).scale(4);
        let hp_s = exact_service(&hp_c, &[]);
        // Lp subjob arrives at 0 with τ=8: gets [4,10) (6 ticks) + [14,16).
        let lp_c = Curve::from_event_times(&[Time(0)]).scale(8);
        let lp_s = exact_service(&lp_c, &[&hp_s]);
        assert_eq!(lp_s.eval(Time(4)), 0);
        assert_eq!(lp_s.eval(Time(10)), 6);
        assert_eq!(lp_s.eval(Time(14)), 6);
        assert_eq!(lp_s.eval(Time(16)), 8);
        assert_eq!(lp_s.eval(Time(30)), 8); // no more demand
                                            // Departure: single instance completes at 16.
        let dep = lp_s.floor_div(8, Time(30)).unwrap();
        assert_eq!(dep.event_time(1), Some(Time(16)));
    }

    #[test]
    fn matches_brute_force_with_interference() {
        let hp_c = Curve::from_event_times(&[Time(0), Time(7), Time(14)]).scale(3);
        let hp_s = exact_service(&hp_c, &[]);
        let avail = availability(&[&hp_s]);
        let lp_c = Curve::from_event_times(&[Time(1), Time(8)]).scale(5);
        let lp_s = exact_service(&lp_c, &[&hp_s]);
        let expect = brute_service(&avail, &lp_c, 30);
        for t in 0..=30 {
            assert_eq!(lp_s.eval(Time(t)), expect[t as usize], "t={t}");
        }
    }

    #[test]
    fn service_never_exceeds_workload_or_time() {
        let c = Curve::from_event_times(&[Time(0), Time(2), Time(4)]).scale(6);
        let s = exact_service(&c, &[]);
        for t in 0..=40 {
            let t = Time(t);
            assert!(s.eval(t) <= c.eval(t));
            assert!(s.eval(t) <= t.ticks());
            assert!(s.eval(t) >= 0);
        }
    }

    #[test]
    fn idle_availability_before_arrival() {
        // Subjob arrives at 5: no service before, ramps after.
        let c = Curve::from_event_times(&[Time(5)]).scale(3);
        let s = exact_service(&c, &[]);
        assert_eq!(s.eval(Time(5)), 0);
        assert_eq!(s.eval(Time(6)), 1);
        assert_eq!(s.eval(Time(8)), 3);
        assert_eq!(s.eval(Time(100)), 3);
    }

    #[test]
    fn two_priority_levels_partition_the_processor() {
        // Both subjobs always-backlogged over [0, 12): hp takes everything,
        // lp gets nothing until hp drains.
        let hp_c = Curve::from_event_times(&[Time(0), Time(4), Time(8)]).scale(4);
        let hp_s = exact_service(&hp_c, &[]);
        let lp_c = Curve::from_event_times(&[Time(0)]).scale(100);
        let lp_s = exact_service(&lp_c, &[&hp_s]);
        // While both are backlogged the processor is never idle: the two
        // service functions partition elapsed time.
        for t in 0..=20 {
            let t = Time(t);
            assert_eq!(hp_s.eval(t) + lp_s.eval(t), t.ticks(), "t={t}");
        }
        // After hp drains at 12, lp absorbs everything.
        assert_eq!(lp_s.eval(Time(20)), 8);
    }
}

//! Analysis errors.

use rta_curves::CurveError;
use rta_model::{ModelError, ProcessorId, SubjobRef};

/// Errors raised by the analyses in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The underlying system failed validation.
    Model(ModelError),
    /// A curve operation failed (malformed intermediate function).
    Curve(CurveError),
    /// The subjob dependency relation contains a cycle ("physical" or
    /// "logical" loop, Section 6); the exact and plain-bounds analyses
    /// cannot order the computation. Use [`crate::fixpoint`] instead.
    CyclicDependency {
        /// Subjobs participating in (or downstream of) the cycle.
        cycle: Vec<SubjobRef>,
    },
    /// `analyze_exact_spp` requires every processor to use SPP scheduling.
    NotAllSpp {
        /// First offending processor.
        processor: ProcessorId,
    },
    /// A policy that needs per-processor context (FCFS, IWRR) was invoked
    /// without one — the driver skipped
    /// [`crate::policy::ServicePolicy::build_context`].
    MissingPolicyContext {
        /// The processor whose context is absent.
        processor: ProcessorId,
    },
    /// The holistic baseline requires periodic arrival patterns.
    NotPeriodic {
        /// First offending job.
        job: rta_model::JobId,
    },
    /// Fixed-point iteration failed to converge within the iteration budget.
    FixpointDiverged {
        /// Iterations executed.
        iterations: usize,
    },
}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> Self {
        AnalysisError::Model(e)
    }
}

impl From<CurveError> for AnalysisError {
    fn from(e: CurveError) -> Self {
        AnalysisError::Curve(e)
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Model(e) => write!(f, "model error: {e}"),
            AnalysisError::Curve(e) => write!(f, "curve error: {e}"),
            AnalysisError::CyclicDependency { cycle } => {
                write!(f, "cyclic subjob dependency involving ")?;
                for (i, r) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            AnalysisError::NotAllSpp { processor } => {
                write!(
                    f,
                    "exact analysis requires SPP on all processors; {processor} differs"
                )
            }
            AnalysisError::MissingPolicyContext { processor } => {
                write!(
                    f,
                    "no policy context was built for processor {processor} before \
                     requesting its service bounds"
                )
            }
            AnalysisError::NotPeriodic { job } => {
                write!(
                    f,
                    "holistic baseline requires periodic arrivals; job {job} differs"
                )
            }
            AnalysisError::FixpointDiverged { iterations } => {
                write!(
                    f,
                    "fixed-point iteration did not converge after {iterations} rounds"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::JobId;

    #[test]
    fn error_messages_name_the_problem() {
        let cyc = AnalysisError::CyclicDependency {
            cycle: vec![
                SubjobRef {
                    job: JobId(0),
                    index: 1,
                },
                SubjobRef {
                    job: JobId(2),
                    index: 0,
                },
            ],
        };
        let msg = cyc.to_string();
        assert!(msg.contains("T1,2") && msg.contains("T3,1"), "{msg}");

        let spp = AnalysisError::NotAllSpp {
            processor: ProcessorId(4),
        };
        assert!(spp.to_string().contains("P5"));

        let per = AnalysisError::NotPeriodic { job: JobId(1) };
        assert!(per.to_string().contains("T2"));

        let div = AnalysisError::FixpointDiverged { iterations: 17 };
        assert!(div.to_string().contains("17"));

        // From-conversions preserve the inner message.
        let m: AnalysisError = rta_model::ModelError::NoJobs.into();
        assert!(m.to_string().contains("no jobs"));
        let c: AnalysisError = CurveError::Empty.into();
        assert!(c.to_string().contains("segment"));
    }
}

//! Service-function bounds for non-preemptive static-priority scheduling
//! (Equation 15, Theorems 5 and 6).
//!
//! Under SPNP a subjob can be *blocked* once per busy interval by an
//! already-running lower-priority subjob; the worst case is the largest
//! lower-priority execution time on the processor, `b_{k,j}` (Eq. 15).
//!
//! * **Lower bound** (Theorem 5): availability is zero for `t ≤ b`, then
//!   `B̲(t) = t − b − Σ_hp S_h(t)`, and
//!   `S̲(t) = min_{0 ≤ s ≤ t−b} ( B̲(t) − B̲(s) + c(s) )` for `t > b`.
//! * **Upper bound** (Theorem 6): `B̄(t) = t − Σ_hp S̲_h(t)` (blocking can
//!   only *delay* service, so it does not appear in the upper bound), and
//!   `S̄(t) = min_{0 ≤ s ≤ t} ( B̄(t) − B̄(s) + c̄(s) )`.
//!
//! Equation 17 as printed subtracts the higher-priority subjobs' *lower*
//! service bounds inside `B̲`; the conservative reading subtracts their
//! *upper* bounds (more interference → less availability). Both variants
//! are implemented ([`crate::SpnpAvailability`]); the default is the
//! conservative one, and the simulator-backed tests in this workspace
//! exercise both (see DESIGN.md §5).
//!
//! The same machinery yields sound bounds for SPP processors inside a
//! heterogeneous bounds analysis by setting `b = 0` (preemption removes
//! blocking; Theorems 5/6 then mirror Theorem 3 with bounded inputs).

use crate::config::SpnpAvailability;
use rta_curves::{Curve, CurveError, Time};

/// Lower/upper service-function bounds of one subjob.
#[derive(Clone, Debug)]
pub struct ServiceBounds {
    /// Guaranteed (lower-bounded) service `S̲`.
    pub lower: Curve,
    /// Potential (upper-bounded) service `S̄`.
    pub upper: Curve,
}

/// Compute Theorem 5/6 bounds for one subjob.
///
/// * `workload_upper` — the upper-bounded workload `c̄ = f̄_arr · τ`;
/// * `hp_lower`/`hp_upper` — service bounds of strictly-higher-priority
///   subjobs on the same processor, in any order;
/// * `blocking` — `b_{k,j}` of Eq. 15 (zero for SPP processors);
/// * `variant` — which availability recursion Theorem 5 uses.
///
/// Both returned curves are nondecreasing and nonnegative: the raw
/// formulas can lose monotonicity when peer bounds overlap, and are
/// re-monotonized soundly (`running_max` of a lower bound is still a lower
/// bound of a nondecreasing function; likewise the upper bound can only be
/// loosened).
///
/// Errors with [`CurveError::MismatchedLengths`] when the peer bound
/// slices cannot be paired — a caller bug that would otherwise silently
/// drop interference.
pub fn spnp_bounds(
    workload_upper: &Curve,
    hp_lower: &[&Curve],
    hp_upper: &[&Curve],
    blocking: Time,
    variant: SpnpAvailability,
) -> Result<ServiceBounds, CurveError> {
    if hp_lower.len() != hp_upper.len() {
        return Err(CurveError::MismatchedLengths {
            left: hp_lower.len(),
            right: hp_upper.len(),
        });
    }
    let b = blocking;
    let c_prev = workload_upper.shift_right(Time::ONE, 0);
    let sum = |curves: &[&Curve]| -> Curve {
        let mut acc = Curve::zero();
        for c in curves {
            acc = acc.add(c);
        }
        acc
    };
    let (hp_lo_sum, hp_up_sum) = (sum(hp_lower), sum(hp_upper));

    // The busy-period candidate is
    //     avail(s, t] + c̄(s⁻)
    // with avail(s, t] bracketed through the hp service bounds. A single
    // availability curve `B(t) − B(s)` (the paper's Eqs. 17/19) cannot
    // bracket the *increment* of hp interference — the `t` and `s`
    // positions need opposite hp bounds:
    //     lower: (t−s) − b − [ΣS̄_h(t) − ΣS̲_h(s)]
    //     upper: (t−s)     − [ΣS̲_h(t) − ΣS̄_h(s)]
    // The `Conservative` variant implements exactly that; `AsPrinted` keeps
    // the paper's single-curve form with `ΣS̲_h` at both positions.

    // ---- Theorem 6: upper bound (no blocking in an upper bound). ----
    let t_part_up = Curve::identity().sub(&hp_lo_sum);
    let s_part_up = match variant {
        SpnpAvailability::AsPrinted => c_prev.add(&hp_lo_sum).sub(&Curve::identity()),
        SpnpAvailability::Conservative => c_prev.add(&hp_up_sum).sub(&Curve::identity()),
    };
    let upper_raw = t_part_up
        .add(&s_part_up.running_min())
        .min_with(workload_upper);
    let upper = upper_raw
        .min_with(&Curve::identity())
        .clamp_min(0)
        .running_max();

    // ---- Theorem 5: lower bound. ----
    let t_part_lo = match variant {
        SpnpAvailability::AsPrinted => Curve::identity().add_const(-b.ticks()).sub(&hp_lo_sum),
        SpnpAvailability::Conservative => Curve::identity().add_const(-b.ticks()).sub(&hp_up_sum),
    };
    // s-part availability: the paper's B̲ (masked to 0 on [0, b]) for
    // AsPrinted; for Conservative the blocking term lives only in the
    // t-part (it is a one-shot delay, not an increment at both ends), so
    // the s-part is the unmasked `s − ΣS̲_h(s)`.
    let s_avail = match variant {
        SpnpAvailability::AsPrinted => t_part_lo.clone().mask_before(b + Time::ONE, 0),
        SpnpAvailability::Conservative => Curve::identity().sub(&hp_lo_sum),
    };
    let t_part_lo = t_part_lo.mask_before(b + Time::ONE, 0);
    // S̲(t) = T(t) + min_{0 ≤ s ≤ t−b} ( c̄(s⁻) − avail_s(s) ), the running
    // minimum delayed by the blocking interval (Theorem 5's min range).
    let run = c_prev.sub(&s_avail).running_min();
    let delayed_run = run.shift_right(b, run.eval(Time::ZERO));
    let lower_raw = t_part_lo
        .add(&delayed_run)
        .min_with(workload_upper)
        .mask_before(b + Time::ONE, 0);
    let lower = lower_raw
        .clamp_min(0)
        .min_with(&Curve::identity())
        .running_max();

    // Clipping can reorder the raw curves in degenerate spots.
    let upper = upper.max_with(&lower);
    Ok(ServiceBounds { lower, upper })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spp::exact_service;

    fn check_sane(b: &ServiceBounds, horizon: i64) {
        for t in 0..=horizon {
            let t = Time(t);
            assert!(b.lower.eval(t) <= b.upper.eval(t), "lower ≤ upper at {t}");
            assert!(b.lower.eval(t) >= 0);
            assert!(b.upper.eval(t) <= t.ticks().max(0) + 1_000_000_000);
        }
        assert!(b.lower.is_nondecreasing());
        assert!(b.upper.is_nondecreasing());
    }

    #[test]
    fn mismatched_peer_slices_are_rejected() {
        let c = Curve::from_event_times(&[Time(0)]).scale(2);
        let hp = spnp_bounds(&c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        let err = spnp_bounds(
            &c,
            &[&hp.lower],
            &[],
            Time::ZERO,
            SpnpAvailability::Conservative,
        )
        .unwrap_err();
        assert_eq!(err, CurveError::MismatchedLengths { left: 1, right: 0 });
    }

    #[test]
    fn no_blocking_no_interference_brackets_exact() {
        let c = Curve::from_event_times(&[Time(0), Time(10)]).scale(4);
        let exact = exact_service(&c, &[]);
        for variant in [SpnpAvailability::AsPrinted, SpnpAvailability::Conservative] {
            let b = spnp_bounds(&c, &[], &[], Time::ZERO, variant).unwrap();
            check_sane(&b, 25);
            for t in 0..=25 {
                let t = Time(t);
                assert!(b.lower.eval(t) <= exact.eval(t), "t={t}");
                assert!(b.upper.eval(t) >= exact.eval(t), "t={t}");
            }
        }
    }

    #[test]
    fn blocking_delays_the_lower_bound() {
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let b = spnp_bounds(&c, &[], &[], Time(3), SpnpAvailability::Conservative).unwrap();
        check_sane(&b, 20);
        // Nothing guaranteed during the blocking interval.
        assert_eq!(b.lower.eval(Time(3)), 0);
        // All 5 units guaranteed by t = 3 + 5.
        assert_eq!(b.lower.eval(Time(8)), 5);
        // The upper bound ignores blocking entirely.
        assert_eq!(b.upper.eval(Time(5)), 5);
    }

    #[test]
    fn interference_shrinks_bounds() {
        // hp takes [0,4) guaranteed.
        let hp_c = Curve::from_event_times(&[Time(0)]).scale(4);
        let hp = spnp_bounds(&hp_c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let lo = spnp_bounds(
            &c,
            &[&hp.lower],
            &[&hp.upper],
            Time::ZERO,
            SpnpAvailability::Conservative,
        )
        .unwrap();
        check_sane(&lo, 20);
        // Lower bound: hp may consume the first 4 ticks ⇒ our 5 units are
        // only guaranteed complete by t = 9.
        assert_eq!(lo.lower.eval(Time(4)), 0);
        assert_eq!(lo.lower.eval(Time(9)), 5);
        // Upper bound: hp is guaranteed the first 4 ticks (its own lower
        // bound), so we cannot have finished before t = 9 either.
        assert_eq!(lo.upper.eval(Time(9)), 5);
    }

    #[test]
    fn variants_are_both_sane() {
        let hp_c = Curve::from_event_times(&[Time(0), Time(6)]).scale(3);
        let hp = spnp_bounds(&hp_c, &[], &[], Time(2), SpnpAvailability::Conservative).unwrap();
        let c = Curve::from_event_times(&[Time(0), Time(8)]).scale(4);
        let printed = spnp_bounds(
            &c,
            &[&hp.lower],
            &[&hp.upper],
            Time(2),
            SpnpAvailability::AsPrinted,
        )
        .unwrap();
        let conserv = spnp_bounds(
            &c,
            &[&hp.lower],
            &[&hp.upper],
            Time(2),
            SpnpAvailability::Conservative,
        )
        .unwrap();
        check_sane(&printed, 30);
        check_sane(&conserv, 30);
        // The conservative variant brackets at least as widely as the
        // paper-verbatim one: its lower bound assumes more interference and
        // its upper bound assumes less.
        for t in 0..=30 {
            let t = Time(t);
            assert!(
                conserv.upper.eval(t) >= printed.upper.eval(t),
                "upper at {t}"
            );
            assert!(
                conserv.lower.eval(t) <= printed.lower.eval(t),
                "lower at {t}"
            );
        }
    }

    #[test]
    fn lower_bound_capped_by_workload() {
        let c = Curve::from_event_times(&[Time(0)]).scale(2);
        let b = spnp_bounds(&c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        for t in 0..=15 {
            assert!(b.lower.eval(Time(t)) <= c.eval(Time(t)));
        }
    }
}

//! Service-function bounds for non-preemptive static-priority scheduling
//! (Equation 15, Theorems 5 and 6).
//!
//! Under SPNP a subjob can be *blocked* once per busy interval by an
//! already-running lower-priority subjob; the worst case is the largest
//! lower-priority execution time on the processor, `b_{k,j}` (Eq. 15).
//!
//! * **Lower bound** (Theorem 5): availability is zero for `t ≤ b`, then
//!   `B̲(t) = t − b − Σ_hp S_h(t)`, and
//!   `S̲(t) = min_{0 ≤ s ≤ t−b} ( B̲(t) − B̲(s) + c(s) )` for `t > b`.
//! * **Upper bound** (Theorem 6): `B̄(t) = t − Σ_hp S̲_h(t)` (blocking can
//!   only *delay* service, so it does not appear in the upper bound), and
//!   `S̄(t) = min_{0 ≤ s ≤ t} ( B̄(t) − B̄(s) + c̄(s) )`.
//!
//! Equation 17 as printed subtracts the higher-priority subjobs' *lower*
//! service bounds inside `B̲`; the conservative reading subtracts their
//! *upper* bounds (more interference → less availability). Both variants
//! are implemented ([`crate::SpnpAvailability`]); the default is the
//! conservative one, and the simulator-backed tests in this workspace
//! exercise both (see DESIGN.md §5).
//!
//! The same machinery yields sound bounds for SPP processors inside a
//! heterogeneous bounds analysis by setting `b = 0` (preemption removes
//! blocking; Theorems 5/6 then mirror Theorem 3 with bounded inputs).

use crate::config::SpnpAvailability;
use rta_curves::{
    linear_combine_line_into, sum_many_into, Curve, CurveError, Scratch, SoaCurve, Time,
};

/// Lower/upper service-function bounds of one subjob.
#[derive(Clone, Debug)]
pub struct ServiceBounds {
    /// Guaranteed (lower-bounded) service `S̲`.
    pub lower: Curve,
    /// Potential (upper-bounded) service `S̄`.
    pub upper: Curve,
}

impl ServiceBounds {
    /// The information-free bracket `[0, 0]` — a placeholder whose buffers
    /// the `_into` drivers overwrite.
    pub fn zeroed() -> ServiceBounds {
        ServiceBounds {
            lower: Curve::zero(),
            upper: Curve::zero(),
        }
    }
}

impl PartialEq for ServiceBounds {
    fn eq(&self, other: &ServiceBounds) -> bool {
        self.lower == other.lower && self.upper == other.upper
    }
}
impl Eq for ServiceBounds {}

/// [`ServiceBounds`] in structure-of-arrays layout — the working
/// representation of the fixpoint drivers' warm path (DESIGN.md §4g). The
/// SoA kernels are segment-identical to their AoS oracles, so a
/// `SoaServiceBounds` and the `ServiceBounds` it converts to/from always
/// describe the same pair of curves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoaServiceBounds {
    /// Guaranteed (lower-bounded) service `S̲`.
    pub lower: SoaCurve,
    /// Potential (upper-bounded) service `S̄`.
    pub upper: SoaCurve,
}

impl SoaServiceBounds {
    /// The information-free bracket `[0, 0]` — a placeholder whose buffers
    /// the `_into` drivers overwrite.
    pub fn zeroed() -> SoaServiceBounds {
        SoaServiceBounds {
            lower: SoaCurve::zero(),
            upper: SoaCurve::zero(),
        }
    }

    /// Overwrite from an AoS bounds pair, reusing the arrays.
    pub fn copy_from_bounds(&mut self, src: &ServiceBounds) {
        self.lower.copy_from_curve(&src.lower);
        self.upper.copy_from_curve(&src.upper);
    }

    /// Convert back to AoS, reusing `out`'s segment buffers.
    pub fn write_to_bounds(&self, out: &mut ServiceBounds) {
        self.lower.write_to_curve(&mut out.lower);
        self.upper.write_to_curve(&mut out.upper);
    }

    /// Convert back to AoS, allocating.
    pub fn to_bounds(&self) -> ServiceBounds {
        let mut out = ServiceBounds::zeroed();
        self.write_to_bounds(&mut out);
        out
    }
}

/// Compute Theorem 5/6 bounds for one subjob.
///
/// * `workload_upper` — the upper-bounded workload `c̄ = f̄_arr · τ`;
/// * `hp_lower`/`hp_upper` — service bounds of strictly-higher-priority
///   subjobs on the same processor, in any order;
/// * `blocking` — `b_{k,j}` of Eq. 15 (zero for SPP processors);
/// * `variant` — which availability recursion Theorem 5 uses.
///
/// Both returned curves are nondecreasing and nonnegative: the raw
/// formulas can lose monotonicity when peer bounds overlap, and are
/// re-monotonized soundly (`running_max` of a lower bound is still a lower
/// bound of a nondecreasing function; likewise the upper bound can only be
/// loosened).
///
/// Errors with [`CurveError::MismatchedLengths`] when the peer bound
/// slices cannot be paired — a caller bug that would otherwise silently
/// drop interference.
pub fn spnp_bounds(
    workload_upper: &Curve,
    hp_lower: &[&Curve],
    hp_upper: &[&Curve],
    blocking: Time,
    variant: SpnpAvailability,
) -> Result<ServiceBounds, CurveError> {
    let mut scratch = Scratch::new();
    let mut out = ServiceBounds::zeroed();
    spnp_bounds_into(
        workload_upper,
        hp_lower,
        hp_upper,
        blocking,
        variant,
        &mut scratch,
        &mut out,
    )?;
    Ok(out)
}

/// The full Theorem 5/6 chain on the structure-of-arrays kernels with AoS
/// operands and results — a conversion wrapper around
/// [`spnp_bounds_soa_into`], pinned segment-identical to the production
/// AoS chain by the `soa_chain_matches_aos_oracle` test. The warm fixpoint
/// path calls the native-SoA kernel directly and never pays this
/// boundary; the wrapper is kept so the AoS↔SoA conversion overhead stays
/// measurable (the bench suite's `aos/*` vs `soa/*` rows) and correct.
pub fn spnp_bounds_into_soa(
    workload_upper: &Curve,
    hp_lower: &[&Curve],
    hp_upper: &[&Curve],
    blocking: Time,
    variant: SpnpAvailability,
    scratch: &mut Scratch,
    out: &mut ServiceBounds,
) -> Result<(), CurveError> {
    let mut w = scratch.take_soa();
    w.copy_from_curve(workload_upper);
    let hp_lo: Vec<SoaCurve> = hp_lower.iter().map(|c| SoaCurve::from_curve(c)).collect();
    let hp_up: Vec<SoaCurve> = hp_upper.iter().map(|c| SoaCurve::from_curve(c)).collect();
    let hp_lo_refs: Vec<&SoaCurve> = hp_lo.iter().collect();
    let hp_up_refs: Vec<&SoaCurve> = hp_up.iter().collect();
    let mut soa_out = SoaServiceBounds::zeroed();
    let r = spnp_bounds_soa_into(
        &w,
        &hp_lo_refs,
        &hp_up_refs,
        blocking,
        variant,
        scratch,
        &mut soa_out,
    );
    scratch.put_soa(w);
    r?;
    soa_out.write_to_bounds(out);
    Ok(())
}

/// The native structure-of-arrays Theorem 5/6 chain: SoA operands in, SoA
/// bounds out, every intermediate drawn from `scratch` — the kernel behind
/// [`crate::policy::ServicePolicy::service_bounds_soa_into`] for SPP/SPNP
/// and the one the warm fixpoint rounds run on (DESIGN.md §4g). The
/// operation sequence is step-for-step the one documented in
/// [`spnp_bounds_into`]; with segment-identical kernels on both sides the
/// results are bit-identical after conversion.
#[allow(clippy::many_single_char_names)]
pub fn spnp_bounds_soa_into(
    workload_upper: &SoaCurve,
    hp_lower: &[&SoaCurve],
    hp_upper: &[&SoaCurve],
    blocking: Time,
    variant: SpnpAvailability,
    scratch: &mut Scratch,
    out: &mut SoaServiceBounds,
) -> Result<(), CurveError> {
    if hp_lower.len() != hp_upper.len() {
        return Err(CurveError::MismatchedLengths {
            left: hp_lower.len(),
            right: hp_upper.len(),
        });
    }
    let b = blocking;
    let w = workload_upper;
    let mut id = scratch.take_soa();
    let mut c_prev = scratch.take_soa();
    let mut hp_lo_sum = scratch.take_soa();
    let mut hp_up_sum = scratch.take_soa();
    let mut up = scratch.take_soa();
    let mut s_avail = scratch.take_soa();
    let mut t1 = scratch.take_soa();
    let mut t2 = scratch.take_soa();
    let mut t3 = scratch.take_soa();

    id.set_affine(0, 1);
    w.shift_right_into(Time::ONE, 0, &mut c_prev);
    // Σ hp bounds in one k-way merge (pointwise add is exact and canonical
    // on the segment representation, so this matches the AoS chain's
    // ping-ponged fold segment for segment).
    sum_many_into(hp_lower, &mut hp_lo_sum);
    sum_many_into(hp_upper, &mut hp_up_sum);

    // The busy-period candidate is
    //     avail(s, t] + c̄(s⁻)
    // with avail(s, t] bracketed through the hp service bounds. A single
    // availability curve `B(t) − B(s)` (the paper's Eqs. 17/19) cannot
    // bracket the *increment* of hp interference — the `t` and `s`
    // positions need opposite hp bounds:
    //     lower: (t−s) − b − [ΣS̄_h(t) − ΣS̲_h(s)]
    //     upper: (t−s)     − [ΣS̲_h(t) − ΣS̄_h(s)]
    // The `Conservative` variant implements exactly that; `AsPrinted` keeps
    // the paper's single-curve form with `ΣS̲_h` at both positions.

    // ---- Theorem 6: upper bound (no blocking in an upper bound). ----
    // The `− s` / `+ t` identity-line terms ride along inside the merges
    // (`linear_combine_line_into` is pinned segment-identical to the
    // staged pipeline), so neither `t_part_up` nor `s_part_up` costs a
    // separate pass over the hp sums.
    match variant {
        SpnpAvailability::AsPrinted => {
            linear_combine_line_into(&c_prev, 1, &hp_lo_sum, 1, 0, -1, &mut t3)
        }
        SpnpAvailability::Conservative => {
            linear_combine_line_into(&c_prev, 1, &hp_up_sum, 1, 0, -1, &mut t3)
        }
    } // t3 = s_part_up = c̄(s⁻) + Σ − s
    t3.running_min_into(&mut t2);
    linear_combine_line_into(&t2, 1, &hp_lo_sum, -1, 0, 1, &mut t3); // + t_part_up
    t3.min_with_into(w, &mut t1); // t1 = upper_raw
    t1.min_with_into(&id, &mut t2);
    t2.clamp_min_into(0, &mut t3);
    t3.running_max_into(&mut up); // up = upper, pre-reorder fix

    // ---- Theorem 5: lower bound. ----
    id.add_const_into(-b.ticks(), &mut t1);
    match variant {
        SpnpAvailability::AsPrinted => t1.sub_into(&hp_lo_sum, &mut t2),
        SpnpAvailability::Conservative => t1.sub_into(&hp_up_sum, &mut t2),
    } // t2 = t_part_lo, unmasked
      // s-part availability: the paper's B̲ (masked to 0 on [0, b]) for
      // AsPrinted; for Conservative the blocking term lives only in the
      // t-part (it is a one-shot delay, not an increment at both ends), so
      // the s-part is the unmasked `s − ΣS̲_h(s)` — folded straight into
      // `c̄(s⁻) − avail_s(s)` below as `c̄(s⁻) + ΣS̲_h(s) − s`.
    if variant == SpnpAvailability::AsPrinted {
        t2.mask_before_into(b + Time::ONE, 0, &mut s_avail);
    }
    t2.mask_before_into(b + Time::ONE, 0, &mut t1); // t1 = masked t_part_lo
                                                    // S̲(t) = T(t) + min_{0 ≤ s ≤ t−b} ( c̄(s⁻) − avail_s(s) ), the running
                                                    // minimum delayed by the blocking interval (Theorem 5's min range).
    match variant {
        SpnpAvailability::AsPrinted => c_prev.sub_into(&s_avail, &mut t2),
        SpnpAvailability::Conservative => {
            linear_combine_line_into(&c_prev, 1, &hp_lo_sum, 1, 0, -1, &mut t2)
        }
    }
    t2.running_min_into(&mut t3); // t3 = run
    t3.shift_right_into(b, t3.eval(Time::ZERO), &mut t2); // t2 = delayed_run
    t1.add_into(&t2, &mut t3);
    t3.min_with_into(w, &mut t2);
    t2.mask_before_into(b + Time::ONE, 0, &mut t1); // t1 = lower_raw
    t1.clamp_min_into(0, &mut t2);
    t2.min_with_into(&id, &mut t3);
    t3.running_max_into(&mut out.lower);

    // Clipping can reorder the raw curves in degenerate spots.
    up.max_with_into(&out.lower, &mut out.upper);

    for c in [id, c_prev, hp_lo_sum, hp_up_sum, up, s_avail, t1, t2, t3] {
        scratch.put_soa(c);
    }
    Ok(())
}

/// [`spnp_bounds`] writing into a caller-provided [`ServiceBounds`], with
/// every intermediate curve drawn from `scratch`'s pool — the
/// zero-allocation kernel behind the fixpoint driver's warm path. The
/// SoA port of this chain ([`spnp_bounds_into_soa`]) is pinned
/// segment-identical by unit tests. On error `out` is left in an
/// unspecified (but valid) state.
#[allow(clippy::many_single_char_names)]
pub fn spnp_bounds_into(
    workload_upper: &Curve,
    hp_lower: &[&Curve],
    hp_upper: &[&Curve],
    blocking: Time,
    variant: SpnpAvailability,
    scratch: &mut Scratch,
    out: &mut ServiceBounds,
) -> Result<(), CurveError> {
    if hp_lower.len() != hp_upper.len() {
        return Err(CurveError::MismatchedLengths {
            left: hp_lower.len(),
            right: hp_upper.len(),
        });
    }
    let b = blocking;
    let mut id = scratch.take_curve();
    let mut c_prev = scratch.take_curve();
    let mut hp_lo_sum = scratch.take_curve();
    let mut hp_up_sum = scratch.take_curve();
    let mut up = scratch.take_curve();
    let mut s_avail = scratch.take_curve();
    let mut t1 = scratch.take_curve();
    let mut t2 = scratch.take_curve();
    let mut t3 = scratch.take_curve();

    id.set_affine(0, 1);
    workload_upper.shift_right_into(Time::ONE, 0, &mut c_prev);
    for (sum, curves) in [(&mut hp_lo_sum, hp_lower), (&mut hp_up_sum, hp_upper)] {
        sum.set_affine(0, 0);
        for c in curves {
            sum.add_into(c, &mut t1);
            std::mem::swap(sum, &mut t1);
        }
    }

    // Theorem 6 upper bound, then Theorem 5 lower bound — the operation
    // sequence is documented step by step in the SoA port above.
    id.sub_into(&hp_lo_sum, &mut t1);
    match variant {
        SpnpAvailability::AsPrinted => c_prev.add_into(&hp_lo_sum, &mut t2),
        SpnpAvailability::Conservative => c_prev.add_into(&hp_up_sum, &mut t2),
    }
    t2.sub_into(&id, &mut t3);
    t3.running_min_into(&mut t2);
    t1.add_into(&t2, &mut t3);
    t3.min_with_into(workload_upper, &mut t1);
    t1.min_with_into(&id, &mut t2);
    t2.clamp_min_into(0, &mut t3);
    t3.running_max_into(&mut up);

    id.add_const_into(-b.ticks(), &mut t1);
    match variant {
        SpnpAvailability::AsPrinted => t1.sub_into(&hp_lo_sum, &mut t2),
        SpnpAvailability::Conservative => t1.sub_into(&hp_up_sum, &mut t2),
    }
    match variant {
        SpnpAvailability::AsPrinted => t2.mask_before_into(b + Time::ONE, 0, &mut s_avail),
        SpnpAvailability::Conservative => id.sub_into(&hp_lo_sum, &mut s_avail),
    }
    t2.mask_before_into(b + Time::ONE, 0, &mut t1);
    c_prev.sub_into(&s_avail, &mut t2);
    t2.running_min_into(&mut t3);
    t3.shift_right_into(b, t3.eval(Time::ZERO), &mut t2);
    t1.add_into(&t2, &mut t3);
    t3.min_with_into(workload_upper, &mut t2);
    t2.mask_before_into(b + Time::ONE, 0, &mut t1);
    t1.clamp_min_into(0, &mut t2);
    t2.min_with_into(&id, &mut t3);
    t3.running_max_into(&mut out.lower);

    up.max_with_into(&out.lower, &mut out.upper);

    for c in [id, c_prev, hp_lo_sum, hp_up_sum, up, s_avail, t1, t2, t3] {
        scratch.put_curve(c);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spp::exact_service;

    fn check_sane(b: &ServiceBounds, horizon: i64) {
        for t in 0..=horizon {
            let t = Time(t);
            assert!(b.lower.eval(t) <= b.upper.eval(t), "lower ≤ upper at {t}");
            assert!(b.lower.eval(t) >= 0);
            assert!(b.upper.eval(t) <= t.ticks().max(0) + 1_000_000_000);
        }
        assert!(b.lower.is_nondecreasing());
        assert!(b.upper.is_nondecreasing());
    }

    #[test]
    fn mismatched_peer_slices_are_rejected() {
        let c = Curve::from_event_times(&[Time(0)]).scale(2);
        let hp = spnp_bounds(&c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        let err = spnp_bounds(
            &c,
            &[&hp.lower],
            &[],
            Time::ZERO,
            SpnpAvailability::Conservative,
        )
        .unwrap_err();
        assert_eq!(err, CurveError::MismatchedLengths { left: 1, right: 0 });
    }

    #[test]
    fn no_blocking_no_interference_brackets_exact() {
        let c = Curve::from_event_times(&[Time(0), Time(10)]).scale(4);
        let exact = exact_service(&c, &[]);
        for variant in [SpnpAvailability::AsPrinted, SpnpAvailability::Conservative] {
            let b = spnp_bounds(&c, &[], &[], Time::ZERO, variant).unwrap();
            check_sane(&b, 25);
            for t in 0..=25 {
                let t = Time(t);
                assert!(b.lower.eval(t) <= exact.eval(t), "t={t}");
                assert!(b.upper.eval(t) >= exact.eval(t), "t={t}");
            }
        }
    }

    #[test]
    fn blocking_delays_the_lower_bound() {
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let b = spnp_bounds(&c, &[], &[], Time(3), SpnpAvailability::Conservative).unwrap();
        check_sane(&b, 20);
        // Nothing guaranteed during the blocking interval.
        assert_eq!(b.lower.eval(Time(3)), 0);
        // All 5 units guaranteed by t = 3 + 5.
        assert_eq!(b.lower.eval(Time(8)), 5);
        // The upper bound ignores blocking entirely.
        assert_eq!(b.upper.eval(Time(5)), 5);
    }

    #[test]
    fn interference_shrinks_bounds() {
        // hp takes [0,4) guaranteed.
        let hp_c = Curve::from_event_times(&[Time(0)]).scale(4);
        let hp = spnp_bounds(&hp_c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let lo = spnp_bounds(
            &c,
            &[&hp.lower],
            &[&hp.upper],
            Time::ZERO,
            SpnpAvailability::Conservative,
        )
        .unwrap();
        check_sane(&lo, 20);
        // Lower bound: hp may consume the first 4 ticks ⇒ our 5 units are
        // only guaranteed complete by t = 9.
        assert_eq!(lo.lower.eval(Time(4)), 0);
        assert_eq!(lo.lower.eval(Time(9)), 5);
        // Upper bound: hp is guaranteed the first 4 ticks (its own lower
        // bound), so we cannot have finished before t = 9 either.
        assert_eq!(lo.upper.eval(Time(9)), 5);
    }

    #[test]
    fn variants_are_both_sane() {
        let hp_c = Curve::from_event_times(&[Time(0), Time(6)]).scale(3);
        let hp = spnp_bounds(&hp_c, &[], &[], Time(2), SpnpAvailability::Conservative).unwrap();
        let c = Curve::from_event_times(&[Time(0), Time(8)]).scale(4);
        let printed = spnp_bounds(
            &c,
            &[&hp.lower],
            &[&hp.upper],
            Time(2),
            SpnpAvailability::AsPrinted,
        )
        .unwrap();
        let conserv = spnp_bounds(
            &c,
            &[&hp.lower],
            &[&hp.upper],
            Time(2),
            SpnpAvailability::Conservative,
        )
        .unwrap();
        check_sane(&printed, 30);
        check_sane(&conserv, 30);
        // The conservative variant brackets at least as widely as the
        // paper-verbatim one: its lower bound assumes more interference and
        // its upper bound assumes less.
        for t in 0..=30 {
            let t = Time(t);
            assert!(
                conserv.upper.eval(t) >= printed.upper.eval(t),
                "upper at {t}"
            );
            assert!(
                conserv.lower.eval(t) <= printed.lower.eval(t),
                "lower at {t}"
            );
        }
    }

    #[test]
    fn soa_chain_matches_aos_oracle() {
        // The retained SoA chain must stay segment-identical to the
        // production AoS chain — same ops, ported kernels — across
        // variants, blocking values, and repeated calls on one warm
        // scratch.
        let hp_c = Curve::from_event_times(&[Time(0), Time(6), Time(11)]).scale(3);
        let c = Curve::from_event_times(&[Time(0), Time(8)]).scale(4);
        let mut scratch = Scratch::new();
        let mut hp = ServiceBounds::zeroed();
        spnp_bounds_into(
            &hp_c,
            &[],
            &[],
            Time(2),
            SpnpAvailability::Conservative,
            &mut scratch,
            &mut hp,
        )
        .unwrap();
        let mut soa = ServiceBounds::zeroed();
        let mut aos = ServiceBounds::zeroed();
        for variant in [SpnpAvailability::AsPrinted, SpnpAvailability::Conservative] {
            for b in [Time::ZERO, Time(2), Time(7)] {
                let hp_lo: &[&Curve] = &[&hp.lower];
                let hp_up: &[&Curve] = &[&hp.upper];
                spnp_bounds_into_soa(&c, hp_lo, hp_up, b, variant, &mut scratch, &mut soa).unwrap();
                spnp_bounds_into(&c, hp_lo, hp_up, b, variant, &mut scratch, &mut aos).unwrap();
                assert_eq!(soa, aos, "variant={variant:?} b={b}");
            }
        }
    }

    #[test]
    fn lower_bound_capped_by_workload() {
        let c = Curve::from_event_times(&[Time(0)]).scale(2);
        let b = spnp_bounds(&c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        for t in 0..=15 {
            assert!(b.lower.eval(Time(t)) <= c.eval(Time(t)));
        }
    }
}
